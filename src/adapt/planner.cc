#include "adapt/planner.h"

#include <utility>

namespace contjoin::adapt {

namespace {

/// Separator between level1 and value in FamilyKey: a unit separator
/// cannot appear in "R+A" keys and keeps families prefix-free.
constexpr char kFamilySep = '\x1f';

constexpr char kShardMark[] = "#s";

bool ApplyDirective(std::map<std::string, Directive>* map,
                    const std::string& key, int level, uint64_t version,
                    uint64_t epoch) {
  Directive& d = (*map)[key];
  // Higher version wins. On an equal-version tie (two nodes transiently
  // believing they controlled the same key issued conflicting
  // directives) the larger level wins — a symmetric rule, so every
  // directory converges to the same directive regardless of arrival
  // order.
  if (version < d.version ||
      (version == d.version && (version == 0 || level <= d.level))) {
    return false;
  }
  d.level = level;
  d.version = version;
  d.changed_epoch = epoch;
  return true;
}

const Directive* FindDirective(const std::map<std::string, Directive>& map,
                               const std::string& key) {
  auto it = map.find(key);
  return it == map.end() ? nullptr : &it->second;
}

size_t MergeDirectives(std::map<std::string, Directive>* into,
                       const std::map<std::string, Directive>& from) {
  size_t applied = 0;
  for (const auto& [key, d] : from) {
    Directive& mine = (*into)[key];
    // Same tie-break as ApplyDirective: version first, level second.
    if (d.version > mine.version ||
        (d.version == mine.version && d.version > 0 && d.level > mine.level)) {
      mine = d;
      ++applied;
    }
  }
  return applied;
}

}  // namespace

std::string ShardValueKey(const std::string& value, int shard, int split) {
  if (split <= 1) return value;
  return value + kShardMark + std::to_string(shard);
}

bool ParseShardSuffix(const std::string& value_key, std::string* base,
                      int* shard) {
  size_t mark = value_key.rfind(kShardMark);
  if (mark == std::string::npos || mark + 2 >= value_key.size()) return false;
  int parsed = 0;
  for (size_t i = mark + 2; i < value_key.size(); ++i) {
    char c = value_key[i];
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + (c - '0');
    if (parsed > 1 << 20) return false;  // Not a plausible shard index.
  }
  *base = value_key.substr(0, mark);
  *shard = parsed;
  return true;
}

int ShardOfSeq(uint64_t seq, int split) {
  if (split <= 1) return 0;
  return static_cast<int>(seq % static_cast<uint64_t>(split));
}

std::string FamilyKey(const std::string& level1, const std::string& value) {
  return level1 + kFamilySep + value;
}

int Directory::SplitOf(const std::string& level1,
                       const std::string& value) const {
  const Directive* d = FindDirective(value_, FamilyKey(level1, value));
  return d == nullptr ? 1 : d->level;
}

int Directory::ReplicasOf(const std::string& level1, int base) const {
  if (base < 1) base = 1;
  const Directive* d = FindDirective(attr_, level1);
  return d == nullptr || d->level < base ? base : d->level;
}

bool Directory::ApplySplit(const std::string& level1, const std::string& value,
                           int split, uint64_t version, uint64_t epoch) {
  return ApplyDirective(&value_, FamilyKey(level1, value), split, version,
                        epoch);
}

bool Directory::ApplyReplicas(const std::string& level1, int replicas,
                              uint64_t version, uint64_t epoch) {
  return ApplyDirective(&attr_, level1, replicas, version, epoch);
}

const Directive* Directory::FindSplit(const std::string& level1,
                                      const std::string& value) const {
  return FindDirective(value_, FamilyKey(level1, value));
}

const Directive* Directory::FindReplicas(const std::string& level1) const {
  return FindDirective(attr_, level1);
}

size_t Directory::MergeFrom(const Directory& other) {
  return MergeDirectives(&attr_, other.attr_) +
         MergeDirectives(&value_, other.value_);
}

}  // namespace contjoin::adapt
