// The adaptation plan each node holds: a versioned directory of active
// directives (per attribute-level key: effective replica count; per
// value-level key: split factor), plus the virtual sub-key naming scheme
// hot values are hash-fanned across. Every node keeps its own copy,
// updated by broadcast/directed kAdaptReplicate / kAdaptSplit messages;
// per-key versions make application idempotent and order-insensitive
// (higher version wins), and the engine max-merges directories across
// alive nodes during churn repair.

#ifndef CONTJOIN_ADAPT_PLANNER_H_
#define CONTJOIN_ADAPT_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>

#include "adapt/tracker.h"

namespace contjoin::adapt {

// --- Sub-key naming -----------------------------------------------------------

/// Virtual sub-key `shard` of a split value: "v" -> "v#s<shard>". With
/// `split <= 1` (or shard 0 of an unsplit key) the value is returned
/// unchanged — an unsplit key has no suffix, so the scheme is invisible
/// until the first escalation.
std::string ShardValueKey(const std::string& value, int shard, int split);

/// Splits a "...#s<j>" virtual sub-key into its base value and shard
/// index; returns false (and leaves outputs untouched) for a plain value.
bool ParseShardSuffix(const std::string& value_key, std::string* base,
                      int* shard);

/// Shard a publication hashes to: deterministic in the tuple's sequence
/// number, so the same tuple lands on the same sub-key at any worker
/// count and in the oracle replay.
int ShardOfSeq(uint64_t seq, int split);

/// Directory key of a value family. DAI-V families pass an empty level1
/// (its evaluators are keyed by value alone, §4.5).
std::string FamilyKey(const std::string& level1, const std::string& value);

// --- Directive directory ------------------------------------------------------

/// One versioned directive. `changed_epoch` is the local application
/// epoch, consulted only by the key's controller for dwell enforcement.
struct Directive {
  int level = 1;  // Replica count (attr keys) or split factor (values).
  uint64_t version = 0;
  uint64_t changed_epoch = 0;
};

class Directory {
 public:
  /// Split factor of value family (`level1`, `value`); 1 when no
  /// directive is active.
  int SplitOf(const std::string& level1, const std::string& value) const;

  /// Effective replica count of attribute-level key `level1`: the static
  /// floor `base` or the active directive, whichever is larger.
  int ReplicasOf(const std::string& level1, int base) const;

  /// Applies a directive if `version` is newer than the stored one;
  /// returns true when the directory changed. `epoch` stamps
  /// changed_epoch for dwell bookkeeping.
  bool ApplySplit(const std::string& level1, const std::string& value,
                  int split, uint64_t version, uint64_t epoch);
  bool ApplyReplicas(const std::string& level1, int replicas,
                     uint64_t version, uint64_t epoch);

  /// Stored directive for dwell/version reads (nullptr when absent).
  const Directive* FindSplit(const std::string& level1,
                             const std::string& value) const;
  const Directive* FindReplicas(const std::string& level1) const;

  /// Merges every directive of `other` that is newer than the local copy
  /// (churn-repair directory sync); returns the number applied.
  size_t MergeFrom(const Directory& other);

  bool empty() const { return attr_.empty() && value_.empty(); }

 private:
  // Ordered maps: MergeFrom iterates them during the (serial) repair
  // sweep, and determinism-by-construction is this subsystem's contract.
  std::map<std::string, Directive> attr_;   // level1 -> replicas
  std::map<std::string, Directive> value_;  // FamilyKey -> split
};

// --- Per-node adaptation state ------------------------------------------------

/// Everything a node holds for the adaptive load manager. Volatile like
/// the other protocol tables: a crash wipes it, and the directory is
/// re-seeded from the survivors' copies during churn repair.
struct AdaptState {
  Directory directory;
  /// Arrival counters, keyed by level1 (attribute level, tracked at
  /// replica 0) and by FamilyKey (value level, tracked at shard 0).
  LoadTracker attr_load;
  LoadTracker value_load;
  /// FamilyKey -> last directive version whose local state transition
  /// (bucket copy / re-placement) this node already performed, so the
  /// broadcast and the directed copy of one directive act once.
  std::map<std::string, uint64_t> acted_split;
};

}  // namespace contjoin::adapt

#endif  // CONTJOIN_ADAPT_PLANNER_H_
