// Per-key load tracking over a sliding window of virtual-time epochs.
// Counters decay lazily: on first touch in a later epoch the stored
// count halves once per elapsed epoch, so a key's tracked value
// approximates its arrivals over the last ~two epochs without any
// timer-driven sweep (the simulator has no timers outside messages, and
// determinism across worker counts forbids wall clocks).

#ifndef CONTJOIN_ADAPT_TRACKER_H_
#define CONTJOIN_ADAPT_TRACKER_H_

#include <cstdint>
#include <map>
#include <string>

namespace contjoin::adapt {

class LoadTracker {
 public:
  /// Adds `weight` arrivals for `key` during `epoch` and returns the
  /// decayed count after the update. Tracking is bounded: once
  /// kMaxTrackedKeys distinct keys are held, unseen keys are ignored
  /// (returning 0) — a cold key that never got a slot can never be
  /// declared hot, which is the safe failure direction.
  uint64_t Record(const std::string& key, uint64_t epoch, uint64_t weight);

  /// Decayed count of `key` as of `epoch` (0 if untracked). Const: the
  /// decay is computed on the fly without mutating the cell.
  uint64_t RateOf(const std::string& key, uint64_t epoch) const;

  size_t size() const { return cells_.size(); }

  /// Tracking capacity; matches the order of magnitude of
  /// AttrArrivalStats::kMaxTrackedValues in the rewriter.
  static constexpr size_t kMaxTrackedKeys = 4096;

 private:
  struct Cell {
    uint64_t count = 0;
    uint64_t epoch = 0;  // Epoch `count` was last decayed to.
  };

  static uint64_t Decayed(uint64_t count, uint64_t from_epoch,
                          uint64_t to_epoch);

  // Ordered map: iteration order never reaches the wire today, but every
  // container in the decision path stays deterministic by construction.
  std::map<std::string, Cell> cells_;
};

}  // namespace contjoin::adapt

#endif  // CONTJOIN_ADAPT_TRACKER_H_
