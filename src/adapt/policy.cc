#include "adapt/policy.h"

namespace contjoin::adapt {

int ProposeSplit(const Params& params, uint64_t rate, int current) {
  if (current < 1) current = 1;
  if (rate > params.hot_threshold && current * 2 <= params.max_split) {
    return current * 2;
  }
  if (rate < params.cool_threshold && current > 1) return current / 2;
  return current;
}

int ProposeReplicas(const Params& params, uint64_t rate, int current,
                    int base) {
  if (base < 1) base = 1;
  if (current < base) current = base;
  if (rate > params.hot_threshold && current < params.max_replicas) {
    return current + 1;
  }
  if (rate < params.cool_threshold && current > base) return current - 1;
  return current;
}

}  // namespace contjoin::adapt
