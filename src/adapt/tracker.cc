#include "adapt/tracker.h"

namespace contjoin::adapt {

uint64_t LoadTracker::Decayed(uint64_t count, uint64_t from_epoch,
                              uint64_t to_epoch) {
  if (to_epoch <= from_epoch) return count;
  uint64_t gap = to_epoch - from_epoch;
  if (gap >= 64) return 0;
  return count >> gap;
}

uint64_t LoadTracker::Record(const std::string& key, uint64_t epoch,
                             uint64_t weight) {
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    if (cells_.size() >= kMaxTrackedKeys) return 0;
    it = cells_.emplace(key, Cell{}).first;
    it->second.epoch = epoch;
  }
  Cell& cell = it->second;
  cell.count = Decayed(cell.count, cell.epoch, epoch);
  cell.epoch = epoch;
  cell.count += weight;
  return cell.count;
}

uint64_t LoadTracker::RateOf(const std::string& key, uint64_t epoch) const {
  auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  return Decayed(it->second.count, it->second.epoch, epoch);
}

}  // namespace contjoin::adapt
