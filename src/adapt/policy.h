// Adaptive load-management policy (ROADMAP item 3): thresholds and the
// hysteresis rules deciding when a hot attribute-level key gains a
// replica, when a hot value-level key splits into virtual sub-keys, and
// when cooled keys merge back. The subsystem follows "Scaling and
// Load-Balancing Equi-Joins" (Metwally): replicate the broadcast-style
// side, partition the point-style side, and keep every transition a
// deterministic function of (virtual time, observed counts).

#ifndef CONTJOIN_ADAPT_POLICY_H_
#define CONTJOIN_ADAPT_POLICY_H_

#include <cstdint>

namespace contjoin::adapt {

/// Control-loop knobs. All off by default — with `enabled == false` the
/// engine is bit-identical to one without this subsystem.
struct Params {
  /// Master switch for runtime hot-key detection and adaptation.
  bool enabled = false;

  /// Virtual-time units per load epoch. Decayed counters halve once per
  /// epoch, so a key's tracked rate approximates its arrivals over the
  /// last ~two epochs.
  uint64_t epoch_len = 64;

  /// A key whose decayed per-epoch arrival count exceeds this is hot:
  /// attribute-level keys gain a replica, value-level keys double their
  /// split factor.
  uint64_t hot_threshold = 192;

  /// Hysteresis floor: a replicated/split key whose decayed count falls
  /// below this cools one step. Keep <= hot_threshold / 2, otherwise a
  /// key oscillates (cooling one step roughly doubles the survivor's
  /// share, which must still sit below hot_threshold).
  uint64_t cool_threshold = 48;

  /// Minimum epochs between directive changes for one key (cooldown
  /// dwell): transitions ship state, so they must not be re-decided
  /// within the window the previous transition is still settling.
  uint64_t dwell_epochs = 2;

  /// Upper bound on value-level sub-keys per hot value (power of two).
  int max_split = 8;

  /// Upper bound on attribute-level replicas (counting the configured
  /// static `attribute_replication` as the floor).
  int max_replicas = 4;
};

/// Next split factor for a value-level key with decayed rate `rate` at
/// split factor `current`: doubles when hot, halves when cooled, else
/// stays. Steps are powers of two so every escalation's shard set is a
/// superset of its predecessor's.
int ProposeSplit(const Params& params, uint64_t rate, int current);

/// Next replica count for an attribute-level key with decayed rate
/// `rate` (observed at replica 0, i.e. already a per-replica share) at
/// `current` replicas; never drops below `base`, the static
/// attribute_replication floor.
int ProposeReplicas(const Params& params, uint64_t rate, int current,
                    int base);

}  // namespace contjoin::adapt

#endif  // CONTJOIN_ADAPT_POLICY_H_
