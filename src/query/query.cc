#include "query/query.h"

#include <sstream>

namespace contjoin::query {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNeq:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

StatusOr<bool> Predicate::Matches(const rel::Tuple& tuple) const {
  CJ_ASSIGN_OR_RETURN(rel::Value a, lhs->EvalSingle(side, tuple));
  CJ_ASSIGN_OR_RETURN(rel::Value b, rhs->EvalSingle(side, tuple));
  // SQL-style: null compares as unknown, which a conjunct treats as false.
  if (a.is_null() || b.is_null()) return false;
  int cmp = a.Compare(b);
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNeq:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return Status::Internal("unknown comparison operator");
}

std::string Predicate::ToString() const {
  return lhs->ToString() + " " + CmpOpName(op) + " " + rhs->ToString();
}

bool QuerySide::SatisfiesPredicates(const rel::Tuple& tuple) const {
  for (const Predicate& pred : predicates) {
    auto match = pred.Matches(tuple);
    if (!match.ok() || !match.value()) return false;
  }
  return true;
}

int ContinuousQuery::SideOfRelation(const std::string& relation) const {
  if (sides_[0].relation == relation) return 0;
  if (sides_[1].relation == relation) return 1;
  return -1;
}

std::string ContinuousQuery::ToString() const {
  std::ostringstream out;
  out << "SELECT ";
  for (size_t i = 0; i < select_.size(); ++i) {
    if (i > 0) out << ", ";
    out << select_[i].label;
  }
  out << " FROM " << sides_[0].relation;
  if (sides_[0].alias != sides_[0].relation) out << " AS " << sides_[0].alias;
  out << ", " << sides_[1].relation;
  if (sides_[1].alias != sides_[1].relation) out << " AS " << sides_[1].alias;
  out << " WHERE " << sides_[0].join_expr->ToString() << " = "
      << sides_[1].join_expr->ToString();
  for (int s = 0; s < 2; ++s) {
    for (const Predicate& pred : sides_[s].predicates) {
      out << " AND " << pred.ToString();
    }
  }
  return out.str();
}

}  // namespace contjoin::query
