// The continuous two-way equi-join query representation (paper §3.2):
//
//   SELECT R.A1, ..., S.B1, ...  FROM R, S  WHERE alpha = beta [AND pred]*
//
// alpha references only attributes of R (plus constants), beta only
// attributes of S. Additional conjuncts referencing a single relation are
// selection predicates. Queries are classified T1 (both sides invertible
// single-attribute forms) or T2 (anything else; only DAI-V evaluates them).

#ifndef CONTJOIN_QUERY_QUERY_H_
#define CONTJOIN_QUERY_QUERY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/expr.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace contjoin::query {

enum class QueryType : unsigned char { kT1, kT2 };

enum class CmpOp : unsigned char { kEq, kNeq, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A selection predicate: `lhs op rhs`, both expressions referencing only
/// one side's attributes (and constants).
struct Predicate {
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  CmpOp op = CmpOp::kEq;
  int side = 0;

  /// Evaluates against a tuple of the predicate's relation.
  StatusOr<bool> Matches(const rel::Tuple& tuple) const;

  std::string ToString() const;
};

/// One side of the join: relation, alias, join-condition expression,
/// invertibility analysis and local selection predicates.
struct QuerySide {
  std::string relation;
  std::string alias;
  const rel::RelationSchema* schema = nullptr;
  std::unique_ptr<Expr> join_expr;
  std::optional<LinearForm> linear;  // Set iff the side is invertible (T1).
  std::vector<Predicate> predicates;
  /// Attribute used to index the query at the attribute level for this side:
  /// the linear form's attribute for T1 sides, otherwise the first attribute
  /// the join expression references (paper §4.5).
  size_t index_attr = 0;

  const std::string& index_attr_name() const {
    return schema->attribute(index_attr).name;
  }

  /// True iff `tuple` satisfies all of this side's selection predicates.
  bool SatisfiesPredicates(const rel::Tuple& tuple) const;
};

/// One output column: an attribute of either side.
struct SelectItem {
  AttrRef ref;
  std::string label;  // "D.Title" as written.
};

/// A parsed continuous query. Subscriber identity, key and insertion time
/// are attached by the engine at submission.
class ContinuousQuery {
 public:
  ContinuousQuery() = default;
  ContinuousQuery(ContinuousQuery&&) = default;
  ContinuousQuery& operator=(ContinuousQuery&&) = default;

  // --- Structure (filled by the parser) -------------------------------------

  QuerySide& side(int i) { return sides_[i]; }
  const QuerySide& side(int i) const { return sides_[i]; }

  std::vector<SelectItem>& select() { return select_; }
  const std::vector<SelectItem>& select() const { return select_; }

  QueryType type() const { return type_; }
  void set_type(QueryType t) { type_ = t; }

  /// Canonical join-condition string, e.g. "(R.B) = (S.E)"; queries with
  /// equal signatures are grouped at rewriters and evaluators (§4.3.5).
  const std::string& signature() const { return signature_; }
  void set_signature(std::string s) { signature_ = std::move(s); }

  // --- Submission metadata (filled by the engine) ----------------------------

  const std::string& key() const { return key_; }
  void set_key(std::string key) { key_ = std::move(key); }

  const std::string& subscriber_key() const { return subscriber_key_; }
  void set_subscriber_key(std::string k) { subscriber_key_ = std::move(k); }

  uint64_t subscriber_ip() const { return subscriber_ip_; }
  void set_subscriber_ip(uint64_t ip) { subscriber_ip_ = ip; }

  rel::Timestamp insertion_time() const { return insertion_time_; }
  void set_insertion_time(rel::Timestamp t) { insertion_time_ = t; }

  /// The SQL text this query was parsed from. The wire codec ships queries
  /// as raw SQL plus engine metadata and re-parses on receipt, so the
  /// parser stays the single source of structural truth.
  const std::string& raw_sql() const { return raw_sql_; }
  void set_raw_sql(std::string sql) { raw_sql_ = std::move(sql); }

  // --- Helpers -----------------------------------------------------------------

  /// Side index of the relation named `relation`, or -1.
  int SideOfRelation(const std::string& relation) const;

  /// Human-readable SQL-ish rendering.
  std::string ToString() const;

 private:
  QuerySide sides_[2];
  std::vector<SelectItem> select_;
  QueryType type_ = QueryType::kT1;
  std::string signature_;

  std::string key_;
  std::string subscriber_key_;
  uint64_t subscriber_ip_ = 0;
  rel::Timestamp insertion_time_ = 0;
  std::string raw_sql_;
};

using QueryPtr = std::shared_ptr<const ContinuousQuery>;

}  // namespace contjoin::query

#endif  // CONTJOIN_QUERY_QUERY_H_
