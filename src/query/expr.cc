#include "query/expr.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace contjoin::query {

std::unique_ptr<Expr> Expr::Const(rel::Value v) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->constant_ = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Attr(AttrRef ref) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAttr;
  e->attr_ = std::move(ref);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(Kind kind, std::unique_ptr<Expr> child) {
  CJ_CHECK(kind == Kind::kNeg);
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->lhs_ = std::move(child);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(Kind kind, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  CJ_CHECK(kind == Kind::kAdd || kind == Kind::kSub || kind == Kind::kMul ||
           kind == Kind::kDiv);
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

namespace {

/// Arithmetic preserving integers when both operands are integers (except
/// division, which is performed in doubles so joins over ratios behave
/// predictably).
StatusOr<rel::Value> Arith(Expr::Kind kind, const rel::Value& a,
                           const rel::Value& b) {
  auto na = a.AsNumeric();
  auto nb = b.AsNumeric();
  if (!na.has_value() || !nb.has_value()) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  bool both_int = a.type() == rel::ValueType::kInt &&
                  b.type() == rel::ValueType::kInt;
  switch (kind) {
    case Expr::Kind::kAdd:
      return both_int ? rel::Value::Int(a.as_int() + b.as_int())
                      : rel::Value::Double(*na + *nb);
    case Expr::Kind::kSub:
      return both_int ? rel::Value::Int(a.as_int() - b.as_int())
                      : rel::Value::Double(*na - *nb);
    case Expr::Kind::kMul:
      return both_int ? rel::Value::Int(a.as_int() * b.as_int())
                      : rel::Value::Double(*na * *nb);
    case Expr::Kind::kDiv:
      if (*nb == 0.0) return Status::InvalidArgument("division by zero");
      return rel::Value::Double(*na / *nb);
    default:
      return Status::Internal("not an arithmetic kind");
  }
}

}  // namespace

StatusOr<rel::Value> Expr::Eval(const rel::Tuple* const* tuples,
                                size_t n) const {
  switch (kind_) {
    case Kind::kConst:
      return constant_;
    case Kind::kAttr: {
      const rel::Tuple* t =
          static_cast<size_t>(attr_.side) < n ? tuples[attr_.side] : nullptr;
      if (t == nullptr) {
        return Status::FailedPrecondition("no tuple bound for side " +
                                          std::to_string(attr_.side));
      }
      if (attr_.attr_index >= t->arity()) {
        return Status::OutOfRange("attribute index out of range");
      }
      return t->at(attr_.attr_index);
    }
    case Kind::kNeg: {
      CJ_ASSIGN_OR_RETURN(rel::Value v, lhs_->Eval(tuples, n));
      auto num = v.AsNumeric();
      if (!num.has_value()) {
        return Status::InvalidArgument("negation of non-numeric value");
      }
      return v.type() == rel::ValueType::kInt
                 ? rel::Value::Int(-v.as_int())
                 : rel::Value::Double(-*num);
    }
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv: {
      CJ_ASSIGN_OR_RETURN(rel::Value a, lhs_->Eval(tuples, n));
      CJ_ASSIGN_OR_RETURN(rel::Value b, rhs_->Eval(tuples, n));
      return Arith(kind_, a, b);
    }
  }
  return Status::Internal("unreachable expression kind");
}

StatusOr<rel::Value> Expr::EvalSingle(int side, const rel::Tuple& tuple) const {
  CJ_CHECK(side >= 0 && side < kMaxSides) << "side out of range: " << side;
  const rel::Tuple* tuples[kMaxSides] = {};
  tuples[side] = &tuple;
  return Eval(tuples, kMaxSides);
}

void Expr::CollectAttrs(std::set<AttrRef>* out) const {
  switch (kind_) {
    case Kind::kConst:
      return;
    case Kind::kAttr:
      out->insert(attr_);
      return;
    default:
      if (lhs_) lhs_->CollectAttrs(out);
      if (rhs_) rhs_->CollectAttrs(out);
  }
}

std::set<AttrRef> Expr::Attrs() const {
  std::set<AttrRef> out;
  CollectAttrs(&out);
  return out;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kConst:
      return constant_.ToString();
    case Kind::kAttr:
      return attr_.display;
    case Kind::kNeg:
      return "(-" + lhs_->ToString() + ")";
    case Kind::kAdd:
      return "(" + lhs_->ToString() + " + " + rhs_->ToString() + ")";
    case Kind::kSub:
      return "(" + lhs_->ToString() + " - " + rhs_->ToString() + ")";
    case Kind::kMul:
      return "(" + lhs_->ToString() + " * " + rhs_->ToString() + ")";
    case Kind::kDiv:
      return "(" + lhs_->ToString() + " / " + rhs_->ToString() + ")";
  }
  return "?";
}

namespace {

/// Intermediate for linear analysis: value = scale * x + offset where x is
/// `ref` (if has_attr), else the constant offset alone.
struct Linear {
  bool has_attr = false;
  AttrRef ref;
  double scale = 0.0;
  double offset = 0.0;
  bool pure_attr = false;  // Expression is literally the attribute node.
};

std::optional<Linear> Analyze(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kConst: {
      auto n = e.constant().AsNumeric();
      if (!n.has_value()) return std::nullopt;  // String constants: not linear.
      return Linear{false, {}, 0.0, *n, false};
    }
    case Expr::Kind::kAttr:
      return Linear{true, e.attr(), 1.0, 0.0, true};
    case Expr::Kind::kNeg: {
      auto c = Analyze(*e.lhs());
      if (!c) return std::nullopt;
      c->scale = -c->scale;
      c->offset = -c->offset;
      c->pure_attr = false;
      return c;
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub: {
      auto a = Analyze(*e.lhs());
      auto b = Analyze(*e.rhs());
      if (!a || !b) return std::nullopt;
      double sign = e.kind() == Expr::Kind::kAdd ? 1.0 : -1.0;
      if (a->has_attr && b->has_attr) {
        if (!(a->ref == b->ref)) return std::nullopt;  // Two attributes.
        a->scale += sign * b->scale;
      } else if (b->has_attr) {
        a->has_attr = true;
        a->ref = b->ref;
        a->scale = sign * b->scale;
      }
      a->offset += sign * b->offset;
      a->pure_attr = false;
      return a;
    }
    case Expr::Kind::kMul: {
      auto a = Analyze(*e.lhs());
      auto b = Analyze(*e.rhs());
      if (!a || !b) return std::nullopt;
      if (a->has_attr && b->has_attr) return std::nullopt;  // Quadratic.
      if (b->has_attr) std::swap(a, b);
      // a may have the attribute; b is a constant.
      a->scale *= b->offset;
      a->offset *= b->offset;
      a->pure_attr = false;
      return a;
    }
    case Expr::Kind::kDiv: {
      auto a = Analyze(*e.lhs());
      auto b = Analyze(*e.rhs());
      if (!a || !b) return std::nullopt;
      if (b->has_attr) return std::nullopt;  // x in the denominator.
      if (b->offset == 0.0) return std::nullopt;
      a->scale /= b->offset;
      a->offset /= b->offset;
      a->pure_attr = false;
      return a;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<LinearForm> AnalyzeLinear(
    const Expr& expr, const rel::RelationSchema* schemas[2]) {
  // A bare attribute of any type is trivially invertible.
  if (expr.kind() == Expr::Kind::kAttr) {
    return LinearForm{expr.attr(), /*bare=*/true, 1.0, 0.0};
  }
  auto lin = Analyze(expr);
  if (!lin.has_value() || !lin->has_attr || lin->scale == 0.0) {
    return std::nullopt;
  }
  // Arithmetic requires a numeric attribute.
  const rel::RelationSchema* schema = schemas[lin->ref.side];
  if (schema == nullptr || lin->ref.attr_index >= schema->arity()) {
    return std::nullopt;
  }
  rel::ValueType type = schema->attribute(lin->ref.attr_index).type;
  if (type != rel::ValueType::kInt && type != rel::ValueType::kDouble) {
    return std::nullopt;
  }
  return LinearForm{lin->ref, /*bare=*/false, lin->scale, lin->offset};
}

std::optional<rel::Value> InvertLinear(const LinearForm& form,
                                       rel::ValueType attr_type,
                                       const rel::Value& target) {
  if (target.is_null()) return std::nullopt;  // Nulls never join (SQL).
  if (form.bare) {
    // x = target; only representability matters.
    switch (attr_type) {
      case rel::ValueType::kString:
        // Any value can be expected: value-level matching is by canonical
        // string, so carry the target through unchanged.
        return target;
      case rel::ValueType::kInt: {
        auto n = target.AsNumeric();
        if (!n.has_value()) return std::nullopt;
        double rounded = std::nearbyint(*n);
        if (rounded != *n || std::abs(*n) > 9.2e18) return std::nullopt;
        return rel::Value::Int(static_cast<int64_t>(rounded));
      }
      case rel::ValueType::kDouble: {
        auto n = target.AsNumeric();
        if (!n.has_value()) return std::nullopt;
        return rel::Value::Double(*n);
      }
      case rel::ValueType::kNull:
        return std::nullopt;
    }
    return std::nullopt;
  }
  auto n = target.AsNumeric();
  if (!n.has_value()) return std::nullopt;  // "5x + 1 = 'abc'": no solution.
  double x = (*n - form.offset) / form.scale;
  if (attr_type == rel::ValueType::kInt) {
    double rounded = std::nearbyint(x);
    // Accept only exact integral solutions (§4.3.2: otherwise the rewritten
    // query can never match and is not reindexed).
    if (std::abs(x - rounded) > 1e-9 || std::abs(x) > 9.2e18) {
      return std::nullopt;
    }
    return rel::Value::Int(static_cast<int64_t>(rounded));
  }
  return rel::Value::Double(x);
}

}  // namespace contjoin::query
