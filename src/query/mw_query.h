// Continuous multi-way equi-join queries — the paper's stated future work
// (realized by the authors in "Continuous Multi-Way Joins over Distributed
// Hash Tables", EDBT 2008). This module generalizes the two-way
// representation to m relations joined by a tree of bare-attribute
// equalities:
//
//   SELECT ... FROM R1, ..., Rm
//   WHERE R1.A = R2.B AND R2.C = R3.D AND ... [AND single-relation preds]

#ifndef CONTJOIN_QUERY_MW_QUERY_H_
#define CONTJOIN_QUERY_MW_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "query/query.h"
#include "relational/schema.h"

namespace contjoin::query {

/// One relation of a multi-way query with its local selection predicates.
struct MwRelation {
  std::string relation;
  std::string alias;
  const rel::RelationSchema* schema = nullptr;
  std::vector<Predicate> predicates;

  bool SatisfiesPredicates(const rel::Tuple& tuple) const {
    for (const Predicate& pred : predicates) {
      auto match = pred.Matches(tuple);
      if (!match.ok() || !match.value()) return false;
    }
    return true;
  }
};

/// One edge of the join tree: sides_[a].attr_a = sides_[b].attr_b, both
/// bare attributes.
struct MwCondition {
  int rel_a = 0;
  size_t attr_a = 0;
  int rel_b = 0;
  size_t attr_b = 0;
  std::string display;  // "R.A = S.B".

  /// The attribute this condition uses on relation `rel`; rel must be one
  /// of the endpoints.
  size_t AttrOn(int rel) const { return rel == rel_a ? attr_a : attr_b; }
  int Other(int rel) const { return rel == rel_a ? rel_b : rel_a; }
  bool Touches(int rel) const { return rel == rel_a || rel == rel_b; }
};

/// A parsed continuous m-way equi-join query (2 <= m <= Expr::kMaxSides).
/// The join graph is a spanning tree: m-1 conditions, connected, acyclic.
class MwQuery {
 public:
  std::vector<MwRelation>& relations() { return relations_; }
  const std::vector<MwRelation>& relations() const { return relations_; }
  size_t num_relations() const { return relations_.size(); }

  std::vector<MwCondition>& conditions() { return conditions_; }
  const std::vector<MwCondition>& conditions() const { return conditions_; }

  std::vector<SelectItem>& select() { return select_; }
  const std::vector<SelectItem>& select() const { return select_; }

  /// Relation index by real name, or -1.
  int SideOfRelation(const std::string& relation) const;

  /// Lowest-index condition with exactly one endpoint inside `bound_mask`
  /// (the next tree edge to chase); -1 if none (all bound).
  int NextCondition(uint32_t bound_mask) const;

  // --- Submission metadata (mirrors ContinuousQuery) -------------------------

  const std::string& key() const { return key_; }
  void set_key(std::string key) { key_ = std::move(key); }
  const std::string& subscriber_key() const { return subscriber_key_; }
  void set_subscriber_key(std::string k) { subscriber_key_ = std::move(k); }
  uint64_t subscriber_ip() const { return subscriber_ip_; }
  void set_subscriber_ip(uint64_t ip) { subscriber_ip_ = ip; }
  rel::Timestamp insertion_time() const { return insertion_time_; }
  void set_insertion_time(rel::Timestamp t) { insertion_time_ = t; }

  /// SQL text this query was parsed from (wire codec re-parses on receipt).
  const std::string& raw_sql() const { return raw_sql_; }
  void set_raw_sql(std::string sql) { raw_sql_ = std::move(sql); }

  std::string ToString() const;

 private:
  std::vector<MwRelation> relations_;
  std::vector<MwCondition> conditions_;
  std::vector<SelectItem> select_;

  std::string key_;
  std::string subscriber_key_;
  uint64_t subscriber_ip_ = 0;
  rel::Timestamp insertion_time_ = 0;
  std::string raw_sql_;
};

using MwQueryPtr = std::shared_ptr<const MwQuery>;

/// Parses an m-way continuous equi-join. Enforces: 2..kMaxSides distinct
/// registered relations; exactly m-1 cross-relation conditions, all
/// bare-attribute equalities forming a spanning tree; every other conjunct
/// references a single relation; alias-qualified attributes.
StatusOr<MwQuery> ParseMwQuery(std::string_view sql,
                               const rel::Catalog& catalog);

}  // namespace contjoin::query

#endif  // CONTJOIN_QUERY_MW_QUERY_H_
