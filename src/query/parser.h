// Parser for the supported SQL subset: continuous two-way equi-join queries
// with optional single-relation selection predicates.

#ifndef CONTJOIN_QUERY_PARSER_H_
#define CONTJOIN_QUERY_PARSER_H_

#include <string_view>

#include "common/statusor.h"
#include "query/query.h"
#include "relational/schema.h"

namespace contjoin::query {

/// Parses, resolves against `catalog`, validates and classifies a query.
///
/// Requirements enforced:
///  * exactly two relations in FROM, both registered, distinct (self-joins
///    are not covered by the paper's algorithms and are rejected);
///  * exactly one conjunct relates the two relations and it is an equality
///    `alpha = beta` with alpha over one relation and beta over the other;
///  * every other conjunct references exactly one relation;
///  * all attribute references are alias-qualified and resolvable;
///  * arithmetic is applied only to numeric attributes.
StatusOr<ContinuousQuery> ParseQuery(std::string_view sql,
                                     const rel::Catalog& catalog);

}  // namespace contjoin::query

#endif  // CONTJOIN_QUERY_PARSER_H_
