#include "query/mw_query.h"

#include <map>
#include <set>
#include <sstream>

#include "query/lexer.h"

namespace contjoin::query {

int MwQuery::SideOfRelation(const std::string& relation) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].relation == relation) return static_cast<int>(i);
  }
  return -1;
}

int MwQuery::NextCondition(uint32_t bound_mask) const {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    const MwCondition& c = conditions_[i];
    bool a_bound = (bound_mask >> c.rel_a) & 1u;
    bool b_bound = (bound_mask >> c.rel_b) & 1u;
    if (a_bound != b_bound) return static_cast<int>(i);
  }
  return -1;
}

std::string MwQuery::ToString() const {
  std::ostringstream out;
  out << "SELECT ";
  for (size_t i = 0; i < select_.size(); ++i) {
    if (i > 0) out << ", ";
    out << select_[i].label;
  }
  out << " FROM ";
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out << ", ";
    out << relations_[i].relation;
    if (relations_[i].alias != relations_[i].relation) {
      out << " AS " << relations_[i].alias;
    }
  }
  out << " WHERE ";
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) out << " AND ";
    out << conditions_[i].display;
  }
  for (const MwRelation& rel : relations_) {
    for (const Predicate& pred : rel.predicates) {
      out << " AND " << pred.ToString();
    }
  }
  return out.str();
}

namespace {

/// Recursive-descent parser for the m-way grammar; shares the token layer
/// and expression machinery with the two-way parser but resolves aliases
/// over m relations.
class MwParser {
 public:
  MwParser(std::vector<Token> tokens, const rel::Catalog& catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  StatusOr<MwQuery> Parse();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(std::string_view word) {
    if (!IsKeyword(Peek(), word)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " (near position " +
                              std::to_string(Peek().position) + ")");
  }

  StatusOr<AttrRef> ParseQualifiedAttr();
  StatusOr<std::unique_ptr<Expr>> ParseExpr();
  StatusOr<std::unique_ptr<Expr>> ParseTerm();
  StatusOr<std::unique_ptr<Expr>> ParseFactor();
  StatusOr<std::unique_ptr<Expr>> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const rel::Catalog& catalog_;
  MwQuery out_;
  std::map<std::string, int> alias_to_side_;
};

StatusOr<AttrRef> MwParser::ParseQualifiedAttr() {
  if (!Check(TokenType::kIdentifier)) {
    return Error("expected qualified attribute");
  }
  std::string qualifier = Advance().text;
  if (!Match(TokenType::kDot)) {
    return Error("attribute references must be alias-qualified ('" +
                 qualifier + "' lacks '.attr')");
  }
  if (!Check(TokenType::kIdentifier)) return Error("expected attribute name");
  std::string attr = Advance().text;
  auto it = alias_to_side_.find(qualifier);
  if (it == alias_to_side_.end()) {
    return Status::NotFound("unknown relation alias '" + qualifier + "'");
  }
  int side = it->second;
  const MwRelation& rel = out_.relations()[static_cast<size_t>(side)];
  auto index = rel.schema->AttributeIndex(attr);
  if (!index.has_value()) {
    return Status::NotFound("relation '" + rel.relation +
                            "' has no attribute '" + attr + "'");
  }
  AttrRef ref;
  ref.side = side;
  ref.attr_index = *index;
  ref.display = rel.relation + "." + attr;
  return ref;
}

StatusOr<std::unique_ptr<Expr>> MwParser::ParseExpr() {
  CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseTerm());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    Expr::Kind kind = Advance().type == TokenType::kPlus ? Expr::Kind::kAdd
                                                         : Expr::Kind::kSub;
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseTerm());
    lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> MwParser::ParseTerm() {
  CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseFactor());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    Expr::Kind kind = Advance().type == TokenType::kStar ? Expr::Kind::kMul
                                                         : Expr::Kind::kDiv;
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseFactor());
    lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> MwParser::ParseFactor() {
  if (Match(TokenType::kMinus)) {
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseFactor());
    return Expr::Unary(Expr::Kind::kNeg, std::move(child));
  }
  return ParsePrimary();
}

StatusOr<std::unique_ptr<Expr>> MwParser::ParsePrimary() {
  if (Match(TokenType::kLParen)) {
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
    if (!Match(TokenType::kRParen)) return Error("expected ')'");
    return inner;
  }
  if (Check(TokenType::kInteger)) {
    return Expr::Const(rel::Value::Int(Advance().int_value));
  }
  if (Check(TokenType::kDouble)) {
    return Expr::Const(rel::Value::Double(Advance().double_value));
  }
  if (Check(TokenType::kString)) {
    return Expr::Const(rel::Value::Str(Advance().text));
  }
  if (Check(TokenType::kIdentifier)) {
    CJ_ASSIGN_OR_RETURN(AttrRef ref, ParseQualifiedAttr());
    return Expr::Attr(std::move(ref));
  }
  return Error("expected expression");
}

StatusOr<MwQuery> MwParser::Parse() {
  if (!MatchKeyword("SELECT")) return Error("expected SELECT");

  // Locate FROM, parse the relation list, then rewind for the select list.
  size_t select_start = pos_;
  while (!Check(TokenType::kEnd) && !IsKeyword(Peek(), "FROM")) ++pos_;
  if (!MatchKeyword("FROM")) return Error("expected FROM");

  std::set<std::string> seen_relations;
  do {
    if (!Check(TokenType::kIdentifier)) return Error("expected relation");
    std::string relation = Advance().text;
    const rel::RelationSchema* schema = catalog_.Find(relation);
    if (schema == nullptr) {
      return Status::NotFound("unknown relation '" + relation + "'");
    }
    std::string alias = relation;
    if (MatchKeyword("AS")) {
      if (!Check(TokenType::kIdentifier)) return Error("expected alias");
      alias = Advance().text;
    } else if (Check(TokenType::kIdentifier) &&
               !IsKeyword(Peek(), "WHERE")) {
      alias = Advance().text;
    }
    if (!seen_relations.insert(relation).second) {
      return Status::Unsupported("self-joins are not supported ('" +
                                 relation + "' appears twice)");
    }
    if (alias_to_side_.count(alias) > 0) {
      return Error("duplicate alias '" + alias + "'");
    }
    alias_to_side_[alias] = static_cast<int>(out_.relations().size());
    out_.relations().push_back(MwRelation{relation, alias, schema, {}});
  } while (Match(TokenType::kComma));
  size_t where_start = pos_;

  const size_t m = out_.relations().size();
  if (m < 2) return Error("multi-way queries need at least two relations");
  if (m > static_cast<size_t>(Expr::kMaxSides)) {
    return Status::Unsupported("at most " +
                               std::to_string(Expr::kMaxSides) +
                               " relations are supported");
  }

  // Select list.
  pos_ = select_start;
  do {
    CJ_ASSIGN_OR_RETURN(AttrRef ref, ParseQualifiedAttr());
    SelectItem item;
    item.label = ref.display;
    item.ref = std::move(ref);
    out_.select().push_back(std::move(item));
  } while (Match(TokenType::kComma));
  if (!IsKeyword(Peek(), "FROM")) return Error("expected FROM");

  // WHERE clause.
  pos_ = where_start;
  if (!MatchKeyword("WHERE")) return Error("expected WHERE clause");
  do {
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseExpr());
    CmpOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CmpOp::kEq;
        break;
      case TokenType::kNeq:
        op = CmpOp::kNeq;
        break;
      case TokenType::kLt:
        op = CmpOp::kLt;
        break;
      case TokenType::kLe:
        op = CmpOp::kLe;
        break;
      case TokenType::kGt:
        op = CmpOp::kGt;
        break;
      case TokenType::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseExpr());

    std::set<int> sides;
    for (const AttrRef& ref : lhs->Attrs()) sides.insert(ref.side);
    for (const AttrRef& ref : rhs->Attrs()) sides.insert(ref.side);

    if (sides.size() >= 2) {
      // A join condition: must be a bare-attribute equality.
      if (op != CmpOp::kEq) {
        return Status::Unsupported("join conditions must be equalities");
      }
      if (lhs->kind() != Expr::Kind::kAttr ||
          rhs->kind() != Expr::Kind::kAttr) {
        return Status::Unsupported(
            "multi-way join conditions must relate bare attributes "
            "(expression sides are supported only by two-way DAI-V)");
      }
      MwCondition cond;
      cond.rel_a = lhs->attr().side;
      cond.attr_a = lhs->attr().attr_index;
      cond.rel_b = rhs->attr().side;
      cond.attr_b = rhs->attr().attr_index;
      cond.display = lhs->attr().display + " = " + rhs->attr().display;
      out_.conditions().push_back(cond);
    } else if (sides.size() == 1) {
      int side = *sides.begin();
      Predicate pred;
      pred.lhs = std::move(lhs);
      pred.rhs = std::move(rhs);
      pred.op = op;
      pred.side = side;
      out_.relations()[static_cast<size_t>(side)].predicates.push_back(
          std::move(pred));
    } else {
      return Error("conjunct references no attributes");
    }
  } while (MatchKeyword("AND"));
  if (!Check(TokenType::kEnd)) return Error("unexpected trailing input");

  // The join graph must be a spanning tree over the m relations.
  if (out_.conditions().size() != m - 1) {
    return Status::Unsupported(
        "the join graph must be a spanning tree: expected " +
        std::to_string(m - 1) + " join conditions, found " +
        std::to_string(out_.conditions().size()));
  }
  // Connectivity check by union-find.
  std::vector<int> parent(m);
  for (size_t i = 0; i < m; ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const MwCondition& cond : out_.conditions()) {
    int a = find(cond.rel_a), b = find(cond.rel_b);
    if (a == b) {
      return Status::Unsupported(
          "the join graph contains a cycle (" + cond.display + ")");
    }
    parent[static_cast<size_t>(a)] = b;
  }
  return std::move(out_);
}

}  // namespace

StatusOr<MwQuery> ParseMwQuery(std::string_view sql,
                               const rel::Catalog& catalog) {
  CJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  MwParser parser(std::move(tokens), catalog);
  CJ_ASSIGN_OR_RETURN(MwQuery out, parser.Parse());
  out.set_raw_sql(std::string(sql));
  return out;
}

}  // namespace contjoin::query
