#include "query/parser.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "query/lexer.h"

namespace contjoin::query {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const rel::Catalog& catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  StatusOr<ContinuousQuery> Parse();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(std::string_view word) {
    if (!IsKeyword(Peek(), word)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " (near position " +
                              std::to_string(Peek().position) + ")");
  }

  struct RelationRef {
    std::string relation;
    std::string alias;
    const rel::RelationSchema* schema;
  };

  StatusOr<RelationRef> ParseRelationRef();
  StatusOr<AttrRef> ParseQualifiedAttr();
  StatusOr<std::unique_ptr<Expr>> ParseExpr();
  StatusOr<std::unique_ptr<Expr>> ParseTerm();
  StatusOr<std::unique_ptr<Expr>> ParseFactor();
  StatusOr<std::unique_ptr<Expr>> ParsePrimary();

  /// Validates that arithmetic applies only to numeric attributes.
  Status CheckArithmeticTypes(const Expr& e, bool inside_arith) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const rel::Catalog& catalog_;
  RelationRef rels_[2];
  std::map<std::string, int> alias_to_side_;
};

StatusOr<Parser::RelationRef> Parser::ParseRelationRef() {
  if (!Check(TokenType::kIdentifier)) return Error("expected relation name");
  std::string relation = Advance().text;
  const rel::RelationSchema* schema = catalog_.Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  std::string alias = relation;
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) return Error("expected alias");
    alias = Advance().text;
  } else if (Check(TokenType::kIdentifier) && !IsKeyword(Peek(), "WHERE")) {
    // "FROM Document D" implicit-alias form.
    alias = Advance().text;
  }
  return RelationRef{std::move(relation), std::move(alias), schema};
}

StatusOr<AttrRef> Parser::ParseQualifiedAttr() {
  if (!Check(TokenType::kIdentifier)) {
    return Error("expected qualified attribute");
  }
  std::string qualifier = Advance().text;
  if (!Match(TokenType::kDot)) {
    return Error("attribute references must be alias-qualified ('" +
                 qualifier + "' lacks '.attr')");
  }
  if (!Check(TokenType::kIdentifier)) return Error("expected attribute name");
  std::string attr = Advance().text;
  auto it = alias_to_side_.find(qualifier);
  if (it == alias_to_side_.end()) {
    return Status::NotFound("unknown relation alias '" + qualifier + "'");
  }
  int side = it->second;
  auto index = rels_[side].schema->AttributeIndex(attr);
  if (!index.has_value()) {
    return Status::NotFound("relation '" + rels_[side].relation +
                            "' has no attribute '" + attr + "'");
  }
  AttrRef ref;
  ref.side = side;
  ref.attr_index = *index;
  ref.display = rels_[side].relation + "." + attr;
  return ref;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseExpr() {
  CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseTerm());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    Expr::Kind kind = Advance().type == TokenType::kPlus ? Expr::Kind::kAdd
                                                         : Expr::Kind::kSub;
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseTerm());
    lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseTerm() {
  CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseFactor());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    Expr::Kind kind = Advance().type == TokenType::kStar ? Expr::Kind::kMul
                                                         : Expr::Kind::kDiv;
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseFactor());
    lhs = Expr::Binary(kind, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseFactor() {
  if (Match(TokenType::kMinus)) {
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseFactor());
    return Expr::Unary(Expr::Kind::kNeg, std::move(child));
  }
  return ParsePrimary();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  if (Match(TokenType::kLParen)) {
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
    if (!Match(TokenType::kRParen)) return Error("expected ')'");
    return inner;
  }
  if (Check(TokenType::kInteger)) {
    return Expr::Const(rel::Value::Int(Advance().int_value));
  }
  if (Check(TokenType::kDouble)) {
    return Expr::Const(rel::Value::Double(Advance().double_value));
  }
  if (Check(TokenType::kString)) {
    return Expr::Const(rel::Value::Str(Advance().text));
  }
  if (Check(TokenType::kIdentifier)) {
    CJ_ASSIGN_OR_RETURN(AttrRef ref, ParseQualifiedAttr());
    return Expr::Attr(std::move(ref));
  }
  return Error("expected expression");
}

Status Parser::CheckArithmeticTypes(const Expr& e, bool inside_arith) const {
  switch (e.kind()) {
    case Expr::Kind::kConst:
      if (inside_arith && !e.constant().AsNumeric().has_value()) {
        return Status::InvalidArgument("arithmetic on string constant " +
                                       e.constant().ToString());
      }
      return Status::OK();
    case Expr::Kind::kAttr: {
      if (!inside_arith) return Status::OK();
      const auto& schema = *rels_[e.attr().side].schema;
      rel::ValueType type = schema.attribute(e.attr().attr_index).type;
      if (type != rel::ValueType::kInt && type != rel::ValueType::kDouble) {
        return Status::InvalidArgument("arithmetic on non-numeric attribute " +
                                       e.attr().display);
      }
      return Status::OK();
    }
    default:
      if (e.lhs() != nullptr) {
        CJ_RETURN_IF_ERROR(CheckArithmeticTypes(*e.lhs(), true));
      }
      if (e.rhs() != nullptr) {
        CJ_RETURN_IF_ERROR(CheckArithmeticTypes(*e.rhs(), true));
      }
      return Status::OK();
  }
}

StatusOr<ContinuousQuery> Parser::Parse() {
  if (!MatchKeyword("SELECT")) return Error("expected SELECT");

  // The select list references aliases declared in FROM, so find and parse
  // the FROM clause first, then rewind.
  size_t select_start = pos_;
  while (!Check(TokenType::kEnd) && !IsKeyword(Peek(), "FROM")) ++pos_;
  if (!MatchKeyword("FROM")) return Error("expected FROM");

  CJ_ASSIGN_OR_RETURN(rels_[0], ParseRelationRef());
  if (!Match(TokenType::kComma)) {
    return Error("expected exactly two relations in FROM");
  }
  CJ_ASSIGN_OR_RETURN(rels_[1], ParseRelationRef());
  size_t where_start = pos_;

  if (rels_[0].relation == rels_[1].relation) {
    return Status::Unsupported(
        "self-joins are not supported (the paper's algorithms assume two "
        "distinct relations)");
  }
  if (rels_[0].alias == rels_[1].alias) {
    return Error("both relations use alias '" + rels_[0].alias + "'");
  }
  alias_to_side_[rels_[0].alias] = 0;
  alias_to_side_[rels_[1].alias] = 1;

  // Parse the select list now that aliases resolve.
  pos_ = select_start;
  ContinuousQuery out;
  do {
    size_t item_start = Peek().position;
    CJ_ASSIGN_OR_RETURN(AttrRef ref, ParseQualifiedAttr());
    (void)item_start;
    SelectItem item;
    item.label = ref.display;
    item.ref = std::move(ref);
    out.select().push_back(std::move(item));
  } while (Match(TokenType::kComma));
  if (!IsKeyword(Peek(), "FROM")) return Error("expected FROM");
  if (out.select().empty()) return Error("empty select list");

  // Jump past FROM (already parsed) to WHERE.
  pos_ = where_start;
  if (!MatchKeyword("WHERE")) return Error("expected WHERE clause");

  // Conjuncts.
  std::unique_ptr<Expr> join_lhs, join_rhs;
  std::vector<Predicate> predicates[2];
  int join_count = 0;
  do {
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseExpr());
    CmpOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CmpOp::kEq;
        break;
      case TokenType::kNeq:
        op = CmpOp::kNeq;
        break;
      case TokenType::kLt:
        op = CmpOp::kLt;
        break;
      case TokenType::kLe:
        op = CmpOp::kLe;
        break;
      case TokenType::kGt:
        op = CmpOp::kGt;
        break;
      case TokenType::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    CJ_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseExpr());

    CJ_RETURN_IF_ERROR(CheckArithmeticTypes(*lhs, false));
    CJ_RETURN_IF_ERROR(CheckArithmeticTypes(*rhs, false));

    std::set<int> lhs_sides, rhs_sides;
    for (const AttrRef& ref : lhs->Attrs()) lhs_sides.insert(ref.side);
    for (const AttrRef& ref : rhs->Attrs()) rhs_sides.insert(ref.side);
    std::set<int> all = lhs_sides;
    all.insert(rhs_sides.begin(), rhs_sides.end());

    if (all.size() == 2) {
      // The join condition.
      if (op != CmpOp::kEq) {
        return Status::Unsupported(
            "only equality join conditions are supported");
      }
      if (lhs_sides.size() != 1 || rhs_sides.size() != 1) {
        return Status::Unsupported(
            "each side of the join condition must reference a single "
            "relation");
      }
      if (++join_count > 1) {
        return Status::Unsupported(
            "multiple join conditions: only two-way single equi-joins are "
            "supported");
      }
      if (*lhs_sides.begin() == 0) {
        join_lhs = std::move(lhs);
        join_rhs = std::move(rhs);
      } else {
        join_lhs = std::move(rhs);
        join_rhs = std::move(lhs);
      }
    } else if (all.size() == 1) {
      int side = *all.begin();
      Predicate pred;
      pred.lhs = std::move(lhs);
      pred.rhs = std::move(rhs);
      pred.op = op;
      pred.side = side;
      predicates[side].push_back(std::move(pred));
    } else {
      return Error("conjunct references no attributes");
    }
  } while (MatchKeyword("AND"));

  if (!Check(TokenType::kEnd)) return Error("unexpected trailing input");
  if (join_count == 0) {
    return Status::InvalidArgument(
        "query has no join condition relating the two relations");
  }

  // Assemble sides.
  const rel::RelationSchema* schemas[2] = {rels_[0].schema, rels_[1].schema};
  std::unique_ptr<Expr> join_exprs[2] = {std::move(join_lhs),
                                         std::move(join_rhs)};
  bool is_t1 = true;
  for (int s = 0; s < 2; ++s) {
    QuerySide& side = out.side(s);
    side.relation = rels_[s].relation;
    side.alias = rels_[s].alias;
    side.schema = rels_[s].schema;
    side.join_expr = std::move(join_exprs[s]);
    side.predicates = std::move(predicates[s]);
    side.linear = AnalyzeLinear(*side.join_expr, schemas);
    if (side.linear.has_value()) {
      side.index_attr = side.linear->ref.attr_index;
    } else {
      is_t1 = false;
      auto attrs = side.join_expr->Attrs();
      if (attrs.empty()) {
        return Status::InvalidArgument(
            "join-condition side for relation '" + side.relation +
            "' references no attribute");
      }
      side.index_attr = attrs.begin()->attr_index;
    }
  }
  out.set_type(is_t1 ? QueryType::kT1 : QueryType::kT2);
  out.set_signature(out.side(0).join_expr->ToString() + " = " +
                    out.side(1).join_expr->ToString());
  return out;
}

}  // namespace

StatusOr<ContinuousQuery> ParseQuery(std::string_view sql,
                                     const rel::Catalog& catalog) {
  CJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), catalog);
  CJ_ASSIGN_OR_RETURN(ContinuousQuery out, parser.Parse());
  out.set_raw_sql(std::string(sql));
  return out;
}

}  // namespace contjoin::query
