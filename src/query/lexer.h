// Tokenizer for the supported SQL subset (paper §3.2).

#ifndef CONTJOIN_QUERY_LEXER_H_
#define CONTJOIN_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace contjoin::query {

enum class TokenType : int {
  kIdentifier,  // Relation / attribute / alias names; keywords resolved later.
  kInteger,
  kDouble,
  kString,    // '...' literal.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEq,        // =
  kNeq,       // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;     // Raw text (identifier name, literal content).
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // Byte offset, for error messages.
};

/// Splits `input` into tokens; the final token is always kEnd.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

/// True if `token` is an identifier equal (case-insensitively) to `word`.
bool IsKeyword(const Token& token, std::string_view word);

}  // namespace contjoin::query

#endif  // CONTJOIN_QUERY_LEXER_H_
