// Expression AST for join conditions and selection predicates, with
// evaluation, attribute analysis, linear-form extraction and inversion
// (the machinery behind T1 classification and query rewriting, §3.2/§4.3).

#ifndef CONTJOIN_QUERY_EXPR_H_
#define CONTJOIN_QUERY_EXPR_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace contjoin::query {

/// Reference to side 0 or side 1 of a two-relation query plus an attribute
/// position within that relation's schema.
struct AttrRef {
  int side = 0;          // 0 = first FROM relation, 1 = second.
  size_t attr_index = 0;
  std::string display;   // "D.Title", for ToString().

  bool operator==(const AttrRef&) const = default;
  bool operator<(const AttrRef& o) const {
    return side != o.side ? side < o.side : attr_index < o.attr_index;
  }
};

/// Arithmetic/string expression over the attributes of (at most) two
/// relations and constants.
class Expr {
 public:
  enum class Kind : unsigned char { kConst, kAttr, kNeg, kAdd, kSub, kMul,
                                    kDiv };

  static std::unique_ptr<Expr> Const(rel::Value v);
  static std::unique_ptr<Expr> Attr(AttrRef ref);
  static std::unique_ptr<Expr> Unary(Kind kind, std::unique_ptr<Expr> child);
  static std::unique_ptr<Expr> Binary(Kind kind, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);

  Kind kind() const { return kind_; }
  const rel::Value& constant() const { return constant_; }
  const AttrRef& attr() const { return attr_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }

  /// Maximum number of relation sides an expression can reference (two-way
  /// queries use 2; the multi-way extension allows up to 8 relations).
  static constexpr int kMaxSides = 8;

  /// Evaluates with `tuples[side]` providing each side's values (n entries;
  /// a side the expression does not reference may be null). Errors on type
  /// mismatches (e.g., arithmetic on strings) and division by zero.
  StatusOr<rel::Value> Eval(const rel::Tuple* const* tuples, size_t n) const;

  /// Convenience: evaluate an expression referencing only `side`.
  StatusOr<rel::Value> EvalSingle(int side, const rel::Tuple& tuple) const;

  /// All attributes referenced.
  void CollectAttrs(std::set<AttrRef>* out) const;
  std::set<AttrRef> Attrs() const;

  /// Canonical serialization (used for query-group signatures).
  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  rel::Value constant_;
  AttrRef attr_;
  std::unique_ptr<Expr> lhs_;
  std::unique_ptr<Expr> rhs_;
};

/// Result of analysing one side of a join condition: the side is equivalent
/// to `scale * x + offset` over the single attribute x = `ref`, or (for
/// non-numeric attributes) the bare attribute itself. Invertible whenever
/// scale != 0.
struct LinearForm {
  AttrRef ref;
  bool bare = true;     // Expression is exactly the attribute.
  double scale = 1.0;
  double offset = 0.0;
};

/// Extracts the linear single-attribute form of `expr`, or nullopt when the
/// expression references zero or multiple attributes, is non-linear, or has
/// zero scale (no unique solution). Bare string attributes are allowed;
/// arithmetic forms require a numeric attribute.
std::optional<LinearForm> AnalyzeLinear(const Expr& expr,
                                        const rel::RelationSchema* schemas[2]);

/// Solves `form(x) = target` for x. Returns nullopt when no value of the
/// attribute's type satisfies the equation (e.g., fractional solution for an
/// integer attribute, or a numeric target for a string attribute); such a
/// rewritten query could never match and is not reindexed (§4.3.2).
std::optional<rel::Value> InvertLinear(const LinearForm& form,
                                       rel::ValueType attr_type,
                                       const rel::Value& target);

}  // namespace contjoin::query

#endif  // CONTJOIN_QUERY_EXPR_H_
