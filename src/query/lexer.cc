#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace contjoin::query {

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  auto error = [&](const std::string& what) {
    return Status::ParseError(what + " at position " + std::to_string(i));
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      out.push_back(Token{TokenType::kIdentifier,
                          std::string(input.substr(start, i - start)), 0, 0,
                          start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_double = false;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      if (i < input.size() && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < input.size() && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < input.size() && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= input.size() ||
            !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return error("malformed exponent");
        }
        while (i < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string text(input.substr(start, i - start));
      Token tok;
      tok.text = text;
      tok.position = start;
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_value = std::stod(text);
      } else {
        tok.type = TokenType::kInteger;
        try {
          tok.int_value = std::stoll(text);
        } catch (const std::out_of_range&) {
          return error("integer literal out of range");
        }
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          // '' escapes a quote inside the literal.
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) return error("unterminated string literal");
      out.push_back(Token{TokenType::kString, std::move(text), 0, 0, start});
      continue;
    }
    auto push1 = [&](TokenType t) {
      out.push_back(Token{t, std::string(1, c), 0, 0, start});
      ++i;
    };
    switch (c) {
      case ',':
        push1(TokenType::kComma);
        continue;
      case '.':
        push1(TokenType::kDot);
        continue;
      case '(':
        push1(TokenType::kLParen);
        continue;
      case ')':
        push1(TokenType::kRParen);
        continue;
      case '+':
        push1(TokenType::kPlus);
        continue;
      case '-':
        push1(TokenType::kMinus);
        continue;
      case '*':
        push1(TokenType::kStar);
        continue;
      case '/':
        push1(TokenType::kSlash);
        continue;
      case '=':
        push1(TokenType::kEq);
        continue;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          out.push_back(Token{TokenType::kNeq, "!=", 0, 0, start});
          i += 2;
          continue;
        }
        return error("unexpected '!'");
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          out.push_back(Token{TokenType::kLe, "<=", 0, 0, start});
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '>') {
          out.push_back(Token{TokenType::kNeq, "<>", 0, 0, start});
          i += 2;
        } else {
          push1(TokenType::kLt);
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          out.push_back(Token{TokenType::kGe, ">=", 0, 0, start});
          i += 2;
        } else {
          push1(TokenType::kGt);
        }
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  out.push_back(Token{TokenType::kEnd, "", 0, 0, input.size()});
  return out;
}

bool IsKeyword(const Token& token, std::string_view word) {
  return token.type == TokenType::kIdentifier &&
         EqualsIgnoreCase(token.text, word);
}

}  // namespace contjoin::query
