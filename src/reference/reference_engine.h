// A centralized continuous-join evaluator used as ground truth: it stores
// every tuple and query in one place and computes exactly the notifications
// the distributed algorithms must produce. Not part of the paper — it exists
// so the property tests can verify SAI / DAI-Q / DAI-T / DAI-V against an
// oracle on arbitrary workloads.

#ifndef CONTJOIN_REFERENCE_REFERENCE_ENGINE_H_
#define CONTJOIN_REFERENCE_REFERENCE_ENGINE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/notification.h"
#include "query/query.h"
#include "relational/tuple.h"

namespace contjoin::ref {

/// Oracle semantics (matching DESIGN.md):
///  * a pair (t1, t2), t1 of side 0's relation and t2 of side 1's, satisfies
///    query q iff both publication times are >= insT(q), both tuples pass
///    their side's selection predicates, and the canonical key strings of
///    the two join-condition sides are equal;
///  * with a window W > 0, additionally later.pub - earlier.pub <= W;
///  * a notification's content is the select-list row; equivalence is
///    compared on content sets per query.
class ReferenceEngine {
 public:
  explicit ReferenceEngine(rel::Timestamp window = 0) : window_(window) {}

  /// Registers a continuous query (key and insertion time must be set).
  void AddQuery(query::QueryPtr query);

  /// Removes a query; no further notifications are produced for it.
  void RemoveQuery(const std::string& query_key);

  /// Feeds a tuple; returns the notifications it produces (pairs with all
  /// previously inserted tuples of the opposite relation).
  std::vector<core::Notification> InsertTuple(rel::TuplePtr tuple);

  /// Every notification produced so far.
  const std::vector<core::Notification>& notifications() const {
    return notifications_;
  }

  /// Deduplicated content keys, the comparison domain of the equivalence
  /// tests.
  static std::set<std::string> ContentSet(
      const std::vector<core::Notification>& notifications);

  std::set<std::string> ContentSet() const {
    return ContentSet(notifications_);
  }

 private:
  rel::Timestamp window_;
  std::vector<query::QueryPtr> queries_;
  std::unordered_map<std::string, std::vector<rel::TuplePtr>> by_relation_;
  std::vector<core::Notification> notifications_;
};

}  // namespace contjoin::ref

#endif  // CONTJOIN_REFERENCE_REFERENCE_ENGINE_H_
