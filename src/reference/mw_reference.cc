#include "reference/mw_reference.h"

#include <algorithm>

#include "common/logging.h"

namespace contjoin::ref {

void MwReferenceEngine::AddQuery(query::MwQueryPtr query) {
  queries_.push_back(std::move(query));
}

std::vector<core::Notification> MwReferenceEngine::InsertTuple(
    rel::TuplePtr tuple) {
  std::vector<core::Notification> produced;
  for (const query::MwQueryPtr& q : queries_) {
    int side = q->SideOfRelation(tuple->relation());
    if (side < 0) continue;
    if (tuple->pub_time() < q->insertion_time()) continue;
    if (!q->relations()[static_cast<size_t>(side)].SatisfiesPredicates(
            *tuple)) {
      continue;
    }
    std::vector<rel::TuplePtr> bound(q->num_relations());
    bound[static_cast<size_t>(side)] = tuple;
    Search(*q, &bound, 1u << side, tuple, &produced);
  }
  by_relation_[tuple->relation()].push_back(std::move(tuple));
  notifications_.insert(notifications_.end(), produced.begin(),
                        produced.end());
  return produced;
}

void MwReferenceEngine::Search(const query::MwQuery& q,
                               std::vector<rel::TuplePtr>* bound,
                               uint32_t bound_mask,
                               const rel::TuplePtr& newest,
                               std::vector<core::Notification>* out) {
  int cond_index = q.NextCondition(bound_mask);
  if (cond_index < 0) {
    // Complete: all relations bound. Verify the window span and emit.
    rel::Timestamp min_pub = newest->pub_time(), max_pub = newest->pub_time();
    for (const rel::TuplePtr& t : *bound) {
      min_pub = std::min(min_pub, t->pub_time());
      max_pub = std::max(max_pub, t->pub_time());
    }
    if (window_ != 0 && max_pub - min_pub > window_) return;
    core::Notification n;
    n.query_key = q.key();
    n.row.reserve(q.select().size());
    for (const query::SelectItem& item : q.select()) {
      n.row.push_back(
          (*bound)[static_cast<size_t>(item.ref.side)]->at(
              item.ref.attr_index));
    }
    n.earlier_pub = min_pub;
    n.later_pub = max_pub;
    n.created_at = newest->pub_time();
    out->push_back(std::move(n));
    return;
  }
  const query::MwCondition& cond =
      q.conditions()[static_cast<size_t>(cond_index)];
  int bound_end = ((bound_mask >> cond.rel_a) & 1u) ? cond.rel_a : cond.rel_b;
  int next_rel = cond.Other(bound_end);
  const rel::TuplePtr& anchor = (*bound)[static_cast<size_t>(bound_end)];
  const rel::Value& required = anchor->at(cond.AttrOn(bound_end));
  if (required.is_null()) return;  // Nulls never join.
  std::string required_key = required.ToKeyString();

  const query::MwRelation& rel =
      q.relations()[static_cast<size_t>(next_rel)];
  auto it = by_relation_.find(rel.relation);
  if (it == by_relation_.end()) return;
  for (const rel::TuplePtr& candidate : it->second) {
    // Only strictly-older tuples: the combination is produced when its
    // newest member arrives.
    if (!candidate->Before(newest->pub_time(), newest->seq())) continue;
    if (candidate->pub_time() < q.insertion_time()) continue;
    const rel::Value& v = candidate->at(cond.AttrOn(next_rel));
    if (v.is_null() || v.ToKeyString() != required_key) continue;
    if (!rel.SatisfiesPredicates(*candidate)) continue;
    (*bound)[static_cast<size_t>(next_rel)] = candidate;
    Search(q, bound, bound_mask | (1u << next_rel), newest, out);
    (*bound)[static_cast<size_t>(next_rel)] = nullptr;
  }
}

std::set<std::string> MwReferenceEngine::ContentSet() const {
  std::set<std::string> out;
  for (const core::Notification& n : notifications_) {
    out.insert(n.ContentKey());
  }
  return out;
}

}  // namespace contjoin::ref
