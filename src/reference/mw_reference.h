// Centralized oracle for continuous multi-way equi-joins: ground truth for
// the recursive-SAI extension's property tests.

#ifndef CONTJOIN_REFERENCE_MW_REFERENCE_H_
#define CONTJOIN_REFERENCE_MW_REFERENCE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/notification.h"
#include "query/mw_query.h"
#include "relational/tuple.h"

namespace contjoin::ref {

/// Semantics: a combination (t_1, ..., t_m), one tuple per relation of the
/// query, is an answer iff every tuple's publication time is >= insT(q),
/// every tuple passes its relation's predicates, every join condition's two
/// attribute values have equal canonical key strings (nulls never join),
/// and — with a window W — max(pub) - min(pub) <= W. A combination is
/// produced exactly once, when its newest tuple arrives. Equivalence is
/// compared on content sets, as for the two-way oracle.
class MwReferenceEngine {
 public:
  explicit MwReferenceEngine(rel::Timestamp window = 0) : window_(window) {}

  void AddQuery(query::MwQueryPtr query);

  /// Feeds a tuple; returns the notifications it completes.
  std::vector<core::Notification> InsertTuple(rel::TuplePtr tuple);

  const std::vector<core::Notification>& notifications() const {
    return notifications_;
  }
  std::set<std::string> ContentSet() const;

 private:
  void Search(const query::MwQuery& q,
              std::vector<rel::TuplePtr>* bound, uint32_t bound_mask,
              const rel::TuplePtr& newest,
              std::vector<core::Notification>* out);

  rel::Timestamp window_;
  std::vector<query::MwQueryPtr> queries_;
  std::unordered_map<std::string, std::vector<rel::TuplePtr>> by_relation_;
  std::vector<core::Notification> notifications_;
};

}  // namespace contjoin::ref

#endif  // CONTJOIN_REFERENCE_MW_REFERENCE_H_
