#include "reference/reference_engine.h"

#include <algorithm>

namespace contjoin::ref {

void ReferenceEngine::AddQuery(query::QueryPtr query) {
  queries_.push_back(std::move(query));
}

void ReferenceEngine::RemoveQuery(const std::string& query_key) {
  queries_.erase(std::remove_if(queries_.begin(), queries_.end(),
                                [&](const query::QueryPtr& q) {
                                  return q->key() == query_key;
                                }),
                 queries_.end());
}

std::vector<core::Notification> ReferenceEngine::InsertTuple(
    rel::TuplePtr tuple) {
  std::vector<core::Notification> produced;
  for (const query::QueryPtr& q : queries_) {
    int side = q->SideOfRelation(tuple->relation());
    if (side < 0) continue;
    if (tuple->pub_time() < q->insertion_time()) continue;
    if (!q->side(side).SatisfiesPredicates(*tuple)) continue;
    auto my_val = q->side(side).join_expr->EvalSingle(side, *tuple);
    if (!my_val.ok()) continue;
    if (my_val.value().is_null()) continue;  // Nulls never join (SQL).
    std::string my_key = my_val.value().ToKeyString();

    const int other = 1 - side;
    auto it = by_relation_.find(q->side(other).relation);
    if (it == by_relation_.end()) continue;
    for (const rel::TuplePtr& t2 : it->second) {
      // Stored tuples are strictly older (insertion order).
      if (t2->pub_time() < q->insertion_time()) continue;
      if (window_ != 0 && tuple->pub_time() - t2->pub_time() > window_) {
        continue;
      }
      if (!q->side(other).SatisfiesPredicates(*t2)) continue;
      auto other_val = q->side(other).join_expr->EvalSingle(other, *t2);
      if (!other_val.ok()) continue;
      if (other_val.value().ToKeyString() != my_key) continue;

      core::Notification n;
      n.query_key = q->key();
      n.row.reserve(q->select().size());
      for (const query::SelectItem& item : q->select()) {
        const rel::Tuple& source = item.ref.side == side ? *tuple : *t2;
        n.row.push_back(source.at(item.ref.attr_index));
      }
      n.earlier_pub = t2->pub_time();
      n.later_pub = tuple->pub_time();
      n.created_at = tuple->pub_time();
      produced.push_back(std::move(n));
    }
  }
  by_relation_[tuple->relation()].push_back(std::move(tuple));
  notifications_.insert(notifications_.end(), produced.begin(),
                        produced.end());
  return produced;
}

std::set<std::string> ReferenceEngine::ContentSet(
    const std::vector<core::Notification>& notifications) {
  std::set<std::string> out;
  for (const core::Notification& n : notifications) {
    out.insert(n.ContentKey());
  }
  return out;
}

}  // namespace contjoin::ref
