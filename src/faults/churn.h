// Scripted churn: crash/join events pinned to virtual times. The script is
// plain data; the engine applies due events as simulated time advances past
// them (at operation boundaries, i.e. quiescent points of the event queue)
// and then runs its repair machinery. Keeping the schedule declarative makes
// churn experiments reproducible and diffable.

#ifndef CONTJOIN_FAULTS_CHURN_H_
#define CONTJOIN_FAULTS_CHURN_H_

#include <cstddef>
#include <vector>

#include "sim/simulator.h"

namespace contjoin::faults {

struct ChurnEvent {
  enum class Kind { kCrash, kJoin };

  /// Virtual time at or after which the event takes effect.
  sim::SimTime at = 0;
  Kind kind = Kind::kCrash;
  /// For crashes: selects the victim among the currently alive nodes
  /// (ordinal % alive_count in creation order). Ignored for joins.
  size_t ordinal = 0;
};

struct ChurnScript {
  std::vector<ChurnEvent> events;

  bool empty() const { return events.empty(); }

  /// True iff events are in non-decreasing time order (the only form the
  /// engine accepts).
  bool IsSorted() const;

  /// Convenience builder: `crashes` crash events then `joins` join events,
  /// spaced `period` apart starting at `start`. Crash ordinals are derived
  /// from the event index, so the victims are spread over the ring.
  static ChurnScript Alternating(sim::SimTime start, sim::SimTime period,
                                 size_t crashes, size_t joins);
};

}  // namespace contjoin::faults

#endif  // CONTJOIN_FAULTS_CHURN_H_
