#include "faults/fault_plan.h"

namespace contjoin::faults {
namespace {

// splitmix64 finalizer: a cheap bijective mixer whose output passes
// standard equidistribution tests; the same construction seeds the
// project's xoshiro generator.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits, matching Rng::NextDouble.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

FaultPlan::FaultPlan(FaultOptions options) : options_(options) {}

FaultDecision FaultPlan::Decide(sim::MsgClass c, uint64_t stream,
                                uint64_t seq) {
  FaultDecision d;
  const FaultProfile& p = options_.profile(c);
  if (!p.active()) return d;
  const uint64_t key =
      Mix(options_.seed ^ Mix(stream) ^ Mix(Mix(seq)) ^
          (static_cast<uint64_t>(c) << 56));
  if (ToUnit(Mix(key + 1)) < p.drop_prob) {
    injected_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    return d;
  }
  if (ToUnit(Mix(key + 2)) < p.duplicate_prob) {
    injected_duplicates_.fetch_add(1, std::memory_order_relaxed);
    d.duplicates = 1;
  }
  if (p.max_extra_delay > 0 && ToUnit(Mix(key + 3)) < p.delay_prob) {
    injected_delays_.fetch_add(1, std::memory_order_relaxed);
    d.extra_delay =
        1 + static_cast<sim::SimTime>(Mix(key + 4) % p.max_extra_delay);
  }
  return d;
}

}  // namespace contjoin::faults
