#include "faults/fault_plan.h"

namespace contjoin::faults {

FaultPlan::FaultPlan(FaultOptions options)
    : options_(options), rng_(options.seed) {}

FaultDecision FaultPlan::Decide(sim::MsgClass c) {
  FaultDecision d;
  const FaultProfile& p = options_.profile(c);
  if (!p.active()) return d;
  // Always draw the same number of variates per consulted class, so one
  // knob change does not reshuffle the fate of every later message.
  bool drop = rng_.NextBernoulli(p.drop_prob);
  bool dup = rng_.NextBernoulli(p.duplicate_prob);
  bool slow = rng_.NextBernoulli(p.delay_prob);
  if (drop) {
    ++injected_drops_;
    d.drop = true;
    return d;
  }
  if (dup) {
    ++injected_duplicates_;
    d.duplicates = 1;
  }
  if (slow && p.max_extra_delay > 0) {
    ++injected_delays_;
    d.extra_delay = 1 + static_cast<sim::SimTime>(
                            rng_.NextBelow(p.max_extra_delay));
  }
  return d;
}

}  // namespace contjoin::faults
