#include "faults/churn.h"

namespace contjoin::faults {

bool ChurnScript::IsSorted() const {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].at < events[i - 1].at) return false;
  }
  return true;
}

ChurnScript ChurnScript::Alternating(sim::SimTime start, sim::SimTime period,
                                     size_t crashes, size_t joins) {
  ChurnScript script;
  sim::SimTime at = start;
  for (size_t i = 0; i < crashes + joins; ++i, at += period) {
    ChurnEvent ev;
    ev.at = at;
    ev.kind = i < crashes ? ChurnEvent::Kind::kCrash : ChurnEvent::Kind::kJoin;
    // A fixed multiplicative stride spreads victims around the ring without
    // consulting an Rng (the script stays pure data).
    ev.ordinal = 7 * i + 3;
    script.events.push_back(ev);
  }
  return script;
}

}  // namespace contjoin::faults
