// Deterministic fault injection for the simulated overlay. A FaultPlan is
// consulted by chord::Network::Transmit for every scheduled hop and decides
// whether the message is dropped, duplicated, or delivered with extra
// latency. Decisions are pure hashes of (plan seed, stream, sequence,
// class): the fate of transmission k of sender s is a function of the plan
// alone, independent of the order in which concurrently executing event
// shards consult it — the property the parallel simulator core needs for
// thread-count-invariant runs. Probabilities are configured per
// sim::MsgClass, so experiments can target e.g. only the protocol traffic
// (query-index / tuple-index / join / notification) while leaving ring
// maintenance untouched. Same seed + same plan + same workload =>
// bit-identical fault sequence.

#ifndef CONTJOIN_FAULTS_FAULT_PLAN_H_
#define CONTJOIN_FAULTS_FAULT_PLAN_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "sim/net_stats.h"
#include "sim/simulator.h"

namespace contjoin::faults {

/// Per-class fault probabilities. All zero (the default) means the class
/// is delivered exactly as without a plan.
struct FaultProfile {
  /// Probability the transmission is silently lost.
  double drop_prob = 0.0;
  /// Probability one extra copy of the transmission is delivered.
  double duplicate_prob = 0.0;
  /// Probability the hop takes extra time, and how much at most (the extra
  /// delay is uniform in [1, max_extra_delay]).
  double delay_prob = 0.0;
  sim::SimTime max_extra_delay = 0;

  bool active() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0;
  }
};

/// Full plan configuration: one profile per message class plus the seed
/// keying the plan's decision hash.
struct FaultOptions {
  uint64_t seed = 1;
  std::array<FaultProfile, static_cast<size_t>(sim::MsgClass::kClassCount)>
      per_class{};

  FaultProfile& profile(sim::MsgClass c) {
    return per_class[static_cast<size_t>(c)];
  }
  const FaultProfile& profile(sim::MsgClass c) const {
    return per_class[static_cast<size_t>(c)];
  }

  /// Applies `p` to every class in `classes`.
  template <typename Container>
  void SetProfiles(const Container& classes, const FaultProfile& p) {
    for (sim::MsgClass c : classes) profile(c) = p;
  }

  bool active() const {
    for (const FaultProfile& p : per_class) {
      if (p.active()) return true;
    }
    return false;
  }
};

/// What happens to one transmission.
struct FaultDecision {
  bool drop = false;
  /// Number of extra copies to deliver (0 or 1).
  int duplicates = 0;
  sim::SimTime extra_delay = 0;
};

/// Seeded decision source. Every (stream, seq) pair maps to one fixed
/// decision; the network uses the sender's serial as the stream and a
/// per-sender transmission counter as the sequence, both of which advance
/// identically at any worker count.
class FaultPlan {
 public:
  explicit FaultPlan(FaultOptions options);

  /// Decides the fate of one transmission of class `c` on the plan's own
  /// serial stream (stream 0). Only valid from single-threaded call sites
  /// (tests, drivers); Transmit uses the keyed form below.
  FaultDecision Decide(sim::MsgClass c) { return Decide(c, 0, serial_seq_++); }

  /// Decides the fate of transmission `seq` of `stream` for class `c`.
  /// Pure in (options, stream, seq, c) apart from the injection counters.
  FaultDecision Decide(sim::MsgClass c, uint64_t stream, uint64_t seq);

  const FaultOptions& options() const { return options_; }

  // Injection counters (for reports; the per-class drop *accounting* lives
  // in sim::NetStats, which also sees dead-target drops).
  uint64_t injected_drops() const {
    return injected_drops_.load(std::memory_order_relaxed);
  }
  uint64_t injected_duplicates() const {
    return injected_duplicates_.load(std::memory_order_relaxed);
  }
  uint64_t injected_delays() const {
    return injected_delays_.load(std::memory_order_relaxed);
  }

 private:
  FaultOptions options_;
  uint64_t serial_seq_ = 0;
  std::atomic<uint64_t> injected_drops_{0};
  std::atomic<uint64_t> injected_duplicates_{0};
  std::atomic<uint64_t> injected_delays_{0};
};

}  // namespace contjoin::faults

#endif  // CONTJOIN_FAULTS_FAULT_PLAN_H_
