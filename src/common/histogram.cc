#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace contjoin {

LoadDistribution::LoadDistribution(std::vector<double> values)
    : values_(std::move(values)) {}

void LoadDistribution::Add(double value) {
  values_.push_back(value);
  sorted_valid_ = false;
}

void LoadDistribution::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double LoadDistribution::total() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double LoadDistribution::mean() const {
  return values_.empty() ? 0.0 : total() / static_cast<double>(values_.size());
}

double LoadDistribution::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double LoadDistribution::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

void LoadDistribution::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double LoadDistribution::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  CJ_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  EnsureSorted();
  if (sorted_.size() == 1) return sorted_[0];
  double rank = (p / 100.0) * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double LoadDistribution::Gini() const {
  if (values_.size() < 2) return 0.0;
  double sum = total();
  if (sum <= 0.0) return 0.0;
  EnsureSorted();
  // Gini = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, 1-based ascending.
  double weighted = 0.0;
  for (size_t i = 0; i < sorted_.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted_[i];
  }
  double n = static_cast<double>(sorted_.size());
  return (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
}

double LoadDistribution::TopShare(double fraction) const {
  if (values_.empty()) return 0.0;
  CJ_CHECK(fraction >= 0.0 && fraction <= 1.0)
      << "fraction out of range: " << fraction;
  double sum = total();
  if (sum <= 0.0) return 0.0;
  EnsureSorted();
  size_t k = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(values_.size())));
  k = std::min(k, values_.size());
  double top = 0.0;
  for (size_t i = 0; i < k; ++i) top += sorted_[sorted_.size() - 1 - i];
  return top / sum;
}

double LoadDistribution::TopKMean(size_t k) const {
  if (values_.empty() || k == 0) return 0.0;
  EnsureSorted();
  k = std::min(k, values_.size());
  double top = 0.0;
  for (size_t i = 0; i < k; ++i) top += sorted_[sorted_.size() - 1 - i];
  return top / static_cast<double>(k);
}

std::vector<double> LoadDistribution::SortedDescending() const {
  EnsureSorted();
  return std::vector<double>(sorted_.rbegin(), sorted_.rend());
}

std::string LoadDistribution::Summary() const {
  std::ostringstream out;
  out << "n=" << count() << " total=" << total() << " mean=" << mean()
      << " p50=" << Percentile(50) << " p90=" << Percentile(90)
      << " p99=" << Percentile(99) << " max=" << max() << " gini=" << Gini();
  return out.str();
}

}  // namespace contjoin
