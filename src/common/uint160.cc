#include "common/uint160.h"

#include <cctype>

namespace contjoin {

Uint160 Uint160::FromUint64(uint64_t v) {
  Uint160 out;
  out.words_[4] = static_cast<uint32_t>(v);
  out.words_[3] = static_cast<uint32_t>(v >> 32);
  return out;
}

Uint160 Uint160::FromDigest(const Sha1Digest& digest) {
  Uint160 out;
  for (int i = 0; i < 5; ++i) {
    out.words_[i] = (static_cast<uint32_t>(digest[i * 4]) << 24) |
                    (static_cast<uint32_t>(digest[i * 4 + 1]) << 16) |
                    (static_cast<uint32_t>(digest[i * 4 + 2]) << 8) |
                    static_cast<uint32_t>(digest[i * 4 + 3]);
  }
  return out;
}

Uint160 Uint160::FromHex(std::string_view hex, bool* ok) {
  if (ok != nullptr) *ok = true;
  Uint160 out;
  if (hex.size() > 40) {
    if (ok != nullptr) *ok = false;
    return out;
  }
  // Process from the least-significant end.
  int nibble_index = 0;  // 0 = least significant nibble.
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, ++nibble_index) {
    char c = *it;
    uint32_t v;
    if (c >= '0' && c <= '9') {
      v = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      if (ok != nullptr) *ok = false;
      return Uint160();
    }
    int word = 4 - nibble_index / 8;
    int shift = (nibble_index % 8) * 4;
    out.words_[static_cast<size_t>(word)] |= v << shift;
  }
  return out;
}

Uint160 Uint160::PowerOfTwo(int exp) {
  Uint160 out;
  if (exp < 0 || exp >= kBits) return out;
  int word = 4 - exp / 32;
  out.words_[static_cast<size_t>(word)] = 1u << (exp % 32);
  return out;
}

Uint160 Uint160::Max() {
  Uint160 out;
  out.words_.fill(0xFFFFFFFFu);
  return out;
}

Uint160 Uint160::operator+(const Uint160& other) const {
  Uint160 out;
  uint64_t carry = 0;
  for (int i = 4; i >= 0; --i) {
    uint64_t sum = static_cast<uint64_t>(words_[static_cast<size_t>(i)]) +
                   other.words_[static_cast<size_t>(i)] + carry;
    out.words_[static_cast<size_t>(i)] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  return out;  // Carry out of the top word wraps (mod 2^160).
}

Uint160 Uint160::operator-(const Uint160& other) const {
  Uint160 out;
  int64_t borrow = 0;
  for (int i = 4; i >= 0; --i) {
    int64_t diff = static_cast<int64_t>(words_[static_cast<size_t>(i)]) -
                   other.words_[static_cast<size_t>(i)] - borrow;
    borrow = diff < 0 ? 1 : 0;
    if (diff < 0) diff += (int64_t{1} << 32);
    out.words_[static_cast<size_t>(i)] = static_cast<uint32_t>(diff);
  }
  return out;  // Borrow out of the top word wraps (mod 2^160).
}

bool Uint160::InOpenClosed(const Uint160& a, const Uint160& b) const {
  if (a == b) return true;  // Full circle.
  // Clockwise distances from a: x is in (a, b] iff 0 < dist(a,x) <=
  // dist(a,b).
  Uint160 dx = *this - a;
  Uint160 db = b - a;
  return dx > Uint160() && dx <= db;
}

bool Uint160::InOpenOpen(const Uint160& a, const Uint160& b) const {
  if (a == b) return *this != a;  // Full circle minus the endpoint.
  Uint160 dx = *this - a;
  Uint160 db = b - a;
  return dx > Uint160() && dx < db;
}

std::string Uint160::ToHex() const {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint32_t w : words_) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(w >> shift) & 0xF]);
    }
  }
  return out;
}

std::string Uint160::ToShortString() const { return ToHex().substr(0, 10); }

size_t Uint160::HashValue() const {
  // Mix the words with the splitmix64 finalizer.
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (uint32_t w : words_) {
    h ^= w;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
  }
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<size_t>(h);
}

Uint160 HashKey(std::string_view key) {
  return Uint160::FromDigest(Sha1::Hash(key));
}

}  // namespace contjoin
