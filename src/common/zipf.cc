#include "common/zipf.h"

#include <cmath>

namespace contjoin {

// Rejection-inversion sampling for the Zipf distribution
// (W. Hörmann, G. Derflinger, "Rejection-inversion to generate variates from
// monotone discrete distributions", ACM TOMACS 6(3), 1996). Samples k in
// [1, n] with P(k) proportional to 1/k^theta; we return k-1.

namespace {

double HIntegral(double x, double theta) {
  double log_x = std::log(x);
  if (std::abs(1.0 - theta) < 1e-12) return log_x;
  return std::expm1((1.0 - theta) * log_x) / (1.0 - theta);
}

double HIntegralInverse(double x, double theta) {
  if (std::abs(1.0 - theta) < 1e-12) return std::exp(x);
  double t = x * (1.0 - theta);
  if (t < -1.0) t = -1.0;  // Numerical guard.
  return std::exp(std::log1p(t) / (1.0 - theta));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  CJ_CHECK(n >= 1) << "Zipf domain must be non-empty";
  CJ_CHECK(theta >= 0.0) << "Zipf theta must be non-negative";
  h_x1_ = HIntegral(1.5, theta_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, theta_);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5, theta_) - std::pow(2.0, -theta_),
                              theta_);
}

double ZipfSampler::H(double x) const { return HIntegral(x, theta_); }
double ZipfSampler::HInverse(double x) const {
  return HIntegralInverse(x, theta_);
}

uint64_t ZipfSampler::Sample(Rng* rng) {
  if (theta_ == 0.0) return rng->NextBelow(n_);  // Uniform shortcut.
  for (;;) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ ||
        u >= H(kd + 0.5) - std::exp(-std::log(kd) * theta_)) {
      return k - 1;
    }
  }
}

}  // namespace contjoin
