// SHA-1 (RFC 3174), implemented from scratch so the library has no external
// crypto dependency. Chord derives node and key identifiers from SHA-1.
//
// SHA-1 is used here purely as a well-distributed hash over the 2^160
// identifier circle, exactly as in the Chord paper; it is not used for
// security.

#ifndef CONTJOIN_COMMON_SHA1_H_
#define CONTJOIN_COMMON_SHA1_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace contjoin {

/// 20-byte SHA-1 digest.
using Sha1Digest = std::array<uint8_t, 20>;

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() { Reset(); }

  /// Resets to the initial state.
  void Reset();

  /// Absorbs `len` bytes at `data`.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The hasher must be Reset() before
  /// further use.
  Sha1Digest Finish();

  /// One-shot convenience.
  static Sha1Digest Hash(std::string_view s);

  /// Digest rendered as 40 lowercase hex characters.
  static std::string ToHex(const Sha1Digest& digest);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 5> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t length_bits_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_SHA1_H_
