#include "common/rng.h"

#include <cmath>

namespace contjoin {
namespace {

inline uint64_t RotL(uint64_t v, int bits) {
  return (v << bits) | (v >> (64 - bits));
}

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  CJ_CHECK(bound > 0) << "NextBelow(0)";
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CJ_CHECK(lo <= hi) << "bad range [" << lo << "," << hi << "]";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double rate) {
  CJ_CHECK(rate > 0) << "exponential rate must be positive";
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

}  // namespace contjoin
