// Load-distribution statistics: per-node load samples summarized with the
// metrics the paper's figures use (sorted loads, top-k% shares, percentiles,
// Gini coefficient).

#ifndef CONTJOIN_COMMON_HISTOGRAM_H_
#define CONTJOIN_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace contjoin {

/// Collects a population of per-node load values and reports distribution
/// statistics. Values are arbitrary non-negative doubles.
class LoadDistribution {
 public:
  LoadDistribution() = default;

  /// Builds directly from a sample vector.
  explicit LoadDistribution(std::vector<double> values);

  void Add(double value);
  void Clear();

  size_t count() const { return values_.size(); }
  double total() const;
  double mean() const;
  double max() const;
  double min() const;

  /// p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;

  /// Gini coefficient in [0, 1); 0 = perfectly even, ->1 = concentrated.
  double Gini() const;

  /// Fraction of total load carried by the most-loaded `fraction` of the
  /// population (e.g. TopShare(0.01) = share of the top 1% of nodes).
  double TopShare(double fraction) const;

  /// Mean load of the `k` most loaded members (k clamped to count()).
  double TopKMean(size_t k) const;

  /// Values sorted in descending order (a copy).
  std::vector<double> SortedDescending() const;

  /// One line: count/total/mean/p50/p90/p99/max/gini, for bench output.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  // Cached ascending copy, rebuilt lazily after mutation.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_HISTOGRAM_H_
