#include "common/sha1.h"

#include <cstring>

namespace contjoin {
namespace {

inline uint32_t RotL(uint32_t v, int bits) {
  return (v << bits) | (v >> (32 - bits));
}

}  // namespace

void Sha1::Reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  length_bits_ = 0;
  buffer_len_ = 0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
           e = state_[4];

  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t tmp = RotL(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  length_bits_ += static_cast<uint64_t>(len) * 8;

  if (buffer_len_ > 0) {
    size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
}

Sha1Digest Sha1::Finish() {
  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  uint64_t total_bits = length_bits_;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(total_bits >> (56 - 8 * i));
  }
  // Update() would keep growing length_bits_, which is fine: we captured the
  // value first.
  Update(len_bytes, 8);

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha1Digest Sha1::Hash(std::string_view s) {
  Sha1 hasher;
  hasher.Update(s);
  return hasher.Finish();
}

std::string Sha1::ToHex(const Sha1Digest& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace contjoin
