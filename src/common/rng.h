// Deterministic pseudo-random number generation (xoshiro256**). Every
// experiment is seeded explicitly so runs are reproducible.

#ifndef CONTJOIN_COMMON_RNG_H_
#define CONTJOIN_COMMON_RNG_H_

#include <array>
#include <cstdint>

#include "common/logging.h"

namespace contjoin {

/// xoshiro256** generator with splitmix64 seeding.
class Rng {
 public:
  /// Seeds deterministically from a single value.
  explicit Rng(uint64_t seed = 0x6a09e667f3bcc908ull) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Fisher-Yates shuffle.
  template <typename Container>
  void Shuffle(Container* c) {
    if (c->size() < 2) return;
    for (size_t i = c->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      using std::swap;
      swap((*c)[i], (*c)[j]);
    }
  }

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_RNG_H_
