#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace contjoin {

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string CanonicalDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integral values print like integers so cross-type equi-joins hash
  // identically at the value level.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

}  // namespace contjoin
