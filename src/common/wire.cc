#include "common/wire.h"

#include <cstring>

namespace contjoin::wire {

void Writer::U16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v & 0xff));
  out_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::F64(double v) {
  static_assert(sizeof(double) == 8);
  uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  U64(bits);
}

void Writer::Str(std::string_view v) {
  U32(static_cast<uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

void Writer::Id(const Uint160& v) {
  for (int w = 0; w < 5; ++w) {
    uint32_t word = v.word(w);
    out_.push_back(static_cast<uint8_t>(word >> 24));
    out_.push_back(static_cast<uint8_t>(word >> 16));
    out_.push_back(static_cast<uint8_t>(word >> 8));
    out_.push_back(static_cast<uint8_t>(word));
  }
}

void Writer::PatchU32(size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

const uint8_t* Reader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

uint8_t Reader::U8() {
  const uint8_t* p = Need(1);
  return p == nullptr ? 0 : p[0];
}

uint16_t Reader::U16() {
  const uint8_t* p = Need(2);
  if (p == nullptr) return 0;
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t Reader::U32() {
  const uint8_t* p = Need(4);
  if (p == nullptr) return 0;
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t Reader::U64() {
  const uint8_t* p = Need(8);
  if (p == nullptr) return 0;
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double Reader::F64() {
  uint64_t bits = U64();
  double v = 0;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string Reader::Str() {
  uint32_t len = U32();
  const uint8_t* p = Need(len);
  if (p == nullptr) return std::string();
  return std::string(reinterpret_cast<const char*>(p), len);
}

Uint160 Reader::Id() {
  const uint8_t* p = Need(20);
  Sha1Digest digest{};
  if (p != nullptr) std::memcpy(digest.data(), p, 20);
  return Uint160::FromDigest(digest);
}

}  // namespace contjoin::wire
