// StatusOr<T>: a value or an error Status.

#ifndef CONTJOIN_COMMON_STATUSOR_H_
#define CONTJOIN_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace contjoin {

/// Holds either a T or a non-OK Status explaining why no T is available.
///
/// Accessing the value of an errored StatusOr aborts the process (the same
/// contract as absl::StatusOr); call ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    CJ_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    CJ_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CJ_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CJ_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr), returning its status on error, otherwise
/// assigning the value to `lhs`.
#define CJ_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto CJ_CONCAT_(_cj_sor_, __LINE__) = (rexpr);    \
  if (!CJ_CONCAT_(_cj_sor_, __LINE__).ok())         \
    return CJ_CONCAT_(_cj_sor_, __LINE__).status(); \
  lhs = std::move(CJ_CONCAT_(_cj_sor_, __LINE__)).value()

#define CJ_CONCAT_INNER_(a, b) a##b
#define CJ_CONCAT_(a, b) CJ_CONCAT_INNER_(a, b)

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_STATUSOR_H_
