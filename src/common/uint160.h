// Uint160: unsigned 160-bit integer with modular (ring) arithmetic, the
// identifier type of the Chord 2^160 identifier circle.

#ifndef CONTJOIN_COMMON_UINT160_H_
#define CONTJOIN_COMMON_UINT160_H_

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/sha1.h"

namespace contjoin {

/// 160-bit unsigned integer. All arithmetic is modulo 2^160, which makes the
/// type directly usable as a position on the Chord identifier circle.
///
/// Stored as five 32-bit words, most-significant first, matching the SHA-1
/// digest byte order.
class Uint160 {
 public:
  static constexpr int kBits = 160;

  /// Zero.
  constexpr Uint160() : words_{} {}

  /// Value-extends a 64-bit integer.
  static Uint160 FromUint64(uint64_t v);

  /// Interprets a 20-byte digest as a big-endian 160-bit integer.
  static Uint160 FromDigest(const Sha1Digest& digest);

  /// Parses up to 40 hex characters (shorter strings are value-extended).
  /// Returns zero on malformed input paired with `ok=false` when provided.
  static Uint160 FromHex(std::string_view hex, bool* ok = nullptr);

  /// 2^exp for 0 <= exp < 160.
  static Uint160 PowerOfTwo(int exp);

  /// Maximum representable value (2^160 - 1).
  static Uint160 Max();

  /// Addition modulo 2^160.
  Uint160 operator+(const Uint160& other) const;
  /// Subtraction modulo 2^160.
  Uint160 operator-(const Uint160& other) const;

  Uint160& operator+=(const Uint160& other) { return *this = *this + other; }
  Uint160& operator-=(const Uint160& other) { return *this = *this - other; }

  bool operator==(const Uint160& other) const = default;
  std::strong_ordering operator<=>(const Uint160& other) const {
    for (int i = 0; i < 5; ++i) {
      if (words_[i] != other.words_[i]) {
        return words_[i] < other.words_[i] ? std::strong_ordering::less
                                           : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }

  /// Clockwise ring distance from `from` to *this (how far one travels
  /// clockwise starting at `from` to reach *this); equals *this - from
  /// mod 2^160.
  Uint160 ClockwiseDistanceFrom(const Uint160& from) const {
    return *this - from;
  }

  /// True iff *this lies in the ring interval (a, b] travelling clockwise.
  /// By Chord convention, (a, a] is the full ring: every identifier except
  /// none — i.e., always true (travelling the whole circle).
  bool InOpenClosed(const Uint160& a, const Uint160& b) const;

  /// True iff *this lies in the ring interval (a, b) travelling clockwise.
  /// (a, a) is the full ring minus a itself.
  bool InOpenOpen(const Uint160& a, const Uint160& b) const;

  /// 40 lowercase hex characters.
  std::string ToHex() const;

  /// Short human-readable form (first 10 hex chars).
  std::string ToShortString() const;

  /// Low 64 bits (used by tests and hashing).
  uint64_t Low64() const {
    return (static_cast<uint64_t>(words_[3]) << 32) | words_[4];
  }

  /// Word accessor, index 0 = most significant.
  uint32_t word(int i) const { return words_[static_cast<size_t>(i)]; }

  /// Non-cryptographic hash for container use.
  size_t HashValue() const;

 private:
  std::array<uint32_t, 5> words_;
};

/// Hashes an application key string onto the identifier circle with SHA-1
/// (paper §2.2: id(i) = Hash(Key(i))).
Uint160 HashKey(std::string_view key);

}  // namespace contjoin

namespace std {
template <>
struct hash<contjoin::Uint160> {
  size_t operator()(const contjoin::Uint160& v) const { return v.HashValue(); }
};
}  // namespace std

#endif  // CONTJOIN_COMMON_UINT160_H_
