// Minimal check/logging macros. CJ_CHECK aborts with a message on failure and
// is kept in all build types: simulator invariants guard correctness results.
//
// Usage: CJ_CHECK(x > 0) << "detail " << x;

#ifndef CONTJOIN_COMMON_LOGGING_H_
#define CONTJOIN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace contjoin {
namespace internal {

/// Accumulates a failure message and aborts when destroyed.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns a streamed CheckFailStream into void so it can sit on the error arm
/// of a ternary expression (the glog "voidify" idiom).
struct Voidify {
  void operator&(CheckFailStream&) {}
  void operator&(CheckFailStream&&) {}
};

}  // namespace internal
}  // namespace contjoin

#define CJ_CHECK(cond)                       \
  (cond) ? (void)0                           \
         : ::contjoin::internal::Voidify() & \
               ::contjoin::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#endif  // CONTJOIN_COMMON_LOGGING_H_
