// Status: lightweight error-reporting type used across the library instead of
// exceptions on hot paths (RocksDB/Arrow idiom).

#ifndef CONTJOIN_COMMON_STATUS_H_
#define CONTJOIN_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace contjoin {

/// Result of an operation that can fail.
///
/// A default-constructed Status is OK and carries no allocation. Error
/// statuses carry a code and a human-readable message. Status is cheap to
/// copy in the OK case and cheap to move always.
class Status {
 public:
  /// Error categories. Kept deliberately small; the message carries detail.
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kFailedPrecondition,
    kUnsupported,
    kParseError,
    kInternal,
  };

  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Unsupported(std::string_view msg) {
    return Status(Code::kUnsupported, msg);
  }
  static Status ParseError(std::string_view msg) {
    return Status(Code::kParseError, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  Code code() const { return rep_ == nullptr ? Code::kOk : rep_->code; }

  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsAlreadyExists() const { return code() == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == Code::kFailedPrecondition;
  }
  bool IsUnsupported() const { return code() == Code::kUnsupported; }
  bool IsParseError() const { return code() == Code::kParseError; }
  bool IsInternal() const { return code() == Code::kInternal; }

  /// Message attached to an error status; empty for OK.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : rep_->message;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    Code code;
    std::string message;
  };

  Status(Code code, std::string_view msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::string(msg)})) {}

  // shared_ptr keeps copies cheap; statuses are immutable once built.
  std::shared_ptr<const Rep> rep_;
};

/// Returns from the enclosing function if `expr` yields a non-OK status.
#define CJ_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::contjoin::Status _cj_status = (expr);      \
    if (!_cj_status.ok()) return _cj_status;     \
  } while (false)

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_STATUS_H_
