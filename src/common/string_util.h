// Small string helpers shared across modules.

#ifndef CONTJOIN_COMMON_STRING_UTIL_H_
#define CONTJOIN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace contjoin {

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

/// ASCII uppercase copy.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Canonical double formatting: shortest representation that round-trips.
/// Integral doubles print without a fractional part ("2", not "2.0"), so a
/// double that equals an integer hashes to the same value-level identifier
/// as that integer (paper: numeric values are treated as strings).
std::string CanonicalDouble(double v);

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_STRING_UTIL_H_
