// Zipf-distributed sampling over {0, ..., n-1}. The paper's experiments use
// "highly skewed" attribute-value distributions; Zipf with configurable theta
// is the standard model.

#ifndef CONTJOIN_COMMON_ZIPF_H_
#define CONTJOIN_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace contjoin {

/// Samples rank i in {0..n-1} with probability proportional to 1/(i+1)^theta.
/// theta = 0 degenerates to the uniform distribution.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which needs
/// O(1) memory and works for any n, including very large domains.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Draws one sample.
  uint64_t Sample(Rng* rng);

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace contjoin

#endif  // CONTJOIN_COMMON_ZIPF_H_
