// Wire primitives: a little-endian binary writer/reader pair used by the
// message codecs (core/codec.h) and the transport frame envelope
// (chord/transport.h). The format is positional — no field tags — so
// encoder and decoder must agree on field order; the codec registry keeps
// them side by side per message type.
//
// Scalars are fixed-width little-endian; doubles travel as their 8-byte
// IEEE-754 bit pattern (bit-exact round trip, no text formatting drift);
// strings carry a u32 byte-length prefix; Uint160 identifiers are 20 raw
// big-endian bytes, matching the SHA-1 digest order they come from.

#ifndef CONTJOIN_COMMON_WIRE_H_
#define CONTJOIN_COMMON_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/uint160.h"

namespace contjoin::wire {

/// Appends fields to a byte buffer.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// IEEE-754 bit pattern, 8 bytes.
  void F64(double v);
  /// u32 length prefix + raw bytes.
  void Str(std::string_view v);
  /// 20 raw bytes, most-significant first.
  void Id(const Uint160& v);

  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

  /// Overwrites 4 bytes at `offset` with `v` (length back-patching).
  void PatchU32(size_t offset, uint32_t v);

  /// Discards everything written after byte `size` (encode rollback).
  void Truncate(size_t size) { out_.resize(size); }

 private:
  std::vector<uint8_t> out_;
};

/// Consumes fields from a byte buffer. Every accessor checks bounds; after
/// any short read `ok()` turns false and subsequent reads return zero
/// values, so decoders can read a full message and check `ok()` once.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64();
  std::string Str();
  Uint160 Id();

  bool ok() const { return ok_; }
  /// True iff every byte was consumed and no read ran short.
  bool AtEnd() const { return ok_ && pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  /// Returns a pointer to `n` readable bytes, or nullptr (sets ok_=false).
  const uint8_t* Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace contjoin::wire

#endif  // CONTJOIN_COMMON_WIRE_H_
