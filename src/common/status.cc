#include "common/status.h"

namespace contjoin {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace contjoin
