// Reliable delivery for the critical protocol messages (extension beyond
// the paper: §3.2 "leaves all handling of failures to the underlying DHT",
// so a dropped query-index, vl-index, join(q') or notification is silently
// lost forever). This module adds a sender-side ack/timeout/retry loop with
// exponential backoff and receiver-side dedup on engine-unique message ids.
// It is a role module: engine state is reached only through the
// ProtocolContext seam. With ReliabilityOptions::enabled == false every
// entry point degrades to the historical best-effort send, bit-identically.

#ifndef CONTJOIN_CORE_RELIABILITY_H_
#define CONTJOIN_CORE_RELIABILITY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"

namespace contjoin::core {
namespace reliability {

/// A message awaiting its delivery ack at the origin. Destruction — ack,
/// abandonment, origin death, or the crash wipe of the whole table —
/// cancels the outstanding retry timer, so a confirmed message's
/// speculative backoff deadline never holds the virtual clock open during
/// a queue drain. Move-only: a copy would share the token and cancel the
/// live timer when the copy died.
struct PendingSend {
  PendingSend(chord::AppMessage m, int a, sim::CancelToken c)
      : msg(std::move(m)), attempts(a), cancel(std::move(c)) {}
  PendingSend(PendingSend&&) = default;
  PendingSend& operator=(PendingSend&&) = default;
  PendingSend(const PendingSend&) = delete;
  PendingSend& operator=(const PendingSend&) = delete;
  ~PendingSend() {
    if (cancel != nullptr) cancel->store(true, std::memory_order_release);
  }

  chord::AppMessage msg;
  int attempts = 0;  // Retries performed so far.
  sim::CancelToken cancel;
};

/// Per-node reliability state (volatile: a crash wipes it, like the other
/// protocol tables; the origin-side durable logs live in the engine).
struct State {
  /// Sender side: un-acked reliable messages by id.
  std::map<uint64_t, PendingSend> pending;
  /// Receiver side: ids already processed here (dedup set). Bounded: ids
  /// are retired once the origin's whole retry window has lapsed (no
  /// retransmission can still be in flight), via the companion queue.
  std::set<uint64_t> seen;
  /// (first-seen time, id) in arrival order, driving the retirement scan.
  std::deque<std::pair<sim::SimTime, uint64_t>> seen_by_time;
};

/// True for the message types the tentpole protects: query indexing,
/// al-/vl-tuple indexing, rewritten-query reindex, DAI-V projections and
/// notification delivery. Control chatter (acks, JFRT hints, IP updates)
/// stays best-effort — losing it costs performance, never answers.
bool IsCritical(CqMsgType type);

/// Stamps `msg` with a fresh reliable id, records it in the origin's
/// pending table and starts the retry timer. The caller still transports
/// the message (routed send, multisend batch, or direct Transmit).
void Arm(ProtocolContext& ctx, chord::Node& from, chord::AppMessage& msg);

/// Routed send with reliability when enabled and the payload is critical;
/// plain ctx.Send otherwise.
void SendReliable(ProtocolContext& ctx, chord::Node& from,
                  chord::AppMessage msg);

/// Arms every critical message of a batch when reliability is enabled;
/// a no-op otherwise. The caller keeps its original transport call
/// (Send / Multisend) untouched, so the wire behaviour with reliability
/// disabled is bit-identical to the historical engine.
void ArmAll(ProtocolContext& ctx, chord::Node& from,
            std::vector<chord::AppMessage>& msgs);

/// Receiver-side hook, called by the dispatcher for every message carrying
/// a reliable id: acks to the origin and returns true when the id was
/// already processed here (the caller then suppresses the handler).
bool ObserveDelivery(ProtocolContext& ctx, chord::Node& node,
                     const chord::AppMessage& msg);

/// kDeliveryAck handler: clears the acked id from the pending table.
void HandleDeliveryAck(ProtocolContext& ctx, chord::Node& node,
                       const chord::AppMessage& msg);

/// Retransmits every un-acked pending message of `node` right now and
/// rearms their backoff timers. Called after ring repair: a message whose
/// target crashed would otherwise sit out the remainder of its exponential
/// backoff even though the route has already healed — retransmitting on
/// route change bounds post-repair delivery by hop latency instead of by
/// the retry horizon. Duplicates (the original did arrive, its ack was
/// lost) are absorbed by the receiver-side dedup set.
void RetransmitPending(ProtocolContext& ctx, chord::Node& node);

}  // namespace reliability
}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_RELIABILITY_H_
