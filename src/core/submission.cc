// Submission-side facade methods of ContinuousQueryNetwork: parsing and
// indexing queries and tuples, one-time joins, unsubscription and the
// Â§4.7 migration command. Split from engine.cc so the facade core stays
// small; both files implement the same class.

#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "core/adapt_protocol.h"
#include "core/reliability.h"

namespace contjoin::core {

// --- Submission ------------------------------------------------------------------

void ContinuousQueryNetwork::IndexQueryFrom(chord::Node* origin,
                                            const query::QueryPtr& query) {
  // Which sides index the query at the attribute level?
  std::vector<int> sides;
  if (strategy_->DoubleIndexesQueries()) {
    sides = {0, 1};  // DAI algorithms double-index (§4.4.1).
  } else {
    sides.push_back(ChooseSaiIndexSide(*this, *origin, *query));
  }

  std::vector<chord::AppMessage> batch;
  for (int s : sides) {
    const query::QuerySide& side = query->side(s);
    const std::string level1 = AttrKey(side.relation, side.index_attr_name());
    // Adaptive replication widens the fan to every replica the origin's
    // directory knows about; replica 0 tops up any the directory lags on.
    const int replicas = adapt::ReplicasFor(*this, StateOf(*origin), level1);
    for (int replica = 0; replica < replicas; ++replica) {
      auto payload = std::make_shared<QueryIndexPayload>();
      payload->query = query;
      payload->index_side = s;
      payload->level1 = level1;
      payload->replica = replica;
      chord::AppMessage msg;
      msg.target =
          AttrIndexId(side.relation, side.index_attr_name(), replica);
      msg.cls = sim::MsgClass::kQueryIndex;
      msg.payload = std::move(payload);
      batch.push_back(std::move(msg));
    }
  }
  reliability::ArmAll(*this, *origin, batch);
  if (batch.size() == 1) {
    origin->Send(std::move(batch[0]));
  } else {
    origin->Multisend(std::move(batch), sim::MsgClass::kQueryIndex);
  }
}

void ContinuousQueryNetwork::PublishTupleFrom(
    chord::Node* origin, const std::shared_ptr<const rel::Tuple>& tuple) {
  const rel::RelationSchema* schema = catalog_.Find(tuple->relation());
  CJ_CHECK(schema != nullptr);
  // Paper §4.2 (adapted for DAI-V §4.5: tuples are indexed only at the
  // attribute level there): one multisend batch carrying all identifiers.
  std::vector<chord::AppMessage> batch;
  for (size_t i = 0; i < schema->arity(); ++i) {
    const std::string& attr = schema->attribute(i).name;
    const std::string level1 = AttrKey(tuple->relation(), attr);
    const int replicas =
        adapt::ReplicasFor(*this, StateOf(*origin), level1);
    int replica = replicas <= 1
                      ? 0
                      : static_cast<int>(rng_.NextBelow(
                            static_cast<uint64_t>(replicas)));
    auto al = std::make_shared<TupleIndexPayload>(/*value_level=*/false);
    al->tuple = tuple;
    al->attr_index = i;
    al->level1 = level1;
    al->replica = replica;
    chord::AppMessage al_msg;
    al_msg.target = AttrIndexId(tuple->relation(), attr, replica);
    al_msg.cls = sim::MsgClass::kTupleIndex;
    al_msg.payload = std::move(al);
    batch.push_back(std::move(al_msg));

    if (strategy_->IndexesTuplesAtValueLevel()) {
      auto vl = std::make_shared<TupleIndexPayload>(/*value_level=*/true);
      vl->tuple = tuple;
      vl->attr_index = i;
      vl->level1 = level1;
      const std::string base_value = tuple->at(i).ToKeyString();
      // Adaptive split: the publication hashes to one virtual sub-key by
      // sequence number; the directory at the target repairs stale
      // placements (the origin's copy may lag).
      uint64_t split_version = 0;
      const int split = adapt::SplitFor(*this, StateOf(*origin), level1,
                                        base_value, &split_version);
      vl->value_key = adapt::SubValueKey(
          base_value, adapt::ShardOf(tuple->seq(), split), split);
      chord::AppMessage vl_msg;
      vl_msg.target = ValueIndexId(tuple->relation(), attr, vl->value_key);
      vl_msg.cls = sim::MsgClass::kTupleIndex;
      vl_msg.payload = std::move(vl);
      batch.push_back(std::move(vl_msg));
    }
  }
  reliability::ArmAll(*this, *origin, batch);
  origin->Multisend(std::move(batch), sim::MsgClass::kTupleIndex);
}

StatusOr<std::string> ContinuousQueryNetwork::SubmitQuery(
    size_t node_index, std::string_view sql) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("submitting node is offline");
  }
  CJ_ASSIGN_OR_RETURN(query::ContinuousQuery parsed,
                      query::ParseQuery(sql, catalog_));
  if (parsed.type() == query::QueryType::kT2 &&
      !strategy_->SupportsT2Queries()) {
    return Status::Unsupported(
        "queries of type T2 require DAI-V (paper §4.5); " +
        std::string(strategy_->name()) + " handles only type T1");
  }

  Tick();
  origin = EntryNode(node_index);
  NodeState& origin_state = StateOf(*origin);
  std::string key =
      origin->key() + "#" +
      std::to_string(origin_state.subscriber.next_query_serial++);
  parsed.set_key(key);
  parsed.set_subscriber_key(origin->key());
  parsed.set_subscriber_ip(origin->ip());
  parsed.set_insertion_time(simulator_.Now());

  auto query = std::make_shared<const query::ContinuousQuery>(
      std::move(parsed));

  IndexQueryFrom(origin, query);
  simulator_.Run();
  submitted_[key] = query;
  submission_log_.push_back(query);
  return key;
}

Status ContinuousQueryNetwork::InsertTuple(size_t node_index,
                                           const std::string& relation,
                                           std::vector<rel::Value> values) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("inserting node is offline");
  }
  const rel::RelationSchema* schema = catalog_.Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }

  Tick();
  origin = EntryNode(node_index);
  auto tuple = std::make_shared<const rel::Tuple>(
      relation, std::move(values), simulator_.Now(), next_tuple_seq_++);
  CJ_RETURN_IF_ERROR(tuple->CheckAgainst(*schema));

  PublishTupleFrom(origin, tuple);
  simulator_.Run();
  publish_log_.emplace_back(origin, tuple);
  return Status::OK();
}

Status ContinuousQueryNetwork::InsertTupleWave(
    const std::vector<std::pair<size_t, std::string>>& origins_relations,
    std::vector<std::vector<rel::Value>> rows) {
  if (origins_relations.size() != rows.size()) {
    return Status::InvalidArgument("wave origins and rows differ in length");
  }
  if (origins_relations.empty()) return Status::OK();
  Tick();
  // All tuples of the wave share one arrival timestamp; consecutive seqs
  // keep their relative order deterministic. The serial-side publication
  // (index-message construction, reliability arming) runs per tuple, but
  // delivery events all land in the same epoch, which is what gives the
  // parallel core a batch wide enough to spread across workers.
  std::vector<
      std::pair<chord::Node*, std::shared_ptr<const rel::Tuple>>>
      published;
  published.reserve(rows.size());
  for (size_t i = 0; i < origins_relations.size(); ++i) {
    const auto& [node_index, relation] = origins_relations[i];
    if (node_index >= nodes_.size()) {
      return Status::InvalidArgument("node index out of range");
    }
    const rel::RelationSchema* schema = catalog_.Find(relation);
    if (schema == nullptr) {
      return Status::NotFound("unknown relation '" + relation + "'");
    }
    chord::Node* origin = EntryNode(node_index);
    auto tuple = std::make_shared<const rel::Tuple>(
        relation, std::move(rows[i]), simulator_.Now(), next_tuple_seq_++);
    CJ_RETURN_IF_ERROR(tuple->CheckAgainst(*schema));
    PublishTupleFrom(origin, tuple);
    published.emplace_back(origin, tuple);
  }
  simulator_.Run();
  for (auto& entry : published) {
    publish_log_.emplace_back(entry.first, std::move(entry.second));
  }
  return Status::OK();
}

// --- Open-loop serving (extension) ----------------------------------------------------

Status ContinuousQueryNetwork::SchedulePublish(sim::SimTime when,
                                               size_t node_index,
                                               const std::string& relation,
                                               std::vector<rel::Value> values) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  const rel::RelationSchema* schema = catalog_.Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  // Birth time and sequence are assigned now, at arrival-process time, so
  // the tuple's virtual-time birth is the scheduled arrival instant even
  // if the system is saturated when the event fires. An arrival already
  // overdue (churn repair at a segment boundary drains the event queue
  // and can advance the clock past the next segment's instants) fires as
  // soon as possible but keeps its intended birth stamp — open-loop
  // arrivals do not wait for the system.
  auto tuple = std::make_shared<const rel::Tuple>(
      relation, std::move(values), when, next_tuple_seq_++);
  CJ_RETURN_IF_ERROR(tuple->CheckAgainst(*schema));
  const sim::SimTime fire = std::max(when, simulator_.Now());
  // kNoShard: publication draws from the engine rng (SAI side choice,
  // replica choice), so the publishing epoch must stay serial for the
  // worker-count determinism contract. The cascade it spawns still
  // parallelizes in subsequent epochs.
  simulator_.ScheduleAt(fire, [this, node_index, tuple]() {
    chord::Node* origin = EntryNode(node_index);
    if (origin == nullptr) return;
    PublishTupleFrom(origin, tuple);
    publish_log_.emplace_back(origin, tuple);
  });
  return Status::OK();
}

uint64_t ContinuousQueryNetwork::RunOpenLoopUntil(sim::SimTime until) {
  const uint64_t before = simulator_.total_events_run();
  simulator_.RunUntil(until);
  // Churn applies at segment boundaries (quiescent points), mirroring the
  // closed-loop operation-boundary semantics. The repair sweep drains the
  // whole queue, so the serving driver only schedules arrivals up to the
  // next boundary — anything still pending here belongs to this segment's
  // cascade and may legitimately complete during repair.
  ProcessChurnDue();
  return simulator_.total_events_run() - before;
}

// --- Multi-way joins (extension) ------------------------------------------------------

StatusOr<std::string> ContinuousQueryNetwork::SubmitMultiwayQuery(
    size_t node_index, std::string_view sql) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (!strategy_->SupportsRecursiveMultiway()) {
    return Status::Unsupported(
        "multi-way queries run on the recursive-SAI extension; set "
        "Algorithm::kSai");
  }
  if (options_.attribute_replication != 1) {
    return Status::Unsupported(
        "multi-way queries do not support attribute-level replication");
  }
  if (options_.adapt.enabled) {
    return Status::Unsupported(
        "multi-way queries do not support the adaptive load manager");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("submitting node is offline");
  }
  CJ_ASSIGN_OR_RETURN(query::MwQuery parsed,
                      query::ParseMwQuery(sql, catalog_));

  Tick();
  origin = EntryNode(node_index);
  NodeState& origin_state = StateOf(*origin);
  std::string key =
      origin->key() + "#" +
      std::to_string(origin_state.subscriber.next_query_serial++);
  parsed.set_key(key);
  parsed.set_subscriber_key(origin->key());
  parsed.set_subscriber_ip(origin->ip());
  parsed.set_insertion_time(simulator_.Now());
  auto query = std::make_shared<const query::MwQuery>(std::move(parsed));

  // Index at the attribute level under the root relation (index 0) and the
  // attribute of its lowest incident join condition.
  int root_cond = query->NextCondition(1u << 0);
  CJ_CHECK(root_cond >= 0) << "spanning tree must touch the root";
  const query::MwCondition& cond =
      query->conditions()[static_cast<size_t>(root_cond)];
  const query::MwRelation& root = query->relations()[0];
  const std::string& attr =
      root.schema->attribute(cond.AttrOn(0)).name;

  auto payload = std::make_shared<MwQueryIndexPayload>();
  payload->query = query;
  payload->level1 = AttrKey(root.relation, attr);
  chord::AppMessage msg;
  msg.target = AttrIndexId(root.relation, attr, /*replica=*/0);
  msg.cls = sim::MsgClass::kQueryIndex;
  msg.payload = std::move(payload);
  origin->Send(std::move(msg));
  simulator_.Run();
  return key;
}

// --- One-time joins (PIER baseline) ---------------------------------------------------

StatusOr<std::vector<Notification>> ContinuousQueryNetwork::OneTimeJoin(
    size_t node_index, std::string_view sql) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (!strategy_->StoresTuples()) {
    return Status::Unsupported(
        "one-time joins scan value-level tuple storage, which only SAI and "
        "DAI-Q maintain");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("issuing node is offline");
  }
  CJ_ASSIGN_OR_RETURN(query::ContinuousQuery parsed,
                      query::ParseQuery(sql, catalog_));

  Tick();
  origin = EntryNode(node_index);
  uint64_t otj_id = next_otj_id_++;
  parsed.set_key(origin->key() + "#otj" + std::to_string(otj_id));
  parsed.set_subscriber_key(origin->key());
  parsed.set_subscriber_ip(origin->ip());
  parsed.set_insertion_time(0);  // Snapshot: every stored tuple qualifies.
  auto query = std::make_shared<const query::ContinuousQuery>(
      std::move(parsed));

  auto payload = std::make_shared<OtjScanPayload>();
  payload->query = query;
  payload->otj_id = otj_id;
  payload->issuer = origin->id();
  origin->Broadcast(std::move(payload), sim::MsgClass::kOneTime);
  simulator_.Run();

  std::vector<Notification> results = std::move(otj_results_[otj_id]);
  otj_results_.erase(otj_id);
  // Drop the temporary collector buffers of this execution.
  // contjoin-check: ordered-ok(independent per-node erase, no emission)
  for (auto& [node, state] : states_) state->otj.buffers.erase(otj_id);
  return results;
}

// --- Unsubscription (extension) -----------------------------------------------------

Status ContinuousQueryNetwork::Unsubscribe(size_t node_index,
                                           const std::string& query_key) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  auto it = submitted_.find(query_key);
  if (it == submitted_.end()) {
    return Status::NotFound("unknown query key '" + query_key + "'");
  }
  const query::ContinuousQuery& q = *it->second;
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("node is offline");
  }

  Tick();
  origin = EntryNode(node_index);
  // Remove from every possible rewriter (both sides and all replicas cover
  // the SAI single-side case too — the extra recipients are no-ops). Under
  // the adaptive manager, cover the whole replica range it may ever have
  // escalated to, not just the replicas currently live.
  const int unsub_replicas =
      options_.adapt.enabled
          ? std::max(options_.attribute_replication,
                     options_.adapt.max_replicas)
          : options_.attribute_replication;
  std::vector<chord::AppMessage> batch;
  for (int s = 0; s < 2; ++s) {
    for (int replica = 0; replica < unsub_replicas; ++replica) {
      auto payload = std::make_shared<UnsubscribePayload>();
      payload->query_key = query_key;
      payload->at_evaluator = false;
      payload->level1 =
          AttrKey(q.side(s).relation, q.side(s).index_attr_name());
      payload->replica = replica;
      chord::AppMessage msg;
      msg.target = AttrIndexId(q.side(s).relation,
                               q.side(s).index_attr_name(), replica);
      msg.cls = sim::MsgClass::kControl;
      msg.payload = std::move(payload);
      batch.push_back(std::move(msg));
    }
  }
  origin->Multisend(std::move(batch), sim::MsgClass::kControl);
  simulator_.Run();
  submitted_.erase(it);
  // Drop the cancelled query from the durable replay log too, or a later
  // RefreshIndexes would resurrect it.
  for (auto log_it = submission_log_.begin();
       log_it != submission_log_.end(); ++log_it) {
    if ((*log_it)->key() == query_key) {
      submission_log_.erase(log_it);
      break;
    }
  }
  return Status::OK();
}

// --- §4.7 "moving an identifier" ------------------------------------------------------

Status ContinuousQueryNetwork::MigrateAttribute(size_t node_index,
                                                const std::string& relation,
                                                const std::string& attr,
                                                int replica) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  const rel::RelationSchema* schema = catalog_.Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  if (!schema->AttributeIndex(attr).has_value()) {
    return Status::NotFound("relation '" + relation +
                            "' has no attribute '" + attr + "'");
  }
  if (replica < 0 || replica >= options_.attribute_replication) {
    return Status::InvalidArgument("replica out of range");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("node is offline");
  }
  Tick();
  origin = EntryNode(node_index);
  auto payload = std::make_shared<MigrateCmdPayload>();
  payload->level1 = AttrKey(relation, attr);
  payload->replica = replica;
  chord::AppMessage msg;
  msg.target = AttrIndexId(relation, attr, replica);
  msg.cls = sim::MsgClass::kControl;
  msg.payload = std::move(payload);
  origin->Send(std::move(msg));
  simulator_.Run();
  return Status::OK();
}

}  // namespace contjoin::core
