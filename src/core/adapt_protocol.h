// Adaptive load manager — protocol glue (ROADMAP item 3). The policy,
// tracker and directive directory live in src/adapt; this module wires
// them into the message flow: it observes arrivals at the natural
// deciders (replica 0 of an attribute-level key, shard 0 / the plain
// owner of a value family), issues versioned kAdaptReplicate /
// kAdaptSplit directives, re-places stranded state when a directive
// changes a family's shard set, and redirects traffic that still
// targets dead keys.
//
// Hot attribute-level keys gain rewriter replicas (the broadcast-style
// side is replicated); hot value-level keys split into deterministic
// virtual sub-keys "v#s<j>" (the point-style side is partitioned):
// publications hash to one shard by sequence number while rewritten
// queries fan to every shard, so matching stays family-complete at any
// single shard owner. Cooling reverses both under a hysteresis dwell.

#ifndef CONTJOIN_CORE_ADAPT_PROTOCOL_H_
#define CONTJOIN_CORE_ADAPT_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"

namespace chord {
class Node;
}  // namespace chord

namespace contjoin::core {
struct NodeState;
}  // namespace contjoin::core

namespace contjoin::core::adapt {

/// True when the adaptive load manager is switched on.
inline bool Enabled(const ProtocolContext& ctx) {
  return ctx.options().adapt.enabled;
}

// --- Sub-key naming re-exports (callers inside contjoin::core would
// otherwise have this namespace shadow ::contjoin::adapt) ---------------------

/// Base value of a (possibly virtual) value-level key.
std::string BaseValueOf(const std::string& value_key);

/// Virtual sub-key `shard` of `base` under split factor `split`.
std::string SubValueKey(const std::string& base, int shard, int split);

/// Shard a publication with sequence number `seq` hashes to.
int ShardOf(uint64_t seq, int split);

// --- Directory reads for senders ----------------------------------------------

/// Split directive of value family (`level1`, `value`) as seen by
/// `state`'s directory: returns the split factor (1 when absent or the
/// manager is disabled) and stores the directive version (0 when absent)
/// into `*version`. DAI-V families pass an empty `level1`.
int SplitFor(const ProtocolContext& ctx, const NodeState& state,
             const std::string& level1, const std::string& value,
             uint64_t* version);

/// Effective rewriter replica count of attribute-level key `level1` as
/// seen by `state`'s directory (>= the static attribute_replication
/// floor; exactly the floor when disabled).
int ReplicasFor(const ProtocolContext& ctx, const NodeState& state,
                const std::string& level1);

// --- Directive message handlers (dispatch table) -------------------------------

void HandleReplicate(ProtocolContext& ctx, chord::Node& node,
                     const chord::AppMessage& msg);
void HandleSplit(ProtocolContext& ctx, chord::Node& node,
                 const chord::AppMessage& msg);

// --- Arrival hooks -------------------------------------------------------------
//
// The bool-returning hooks run before the base handler logic; true means
// the message was consumed (redirected to its live owner) and the base
// handler must return without processing it.

/// kQueryIndex at a rewriter, after the ALQT insert: replica 0 forwards
/// armed copies to replicas the submitter's static fan missed.
void OnQueryIndexed(ProtocolContext& ctx, chord::Node& node,
                    const QueryIndexPayload& p);

/// kTupleAl at a rewriter, before triggering: records load and decides
/// at replica 0; redirects arrivals at de-replicated (cooled) replicas.
bool OnAttrTuple(ProtocolContext& ctx, chord::Node& node,
                 const TupleIndexPayload& p);

/// kTupleVl at an evaluator: records load and decides at the family's
/// decider key; forwards arrivals at dead sub-keys to the live owner,
/// preceded by a directive refresh so a stale owner cannot bounce the
/// tuple back forever.
bool OnValueTuple(ProtocolContext& ctx, chord::Node& node,
                  const TupleIndexPayload& p);

/// kJoin at a T1 evaluator: applies the directive the batch carries
/// (known_split/split_version), re-dispatches batches addressed to dead
/// sub-keys, and at shard 0 tops up the shards a stale sender missed.
bool OnJoinArrival(ProtocolContext& ctx, chord::Node& node,
                   const JoinPayload& p);

/// kDaivJoin at a DAI-V evaluator; like OnJoinArrival, but side-aware:
/// trigger-side-0 entries (projected tuples to store) hash to one shard,
/// side-1 entries fan to all shards.
bool OnDaivJoinArrival(ProtocolContext& ctx, chord::Node& node,
                       const DaivJoinPayload& p);

}  // namespace contjoin::core::adapt

#endif  // CONTJOIN_CORE_ADAPT_PROTOCOL_H_
