#include "core/codec.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "query/mw_query.h"
#include "query/parser.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace contjoin::core {
namespace {

// --- Shared field helpers ------------------------------------------------------

void WriteValue(wire::Writer& w, const rel::Value& v) {
  w.U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case rel::ValueType::kNull:
      return;
    case rel::ValueType::kInt:
      w.I64(v.as_int());
      return;
    case rel::ValueType::kDouble:
      w.F64(v.as_double());
      return;
    case rel::ValueType::kString:
      w.Str(v.as_string());
      return;
  }
}

rel::Value ReadValue(wire::Reader& r) {
  switch (static_cast<rel::ValueType>(r.U8())) {
    case rel::ValueType::kNull:
      return rel::Value::Null();
    case rel::ValueType::kInt:
      return rel::Value::Int(r.I64());
    case rel::ValueType::kDouble:
      return rel::Value::Double(r.F64());
    case rel::ValueType::kString:
      return rel::Value::Str(r.Str());
  }
  return rel::Value::Null();  // Unknown tag; the caller checks r.ok().
}

/// Guards a decoded element count against the bytes actually present, so a
/// corrupt length cannot drive a multi-gigabyte allocation. Every element
/// costs at least one byte on the wire.
bool PlausibleCount(const wire::Reader& r, uint32_t n) {
  return n <= r.remaining();
}

void WriteRow(wire::Writer& w, const RowTemplate& row) {
  w.U32(static_cast<uint32_t>(row.size()));
  for (const std::optional<rel::Value>& v : row) {
    w.Bool(v.has_value());
    if (v.has_value()) WriteValue(w, *v);
  }
}

bool ReadRow(wire::Reader& r, RowTemplate* out) {
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (r.Bool()) {
      out->push_back(ReadValue(r));
    } else {
      out->push_back(std::nullopt);
    }
  }
  return r.ok();
}

void WriteTuple(wire::Writer& w, const rel::Tuple& t) {
  w.Str(t.relation());
  w.U32(static_cast<uint32_t>(t.arity()));
  for (const rel::Value& v : t.values()) WriteValue(w, v);
  w.U64(t.pub_time());
  w.U64(t.seq());
}

rel::TuplePtr ReadTuple(wire::Reader& r) {
  std::string relation = r.Str();
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return nullptr;
  std::vector<rel::Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) values.push_back(ReadValue(r));
  rel::Timestamp pub_time = r.U64();
  uint64_t seq = r.U64();
  if (!r.ok()) return nullptr;
  return std::make_shared<const rel::Tuple>(std::move(relation),
                                            std::move(values), pub_time, seq);
}

/// Queries ship as raw SQL plus the submission metadata the engine stamped
/// on; the receiver re-parses, so structure (sides, linear forms,
/// signature, T1/T2 classification) is re-derived rather than serialized.
void WriteQuery(wire::Writer& w, const query::ContinuousQuery& q) {
  w.Str(q.raw_sql());
  w.Str(q.key());
  w.Str(q.subscriber_key());
  w.U64(q.subscriber_ip());
  w.U64(q.insertion_time());
}

query::QueryPtr ReadQuery(wire::Reader& r, const rel::Catalog& catalog) {
  std::string sql = r.Str();
  std::string key = r.Str();
  std::string subscriber_key = r.Str();
  uint64_t subscriber_ip = r.U64();
  rel::Timestamp insertion_time = r.U64();
  if (!r.ok()) return nullptr;
  StatusOr<query::ContinuousQuery> parsed = query::ParseQuery(sql, catalog);
  if (!parsed.ok()) return nullptr;
  query::ContinuousQuery q = std::move(parsed).value();
  q.set_key(std::move(key));
  q.set_subscriber_key(std::move(subscriber_key));
  q.set_subscriber_ip(subscriber_ip);
  q.set_insertion_time(insertion_time);
  return std::make_shared<const query::ContinuousQuery>(std::move(q));
}

void WriteMwQuery(wire::Writer& w, const query::MwQuery& q) {
  w.Str(q.raw_sql());
  w.Str(q.key());
  w.Str(q.subscriber_key());
  w.U64(q.subscriber_ip());
  w.U64(q.insertion_time());
}

query::MwQueryPtr ReadMwQuery(wire::Reader& r, const rel::Catalog& catalog) {
  std::string sql = r.Str();
  std::string key = r.Str();
  std::string subscriber_key = r.Str();
  uint64_t subscriber_ip = r.U64();
  rel::Timestamp insertion_time = r.U64();
  if (!r.ok()) return nullptr;
  StatusOr<query::MwQuery> parsed = query::ParseMwQuery(sql, catalog);
  if (!parsed.ok()) return nullptr;
  query::MwQuery q = std::move(parsed).value();
  q.set_key(std::move(key));
  q.set_subscriber_key(std::move(subscriber_key));
  q.set_subscriber_ip(subscriber_ip);
  q.set_insertion_time(insertion_time);
  return std::make_shared<const query::MwQuery>(std::move(q));
}

void WriteNotification(wire::Writer& w, const Notification& n) {
  w.Str(n.query_key);
  w.U32(static_cast<uint32_t>(n.row.size()));
  for (const rel::Value& v : n.row) WriteValue(w, v);
  w.U64(n.earlier_pub);
  w.U64(n.later_pub);
  w.U64(n.created_at);
}

bool ReadNotification(wire::Reader& r, Notification* out) {
  out->query_key = r.Str();
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return false;
  out->row.clear();
  out->row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out->row.push_back(ReadValue(r));
  out->earlier_pub = r.U64();
  out->later_pub = r.U64();
  out->created_at = r.U64();
  return r.ok();
}

// --- Per-type codecs -----------------------------------------------------------
//
// One Encode/Decode pair per CqMsgType, kept adjacent so each type's wire
// layout reads as one unit. Field order here IS the wire format.

bool EncodeQueryIndex(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const QueryIndexPayload&>(payload);
  if (p.query == nullptr) return false;
  WriteQuery(w, *p.query);
  w.U8(static_cast<uint8_t>(p.index_side));
  w.Str(p.level1);
  w.U32(static_cast<uint32_t>(p.replica));
  return true;
}

std::shared_ptr<const CqPayload> DecodeQueryIndex(
    CqMsgType, wire::Reader& r, const rel::Catalog& catalog) {
  auto p = std::make_shared<QueryIndexPayload>();
  p->query = ReadQuery(r, catalog);
  if (p->query == nullptr) return nullptr;
  p->index_side = r.U8();
  p->level1 = r.Str();
  p->replica = static_cast<int>(r.U32());
  return r.ok() ? p : nullptr;
}

bool EncodeTupleIndex(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const TupleIndexPayload&>(payload);
  if (p.tuple == nullptr) return false;
  WriteTuple(w, *p.tuple);
  w.U32(static_cast<uint32_t>(p.attr_index));
  w.Str(p.level1);
  w.Str(p.value_key);
  w.U32(static_cast<uint32_t>(p.replica));
  return true;
}

std::shared_ptr<const CqPayload> DecodeTupleIndex(CqMsgType type,
                                                  wire::Reader& r,
                                                  const rel::Catalog&) {
  auto p =
      std::make_shared<TupleIndexPayload>(type == CqMsgType::kTupleVl);
  p->tuple = ReadTuple(r);
  if (p->tuple == nullptr) return nullptr;
  p->attr_index = r.U32();
  p->level1 = r.Str();
  p->value_key = r.Str();
  p->replica = static_cast<int>(r.U32());
  return r.ok() ? p : nullptr;
}

bool EncodeJoin(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const JoinPayload&>(payload);
  w.Str(p.level1);
  w.Str(p.value_key);
  w.U32(static_cast<uint32_t>(p.entries.size()));
  for (const RewrittenEntry& e : p.entries) {
    if (e.query == nullptr) return false;
    WriteQuery(w, *e.query);
    w.U8(static_cast<uint8_t>(e.remaining_side));
    w.Str(e.rewritten_key);
    WriteValue(w, e.required_value);
    WriteRow(w, e.row);
    w.U64(e.trigger_pub);
    w.U64(e.trigger_seq);
  }
  w.Id(p.rewriter);
  w.Id(p.vindex);
  w.Bool(p.want_ack);
  w.U32(static_cast<uint32_t>(p.known_split));
  w.U64(p.split_version);
  return true;
}

std::shared_ptr<const CqPayload> DecodeJoin(CqMsgType, wire::Reader& r,
                                            const rel::Catalog& catalog) {
  auto p = std::make_shared<JoinPayload>();
  p->level1 = r.Str();
  p->value_key = r.Str();
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return nullptr;
  p->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RewrittenEntry e;
    e.query = ReadQuery(r, catalog);
    if (e.query == nullptr) return nullptr;
    e.remaining_side = r.U8();
    e.rewritten_key = r.Str();
    e.required_value = ReadValue(r);
    if (!ReadRow(r, &e.row)) return nullptr;
    e.trigger_pub = r.U64();
    e.trigger_seq = r.U64();
    p->entries.push_back(std::move(e));
  }
  p->rewriter = r.Id();
  p->vindex = r.Id();
  p->want_ack = r.Bool();
  p->known_split = static_cast<int>(r.U32());
  p->split_version = r.U64();
  return r.ok() ? p : nullptr;
}

bool EncodeDaivJoin(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const DaivJoinPayload&>(payload);
  w.Str(p.value_key);
  w.U32(static_cast<uint32_t>(p.entries.size()));
  for (const DaivEntry& e : p.entries) {
    if (e.query == nullptr) return false;
    WriteQuery(w, *e.query);
    w.U8(static_cast<uint8_t>(e.trigger_side));
    WriteRow(w, e.row);
    w.U64(e.trigger_pub);
    w.U64(e.trigger_seq);
  }
  w.Id(p.rewriter);
  w.Id(p.vindex);
  w.Bool(p.want_ack);
  w.U32(static_cast<uint32_t>(p.known_split));
  w.U64(p.split_version);
  return true;
}

std::shared_ptr<const CqPayload> DecodeDaivJoin(CqMsgType, wire::Reader& r,
                                                const rel::Catalog& catalog) {
  auto p = std::make_shared<DaivJoinPayload>();
  p->value_key = r.Str();
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return nullptr;
  p->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DaivEntry e;
    e.query = ReadQuery(r, catalog);
    if (e.query == nullptr) return nullptr;
    e.trigger_side = r.U8();
    if (!ReadRow(r, &e.row)) return nullptr;
    e.trigger_pub = r.U64();
    e.trigger_seq = r.U64();
    p->entries.push_back(std::move(e));
  }
  p->rewriter = r.Id();
  p->vindex = r.Id();
  p->want_ack = r.Bool();
  p->known_split = static_cast<int>(r.U32());
  p->split_version = r.U64();
  return r.ok() ? p : nullptr;
}

bool EncodeNotification(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const NotificationPayload&>(payload);
  WriteNotification(w, p.notification);
  w.Str(p.subscriber_key);
  w.Id(p.evaluator);
  return true;
}

std::shared_ptr<const CqPayload> DecodeNotification(CqMsgType,
                                                    wire::Reader& r,
                                                    const rel::Catalog&) {
  auto p = std::make_shared<NotificationPayload>();
  if (!ReadNotification(r, &p->notification)) return nullptr;
  p->subscriber_key = r.Str();
  p->evaluator = r.Id();
  return r.ok() ? p : nullptr;
}

bool EncodeNotificationDigest(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const NotificationDigestPayload&>(payload);
  w.Str(p.subscriber_key);
  w.Id(p.evaluator);
  w.U32(static_cast<uint32_t>(p.notifications.size()));
  for (const Notification& n : p.notifications) WriteNotification(w, n);
  return true;
}

std::shared_ptr<const CqPayload> DecodeNotificationDigest(
    CqMsgType, wire::Reader& r, const rel::Catalog&) {
  auto p = std::make_shared<NotificationDigestPayload>();
  p->subscriber_key = r.Str();
  p->evaluator = r.Id();
  const uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return nullptr;
  p->notifications.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadNotification(r, &p->notifications[i])) return nullptr;
  }
  return r.ok() ? p : nullptr;
}

bool EncodeUnsubscribe(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const UnsubscribePayload&>(payload);
  w.Str(p.query_key);
  w.Bool(p.at_evaluator);
  w.Str(p.level1);
  w.U32(static_cast<uint32_t>(p.replica));
  return true;
}

std::shared_ptr<const CqPayload> DecodeUnsubscribe(CqMsgType,
                                                   wire::Reader& r,
                                                   const rel::Catalog&) {
  auto p = std::make_shared<UnsubscribePayload>();
  p->query_key = r.Str();
  p->at_evaluator = r.Bool();
  p->level1 = r.Str();
  p->replica = static_cast<int>(r.U32());
  return r.ok() ? p : nullptr;
}

bool EncodeIpUpdate(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const IpUpdatePayload&>(payload);
  w.Str(p.subscriber_key);
  w.Id(p.node);
  w.U64(p.ip);
  return true;
}

std::shared_ptr<const CqPayload> DecodeIpUpdate(CqMsgType, wire::Reader& r,
                                                const rel::Catalog&) {
  auto p = std::make_shared<IpUpdatePayload>();
  p->subscriber_key = r.Str();
  p->node = r.Id();
  p->ip = r.U64();
  return r.ok() ? p : nullptr;
}

bool EncodeJfrtAck(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const JfrtAckPayload&>(payload);
  w.Id(p.vindex);
  w.Id(p.evaluator);
  return true;
}

std::shared_ptr<const CqPayload> DecodeJfrtAck(CqMsgType, wire::Reader& r,
                                               const rel::Catalog&) {
  auto p = std::make_shared<JfrtAckPayload>();
  p->vindex = r.Id();
  p->evaluator = r.Id();
  return r.ok() ? p : nullptr;
}

bool EncodeMigrateCmd(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const MigrateCmdPayload&>(payload);
  w.Str(p.level1);
  w.U32(static_cast<uint32_t>(p.replica));
  w.Id(p.base);
  return true;
}

std::shared_ptr<const CqPayload> DecodeMigrateCmd(CqMsgType,
                                                  wire::Reader& r,
                                                  const rel::Catalog&) {
  auto p = std::make_shared<MigrateCmdPayload>();
  p->level1 = r.Str();
  p->replica = static_cast<int>(r.U32());
  p->base = r.Id();
  return r.ok() ? p : nullptr;
}

bool EncodeMwQueryIndex(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const MwQueryIndexPayload&>(payload);
  if (p.query == nullptr) return false;
  WriteMwQuery(w, *p.query);
  w.Str(p.level1);
  return true;
}

std::shared_ptr<const CqPayload> DecodeMwQueryIndex(
    CqMsgType, wire::Reader& r, const rel::Catalog& catalog) {
  auto p = std::make_shared<MwQueryIndexPayload>();
  p->query = ReadMwQuery(r, catalog);
  if (p->query == nullptr) return nullptr;
  p->level1 = r.Str();
  return r.ok() ? p : nullptr;
}

bool EncodeMwJoin(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const MwJoinPayload&>(payload);
  w.Str(p.level1);
  w.Str(p.value_key);
  w.U32(static_cast<uint32_t>(p.entries.size()));
  for (const MwPartial& e : p.entries) {
    if (e.query == nullptr) return false;
    WriteMwQuery(w, *e.query);
    w.U32(e.bound_mask);
    WriteRow(w, e.row);
    w.U32(static_cast<uint32_t>(e.pending.size()));
    for (const auto& [cond, value] : e.pending) {
      w.I64(cond);
      WriteValue(w, value);
    }
    w.I64(e.target_condition);
    w.U64(e.min_pub);
    w.U64(e.max_pub);
    w.U64(e.last_seq);
    w.Str(e.partial_key);
  }
  return true;
}

std::shared_ptr<const CqPayload> DecodeMwJoin(CqMsgType, wire::Reader& r,
                                              const rel::Catalog& catalog) {
  auto p = std::make_shared<MwJoinPayload>();
  p->level1 = r.Str();
  p->value_key = r.Str();
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return nullptr;
  p->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MwPartial e;
    e.query = ReadMwQuery(r, catalog);
    if (e.query == nullptr) return nullptr;
    e.bound_mask = r.U32();
    if (!ReadRow(r, &e.row)) return nullptr;
    uint32_t npending = r.U32();
    if (!PlausibleCount(r, npending)) return nullptr;
    for (uint32_t j = 0; j < npending; ++j) {
      int cond = static_cast<int>(r.I64());
      e.pending.emplace(cond, ReadValue(r));
    }
    e.target_condition = static_cast<int>(r.I64());
    e.min_pub = r.U64();
    e.max_pub = r.U64();
    e.last_seq = r.U64();
    e.partial_key = r.Str();
    p->entries.push_back(std::move(e));
  }
  return r.ok() ? p : nullptr;
}

bool EncodeOtjScan(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const OtjScanPayload&>(payload);
  if (p.query == nullptr) return false;
  WriteQuery(w, *p.query);
  w.U64(p.otj_id);
  w.Id(p.issuer);
  return true;
}

std::shared_ptr<const CqPayload> DecodeOtjScan(CqMsgType, wire::Reader& r,
                                               const rel::Catalog& catalog) {
  auto p = std::make_shared<OtjScanPayload>();
  p->query = ReadQuery(r, catalog);
  if (p->query == nullptr) return nullptr;
  p->otj_id = r.U64();
  p->issuer = r.Id();
  return r.ok() ? p : nullptr;
}

bool EncodeOtjRehash(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const OtjRehashPayload&>(payload);
  if (p.query == nullptr) return false;
  WriteQuery(w, *p.query);
  w.U64(p.otj_id);
  w.Id(p.issuer);
  w.Str(p.value_key);
  w.U32(static_cast<uint32_t>(p.entries.size()));
  for (const OtjTuple& e : p.entries) {
    w.U8(static_cast<uint8_t>(e.side));
    WriteRow(w, e.row);
    w.U64(e.pub_time);
    w.U64(e.seq);
  }
  return true;
}

std::shared_ptr<const CqPayload> DecodeOtjRehash(
    CqMsgType, wire::Reader& r, const rel::Catalog& catalog) {
  auto p = std::make_shared<OtjRehashPayload>();
  p->query = ReadQuery(r, catalog);
  if (p->query == nullptr) return nullptr;
  p->otj_id = r.U64();
  p->issuer = r.Id();
  p->value_key = r.Str();
  uint32_t n = r.U32();
  if (!PlausibleCount(r, n)) return nullptr;
  p->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OtjTuple e;
    e.side = r.U8();
    if (!ReadRow(r, &e.row)) return nullptr;
    e.pub_time = r.U64();
    e.seq = r.U64();
    p->entries.push_back(std::move(e));
  }
  return r.ok() ? p : nullptr;
}

bool EncodeDeliveryAck(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const DeliveryAckPayload&>(payload);
  w.U64(p.msg_id);
  return true;
}

std::shared_ptr<const CqPayload> DecodeDeliveryAck(CqMsgType,
                                                   wire::Reader& r,
                                                   const rel::Catalog&) {
  auto p = std::make_shared<DeliveryAckPayload>();
  p->msg_id = r.U64();
  return r.ok() ? p : nullptr;
}

bool EncodeAdaptReplicate(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const AdaptReplicatePayload&>(payload);
  w.Str(p.level1);
  w.U32(static_cast<uint32_t>(p.replicas));
  w.U64(p.version);
  return true;
}

std::shared_ptr<const CqPayload> DecodeAdaptReplicate(CqMsgType,
                                                      wire::Reader& r,
                                                      const rel::Catalog&) {
  auto p = std::make_shared<AdaptReplicatePayload>();
  p->level1 = r.Str();
  p->replicas = static_cast<int>(r.U32());
  p->version = r.U64();
  return r.ok() ? p : nullptr;
}

bool EncodeAdaptSplit(const CqPayload& payload, wire::Writer& w) {
  const auto& p = static_cast<const AdaptSplitPayload&>(payload);
  w.Str(p.level1);
  w.Str(p.value);
  w.U32(static_cast<uint32_t>(p.split));
  w.U64(p.version);
  return true;
}

std::shared_ptr<const CqPayload> DecodeAdaptSplit(CqMsgType, wire::Reader& r,
                                                  const rel::Catalog&) {
  auto p = std::make_shared<AdaptSplitPayload>();
  p->level1 = r.Str();
  p->value = r.Str();
  p->split = static_cast<int>(r.U32());
  p->version = r.U64();
  return r.ok() ? p : nullptr;
}

PayloadCodec BuildDefaultCodec() {
  PayloadCodec table;
  bool ok = true;
  ok &= table.RegisterCodec(CqMsgType::kQueryIndex, EncodeQueryIndex,
                            DecodeQueryIndex);
  ok &= table.RegisterCodec(CqMsgType::kTupleAl, EncodeTupleIndex,
                            DecodeTupleIndex);
  ok &= table.RegisterCodec(CqMsgType::kTupleVl, EncodeTupleIndex,
                            DecodeTupleIndex);
  ok &= table.RegisterCodec(CqMsgType::kJoin, EncodeJoin, DecodeJoin);
  ok &= table.RegisterCodec(CqMsgType::kDaivJoin, EncodeDaivJoin,
                            DecodeDaivJoin);
  ok &= table.RegisterCodec(CqMsgType::kNotification, EncodeNotification,
                            DecodeNotification);
  ok &= table.RegisterCodec(CqMsgType::kUnsubscribe, EncodeUnsubscribe,
                            DecodeUnsubscribe);
  ok &= table.RegisterCodec(CqMsgType::kIpUpdate, EncodeIpUpdate,
                            DecodeIpUpdate);
  ok &= table.RegisterCodec(CqMsgType::kJfrtAck, EncodeJfrtAck,
                            DecodeJfrtAck);
  ok &= table.RegisterCodec(CqMsgType::kMigrateCmd, EncodeMigrateCmd,
                            DecodeMigrateCmd);
  ok &= table.RegisterCodec(CqMsgType::kMwQueryIndex, EncodeMwQueryIndex,
                            DecodeMwQueryIndex);
  ok &= table.RegisterCodec(CqMsgType::kMwJoin, EncodeMwJoin, DecodeMwJoin);
  ok &= table.RegisterCodec(CqMsgType::kOtjScan, EncodeOtjScan,
                            DecodeOtjScan);
  ok &= table.RegisterCodec(CqMsgType::kOtjRehash, EncodeOtjRehash,
                            DecodeOtjRehash);
  ok &= table.RegisterCodec(CqMsgType::kNotificationDigest,
                            EncodeNotificationDigest,
                            DecodeNotificationDigest);
  ok &= table.RegisterCodec(CqMsgType::kDeliveryAck, EncodeDeliveryAck,
                            DecodeDeliveryAck);
  ok &= table.RegisterCodec(CqMsgType::kAdaptReplicate, EncodeAdaptReplicate,
                            DecodeAdaptReplicate);
  ok &= table.RegisterCodec(CqMsgType::kAdaptSplit, EncodeAdaptSplit,
                            DecodeAdaptSplit);
  CJ_CHECK(ok) << "duplicate codec registration";
  for (size_t i = 0; i < kCqMsgTypeCount; ++i) {
    CJ_CHECK(table.HasCodec(static_cast<CqMsgType>(i)))
        << "no codec for CqMsgType " << i;
  }
  return table;
}

constexpr uint8_t kFrameVersion = 1;

}  // namespace

// --- Registry -------------------------------------------------------------------

const PayloadCodec& PayloadCodec::Default() {
  static const PayloadCodec table = BuildDefaultCodec();
  return table;
}

bool PayloadCodec::RegisterCodec(CqMsgType type, EncodeFn encode,
                                 DecodeFn decode) {
  size_t i = static_cast<size_t>(type);
  if (i >= kCqMsgTypeCount) return false;
  if (entries_[i].encode != nullptr || entries_[i].decode != nullptr) {
    return false;
  }
  if (encode == nullptr || decode == nullptr) return false;
  entries_[i] = {encode, decode};
  return true;
}

bool PayloadCodec::HasCodec(CqMsgType type) const {
  size_t i = static_cast<size_t>(type);
  return i < kCqMsgTypeCount && entries_[i].encode != nullptr;
}

bool PayloadCodec::Encode(const CqPayload& payload, wire::Writer& w) const {
  size_t i = static_cast<size_t>(payload.type);
  if (i >= kCqMsgTypeCount || entries_[i].encode == nullptr) return false;
  size_t mark = w.size();
  w.U8(static_cast<uint8_t>(payload.type));
  if (!entries_[i].encode(payload, w)) {
    // Roll back the tag so a failed encode leaves the buffer untouched.
    CJ_CHECK(w.size() == mark + 1);
    w.Truncate(mark);
    return false;
  }
  return true;
}

std::shared_ptr<const CqPayload> PayloadCodec::Decode(
    wire::Reader& r, const rel::Catalog& catalog) const {
  uint8_t tag = r.U8();
  if (!r.ok() || tag >= kCqMsgTypeCount) return nullptr;
  CqMsgType type = static_cast<CqMsgType>(tag);
  return entries_[tag].decode(type, r, catalog);
}

// --- Message & frame codecs -----------------------------------------------------

bool EncodeAppMessage(const chord::AppMessage& msg, wire::Writer& w) {
  size_t mark = w.size();
  w.Id(msg.target);
  w.U8(static_cast<uint8_t>(msg.cls));
  w.U8(static_cast<uint8_t>(msg.kind));
  w.U64(msg.reliable_id);
  w.Id(msg.reliable_origin);
  bool ok = false;
  switch (msg.kind) {
    case chord::MsgKind::kApp: {
      const auto* p = dynamic_cast<const CqPayload*>(msg.payload.get());
      ok = p != nullptr && PayloadCodec::Default().Encode(*p, w);
      break;
    }
    case chord::MsgKind::kDhtStore: {
      const auto* p =
          dynamic_cast<const chord::DhtStorePayload*>(msg.payload.get());
      const auto* item =
          p != nullptr ? dynamic_cast<const CqPayload*>(p->item.get())
                       : nullptr;
      if (item != nullptr) {
        w.Id(p->key);
        ok = PayloadCodec::Default().Encode(*item, w);
      }
      break;
    }
    case chord::MsgKind::kDhtFetch:
      // Carries a completion closure; simulator-only by design.
      ok = false;
      break;
  }
  if (!ok) w.Truncate(mark);
  return ok;
}

bool DecodeAppMessage(wire::Reader& r, const rel::Catalog& catalog,
                      chord::AppMessage* out) {
  out->target = r.Id();
  out->cls = static_cast<sim::MsgClass>(r.U8());
  out->kind = static_cast<chord::MsgKind>(r.U8());
  out->reliable_id = r.U64();
  out->reliable_origin = r.Id();
  if (!r.ok() ||
      static_cast<int>(out->cls) >=
          static_cast<int>(sim::MsgClass::kClassCount)) {
    return false;
  }
  switch (out->kind) {
    case chord::MsgKind::kApp: {
      out->payload = PayloadCodec::Default().Decode(r, catalog);
      return out->payload != nullptr && r.ok();
    }
    case chord::MsgKind::kDhtStore: {
      auto store = std::make_shared<chord::DhtStorePayload>();
      store->key = r.Id();
      store->item = PayloadCodec::Default().Decode(r, catalog);
      if (store->item == nullptr || !r.ok()) return false;
      out->payload = std::move(store);
      return true;
    }
    case chord::MsgKind::kDhtFetch:
      return false;
  }
  return false;
}

// contjoin-check: hot
std::vector<uint8_t> EncodeHopFrame(const chord::HopFrame& frame) {
  wire::Writer w;
  w.U8(kFrameVersion);
  w.U8(static_cast<uint8_t>(frame.kind));
  w.U8(static_cast<uint8_t>(frame.cls));
  w.U32(static_cast<uint32_t>(frame.ttl));
  if (frame.kind == chord::HopFrame::Kind::kBroadcast) {
    const auto* p =
        dynamic_cast<const CqPayload*>(frame.broadcast_payload.get());
    if (p == nullptr || !PayloadCodec::Default().Encode(*p, w)) return {};
    w.Id(frame.broadcast_limit);
  } else {
    w.U32(static_cast<uint32_t>(frame.msgs.size()));
    for (const chord::AppMessage& msg : frame.msgs) {
      if (!EncodeAppMessage(msg, w)) return {};
    }
  }
  return w.Take();
}

// contjoin-check: hot
bool DecodeHopFrame(const uint8_t* data, size_t size,
                    const rel::Catalog& catalog, chord::HopFrame* out) {
  wire::Reader r(data, size);
  if (r.U8() != kFrameVersion) return false;
  uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(chord::HopFrame::Kind::kBroadcast)) {
    return false;
  }
  out->kind = static_cast<chord::HopFrame::Kind>(kind);
  uint8_t cls = r.U8();
  if (cls >= static_cast<uint8_t>(sim::MsgClass::kClassCount)) return false;
  out->cls = static_cast<sim::MsgClass>(cls);
  out->ttl = static_cast<int>(r.U32());
  if (out->kind == chord::HopFrame::Kind::kBroadcast) {
    out->broadcast_payload = PayloadCodec::Default().Decode(r, catalog);
    if (out->broadcast_payload == nullptr) return false;
    out->broadcast_limit = r.Id();
  } else {
    uint32_t n = r.U32();
    if (!r.ok() || n > r.remaining()) return false;
    out->msgs.clear();
    out->msgs.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      chord::AppMessage msg;
      if (!DecodeAppMessage(r, catalog, &msg)) return false;
      out->msgs.push_back(std::move(msg));
    }
  }
  return r.AtEnd();
}

size_t EncodedFrameSize(const chord::HopFrame& frame) {
  return EncodeHopFrame(frame).size();
}

}  // namespace contjoin::core
