// The rewriter role (attribute level, paper §4.3): stores queries in the
// ALQT, keeps per-attribute arrival statistics, reacts to al-indexed tuples
// by rewriting triggered queries down to the value level, and owns the §4.7
// machinery — moved identifiers, attribute-level replication and the join
// fingers routing table.

#ifndef CONTJOIN_CORE_REWRITER_H_
#define CONTJOIN_CORE_REWRITER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "chord/types.h"
#include "core/context.h"
#include "core/jfrt.h"
#include "core/tables.h"

namespace contjoin::core {

/// Per-attribute arrival statistics a rewriter keeps so index-attribute
/// selection strategies can consult it at query-submission time (§4.3.6:
/// "any node can simply ask the two possible rewriter nodes").
struct AttrArrivalStats {
  uint64_t tuples_seen = 0;
  /// Bounded per-value frequency map (skew / distinct-count estimation).
  /// Ordered: when two bounded maps merge at the capacity limit (§4.7
  /// identifier moves), the iteration order decides which values stay
  /// tracked, so it must not depend on hash-table layout.
  std::map<std::string, uint64_t> value_counts;
  uint64_t overflow_values = 0;  // Arrivals beyond the tracked-value cap.

  static constexpr size_t kMaxTrackedValues = 4096;

  void Record(const std::string& value_key);
  /// Folds another node's statistics in (identifier migration, §4.7).
  void Merge(const AttrArrivalStats& other);
  /// Share of the most frequent value (1.0 = fully skewed).
  double SkewEstimate() const;
  size_t DistinctEstimate() const { return value_counts.size(); }
};

namespace rewriter {

/// The tables a node keeps to play the rewriter role.
struct State {
  explicit State(size_t jfrt_capacity) : jfrt(jfrt_capacity) {}

  AttrLevelQueryTable alqt;
  Jfrt jfrt;

  /// Arrival statistics per attribute-level key "R+A#<replica>".
  std::unordered_map<std::string, AttrArrivalStats> attr_stats;
  std::unordered_set<std::string> sent_rewritten_keys;  // DAI-T dedup (§4.4.3).

  /// §4.7 "moving an identifier": at the base node of a moved key, where
  /// the role now lives; at the holder, the generation it holds.
  struct MovedAttr {
    int generation;
    chord::Node* holder;
  };
  std::unordered_map<std::string, MovedAttr> moved_attrs;
  std::unordered_map<std::string, int> held_generation;
  /// query key -> evaluator identifiers used (for unsubscription).
  std::unordered_map<std::string, std::set<chord::NodeId>> query_evaluators;
};

/// Attribute-level bucket key: "R+A#<replica>". One node can hold buckets
/// for several (key, replica) pairs, especially after identifier moves.
std::string MKey(const std::string& level1, int replica);

/// Forwards an attribute-level message when its key has moved (§4.7);
/// returns true if forwarded.
bool ForwardIfMoved(ProtocolContext& ctx, chord::Node& node, State& state,
                    const std::string& mkey, const chord::AppMessage& msg);

// Message handlers (wired up by the dispatch registry).
void HandleQueryIndex(ProtocolContext& ctx, chord::Node& node,
                      const chord::AppMessage& msg);
void HandleTupleAl(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg);
void HandleUnsubscribe(ProtocolContext& ctx, chord::Node& node,
                       const chord::AppMessage& msg);
void HandleMigrateCmd(ProtocolContext& ctx, chord::Node& node,
                      const chord::AppMessage& msg);
void HandleJfrtAck(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg);

}  // namespace rewriter
}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_REWRITER_H_
