#include "core/rewriter.h"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "chord/node.h"
#include "common/logging.h"
#include "core/adapt_protocol.h"
#include "core/algorithm.h"
#include "core/evaluator.h"
#include "core/messages.h"
#include "core/mw_protocol.h"
#include "core/reliability.h"
#include "core/state.h"

namespace contjoin::core {

void AttrArrivalStats::Record(const std::string& value_key) {
  ++tuples_seen;
  if (value_counts.size() < kMaxTrackedValues ||
      value_counts.count(value_key) > 0) {
    ++value_counts[value_key];
  } else {
    ++overflow_values;
  }
}

void AttrArrivalStats::Merge(const AttrArrivalStats& other) {
  tuples_seen += other.tuples_seen;
  overflow_values += other.overflow_values;
  for (const auto& [value, count] : other.value_counts) {
    if (value_counts.size() < kMaxTrackedValues ||
        value_counts.count(value) > 0) {
      value_counts[value] += count;
    } else {
      overflow_values += count;
    }
  }
}

double AttrArrivalStats::SkewEstimate() const {
  if (tuples_seen == 0) return 0.0;
  uint64_t max_count = 0;
  for (const auto& [value, count] : value_counts) {
    max_count = std::max(max_count, count);
  }
  return static_cast<double>(max_count) / static_cast<double>(tuples_seen);
}

namespace rewriter {

std::string MKey(const std::string& level1, int replica) {
  return level1 + "#" + std::to_string(replica);
}

bool ForwardIfMoved(ProtocolContext& ctx, chord::Node& node, State& state,
                    const std::string& mkey, const chord::AppMessage& msg) {
  auto moved = state.moved_attrs.find(mkey);
  if (moved == state.moved_attrs.end()) return false;
  chord::Node* holder = moved->second.holder;
  if (holder == nullptr || !holder->alive()) {
    // The holder left the ring: the role falls back to the base node
    // (best-effort; the moved state is lost, as with any departure).
    state.moved_attrs.erase(moved);
    return false;
  }
  chord::AppMessage copy = msg;
  ctx.TransmitMessage(node, holder->id(), std::move(copy));
  return true;
}

void HandleQueryIndex(ProtocolContext& ctx, chord::Node& node,
                      const chord::AppMessage& msg) {
  const auto& p = *static_cast<const QueryIndexPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  std::string mkey = MKey(p.level1, p.replica);
  if (ForwardIfMoved(ctx, node, state.rewriter, mkey, msg)) return;
  ++state.metrics.queries_received;
  state.rewriter.alqt.Insert(mkey, p.query->signature(),
                             AlqtEntry{p.query, p.index_side});
  adapt::OnQueryIndexed(ctx, node, p);
}

namespace {

// --- Rewriting machinery -----------------------------------------------------

struct PendingJoin {
  chord::NodeId vindex;
  std::shared_ptr<JoinPayload> payload;
};
struct PendingDaivJoin {
  chord::NodeId vindex;
  std::shared_ptr<DaivJoinPayload> payload;
};

/// Rewrites the T1 query of `entry` triggered by `tuple` into a
/// select-project query reindexed at the value level (§4.3.2/§4.3.3).
void RewriteT1(ProtocolContext& ctx, chord::Node& node, NodeState& state,
               const AlqtEntry& entry, const rel::Tuple& tuple,
               std::map<std::string, PendingJoin>* out) {
  const query::ContinuousQuery& q = *entry.query;
  const int s = entry.index_side;
  const int o = 1 - s;
  const query::QuerySide& trigger_side = q.side(s);
  const query::QuerySide& remaining = q.side(o);
  CJ_CHECK(remaining.linear.has_value()) << "T1 side lost its linear form";

  auto val_idx = trigger_side.join_expr->EvalSingle(s, tuple);
  if (!val_idx.ok()) return;
  // SQL semantics: a null join value never matches anything.
  if (val_idx.value().is_null()) return;
  rel::ValueType attr_type =
      remaining.schema->attribute(remaining.linear->ref.attr_index).type;
  auto val_da =
      query::InvertLinear(*remaining.linear, attr_type, val_idx.value());
  if (!val_da.has_value()) {
    // No representable solution: the rewritten query could never match, so
    // it is not reindexed (§4.3.2, saving a message).
    ++state.metrics.rewrites_skipped_nosol;
    return;
  }
  std::string value_key = val_da->ToKeyString();

  // Bind the trigger side's select values (the generalized projection).
  RowTemplate row(q.select().size());
  std::string bound;
  for (size_t i = 0; i < q.select().size(); ++i) {
    const query::SelectItem& item = q.select()[i];
    if (item.ref.side == s) {
      row[i] = tuple.at(item.ref.attr_index);
      bound += '\x1f';
      bound += row[i]->ToKeyString();
    }
  }
  // Key(q') = Key(q) + bound select values + valDA (§4.3.3), plus the
  // trigger side: without it, symmetric value coincidences across the two
  // sides of the join condition could collide into one key.
  std::string rewritten_key =
      q.key() + "|" + std::to_string(s) + "|" + bound + "|" + value_key;

  if (ctx.strategy().DeduplicatesRewrites(ctx.options())) {
    if (!state.rewriter.sent_rewritten_keys.insert(rewritten_key).second) {
      ++state.metrics.rewrites_skipped_dup;
      return;
    }
  }

  const std::string& dis_attr =
      remaining.schema->attribute(remaining.linear->ref.attr_index).name;
  const std::string level1 = AttrKey(remaining.relation, dis_attr);

  RewrittenEntry rewritten;
  rewritten.query = entry.query;
  rewritten.remaining_side = o;
  rewritten.rewritten_key = std::move(rewritten_key);
  rewritten.required_value = *val_da;
  rewritten.row = std::move(row);
  rewritten.trigger_pub = tuple.pub_time();
  rewritten.trigger_seq = tuple.seq();

  // Adaptive split fan: a hot value's rewritten queries go to every
  // virtual sub-key, so each shard can match the publications hashed
  // onto it alone. Unsplit values keep the single plain key.
  uint64_t split_version = 0;
  const int split =
      adapt::SplitFor(ctx, state, level1, value_key, &split_version);
  for (int shard = 0; shard < std::max(1, split); ++shard) {
    const std::string sub_key = adapt::SubValueKey(value_key, shard, split);
    std::string vkey_full = ValueKeyOf(remaining.relation, dis_attr, sub_key);
    PendingJoin& pending = (*out)[vkey_full];
    if (pending.payload == nullptr) {
      pending.vindex = HashKey(vkey_full);
      pending.payload = std::make_shared<JoinPayload>();
      pending.payload->level1 = level1;
      pending.payload->value_key = sub_key;
      pending.payload->rewriter = node.id();
      pending.payload->vindex = pending.vindex;
      pending.payload->known_split = std::max(1, split);
      pending.payload->split_version = split_version;
    }
    pending.payload->entries.push_back(rewritten);
    if (ctx.options().track_evaluators) {
      state.rewriter.query_evaluators[q.key()].insert(pending.vindex);
    }
  }
  ++state.metrics.rewrites_sent;
}

/// DAI-V rewrite (§4.5): the trigger tuple's projection travels with the
/// rewritten query to Hash(value) (or Hash(Key(q)+value)).
void RewriteDaiv(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                 const AlqtEntry& entry, const rel::Tuple& tuple,
                 std::map<std::string, PendingDaivJoin>* out) {
  const query::ContinuousQuery& q = *entry.query;
  const int s = entry.index_side;
  auto val_jc = q.side(s).join_expr->EvalSingle(s, tuple);
  if (!val_jc.ok()) return;
  if (val_jc.value().is_null()) return;  // Null join values never match.
  std::string value_key = val_jc.value().ToKeyString();

  RowTemplate row(q.select().size());
  for (size_t i = 0; i < q.select().size(); ++i) {
    const query::SelectItem& item = q.select()[i];
    if (item.ref.side == s) row[i] = tuple.at(item.ref.attr_index);
  }

  DaivEntry daiv_entry;
  daiv_entry.query = entry.query;
  daiv_entry.trigger_side = s;
  daiv_entry.row = std::move(row);
  daiv_entry.trigger_pub = tuple.pub_time();
  daiv_entry.trigger_seq = tuple.seq();

  // Adaptive split fan, side-aware: trigger-side-1 entries replicate to
  // every shard while trigger-side-0 entries hash to their sequence
  // shard, so every pair still meets at exactly one shard. The
  // key-prefixed variant (§4.5) is already partitioned per query and
  // stays unsplit.
  const bool prefixed = ctx.options().daiv_prefix_query_key;
  uint64_t split_version = 0;
  const int split =
      prefixed ? 1 : adapt::SplitFor(ctx, state, "", value_key, &split_version);
  std::vector<int> shards;
  if (split <= 1) {
    shards.push_back(0);
  } else if (s == 0) {
    shards.push_back(adapt::ShardOf(tuple.seq(), split));
  } else {
    for (int j = 0; j < split; ++j) shards.push_back(j);
  }
  for (int shard : shards) {
    const std::string sub_key = adapt::SubValueKey(value_key, shard, split);
    // Group key: DAI-V groups purely by value (here: per sub-key); the
    // key-prefixed variant separates queries and loses grouping — that
    // is its cost.
    std::string group_key = prefixed ? q.key() + "+" + value_key : sub_key;
    PendingDaivJoin& pending = (*out)[group_key];
    if (pending.payload == nullptr) {
      pending.vindex = prefixed ? DaivPrefixedIndexId(q.key(), value_key)
                                : DaivIndexId(sub_key);
      pending.payload = std::make_shared<DaivJoinPayload>();
      pending.payload->value_key = prefixed ? value_key : sub_key;
      pending.payload->rewriter = node.id();
      pending.payload->vindex = pending.vindex;
      pending.payload->known_split = std::max(1, split);
      pending.payload->split_version = split_version;
    }
    pending.payload->entries.push_back(daiv_entry);
    if (ctx.options().track_evaluators) {
      state.rewriter.query_evaluators[q.key()].insert(pending.vindex);
    }
  }
  ++state.metrics.rewrites_sent;
}

/// Routes a join payload directly to a cached evaluator, falling back to
/// normal routing (with an ack request) if the cache entry went stale.
template <typename PayloadT>
void DeliverViaJfrt(ProtocolContext& ctx, chord::Node* from,
                    chord::Node* cached, const chord::NodeId& vindex,
                    std::shared_ptr<PayloadT> payload,
                    void (*handler)(ProtocolContext&, chord::Node&,
                                    const PayloadT&)) {
  if (ctx.options().reliability.enabled) {
    // Armed fast path: deliver through message dispatch at the cached node
    // so the receiver-side ack / dedup hook sees the message; a lost hop is
    // then retried by the origin's timer over normal routing.
    chord::AppMessage msg;
    msg.target = vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = payload;
    reliability::Arm(ctx, *from, msg);
    ctx.Transmit(from, cached, sim::MsgClass::kRewrittenQuery,
                 [ctx = &ctx, cached, vindex, msg, payload]() {
                   if (cached->IsResponsibleFor(vindex)) {
                     ctx->Redeliver(*cached, msg);
                     return;
                   }
                   // Stale cache entry: re-route under the same reliable
                   // id; the true evaluator's ack refreshes the table.
                   auto copy = std::make_shared<PayloadT>(*payload);
                   copy->want_ack = true;
                   chord::AppMessage fwd = msg;
                   fwd.payload = std::move(copy);
                   ctx->Send(*cached, std::move(fwd));
                 });
    return;
  }
  ctx.Transmit(
      from, cached, sim::MsgClass::kRewrittenQuery,
      [ctx = &ctx, cached, vindex, payload = std::move(payload), handler]() {
        if (cached->IsResponsibleFor(vindex)) {
          handler(*ctx, *cached, *payload);
          return;
        }
        // Stale cache entry: re-route; the true evaluator's ack will
        // refresh the rewriter's table.
        auto copy = std::make_shared<PayloadT>(*payload);
        copy->want_ack = true;
        chord::AppMessage msg;
        msg.target = vindex;
        msg.cls = sim::MsgClass::kRewrittenQuery;
        msg.payload = std::move(copy);
        ctx->Send(*cached, std::move(msg));
      });
}

/// Sends the grouped per-evaluator payloads, via the JFRT when enabled.
template <typename PendingT, typename PayloadT>
void DispatchPending(ProtocolContext& ctx, chord::Node& node,
                     NodeState& state, std::map<std::string, PendingT> joins,
                     void (*handler)(ProtocolContext&, chord::Node&,
                                     const PayloadT&)) {
  std::vector<chord::AppMessage> batch;
  for (auto& [vkey, pending] : joins) {
    if (ctx.options().use_jfrt) {
      chord::Node* cached = state.rewriter.jfrt.Lookup(pending.vindex);
      if (cached != nullptr && !cached->alive()) {
        // The cached evaluator left the ring: drop the entry and fall back
        // to routing (the new evaluator's ack will refill the table).
        state.rewriter.jfrt.Erase(pending.vindex);
        cached = nullptr;
      }
      if (cached != nullptr) {
        DeliverViaJfrt<PayloadT>(ctx, &node, cached, pending.vindex,
                                 std::move(pending.payload), handler);
        continue;
      }
      pending.payload->want_ack = true;
    }
    chord::AppMessage msg;
    msg.target = pending.vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(pending.payload);
    batch.push_back(std::move(msg));
  }
  reliability::ArmAll(ctx, node, batch);
  if (batch.size() == 1) {
    ctx.Send(node, std::move(batch[0]));
  } else if (!batch.empty()) {
    ctx.Multisend(node, std::move(batch), sim::MsgClass::kRewrittenQuery);
  }
}

}  // namespace

void HandleTupleAl(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg) {
  const auto& p = *static_cast<const TupleIndexPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  std::string mkey = MKey(p.level1, p.replica);
  if (ForwardIfMoved(ctx, node, state.rewriter, mkey, msg)) return;
  if (adapt::OnAttrTuple(ctx, node, p)) return;
  ++state.metrics.tuples_received_attr;
  ++state.metrics.filter_ops_attr;
  const rel::Tuple& tuple = *p.tuple;
  state.rewriter.attr_stats[mkey].Record(tuple.at(p.attr_index).ToKeyString());

  // Multi-way queries indexed under this key (extension).
  mw::TriggerAll(ctx, node, state, mkey, tuple);

  const AttrLevelQueryTable::GroupMap* groups = state.rewriter.alqt.Find(mkey);
  if (groups == nullptr) return;

  const AlgorithmStrategy& strategy = ctx.strategy();
  std::map<std::string, PendingJoin> t1_joins;
  std::map<std::string, PendingDaivJoin> daiv_joins;
  for (const auto& [signature, group] : *groups) {
    state.metrics.filter_ops_attr += group.size();
    for (const AlqtEntry& entry : group) {
      const query::ContinuousQuery& q = *entry.query;
      // Time semantics: only tuples published at/after insT(q) trigger it.
      if (tuple.pub_time() < q.insertion_time()) continue;
      if (!q.side(entry.index_side).SatisfiesPredicates(tuple)) continue;
      if (strategy.RewritesToDaiv()) {
        RewriteDaiv(ctx, node, state, entry, tuple, &daiv_joins);
      } else {
        RewriteT1(ctx, node, state, entry, tuple, &t1_joins);
      }
    }
  }
  if (!t1_joins.empty()) {
    DispatchPending<PendingJoin, JoinPayload>(
        ctx, node, state, std::move(t1_joins), evaluator::HandleJoin);
  }
  if (!daiv_joins.empty()) {
    DispatchPending<PendingDaivJoin, DaivJoinPayload>(
        ctx, node, state, std::move(daiv_joins), evaluator::HandleDaivJoin);
  }
}

void HandleUnsubscribe(ProtocolContext& ctx, chord::Node& node,
                       const chord::AppMessage& msg) {
  const auto& p = *static_cast<const UnsubscribePayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  if (p.at_evaluator) {
    evaluator::RemoveQuery(state.evaluator, p.query_key);
    return;
  }
  if (ForwardIfMoved(ctx, node, state.rewriter, MKey(p.level1, p.replica),
                     msg)) {
    return;
  }
  state.rewriter.alqt.RemoveQuery(p.query_key);
  auto tracked = state.rewriter.query_evaluators.find(p.query_key);
  if (tracked == state.rewriter.query_evaluators.end()) return;
  std::vector<chord::AppMessage> batch;
  for (const chord::NodeId& vindex : tracked->second) {
    auto payload = std::make_shared<UnsubscribePayload>();
    payload->query_key = p.query_key;
    payload->at_evaluator = true;
    chord::AppMessage out;
    out.target = vindex;
    out.cls = sim::MsgClass::kControl;
    out.payload = std::move(payload);
    batch.push_back(std::move(out));
  }
  state.rewriter.query_evaluators.erase(tracked);
  if (!batch.empty()) {
    ctx.Multisend(node, std::move(batch), sim::MsgClass::kControl);
  }
}

void HandleMigrateCmd(ProtocolContext& ctx, chord::Node& node,
                      const chord::AppMessage& msg) {
  const auto& p = *static_cast<const MigrateCmdPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  std::string mkey = MKey(p.level1, p.replica);

  // At the base node of an already-moved key: forward to the holder, with
  // the base recorded so the holder can update our pointer afterwards.
  auto moved = state.rewriter.moved_attrs.find(mkey);
  if (moved != state.rewriter.moved_attrs.end() &&
      moved->second.holder != nullptr && moved->second.holder->alive()) {
    auto fwd = std::make_shared<MigrateCmdPayload>(p);
    fwd->base = node.id();
    chord::Node* holder = moved->second.holder;
    chord::AppMessage copy = msg;
    copy.payload = std::move(fwd);
    ctx.TransmitMessage(node, holder->id(), std::move(copy));
    return;
  }

  // We hold the bucket: pick the next identifier and its successor.
  auto held = state.rewriter.held_generation.find(mkey);
  int next_gen =
      (held == state.rewriter.held_generation.end() ? 0 : held->second) + 1;
  chord::NodeId new_id = HashKey(mkey + "#m" + std::to_string(next_gen));
  chord::Node* target = node.FindSuccessor(new_id, sim::MsgClass::kControl);
  chord::Node* base = &node;
  if (p.base != chord::NodeId()) {
    chord::Node* b = ctx.NodeById(p.base);
    if (b != nullptr) base = b;
  }
  if (target == nullptr) return;
  if (target == &node) {
    // The fresh identifier still lands here; only the generation advances.
    state.rewriter.held_generation[mkey] = next_gen;
    return;
  }

  // Move the bucket and its statistics (one control transfer).
  auto bucket = std::make_shared<AttrLevelQueryTable::GroupMap>(
      state.rewriter.alqt.TakeLevel1(mkey));
  auto stats = std::make_shared<AttrArrivalStats>();
  auto stats_it = state.rewriter.attr_stats.find(mkey);
  if (stats_it != state.rewriter.attr_stats.end()) {
    *stats = std::move(stats_it->second);
    state.rewriter.attr_stats.erase(stats_it);
  }
  state.rewriter.held_generation.erase(mkey);
  ctx.Transmit(&node, target, sim::MsgClass::kControl,
               [ctx = &ctx, target, mkey, bucket, stats, next_gen]() {
                 rewriter::State& ts = ctx->StateOf(*target).rewriter;
                 for (auto& [signature, group] : *bucket) {
                   for (AlqtEntry& entry : group) {
                     ts.alqt.Insert(mkey, signature, std::move(entry));
                   }
                 }
                 ts.attr_stats[mkey].Merge(*stats);
                 ts.held_generation[mkey] = next_gen;
               });

  // Point the base at the new holder.
  if (base == &node) {
    state.rewriter.moved_attrs[mkey] = State::MovedAttr{next_gen, target};
  } else {
    ctx.Transmit(&node, base, sim::MsgClass::kControl,
                 [ctx = &ctx, base, mkey, target, next_gen]() {
                   ctx->StateOf(*base).rewriter.moved_attrs[mkey] =
                       State::MovedAttr{next_gen, target};
                 });
  }
}

void HandleJfrtAck(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg) {
  const auto& p = *static_cast<const JfrtAckPayload*>(msg.payload.get());
  chord::Node* evaluator = ctx.NodeById(p.evaluator);
  if (evaluator == nullptr || !evaluator->alive()) return;
  ctx.StateOf(node).rewriter.jfrt.Insert(p.vindex, evaluator);
}

}  // namespace rewriter
}  // namespace contjoin::core
