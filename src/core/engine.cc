#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "core/subscriber.h"

namespace contjoin::core {

// --- Construction -------------------------------------------------------------

ContinuousQueryNetwork::ContinuousQueryNetwork(Options options)
    : options_(std::move(options)),
      strategy_(&AlgorithmStrategy::For(options_.algorithm)),
      network_(&simulator_, options_.chord),
      rng_(options_.seed) {
  nodes_ = network_.BuildIdealRing(options_.num_nodes);
  for (chord::Node* node : nodes_) {
    node->set_app(this);
    states_.emplace(node, std::make_unique<NodeState>(options_.jfrt_capacity));
    nodes_by_key_[node->key()] = node;
  }
}

ContinuousQueryNetwork::~ContinuousQueryNetwork() = default;

NodeState& ContinuousQueryNetwork::StateOf(chord::Node& node) {
  auto it = states_.find(&node);
  CJ_CHECK(it != states_.end()) << "node without engine state";
  return *it->second;
}

void ContinuousQueryNetwork::Tick() {
  simulator_.AdvanceTo(simulator_.Now() + options_.time_step);
}

// --- Message dispatch ---------------------------------------------------------------

void ContinuousQueryNetwork::HandleMessage(chord::Node& node,
                                           const chord::AppMessage& msg) {
  MessageDispatcher::Default().Dispatch(*this, node, msg);
}

void ContinuousQueryNetwork::HandleStoredItems(
    chord::Node& node, const chord::NodeId& key,
    std::vector<chord::PayloadPtr> items) {
  subscriber::AbsorbStoredItems(*this, node, key, std::move(items));
}

// --- Results & dynamics ---------------------------------------------------------------

std::vector<Notification> ContinuousQueryNetwork::TakeNotifications(
    size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  subscriber::State& sub = StateOf(*nodes_[node_index]).subscriber;
  std::vector<Notification> out = std::move(sub.inbox);
  sub.inbox.clear();
  return out;
}

size_t ContinuousQueryNetwork::PendingNotifications(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  auto it = states_.find(nodes_[node_index]);
  return it->second->subscriber.inbox.size();
}

void ContinuousQueryNetwork::DisconnectNode(size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  nodes_[node_index]->LeaveGracefully();
  network_.RewireIdeal();
  simulator_.Run();
}

void ContinuousQueryNetwork::ReconnectNode(size_t node_index, bool new_ip) {
  CJ_CHECK(node_index < nodes_.size());
  chord::Node* node = nodes_[node_index];
  chord::Node* bootstrap = nullptr;
  for (chord::Node* n : nodes_) {
    if (n->alive()) {
      bootstrap = n;
      break;
    }
  }
  CJ_CHECK(bootstrap != nullptr) << "no alive node to bootstrap from";
  node->Reconnect(bootstrap, new_ip);
  network_.RewireIdeal();
  simulator_.Run();
}

// --- Metrics -------------------------------------------------------------------------

const NodeMetrics& ContinuousQueryNetwork::metrics(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  return states_.find(nodes_[node_index])->second->metrics;
}

NodeStorage ContinuousQueryNetwork::storage(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  const chord::Node* node = nodes_[node_index];
  const NodeState& state = *states_.find(node)->second;
  NodeStorage out;
  out.alqt_queries = state.rewriter.alqt.size();
  out.vlqt_rewritten = state.evaluator.vlqt.size();
  out.vltt_tuples = state.evaluator.vltt.size();
  out.daiv_entries = state.evaluator.daiv.size();
  out.stored_notifications = const_cast<chord::Node*>(node)->store().size();
  out.mw_queries = state.mw.alqt_size;
  out.mw_partials = state.mw.vlqt_size;
  return out;
}

const NodeState* ContinuousQueryNetwork::state(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  return states_.find(nodes_[node_index])->second.get();
}

namespace {

/// Per-alive-node load distribution over an arbitrary projection.
template <typename Fn>
LoadDistribution DistributionOver(const std::vector<chord::Node*>& nodes,
                                  Fn&& load_of) {
  LoadDistribution out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i]->alive()) continue;
    out.Add(static_cast<double>(load_of(i)));
  }
  return out;
}

}  // namespace

LoadDistribution ContinuousQueryNetwork::FilteringLoadDistribution() const {
  return DistributionOver(
      nodes_, [this](size_t i) { return metrics(i).TotalFilterOps(); });
}

LoadDistribution ContinuousQueryNetwork::AttrFilteringLoadDistribution()
    const {
  return DistributionOver(
      nodes_, [this](size_t i) { return metrics(i).filter_ops_attr; });
}

LoadDistribution ContinuousQueryNetwork::ValueFilteringLoadDistribution()
    const {
  return DistributionOver(
      nodes_, [this](size_t i) { return metrics(i).filter_ops_value; });
}

LoadDistribution ContinuousQueryNetwork::StorageLoadDistribution() const {
  return DistributionOver(nodes_,
                          [this](size_t i) { return storage(i).Total(); });
}

NodeMetrics ContinuousQueryNetwork::TotalMetrics() const {
  NodeMetrics total;
  // contjoin-check: ordered-ok(commutative accumulation of counters)
  for (const auto& [node, state] : states_) total.Accumulate(state->metrics);
  return total;
}

NodeStorage ContinuousQueryNetwork::TotalStorage() const {
  NodeStorage total;
  for (size_t i = 0; i < nodes_.size(); ++i) total.Accumulate(storage(i));
  return total;
}

void ContinuousQueryNetwork::ResetLoadMetrics() {
  // contjoin-check: ordered-ok(independent per-node reset, no emission)
  for (auto& [node, state] : states_) state->metrics.Reset();
  network_.stats().Reset();
}

size_t ContinuousQueryNetwork::PruneExpired() {
  if (options_.window == 0) return 0;
  rel::Timestamp now_time = simulator_.Now();
  rel::Timestamp cutoff =
      now_time > options_.window ? now_time - options_.window : 0;
  size_t dropped = 0;
  // contjoin-check: ordered-ok(commutative sum of per-node expiry counts)
  for (auto& [node, state] : states_) {
    dropped += evaluator::ExpireBefore(state->evaluator, cutoff);
  }
  return dropped;
}

}  // namespace contjoin::core
