#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace contjoin::core {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSai:
      return "SAI";
    case Algorithm::kDaiQ:
      return "DAI-Q";
    case Algorithm::kDaiT:
      return "DAI-T";
    case Algorithm::kDaiV:
      return "DAI-V";
  }
  return "?";
}

const char* SaiStrategyName(SaiStrategy s) {
  switch (s) {
    case SaiStrategy::kRandom:
      return "random";
    case SaiStrategy::kLowerRate:
      return "lower-rate";
    case SaiStrategy::kLowerSkew:
      return "lower-skew";
    case SaiStrategy::kSmallerDomain:
      return "smaller-domain";
  }
  return "?";
}

void AttrArrivalStats::Record(const std::string& value_key) {
  ++tuples_seen;
  if (value_counts.size() < kMaxTrackedValues ||
      value_counts.count(value_key) > 0) {
    ++value_counts[value_key];
  } else {
    ++overflow_values;
  }
}

void AttrArrivalStats::Merge(const AttrArrivalStats& other) {
  tuples_seen += other.tuples_seen;
  overflow_values += other.overflow_values;
  for (const auto& [value, count] : other.value_counts) {
    if (value_counts.size() < kMaxTrackedValues ||
        value_counts.count(value) > 0) {
      value_counts[value] += count;
    } else {
      overflow_values += count;
    }
  }
}

double AttrArrivalStats::SkewEstimate() const {
  if (tuples_seen == 0) return 0.0;
  uint64_t max_count = 0;
  for (const auto& [value, count] : value_counts) {
    max_count = std::max(max_count, count);
  }
  return static_cast<double>(max_count) / static_cast<double>(tuples_seen);
}

// --- Construction -------------------------------------------------------------

ContinuousQueryNetwork::ContinuousQueryNetwork(Options options)
    : options_(std::move(options)),
      network_(&simulator_, options_.chord),
      rng_(options_.seed) {
  nodes_ = network_.BuildIdealRing(options_.num_nodes);
  for (chord::Node* node : nodes_) {
    node->set_app(this);
    states_.emplace(node, std::make_unique<NodeState>(options_.jfrt_capacity));
    nodes_by_key_[node->key()] = node;
  }
}

ContinuousQueryNetwork::~ContinuousQueryNetwork() = default;

namespace {

/// Attribute-level bucket key: "R+A#<replica>". One node can hold buckets
/// for several (key, replica) pairs, especially after identifier moves.
std::string MKey(const std::string& level1, int replica) {
  return level1 + "#" + std::to_string(replica);
}

}  // namespace

NodeState& ContinuousQueryNetwork::StateOf(chord::Node& node) {
  auto it = states_.find(&node);
  CJ_CHECK(it != states_.end()) << "node without engine state";
  return *it->second;
}

void ContinuousQueryNetwork::Tick() {
  simulator_.AdvanceTo(simulator_.Now() + options_.time_step);
}

// --- Submission ------------------------------------------------------------------

uint64_t ContinuousQueryNetwork::ProbeAttrRate(size_t node_index,
                                               const std::string& relation,
                                               const std::string& attr,
                                               uint64_t* distinct,
                                               double* skew) {
  chord::Node* origin = nodes_[node_index];
  chord::NodeId aid = AttrIndexId(relation, attr, /*replica=*/0);
  chord::Node* rewriter = origin->FindSuccessor(aid, sim::MsgClass::kControl);
  if (rewriter == nullptr) {
    *distinct = 0;
    *skew = 0;
    return 0;
  }
  network_.CountHop(sim::MsgClass::kControl);  // The response.
  std::string mkey = MKey(AttrKey(relation, attr), 0);
  // Follow a moved identifier (§4.7) to the statistics' current holder.
  auto moved = StateOf(*rewriter).moved_attrs.find(mkey);
  if (moved != StateOf(*rewriter).moved_attrs.end() &&
      moved->second.holder != nullptr && moved->second.holder->alive()) {
    rewriter = moved->second.holder;
    network_.CountHop(sim::MsgClass::kControl);
  }
  const AttrArrivalStats& stats = StateOf(*rewriter).attr_stats[mkey];
  *distinct = stats.DistinctEstimate();
  *skew = stats.SkewEstimate();
  return stats.tuples_seen;
}

int ContinuousQueryNetwork::ChooseSaiIndexSide(
    size_t node_index, const query::ContinuousQuery& q) {
  if (options_.sai_strategy == SaiStrategy::kRandom) {
    return static_cast<int>(rng_.NextBelow(2));
  }
  uint64_t rate[2], distinct[2];
  double skew[2];
  for (int s = 0; s < 2; ++s) {
    rate[s] = ProbeAttrRate(node_index, q.side(s).relation,
                            q.side(s).index_attr_name(), &distinct[s],
                            &skew[s]);
  }
  switch (options_.sai_strategy) {
    case SaiStrategy::kLowerRate:
      // Index by the relation whose tuples arrive more rarely: fewer
      // triggers, fewer rewrites, less traffic (§4.3.6).
      if (rate[0] != rate[1]) return rate[0] < rate[1] ? 0 : 1;
      break;
    case SaiStrategy::kLowerSkew:
      // Index by the attribute whose values spread evaluators widest.
      if (skew[0] != skew[1]) return skew[0] < skew[1] ? 0 : 1;
      break;
    case SaiStrategy::kSmallerDomain:
      // Index by the attribute with the smaller observed value range.
      if (distinct[0] != distinct[1]) return distinct[0] < distinct[1] ? 0 : 1;
      break;
    case SaiStrategy::kRandom:
      break;
  }
  return static_cast<int>(rng_.NextBelow(2));
}

StatusOr<std::string> ContinuousQueryNetwork::SubmitQuery(
    size_t node_index, std::string_view sql) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("submitting node is offline");
  }
  CJ_ASSIGN_OR_RETURN(query::ContinuousQuery parsed,
                      query::ParseQuery(sql, catalog_));
  if (parsed.type() == query::QueryType::kT2 &&
      options_.algorithm != Algorithm::kDaiV) {
    return Status::Unsupported(
        "queries of type T2 require DAI-V (paper §4.5); " +
        std::string(AlgorithmName(options_.algorithm)) +
        " handles only type T1");
  }

  Tick();
  NodeState& origin_state = StateOf(*origin);
  std::string key =
      origin->key() + "#" + std::to_string(origin_state.next_query_serial++);
  parsed.set_key(key);
  parsed.set_subscriber_key(origin->key());
  parsed.set_subscriber_ip(origin->ip());
  parsed.set_insertion_time(simulator_.Now());

  auto query = std::make_shared<const query::ContinuousQuery>(
      std::move(parsed));

  // Which sides index the query at the attribute level?
  std::vector<int> sides;
  if (options_.algorithm == Algorithm::kSai) {
    sides.push_back(ChooseSaiIndexSide(node_index, *query));
  } else {
    sides = {0, 1};  // DAI algorithms double-index (§4.4.1).
  }

  std::vector<chord::AppMessage> batch;
  for (int s : sides) {
    const query::QuerySide& side = query->side(s);
    for (int replica = 0; replica < options_.attribute_replication;
         ++replica) {
      auto payload = std::make_shared<QueryIndexPayload>();
      payload->query = query;
      payload->index_side = s;
      payload->level1 = AttrKey(side.relation, side.index_attr_name());
      payload->replica = replica;
      chord::AppMessage msg;
      msg.target =
          AttrIndexId(side.relation, side.index_attr_name(), replica);
      msg.cls = sim::MsgClass::kQueryIndex;
      msg.payload = std::move(payload);
      batch.push_back(std::move(msg));
    }
  }
  if (batch.size() == 1) {
    origin->Send(std::move(batch[0]));
  } else {
    origin->Multisend(std::move(batch), sim::MsgClass::kQueryIndex);
  }
  simulator_.Run();
  submitted_[key] = query;
  return key;
}

Status ContinuousQueryNetwork::InsertTuple(size_t node_index,
                                           const std::string& relation,
                                           std::vector<rel::Value> values) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("inserting node is offline");
  }
  const rel::RelationSchema* schema = catalog_.Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }

  Tick();
  auto tuple = std::make_shared<const rel::Tuple>(
      relation, std::move(values), simulator_.Now(), next_tuple_seq_++);
  CJ_RETURN_IF_ERROR(tuple->CheckAgainst(*schema));

  // Paper §4.2 (adapted for DAI-V §4.5: tuples are indexed only at the
  // attribute level there): one multisend batch carrying all identifiers.
  std::vector<chord::AppMessage> batch;
  for (size_t i = 0; i < schema->arity(); ++i) {
    const std::string& attr = schema->attribute(i).name;
    int replica = options_.attribute_replication <= 1
                      ? 0
                      : static_cast<int>(rng_.NextBelow(
                            static_cast<uint64_t>(
                                options_.attribute_replication)));
    auto al = std::make_shared<TupleIndexPayload>(/*value_level=*/false);
    al->tuple = tuple;
    al->attr_index = i;
    al->level1 = AttrKey(relation, attr);
    al->replica = replica;
    chord::AppMessage al_msg;
    al_msg.target = AttrIndexId(relation, attr, replica);
    al_msg.cls = sim::MsgClass::kTupleIndex;
    al_msg.payload = std::move(al);
    batch.push_back(std::move(al_msg));

    if (options_.algorithm != Algorithm::kDaiV) {
      auto vl = std::make_shared<TupleIndexPayload>(/*value_level=*/true);
      vl->tuple = tuple;
      vl->attr_index = i;
      vl->level1 = AttrKey(relation, attr);
      vl->value_key = tuple->at(i).ToKeyString();
      chord::AppMessage vl_msg;
      vl_msg.target = ValueIndexId(relation, attr, vl->value_key);
      vl_msg.cls = sim::MsgClass::kTupleIndex;
      vl_msg.payload = std::move(vl);
      batch.push_back(std::move(vl_msg));
    }
  }
  origin->Multisend(std::move(batch), sim::MsgClass::kTupleIndex);
  simulator_.Run();
  return Status::OK();
}

// --- Multi-way joins (extension) ------------------------------------------------------

namespace {

/// Canonical content identity of a partial binding: query, bound set,
/// bound select values and the pending join values. Identical keys imply
/// identical downstream results, so evaluators deduplicate on it.
std::string MwPartialKey(const MwPartial& p) {
  std::string out = p.query->key();
  out += "#" + std::to_string(p.bound_mask);
  for (const auto& v : p.row) {
    out += '\x1f';
    out += v.has_value() ? v->ToKeyString() : std::string("?");
  }
  for (const auto& [edge, value] : p.pending) {
    out += '\x1e';
    out += std::to_string(edge) + ":" + value.ToKeyString();
  }
  return out;
}

}  // namespace

StatusOr<std::string> ContinuousQueryNetwork::SubmitMultiwayQuery(
    size_t node_index, std::string_view sql) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (options_.algorithm != Algorithm::kSai) {
    return Status::Unsupported(
        "multi-way queries run on the recursive-SAI extension; set "
        "Algorithm::kSai");
  }
  if (options_.attribute_replication != 1) {
    return Status::Unsupported(
        "multi-way queries do not support attribute-level replication");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("submitting node is offline");
  }
  CJ_ASSIGN_OR_RETURN(query::MwQuery parsed,
                      query::ParseMwQuery(sql, catalog_));

  Tick();
  NodeState& origin_state = StateOf(*origin);
  std::string key =
      origin->key() + "#" + std::to_string(origin_state.next_query_serial++);
  parsed.set_key(key);
  parsed.set_subscriber_key(origin->key());
  parsed.set_subscriber_ip(origin->ip());
  parsed.set_insertion_time(simulator_.Now());
  auto query = std::make_shared<const query::MwQuery>(std::move(parsed));

  // Index at the attribute level under the root relation (index 0) and the
  // attribute of its lowest incident join condition.
  int root_cond = query->NextCondition(1u << 0);
  CJ_CHECK(root_cond >= 0) << "spanning tree must touch the root";
  const query::MwCondition& cond =
      query->conditions()[static_cast<size_t>(root_cond)];
  const query::MwRelation& root = query->relations()[0];
  const std::string& attr =
      root.schema->attribute(cond.AttrOn(0)).name;

  auto payload = std::make_shared<MwQueryIndexPayload>();
  payload->query = query;
  payload->level1 = AttrKey(root.relation, attr);
  chord::AppMessage msg;
  msg.target = AttrIndexId(root.relation, attr, /*replica=*/0);
  msg.cls = sim::MsgClass::kQueryIndex;
  msg.payload = std::move(payload);
  origin->Send(std::move(msg));
  simulator_.Run();
  return key;
}

void ContinuousQueryNetwork::HandleMwQueryIndex(chord::Node& node,
                                                const MwQueryIndexPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.queries_received;
  state.mw_alqt[MKey(p.level1, 0)].push_back(p.query);
  ++state.mw_alqt_size;
}

void ContinuousQueryNetwork::MwQueuePartial(MwPartial p, MwJoinMap* out) {
  const query::MwQuery& q = *p.query;
  const query::MwCondition& cond =
      q.conditions()[static_cast<size_t>(p.target_condition)];
  // The unbound endpoint of the chased condition.
  int bound_end = ((p.bound_mask >> cond.rel_a) & 1u) ? cond.rel_a
                                                      : cond.rel_b;
  int target_rel = cond.Other(bound_end);
  const query::MwRelation& rel =
      q.relations()[static_cast<size_t>(target_rel)];
  const std::string& attr =
      rel.schema->attribute(cond.AttrOn(target_rel)).name;
  const rel::Value& required = p.pending.at(p.target_condition);
  std::string value_key = required.ToKeyString();
  std::string vkey_full = ValueKeyOf(rel.relation, attr, value_key);

  PendingMwJoin& pending = (*out)[vkey_full];
  if (pending.payload == nullptr) {
    pending.vindex = HashKey(vkey_full);
    pending.payload = std::make_shared<MwJoinPayload>();
    pending.payload->level1 = AttrKey(rel.relation, attr);
    pending.payload->value_key = value_key;
  }
  pending.payload->entries.push_back(std::move(p));
}

void ContinuousQueryNetwork::MwTrigger(chord::Node& node, NodeState& state,
                                       const query::MwQueryPtr& q,
                                       const rel::Tuple& tuple,
                                       MwJoinMap* out) {
  int side = q->SideOfRelation(tuple.relation());
  CJ_CHECK(side >= 0);
  if (tuple.pub_time() < q->insertion_time()) return;
  if (!q->relations()[static_cast<size_t>(side)].SatisfiesPredicates(tuple)) {
    return;
  }
  MwPartial p;
  p.query = q;
  p.bound_mask = 1u << side;
  p.row.assign(q->select().size(), std::nullopt);
  for (size_t i = 0; i < q->select().size(); ++i) {
    if (q->select()[i].ref.side == side) {
      p.row[i] = tuple.at(q->select()[i].ref.attr_index);
    }
  }
  for (size_t c = 0; c < q->conditions().size(); ++c) {
    const query::MwCondition& cond = q->conditions()[c];
    if (!cond.Touches(side)) continue;
    const rel::Value& v = tuple.at(cond.AttrOn(side));
    if (v.is_null()) return;  // A null join value can never complete.
    p.pending.emplace(static_cast<int>(c), v);
  }
  p.min_pub = p.max_pub = tuple.pub_time();
  p.last_seq = tuple.seq();
  p.target_condition = q->NextCondition(p.bound_mask);
  CJ_CHECK(p.target_condition >= 0);
  p.partial_key = MwPartialKey(p);
  ++state.metrics.rewrites_sent;
  MwQueuePartial(std::move(p), out);
}

void ContinuousQueryNetwork::MwExtend(chord::Node& node, const MwPartial& p,
                                      const rel::Tuple& t2, MwJoinMap* out) {
  const query::MwQuery& q = *p.query;
  int side = q.SideOfRelation(t2.relation());
  CJ_CHECK(side >= 0);
  MwPartial np;
  np.query = p.query;
  np.bound_mask = p.bound_mask | (1u << side);
  np.row = p.row;
  for (size_t i = 0; i < q.select().size(); ++i) {
    if (q.select()[i].ref.side == side) {
      np.row[i] = t2.at(q.select()[i].ref.attr_index);
    }
  }
  np.pending = p.pending;
  np.pending.erase(p.target_condition);
  for (size_t c = 0; c < q.conditions().size(); ++c) {
    const query::MwCondition& cond = q.conditions()[c];
    if (!cond.Touches(side)) continue;
    int other = cond.Other(side);
    if ((np.bound_mask >> other) & 1u) continue;  // Already consumed.
    const rel::Value& v = t2.at(cond.AttrOn(side));
    if (v.is_null()) return;
    np.pending.emplace(static_cast<int>(c), v);
  }
  np.min_pub = std::min(p.min_pub, t2.pub_time());
  np.max_pub = std::max(p.max_pub, t2.pub_time());
  np.last_seq = std::max(p.last_seq, t2.seq());
  np.target_condition = q.NextCondition(np.bound_mask);
  if (np.target_condition < 0) {
    // Every relation bound: the combination is an answer.
    EmitMwNotification(node, q, np.row, np.min_pub, np.max_pub);
    return;
  }
  np.partial_key = MwPartialKey(np);
  ++StateOf(node).metrics.rewrites_sent;
  MwQueuePartial(std::move(np), out);
}

void ContinuousQueryNetwork::DispatchMwJoins(chord::Node& node,
                                             MwJoinMap joins) {
  std::vector<chord::AppMessage> batch;
  for (auto& [vkey, pending] : joins) {
    chord::AppMessage msg;
    msg.target = pending.vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(pending.payload);
    batch.push_back(std::move(msg));
  }
  if (batch.size() == 1) {
    node.Send(std::move(batch[0]));
  } else if (!batch.empty()) {
    node.Multisend(std::move(batch), sim::MsgClass::kRewrittenQuery);
  }
}

void ContinuousQueryNetwork::HandleMwJoin(chord::Node& node,
                                          const MwJoinPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.joins_received;
  ++state.metrics.filter_ops_value;
  MwJoinMap next;
  for (const MwPartial& entry : p.entries) {
    NodeState::MwBucket& bucket = state.mw_vlqt[p.level1][p.value_key];
    auto it = bucket.find(entry.partial_key);
    bool is_new = it == bucket.end();
    if (is_new) {
      bucket.emplace(entry.partial_key, entry);
      ++state.mw_vlqt_size;
    } else {
      // Identical content: keep the tightest publication span so windowed
      // matching stays maximally permissive for future tuples.
      if (entry.min_pub > it->second.min_pub) {
        it->second.min_pub = entry.min_pub;
        it->second.max_pub = entry.max_pub;
        it->second.last_seq = entry.last_seq;
      }
    }
    if (!is_new && options_.window == 0) continue;
    // Match against already-stored tuples of the target relation/value.
    const auto* tuples = state.vltt.Find(p.level1, p.value_key);
    if (tuples == nullptr) continue;
    const query::MwQuery& q = *entry.query;
    const query::MwCondition& cond =
        q.conditions()[static_cast<size_t>(entry.target_condition)];
    int bound_end = ((entry.bound_mask >> cond.rel_a) & 1u) ? cond.rel_a
                                                            : cond.rel_b;
    int target_rel = cond.Other(bound_end);
    const query::MwRelation& rel =
        q.relations()[static_cast<size_t>(target_rel)];
    for (const StoredTuple& st : *tuples) {
      ++state.metrics.filter_ops_value;
      const rel::Tuple& t2 = *st.tuple;
      if (t2.pub_time() < q.insertion_time()) continue;
      rel::Timestamp span_min = std::min(entry.min_pub, t2.pub_time());
      rel::Timestamp span_max = std::max(entry.max_pub, t2.pub_time());
      if (options_.window != 0 && span_max - span_min > options_.window) {
        continue;
      }
      if (!rel.SatisfiesPredicates(t2)) continue;
      MwExtend(node, entry, t2, &next);
    }
  }
  if (!next.empty()) DispatchMwJoins(node, std::move(next));
}

void ContinuousQueryNetwork::MwMatchTupleVl(chord::Node& node,
                                            NodeState& state,
                                            const TupleIndexPayload& p) {
  auto l1 = state.mw_vlqt.find(p.level1);
  if (l1 == state.mw_vlqt.end()) return;
  auto l2 = l1->second.find(p.value_key);
  if (l2 == l1->second.end()) return;
  const rel::Tuple& tuple = *p.tuple;
  MwJoinMap next;
  for (const auto& [partial_key, partial] : l2->second) {
    ++state.metrics.filter_ops_value;
    const query::MwQuery& q = *partial.query;
    if (tuple.pub_time() < q.insertion_time()) continue;
    rel::Timestamp span_min = std::min(partial.min_pub, tuple.pub_time());
    rel::Timestamp span_max = std::max(partial.max_pub, tuple.pub_time());
    if (options_.window != 0 && span_max - span_min > options_.window) {
      continue;
    }
    int side = q.SideOfRelation(tuple.relation());
    if (side < 0) continue;
    if (!q.relations()[static_cast<size_t>(side)].SatisfiesPredicates(
            tuple)) {
      continue;
    }
    MwExtend(node, partial, tuple, &next);
  }
  if (!next.empty()) DispatchMwJoins(node, std::move(next));
}

// --- One-time joins (PIER baseline) ---------------------------------------------------

StatusOr<std::vector<Notification>> ContinuousQueryNetwork::OneTimeJoin(
    size_t node_index, std::string_view sql) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (options_.algorithm != Algorithm::kSai &&
      options_.algorithm != Algorithm::kDaiQ) {
    return Status::Unsupported(
        "one-time joins scan value-level tuple storage, which only SAI and "
        "DAI-Q maintain");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("issuing node is offline");
  }
  CJ_ASSIGN_OR_RETURN(query::ContinuousQuery parsed,
                      query::ParseQuery(sql, catalog_));

  Tick();
  uint64_t otj_id = next_otj_id_++;
  parsed.set_key(origin->key() + "#otj" + std::to_string(otj_id));
  parsed.set_subscriber_key(origin->key());
  parsed.set_subscriber_ip(origin->ip());
  parsed.set_insertion_time(0);  // Snapshot: every stored tuple qualifies.
  auto query = std::make_shared<const query::ContinuousQuery>(
      std::move(parsed));

  auto payload = std::make_shared<OtjScanPayload>();
  payload->query = query;
  payload->otj_id = otj_id;
  payload->issuer = origin;
  origin->Broadcast(std::move(payload), sim::MsgClass::kOneTime);
  simulator_.Run();

  std::vector<Notification> results = std::move(otj_results_[otj_id]);
  otj_results_.erase(otj_id);
  // Drop the temporary collector buffers of this execution.
  for (auto& [node, state] : states_) state->otj_buffers.erase(otj_id);
  return results;
}

void ContinuousQueryNetwork::HandleOtjScan(chord::Node& node,
                                           const OtjScanPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.filter_ops_value;
  const query::ContinuousQuery& q = *p.query;

  // Rehash this node's slice of the two base relations by join value.
  // Every tuple lives in the VLTT once per attribute; the copy stored
  // under attribute 0 is the canonical one for scans.
  struct Pending {
    chord::NodeId vindex;
    std::shared_ptr<OtjRehashPayload> payload;
  };
  std::map<std::string, Pending> groups;
  state.vltt.ForEach([&](const StoredTuple& stored) {
    if (stored.index_attr != 0) return;
    const rel::Tuple& tuple = *stored.tuple;
    int side = q.SideOfRelation(tuple.relation());
    if (side < 0) return;
    ++state.metrics.filter_ops_value;
    if (!q.side(side).SatisfiesPredicates(tuple)) return;
    auto value = q.side(side).join_expr->EvalSingle(side, tuple);
    if (!value.ok() || value.value().is_null()) return;
    std::string value_key = value.value().ToKeyString();

    OtjTuple entry;
    entry.side = side;
    entry.row.assign(q.select().size(), std::nullopt);
    for (size_t i = 0; i < q.select().size(); ++i) {
      if (q.select()[i].ref.side == side) {
        entry.row[i] = tuple.at(q.select()[i].ref.attr_index);
      }
    }
    entry.pub_time = tuple.pub_time();
    entry.seq = tuple.seq();

    Pending& pending = groups[value_key];
    if (pending.payload == nullptr) {
      pending.vindex = HashKey("otj#" + std::to_string(p.otj_id) + "#" +
                               value_key);
      pending.payload = std::make_shared<OtjRehashPayload>();
      pending.payload->query = p.query;
      pending.payload->otj_id = p.otj_id;
      pending.payload->issuer = p.issuer;
      pending.payload->value_key = value_key;
    }
    pending.payload->entries.push_back(std::move(entry));
  });

  std::vector<chord::AppMessage> batch;
  for (auto& [value_key, pending] : groups) {
    chord::AppMessage msg;
    msg.target = pending.vindex;
    msg.cls = sim::MsgClass::kOneTime;
    msg.payload = std::move(pending.payload);
    batch.push_back(std::move(msg));
  }
  if (batch.size() == 1) {
    node.Send(std::move(batch[0]));
  } else if (!batch.empty()) {
    node.Multisend(std::move(batch), sim::MsgClass::kOneTime);
  }
}

void ContinuousQueryNetwork::HandleOtjRehash(chord::Node& node,
                                             const OtjRehashPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.filter_ops_value;
  const query::ContinuousQuery& q = *p.query;
  auto& sides = state.otj_buffers[p.otj_id][p.value_key];
  auto rows = std::make_shared<std::vector<Notification>>();
  for (const OtjTuple& entry : p.entries) {
    // Symmetric hash join: probe the opposite buffer, then insert.
    for (const OtjTuple& other :
         sides[static_cast<size_t>(1 - entry.side)]) {
      ++state.metrics.filter_ops_value;
      Notification n;
      n.query_key = q.key();
      n.row.reserve(q.select().size());
      bool complete = true;
      for (size_t i = 0; i < q.select().size(); ++i) {
        const auto& mine = entry.row[i];
        const auto& theirs = other.row[i];
        if (mine.has_value()) {
          n.row.push_back(*mine);
        } else if (theirs.has_value()) {
          n.row.push_back(*theirs);
        } else {
          complete = false;
          break;
        }
      }
      if (!complete) continue;
      n.earlier_pub = std::min(entry.pub_time, other.pub_time);
      n.later_pub = std::max(entry.pub_time, other.pub_time);
      n.created_at = simulator_.Now();
      rows->push_back(std::move(n));
    }
    sides[static_cast<size_t>(entry.side)].push_back(entry);
  }
  if (rows->empty()) return;
  // Stream the rows straight back to the issuer (PIER-style).
  chord::Node* issuer = p.issuer;
  if (issuer == nullptr) return;
  uint64_t otj_id = p.otj_id;
  if (issuer == &node) {
    auto& out = otj_results_[otj_id];
    out.insert(out.end(), rows->begin(), rows->end());
    return;
  }
  network_.Transmit(&node, issuer, sim::MsgClass::kOneTime,
                    [this, otj_id, rows]() {
                      auto& out = otj_results_[otj_id];
                      out.insert(out.end(), rows->begin(), rows->end());
                    });
}

// --- Message dispatch ---------------------------------------------------------------

void ContinuousQueryNetwork::HandleMessage(chord::Node& node,
                                           const chord::AppMessage& msg) {
  const auto* base = static_cast<const CqPayload*>(msg.payload.get());
  if (base == nullptr) return;
  switch (base->type) {
    case CqMsgType::kQueryIndex:
      HandleQueryIndex(node, msg);
      return;
    case CqMsgType::kTupleAl:
      HandleTupleAl(node, msg);
      return;
    case CqMsgType::kTupleVl:
      HandleTupleVl(node, *static_cast<const TupleIndexPayload*>(base));
      return;
    case CqMsgType::kJoin:
      HandleJoin(node, *static_cast<const JoinPayload*>(base));
      return;
    case CqMsgType::kDaivJoin:
      HandleDaivJoin(node, *static_cast<const DaivJoinPayload*>(base));
      return;
    case CqMsgType::kNotification: {
      const auto& p = *static_cast<const NotificationPayload*>(base);
      if (node.key() == p.subscriber_key) {
        StateOf(node).inbox.push_back(p.notification);
        // Tell the evaluator our (possibly new) address (§4.6).
        if (p.evaluator != nullptr && p.evaluator != &node &&
            p.evaluator->alive()) {
          auto update = std::make_shared<IpUpdatePayload>();
          update->subscriber_key = node.key();
          update->node = &node;
          update->ip = node.ip();
          chord::Node* evaluator = p.evaluator;
          network_.Transmit(&node, evaluator, sim::MsgClass::kControl,
                            [this, evaluator, update]() {
                              StateOf(*evaluator)
                                  .subscriber_addr[update->subscriber_key] = {
                                  update->node, update->ip};
                            });
        }
      } else {
        // Subscriber off-line: store under its identifier; the Chord key
        // transfer hands it back on reconnection (§4.6).
        node.store().Put(HashKey(p.subscriber_key), msg.payload);
      }
      return;
    }
    case CqMsgType::kUnsubscribe:
      HandleUnsubscribe(node, msg);
      return;
    case CqMsgType::kMigrateCmd:
      HandleMigrateCmd(node, msg);
      return;
    case CqMsgType::kMwQueryIndex:
      HandleMwQueryIndex(node,
                         *static_cast<const MwQueryIndexPayload*>(base));
      return;
    case CqMsgType::kMwJoin:
      HandleMwJoin(node, *static_cast<const MwJoinPayload*>(base));
      return;
    case CqMsgType::kOtjScan:
      HandleOtjScan(node, *static_cast<const OtjScanPayload*>(base));
      return;
    case CqMsgType::kOtjRehash:
      HandleOtjRehash(node, *static_cast<const OtjRehashPayload*>(base));
      return;
    case CqMsgType::kIpUpdate: {
      const auto& p = *static_cast<const IpUpdatePayload*>(base);
      StateOf(node).subscriber_addr[p.subscriber_key] = {p.node, p.ip};
      return;
    }
    case CqMsgType::kJfrtAck: {
      const auto& p = *static_cast<const JfrtAckPayload*>(base);
      StateOf(node).jfrt.Insert(p.vindex, p.evaluator);
      return;
    }
  }
}

void ContinuousQueryNetwork::HandleStoredItems(
    chord::Node& node, const chord::NodeId& key,
    std::vector<chord::PayloadPtr> items) {
  for (chord::PayloadPtr& item : items) {
    const auto* base = static_cast<const CqPayload*>(item.get());
    if (base != nullptr && base->type == CqMsgType::kNotification) {
      const auto& p = *static_cast<const NotificationPayload*>(base);
      if (p.subscriber_key == node.key()) {
        StateOf(node).inbox.push_back(p.notification);
        continue;
      }
    }
    node.store().Put(key, std::move(item));
  }
}

// --- Rewriter role -----------------------------------------------------------------

bool ContinuousQueryNetwork::ForwardIfMoved(chord::Node& node,
                                            NodeState& state,
                                            const std::string& mkey,
                                            const chord::AppMessage& msg) {
  auto moved = state.moved_attrs.find(mkey);
  if (moved == state.moved_attrs.end()) return false;
  chord::Node* holder = moved->second.holder;
  if (holder == nullptr || !holder->alive()) {
    // The holder left the ring: the role falls back to the base node
    // (best-effort; the moved state is lost, as with any departure).
    state.moved_attrs.erase(moved);
    return false;
  }
  chord::AppMessage copy = msg;
  network_.Transmit(&node, holder, msg.cls,
                    [this, holder, copy = std::move(copy)]() {
                      HandleMessage(*holder, copy);
                    });
  return true;
}

void ContinuousQueryNetwork::HandleQueryIndex(chord::Node& node,
                                              const chord::AppMessage& msg) {
  const auto& p = *static_cast<const QueryIndexPayload*>(msg.payload.get());
  NodeState& state = StateOf(node);
  std::string mkey = MKey(p.level1, p.replica);
  if (ForwardIfMoved(node, state, mkey, msg)) return;
  ++state.metrics.queries_received;
  state.alqt.Insert(mkey, p.query->signature(),
                    AlqtEntry{p.query, p.index_side});
}

void ContinuousQueryNetwork::HandleTupleAl(chord::Node& node,
                                           const chord::AppMessage& msg) {
  const auto& p = *static_cast<const TupleIndexPayload*>(msg.payload.get());
  NodeState& state = StateOf(node);
  std::string mkey = MKey(p.level1, p.replica);
  if (ForwardIfMoved(node, state, mkey, msg)) return;
  ++state.metrics.tuples_received_attr;
  ++state.metrics.filter_ops_attr;
  const rel::Tuple& tuple = *p.tuple;
  state.attr_stats[mkey].Record(tuple.at(p.attr_index).ToKeyString());

  // Multi-way queries indexed under this key (extension).
  auto mw_it = state.mw_alqt.find(mkey);
  if (mw_it != state.mw_alqt.end()) {
    state.metrics.filter_ops_attr += mw_it->second.size();
    MwJoinMap mw_joins;
    for (const query::MwQueryPtr& q : mw_it->second) {
      MwTrigger(node, state, q, tuple, &mw_joins);
    }
    if (!mw_joins.empty()) DispatchMwJoins(node, std::move(mw_joins));
  }

  const AttrLevelQueryTable::GroupMap* groups = state.alqt.Find(mkey);
  if (groups == nullptr) return;

  std::map<std::string, PendingJoin> t1_joins;
  std::map<std::string, PendingDaivJoin> daiv_joins;
  for (const auto& [signature, group] : *groups) {
    state.metrics.filter_ops_attr += group.size();
    for (const AlqtEntry& entry : group) {
      const query::ContinuousQuery& q = *entry.query;
      // Time semantics: only tuples published at/after insT(q) trigger it.
      if (tuple.pub_time() < q.insertion_time()) continue;
      if (!q.side(entry.index_side).SatisfiesPredicates(tuple)) continue;
      if (options_.algorithm == Algorithm::kDaiV) {
        RewriteDaiv(node, state, entry, tuple, &daiv_joins);
      } else {
        RewriteT1(node, state, entry, tuple, &t1_joins);
      }
    }
  }
  if (!t1_joins.empty()) DispatchJoins(node, state, std::move(t1_joins));
  if (!daiv_joins.empty()) {
    DispatchDaivJoins(node, state, std::move(daiv_joins));
  }
}


void ContinuousQueryNetwork::RewriteT1(chord::Node& node, NodeState& state,
                                       const AlqtEntry& entry,
                                       const rel::Tuple& tuple,
                                       std::map<std::string, PendingJoin>* out) {
  const query::ContinuousQuery& q = *entry.query;
  const int s = entry.index_side;
  const int o = 1 - s;
  const query::QuerySide& trigger_side = q.side(s);
  const query::QuerySide& remaining = q.side(o);
  CJ_CHECK(remaining.linear.has_value()) << "T1 side lost its linear form";

  auto val_idx = trigger_side.join_expr->EvalSingle(s, tuple);
  if (!val_idx.ok()) return;
  // SQL semantics: a null join value never matches anything.
  if (val_idx.value().is_null()) return;
  rel::ValueType attr_type =
      remaining.schema->attribute(remaining.linear->ref.attr_index).type;
  auto val_da =
      query::InvertLinear(*remaining.linear, attr_type, val_idx.value());
  if (!val_da.has_value()) {
    // No representable solution: the rewritten query could never match, so
    // it is not reindexed (§4.3.2, saving a message).
    ++state.metrics.rewrites_skipped_nosol;
    return;
  }
  std::string value_key = val_da->ToKeyString();

  // Bind the trigger side's select values (the generalized projection).
  RowTemplate row(q.select().size());
  std::string bound;
  for (size_t i = 0; i < q.select().size(); ++i) {
    const query::SelectItem& item = q.select()[i];
    if (item.ref.side == s) {
      row[i] = tuple.at(item.ref.attr_index);
      bound += '\x1f';
      bound += row[i]->ToKeyString();
    }
  }
  // Key(q') = Key(q) + bound select values + valDA (§4.3.3), plus the
  // trigger side: without it, symmetric value coincidences across the two
  // sides of the join condition could collide into one key.
  std::string rewritten_key =
      q.key() + "|" + std::to_string(s) + "|" + bound + "|" + value_key;

  if (options_.algorithm == Algorithm::kDaiT && options_.window == 0) {
    // A DAI-T rewriter never reindexes the same rewritten query twice
    // (§4.4.3). (With a sliding window the evaluator needs fresh trigger
    // times, so deduplication is disabled.)
    if (!state.sent_rewritten_keys.insert(rewritten_key).second) {
      ++state.metrics.rewrites_skipped_dup;
      return;
    }
  }

  const std::string& dis_attr =
      remaining.schema->attribute(remaining.linear->ref.attr_index).name;
  std::string vkey_full = ValueKeyOf(remaining.relation, dis_attr, value_key);

  PendingJoin& pending = (*out)[vkey_full];
  if (pending.payload == nullptr) {
    pending.vindex = HashKey(vkey_full);
    pending.payload = std::make_shared<JoinPayload>();
    pending.payload->level1 = AttrKey(remaining.relation, dis_attr);
    pending.payload->value_key = value_key;
    pending.payload->rewriter = &node;
    pending.payload->vindex = pending.vindex;
  }
  RewrittenEntry rewritten;
  rewritten.query = entry.query;
  rewritten.remaining_side = o;
  rewritten.rewritten_key = std::move(rewritten_key);
  rewritten.required_value = *val_da;
  rewritten.row = std::move(row);
  rewritten.trigger_pub = tuple.pub_time();
  rewritten.trigger_seq = tuple.seq();
  pending.payload->entries.push_back(std::move(rewritten));
  ++state.metrics.rewrites_sent;
  if (options_.track_evaluators) {
    state.query_evaluators[q.key()].insert(pending.vindex);
  }
}

void ContinuousQueryNetwork::RewriteDaiv(
    chord::Node& node, NodeState& state, const AlqtEntry& entry,
    const rel::Tuple& tuple, std::map<std::string, PendingDaivJoin>* out) {
  const query::ContinuousQuery& q = *entry.query;
  const int s = entry.index_side;
  auto val_jc = q.side(s).join_expr->EvalSingle(s, tuple);
  if (!val_jc.ok()) return;
  if (val_jc.value().is_null()) return;  // Null join values never match.
  std::string value_key = val_jc.value().ToKeyString();

  RowTemplate row(q.select().size());
  for (size_t i = 0; i < q.select().size(); ++i) {
    const query::SelectItem& item = q.select()[i];
    if (item.ref.side == s) row[i] = tuple.at(item.ref.attr_index);
  }

  // Group key: DAI-V groups purely by value; the key-prefixed variant
  // (§4.5) separates queries and loses grouping — that is its cost.
  std::string group_key = options_.daiv_prefix_query_key
                              ? q.key() + "+" + value_key
                              : value_key;
  PendingDaivJoin& pending = (*out)[group_key];
  if (pending.payload == nullptr) {
    pending.vindex = options_.daiv_prefix_query_key
                         ? DaivPrefixedIndexId(q.key(), value_key)
                         : DaivIndexId(value_key);
    pending.payload = std::make_shared<DaivJoinPayload>();
    pending.payload->value_key = value_key;
    pending.payload->rewriter = &node;
    pending.payload->vindex = pending.vindex;
  }
  DaivEntry daiv_entry;
  daiv_entry.query = entry.query;
  daiv_entry.trigger_side = s;
  daiv_entry.row = std::move(row);
  daiv_entry.trigger_pub = tuple.pub_time();
  daiv_entry.trigger_seq = tuple.seq();
  pending.payload->entries.push_back(std::move(daiv_entry));
  ++state.metrics.rewrites_sent;
  if (options_.track_evaluators) {
    state.query_evaluators[q.key()].insert(pending.vindex);
  }
}

namespace {

/// Routes a join payload directly to a cached evaluator, falling back to
/// normal routing (with an ack request) if the cache entry went stale.
template <typename PayloadT>
void DeliverViaJfrt(chord::Network* network, chord::Node* from,
                    chord::Node* cached, const chord::NodeId& vindex,
                    std::shared_ptr<PayloadT> payload,
                    std::function<void(chord::Node&, const PayloadT&)>
                        handler) {
  network->Transmit(
      from, cached, sim::MsgClass::kRewrittenQuery,
      [cached, vindex, payload = std::move(payload),
       handler = std::move(handler)]() {
        if (cached->IsResponsibleFor(vindex)) {
          handler(*cached, *payload);
          return;
        }
        // Stale cache entry: re-route; the true evaluator's ack will
        // refresh the rewriter's table.
        auto copy = std::make_shared<PayloadT>(*payload);
        copy->want_ack = true;
        chord::AppMessage msg;
        msg.target = vindex;
        msg.cls = sim::MsgClass::kRewrittenQuery;
        msg.payload = std::move(copy);
        cached->Send(std::move(msg));
      });
}

}  // namespace

void ContinuousQueryNetwork::DispatchJoins(
    chord::Node& node, NodeState& state,
    std::map<std::string, PendingJoin> joins) {
  std::vector<chord::AppMessage> batch;
  for (auto& [vkey, pending] : joins) {
    if (options_.use_jfrt) {
      chord::Node* cached = state.jfrt.Lookup(pending.vindex);
      if (cached != nullptr && !cached->alive()) {
        // The cached evaluator left the ring: drop the entry and fall back
        // to routing (the new evaluator's ack will refill the table).
        state.jfrt.Erase(pending.vindex);
        cached = nullptr;
      }
      if (cached != nullptr) {
        DeliverViaJfrt<JoinPayload>(
            &network_, &node, cached, pending.vindex,
            std::move(pending.payload),
            [this](chord::Node& n, const JoinPayload& p) {
              HandleJoin(n, p);
            });
        continue;
      }
      pending.payload->want_ack = true;
    }
    chord::AppMessage msg;
    msg.target = pending.vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(pending.payload);
    batch.push_back(std::move(msg));
  }
  if (batch.size() == 1) {
    node.Send(std::move(batch[0]));
  } else if (!batch.empty()) {
    node.Multisend(std::move(batch), sim::MsgClass::kRewrittenQuery);
  }
}

void ContinuousQueryNetwork::DispatchDaivJoins(
    chord::Node& node, NodeState& state,
    std::map<std::string, PendingDaivJoin> joins) {
  std::vector<chord::AppMessage> batch;
  for (auto& [vkey, pending] : joins) {
    if (options_.use_jfrt) {
      chord::Node* cached = state.jfrt.Lookup(pending.vindex);
      if (cached != nullptr && !cached->alive()) {
        state.jfrt.Erase(pending.vindex);
        cached = nullptr;
      }
      if (cached != nullptr) {
        DeliverViaJfrt<DaivJoinPayload>(
            &network_, &node, cached, pending.vindex,
            std::move(pending.payload),
            [this](chord::Node& n, const DaivJoinPayload& p) {
              HandleDaivJoin(n, p);
            });
        continue;
      }
      pending.payload->want_ack = true;
    }
    chord::AppMessage msg;
    msg.target = pending.vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(pending.payload);
    batch.push_back(std::move(msg));
  }
  if (batch.size() == 1) {
    node.Send(std::move(batch[0]));
  } else if (!batch.empty()) {
    node.Multisend(std::move(batch), sim::MsgClass::kRewrittenQuery);
  }
}

// --- Evaluator role ------------------------------------------------------------------

namespace {

/// Completes a row template with the remaining side's select values.
RowTemplate MergeRow(const RowTemplate& partial,
                     const query::ContinuousQuery& q, int remaining_side,
                     const rel::Tuple& tuple) {
  RowTemplate merged = partial;
  for (size_t i = 0; i < q.select().size(); ++i) {
    const query::SelectItem& item = q.select()[i];
    if (item.ref.side == remaining_side) {
      merged[i] = tuple.at(item.ref.attr_index);
    }
  }
  return merged;
}

}  // namespace

void ContinuousQueryNetwork::HandleJoin(chord::Node& node,
                                        const JoinPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.joins_received;
  ++state.metrics.filter_ops_value;

  if (p.want_ack && options_.use_jfrt && p.rewriter != nullptr &&
      p.rewriter != &node && p.rewriter->alive()) {
    auto ack = std::make_shared<JfrtAckPayload>();
    ack->vindex = p.vindex;
    ack->evaluator = &node;
    chord::Node* rewriter = p.rewriter;
    network_.Transmit(&node, rewriter, sim::MsgClass::kControl,
                      [this, rewriter, ack]() {
                        StateOf(*rewriter).jfrt.Insert(ack->vindex,
                                                       ack->evaluator);
                      });
  }

  for (const RewrittenEntry& entry : p.entries) {
    const query::ContinuousQuery& q = *entry.query;
    switch (options_.algorithm) {
      case Algorithm::kSai: {
        bool is_new = state.vlqt.InsertOrRefresh(p.level1, p.value_key, entry);
        // A refresh (duplicate rewritten key) only advances the trigger
        // time. Without a window no new content is possible, but with one,
        // tuples stored between the old and new triggers may pair with the
        // fresher trigger, so the match must be repeated.
        if (!is_new && options_.window == 0) break;
        const auto* bucket = state.vltt.Find(p.level1, p.value_key);
        if (bucket == nullptr) break;
        for (const StoredTuple& st : *bucket) {
          ++state.metrics.filter_ops_value;
          const rel::Tuple& t2 = *st.tuple;
          if (t2.pub_time() < q.insertion_time()) continue;
          rel::Timestamp earlier = std::min(t2.pub_time(), entry.trigger_pub);
          rel::Timestamp later = std::max(t2.pub_time(), entry.trigger_pub);
          if (!InWindow(earlier, later)) continue;
          if (!q.side(entry.remaining_side).SatisfiesPredicates(t2)) continue;
          EmitNotification(node, q,
                           MergeRow(entry.row, q, entry.remaining_side, t2),
                           earlier, later);
        }
        break;
      }
      case Algorithm::kDaiQ: {
        // Notifications are created when rewritten queries arrive (§4.4.2);
        // each satisfying pair is produced by exactly one of the two
        // rewriters thanks to the strict "stored older than trigger" rule.
        const auto* bucket = state.vltt.Find(p.level1, p.value_key);
        if (bucket == nullptr) break;
        for (const StoredTuple& st : *bucket) {
          ++state.metrics.filter_ops_value;
          const rel::Tuple& t2 = *st.tuple;
          if (!t2.Before(entry.trigger_pub, entry.trigger_seq)) continue;
          if (t2.pub_time() < q.insertion_time()) continue;
          if (!InWindow(t2.pub_time(), entry.trigger_pub)) continue;
          if (!q.side(entry.remaining_side).SatisfiesPredicates(t2)) continue;
          EmitNotification(node, q,
                           MergeRow(entry.row, q, entry.remaining_side, t2),
                           t2.pub_time(), entry.trigger_pub);
        }
        break;
      }
      case Algorithm::kDaiT:
        // Evaluators store rewritten queries and wait for tuples (§4.4.3).
        state.vlqt.InsertOrRefresh(p.level1, p.value_key, entry);
        break;
      case Algorithm::kDaiV:
        CJ_CHECK(false) << "T1 join message under DAI-V";
    }
  }
}

void ContinuousQueryNetwork::HandleTupleVl(chord::Node& node,
                                           const TupleIndexPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.tuples_received_value;
  ++state.metrics.filter_ops_value;
  const rel::TuplePtr& tuple = p.tuple;

  // SAI and DAI-T match stored rewritten queries on tuple arrival.
  if (options_.algorithm == Algorithm::kSai ||
      options_.algorithm == Algorithm::kDaiT) {
    const auto* bucket = state.vlqt.Find(p.level1, p.value_key);
    if (bucket != nullptr) {
      for (const auto& [rewritten_key, sr] : *bucket) {
        ++state.metrics.filter_ops_value;
        const query::ContinuousQuery& q = *sr.query;
        if (tuple->pub_time() < q.insertion_time()) continue;
        rel::Timestamp earlier =
            std::min(tuple->pub_time(), sr.latest_trigger_pub);
        rel::Timestamp later =
            std::max(tuple->pub_time(), sr.latest_trigger_pub);
        if (!InWindow(earlier, later)) continue;
        if (!q.side(sr.remaining_side).SatisfiesPredicates(*tuple)) continue;
        EmitNotification(node, q,
                         MergeRow(sr.row, q, sr.remaining_side, *tuple),
                         earlier, later);
      }
    }
  }

  // Multi-way partials stored here are extended by matching tuples
  // (extension; recursive-SAI completeness mirrors §4.3.4).
  MwMatchTupleVl(node, state, p);

  // SAI and DAI-Q store tuples at the value level (SAI for completeness,
  // §4.3.4; DAI-Q because its evaluators join on query arrival, §4.4.2).
  if (options_.algorithm == Algorithm::kSai ||
      options_.algorithm == Algorithm::kDaiQ) {
    state.vltt.Insert(p.level1, p.value_key,
                      StoredTuple{tuple, p.attr_index});
  }
}

void ContinuousQueryNetwork::HandleDaivJoin(chord::Node& node,
                                            const DaivJoinPayload& p) {
  NodeState& state = StateOf(node);
  ++state.metrics.joins_received;
  ++state.metrics.filter_ops_value;

  if (p.want_ack && options_.use_jfrt && p.rewriter != nullptr &&
      p.rewriter != &node && p.rewriter->alive()) {
    auto ack = std::make_shared<JfrtAckPayload>();
    ack->vindex = p.vindex;
    ack->evaluator = &node;
    chord::Node* rewriter = p.rewriter;
    network_.Transmit(&node, rewriter, sim::MsgClass::kControl,
                      [this, rewriter, ack]() {
                        StateOf(*rewriter).jfrt.Insert(ack->vindex,
                                                       ack->evaluator);
                      });
  }

  for (const DaivEntry& entry : p.entries) {
    const query::ContinuousQuery& q = *entry.query;
    const int opposite = 1 - entry.trigger_side;
    const auto* bucket = state.daiv.Find(p.value_key, q.key(), opposite);
    if (bucket != nullptr) {
      for (const DaivStored& stored : *bucket) {
        ++state.metrics.filter_ops_value;
        // Strictly-older rule keeps each pair exactly-once.
        bool older = stored.pub_time < entry.trigger_pub ||
                     (stored.pub_time == entry.trigger_pub &&
                      stored.seq < entry.trigger_seq);
        if (!older) continue;
        if (!InWindow(stored.pub_time, entry.trigger_pub)) continue;
        RowTemplate merged = entry.row;
        for (size_t i = 0; i < merged.size(); ++i) {
          if (!merged[i].has_value() && stored.row[i].has_value()) {
            merged[i] = stored.row[i];
          }
        }
        EmitNotification(node, q, std::move(merged), stored.pub_time,
                         entry.trigger_pub);
      }
    }
    state.daiv.Insert(p.value_key, q.key(), entry.trigger_side,
                      DaivStored{entry.row, entry.trigger_pub,
                                 entry.trigger_seq});
  }
}

// --- Notifications ------------------------------------------------------------------

void ContinuousQueryNetwork::EmitNotification(chord::Node& evaluator,
                                              const query::ContinuousQuery& q,
                                              RowTemplate merged,
                                              rel::Timestamp earlier,
                                              rel::Timestamp later) {
  Notification n;
  n.query_key = q.key();
  n.row.reserve(merged.size());
  for (auto& v : merged) {
    CJ_CHECK(v.has_value()) << "incomplete notification row for " << q.key();
    n.row.push_back(std::move(*v));
  }
  n.earlier_pub = earlier;
  n.later_pub = later;
  n.created_at = simulator_.Now();
  ++StateOf(evaluator).metrics.notifications_created;
  DeliverNotification(evaluator, q.subscriber_key(), q.subscriber_ip(),
                      std::move(n));
}

void ContinuousQueryNetwork::EmitMwNotification(chord::Node& evaluator,
                                                const query::MwQuery& q,
                                                const RowTemplate& row,
                                                rel::Timestamp earlier,
                                                rel::Timestamp later) {
  Notification n;
  n.query_key = q.key();
  n.row.reserve(row.size());
  for (const auto& v : row) {
    CJ_CHECK(v.has_value()) << "incomplete multi-way row for " << q.key();
    n.row.push_back(*v);
  }
  n.earlier_pub = earlier;
  n.later_pub = later;
  n.created_at = simulator_.Now();
  ++StateOf(evaluator).metrics.notifications_created;
  DeliverNotification(evaluator, q.subscriber_key(), q.subscriber_ip(),
                      std::move(n));
}

void ContinuousQueryNetwork::DeliverNotification(
    chord::Node& evaluator, const std::string& subscriber_key,
    uint64_t subscriber_ip, Notification n) {
  NodeState& ev_state = StateOf(evaluator);
  chord::Node* target = nullptr;
  uint64_t expect_ip = subscriber_ip;
  auto learned = ev_state.subscriber_addr.find(subscriber_key);
  if (learned != ev_state.subscriber_addr.end()) {
    target = learned->second.node;
    expect_ip = learned->second.ip;
  } else {
    auto it = nodes_by_key_.find(subscriber_key);
    if (it != nodes_by_key_.end()) target = it->second;
  }

  if (target == &evaluator && target->alive()) {
    ev_state.inbox.push_back(std::move(n));  // Local subscriber.
    return;
  }
  if (target != nullptr && target->alive() && target->ip() == expect_ip) {
    // Direct delivery by IP: one overlay hop (§4.6).
    chord::Node* t = target;
    auto shared = std::make_shared<Notification>(std::move(n));
    network_.Transmit(&evaluator, t, sim::MsgClass::kNotification,
                      [this, t, shared]() {
                        StateOf(*t).inbox.push_back(*shared);
                      });
    return;
  }
  // Off-line or moved: route to Successor(Id(n)) where it is delivered or
  // stored (§4.6).
  auto payload = std::make_shared<NotificationPayload>();
  payload->notification = std::move(n);
  payload->subscriber_key = subscriber_key;
  payload->evaluator = &evaluator;
  chord::AppMessage msg;
  msg.target = HashKey(subscriber_key);
  msg.cls = sim::MsgClass::kNotification;
  msg.payload = std::move(payload);
  evaluator.Send(std::move(msg));
}

// --- Unsubscription (extension) -----------------------------------------------------

Status ContinuousQueryNetwork::Unsubscribe(size_t node_index,
                                           const std::string& query_key) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  auto it = submitted_.find(query_key);
  if (it == submitted_.end()) {
    return Status::NotFound("unknown query key '" + query_key + "'");
  }
  const query::ContinuousQuery& q = *it->second;
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("node is offline");
  }

  Tick();
  // Remove from every possible rewriter (both sides and all replicas cover
  // the SAI single-side case too — the extra recipients are no-ops).
  std::vector<chord::AppMessage> batch;
  for (int s = 0; s < 2; ++s) {
    for (int replica = 0; replica < options_.attribute_replication;
         ++replica) {
      auto payload = std::make_shared<UnsubscribePayload>();
      payload->query_key = query_key;
      payload->at_evaluator = false;
      payload->level1 =
          AttrKey(q.side(s).relation, q.side(s).index_attr_name());
      payload->replica = replica;
      chord::AppMessage msg;
      msg.target = AttrIndexId(q.side(s).relation,
                               q.side(s).index_attr_name(), replica);
      msg.cls = sim::MsgClass::kControl;
      msg.payload = std::move(payload);
      batch.push_back(std::move(msg));
    }
  }
  origin->Multisend(std::move(batch), sim::MsgClass::kControl);
  simulator_.Run();
  submitted_.erase(it);
  return Status::OK();
}

void ContinuousQueryNetwork::HandleUnsubscribe(chord::Node& node,
                                               const chord::AppMessage& msg) {
  const auto& p = *static_cast<const UnsubscribePayload*>(msg.payload.get());
  NodeState& state = StateOf(node);
  if (p.at_evaluator) {
    state.vlqt.RemoveQuery(p.query_key);
    state.daiv.RemoveQuery(p.query_key);
    return;
  }
  if (ForwardIfMoved(node, state, MKey(p.level1, p.replica), msg)) return;
  state.alqt.RemoveQuery(p.query_key);
  auto tracked = state.query_evaluators.find(p.query_key);
  if (tracked == state.query_evaluators.end()) return;
  std::vector<chord::AppMessage> batch;
  for (const chord::NodeId& vindex : tracked->second) {
    auto payload = std::make_shared<UnsubscribePayload>();
    payload->query_key = p.query_key;
    payload->at_evaluator = true;
    chord::AppMessage msg;
    msg.target = vindex;
    msg.cls = sim::MsgClass::kControl;
    msg.payload = std::move(payload);
    batch.push_back(std::move(msg));
  }
  state.query_evaluators.erase(tracked);
  if (!batch.empty()) {
    node.Multisend(std::move(batch), sim::MsgClass::kControl);
  }
}

// --- §4.7 "moving an identifier" ------------------------------------------------------

Status ContinuousQueryNetwork::MigrateAttribute(size_t node_index,
                                                const std::string& relation,
                                                const std::string& attr,
                                                int replica) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  const rel::RelationSchema* schema = catalog_.Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  if (!schema->AttributeIndex(attr).has_value()) {
    return Status::NotFound("relation '" + relation +
                            "' has no attribute '" + attr + "'");
  }
  if (replica < 0 || replica >= options_.attribute_replication) {
    return Status::InvalidArgument("replica out of range");
  }
  chord::Node* origin = nodes_[node_index];
  if (!origin->alive()) {
    return Status::FailedPrecondition("node is offline");
  }
  Tick();
  auto payload = std::make_shared<MigrateCmdPayload>();
  payload->level1 = AttrKey(relation, attr);
  payload->replica = replica;
  chord::AppMessage msg;
  msg.target = AttrIndexId(relation, attr, replica);
  msg.cls = sim::MsgClass::kControl;
  msg.payload = std::move(payload);
  origin->Send(std::move(msg));
  simulator_.Run();
  return Status::OK();
}

void ContinuousQueryNetwork::HandleMigrateCmd(chord::Node& node,
                                              const chord::AppMessage& msg) {
  const auto& p = *static_cast<const MigrateCmdPayload*>(msg.payload.get());
  NodeState& state = StateOf(node);
  std::string mkey = MKey(p.level1, p.replica);

  // At the base node of an already-moved key: forward to the holder, with
  // the base recorded so the holder can update our pointer afterwards.
  auto moved = state.moved_attrs.find(mkey);
  if (moved != state.moved_attrs.end() && moved->second.holder != nullptr &&
      moved->second.holder->alive()) {
    auto fwd = std::make_shared<MigrateCmdPayload>(p);
    fwd->base = &node;
    chord::Node* holder = moved->second.holder;
    chord::AppMessage copy = msg;
    copy.payload = std::move(fwd);
    network_.Transmit(&node, holder, sim::MsgClass::kControl,
                      [this, holder, copy = std::move(copy)]() {
                        HandleMessage(*holder, copy);
                      });
    return;
  }

  // We hold the bucket: pick the next identifier and its successor.
  auto held = state.held_generation.find(mkey);
  int next_gen = (held == state.held_generation.end() ? 0 : held->second) + 1;
  chord::NodeId new_id =
      HashKey(mkey + "#m" + std::to_string(next_gen));
  chord::Node* target = node.FindSuccessor(new_id, sim::MsgClass::kControl);
  chord::Node* base = p.base != nullptr ? p.base : &node;
  if (target == nullptr) return;
  if (target == &node) {
    // The fresh identifier still lands here; only the generation advances.
    state.held_generation[mkey] = next_gen;
    return;
  }

  // Move the bucket and its statistics (one control transfer).
  auto bucket =
      std::make_shared<AttrLevelQueryTable::GroupMap>(
          state.alqt.TakeLevel1(mkey));
  auto stats = std::make_shared<AttrArrivalStats>();
  auto stats_it = state.attr_stats.find(mkey);
  if (stats_it != state.attr_stats.end()) {
    *stats = std::move(stats_it->second);
    state.attr_stats.erase(stats_it);
  }
  state.held_generation.erase(mkey);
  network_.Transmit(&node, target, sim::MsgClass::kControl,
                    [this, target, mkey, bucket, stats, next_gen]() {
                      NodeState& ts = StateOf(*target);
                      for (auto& [signature, group] : *bucket) {
                        for (AlqtEntry& entry : group) {
                          ts.alqt.Insert(mkey, signature, std::move(entry));
                        }
                      }
                      ts.attr_stats[mkey].Merge(*stats);
                      ts.held_generation[mkey] = next_gen;
                    });

  // Point the base at the new holder.
  if (base == &node) {
    state.moved_attrs[mkey] = NodeState::MovedAttr{next_gen, target};
  } else {
    network_.Transmit(&node, base, sim::MsgClass::kControl,
                      [this, base, mkey, target, next_gen]() {
                        StateOf(*base).moved_attrs[mkey] =
                            NodeState::MovedAttr{next_gen, target};
                      });
  }
}

// --- Results & dynamics ---------------------------------------------------------------

std::vector<Notification> ContinuousQueryNetwork::TakeNotifications(
    size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  NodeState& state = StateOf(*nodes_[node_index]);
  std::vector<Notification> out = std::move(state.inbox);
  state.inbox.clear();
  return out;
}

size_t ContinuousQueryNetwork::PendingNotifications(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  auto it = states_.find(nodes_[node_index]);
  return it->second->inbox.size();
}

void ContinuousQueryNetwork::DisconnectNode(size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  nodes_[node_index]->LeaveGracefully();
  network_.RewireIdeal();
  simulator_.Run();
}

void ContinuousQueryNetwork::ReconnectNode(size_t node_index, bool new_ip) {
  CJ_CHECK(node_index < nodes_.size());
  chord::Node* node = nodes_[node_index];
  chord::Node* bootstrap = nullptr;
  for (chord::Node* n : nodes_) {
    if (n->alive()) {
      bootstrap = n;
      break;
    }
  }
  CJ_CHECK(bootstrap != nullptr) << "no alive node to bootstrap from";
  node->Reconnect(bootstrap, new_ip);
  network_.RewireIdeal();
  simulator_.Run();
}

// --- Metrics -------------------------------------------------------------------------

const NodeMetrics& ContinuousQueryNetwork::metrics(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  return states_.find(nodes_[node_index])->second->metrics;
}

NodeStorage ContinuousQueryNetwork::storage(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  const chord::Node* node = nodes_[node_index];
  const NodeState& state = *states_.find(node)->second;
  NodeStorage out;
  out.alqt_queries = state.alqt.size();
  out.vlqt_rewritten = state.vlqt.size();
  out.vltt_tuples = state.vltt.size();
  out.daiv_entries = state.daiv.size();
  out.stored_notifications = const_cast<chord::Node*>(node)->store().size();
  out.mw_queries = state.mw_alqt_size;
  out.mw_partials = state.mw_vlqt_size;
  return out;
}

const NodeState* ContinuousQueryNetwork::state(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  return states_.find(nodes_[node_index])->second.get();
}

LoadDistribution ContinuousQueryNetwork::FilteringLoadDistribution() const {
  LoadDistribution out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive()) continue;
    out.Add(static_cast<double>(metrics(i).TotalFilterOps()));
  }
  return out;
}

LoadDistribution ContinuousQueryNetwork::AttrFilteringLoadDistribution()
    const {
  LoadDistribution out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive()) continue;
    out.Add(static_cast<double>(metrics(i).filter_ops_attr));
  }
  return out;
}

LoadDistribution ContinuousQueryNetwork::ValueFilteringLoadDistribution()
    const {
  LoadDistribution out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive()) continue;
    out.Add(static_cast<double>(metrics(i).filter_ops_value));
  }
  return out;
}

LoadDistribution ContinuousQueryNetwork::StorageLoadDistribution() const {
  LoadDistribution out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive()) continue;
    out.Add(static_cast<double>(storage(i).Total()));
  }
  return out;
}

NodeMetrics ContinuousQueryNetwork::TotalMetrics() const {
  NodeMetrics total;
  for (const auto& [node, state] : states_) {
    const NodeMetrics& m = state->metrics;
    total.filter_ops_attr += m.filter_ops_attr;
    total.filter_ops_value += m.filter_ops_value;
    total.tuples_received_attr += m.tuples_received_attr;
    total.tuples_received_value += m.tuples_received_value;
    total.joins_received += m.joins_received;
    total.queries_received += m.queries_received;
    total.rewrites_sent += m.rewrites_sent;
    total.rewrites_skipped_dup += m.rewrites_skipped_dup;
    total.rewrites_skipped_nosol += m.rewrites_skipped_nosol;
    total.notifications_created += m.notifications_created;
  }
  return total;
}

NodeStorage ContinuousQueryNetwork::TotalStorage() const {
  NodeStorage total;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeStorage s = storage(i);
    total.alqt_queries += s.alqt_queries;
    total.vlqt_rewritten += s.vlqt_rewritten;
    total.vltt_tuples += s.vltt_tuples;
    total.daiv_entries += s.daiv_entries;
    total.stored_notifications += s.stored_notifications;
    total.mw_queries += s.mw_queries;
    total.mw_partials += s.mw_partials;
  }
  return total;
}

void ContinuousQueryNetwork::ResetLoadMetrics() {
  for (auto& [node, state] : states_) state->metrics.Reset();
  network_.stats().Reset();
}

size_t ContinuousQueryNetwork::PruneExpired() {
  if (options_.window == 0) return 0;
  rel::Timestamp now_time = simulator_.Now();
  rel::Timestamp cutoff =
      now_time > options_.window ? now_time - options_.window : 0;
  size_t dropped = 0;
  for (auto& [node, state] : states_) {
    dropped += state->vltt.ExpireBefore(cutoff);
    dropped += state->daiv.ExpireBefore(cutoff);
  }
  return dropped;
}

}  // namespace contjoin::core
