#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/uint160.h"
#include "core/codec.h"
#include "core/subscriber.h"

namespace contjoin::core {

// --- Construction -------------------------------------------------------------

ContinuousQueryNetwork::ContinuousQueryNetwork(Options options)
    : options_(std::move(options)),
      strategy_(&AlgorithmStrategy::For(options_.algorithm)),
      network_(&simulator_, options_.chord),
      rng_(options_.seed) {
  if (options_.faults.active()) {
    fault_plan_ = std::make_unique<faults::FaultPlan>(options_.faults);
    network_.set_fault_plan(fault_plan_.get());
  }
  if (options_.count_wire_bytes) {
    network_.set_frame_sizer(
        [](const chord::HopFrame& frame) { return EncodedFrameSize(frame); });
  }
  nodes_ = network_.BuildIdealRing(options_.num_nodes);
  for (chord::Node* node : nodes_) {
    node->set_app(this);
    states_.emplace(node, std::make_unique<NodeState>(options_.jfrt_capacity));
    nodes_by_key_[node->key()] = node;
  }
}

ContinuousQueryNetwork::~ContinuousQueryNetwork() = default;

NodeState& ContinuousQueryNetwork::StateOf(chord::Node& node) {
  auto it = states_.find(&node);
  CJ_CHECK(it != states_.end()) << "node without engine state";
  return *it->second;
}

void ContinuousQueryNetwork::Tick() {
  simulator_.AdvanceTo(simulator_.Now() + options_.time_step);
  ProcessChurnDue();
}

// --- Message dispatch ---------------------------------------------------------------

void ContinuousQueryNetwork::HandleMessage(chord::Node& node,
                                           const chord::AppMessage& msg) {
  MessageDispatcher::Default().Dispatch(*this, node, msg);
}

void ContinuousQueryNetwork::HandleStoredItems(
    chord::Node& node, const chord::NodeId& key,
    std::vector<chord::PayloadPtr> items) {
  subscriber::AbsorbStoredItems(*this, node, key, std::move(items));
}

// --- Results & dynamics ---------------------------------------------------------------

std::vector<Notification> ContinuousQueryNetwork::TakeNotifications(
    size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  subscriber::State& sub = StateOf(*nodes_[node_index]).subscriber;
  std::vector<Notification> out = std::move(sub.inbox);
  sub.inbox.clear();
  return out;
}

size_t ContinuousQueryNetwork::PendingNotifications(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  auto it = states_.find(nodes_[node_index]);
  return it->second->subscriber.inbox.size();
}

void ContinuousQueryNetwork::DisconnectNode(size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  nodes_[node_index]->LeaveGracefully();
  network_.RewireIdeal();
  simulator_.Run();
}

void ContinuousQueryNetwork::ReconnectNode(size_t node_index, bool new_ip) {
  CJ_CHECK(node_index < nodes_.size());
  chord::Node* node = nodes_[node_index];
  chord::Node* bootstrap = nullptr;
  for (chord::Node* n : nodes_) {
    if (n->alive()) {
      bootstrap = n;
      break;
    }
  }
  CJ_CHECK(bootstrap != nullptr) << "no alive node to bootstrap from";
  node->Reconnect(bootstrap, new_ip);
  network_.RewireIdeal();
  simulator_.Run();
}

// --- Fault tolerance -----------------------------------------------------------------

void ContinuousQueryNetwork::InstallChurnScript(faults::ChurnScript script) {
  CJ_CHECK(script.IsSorted()) << "churn events must be time-sorted";
  churn_script_ = std::move(script);
  churn_next_ = 0;
}

void ContinuousQueryNetwork::ProcessChurnDue() {
  bool crashed = false;
  bool changed = false;
  while (churn_next_ < churn_script_.events.size() &&
         churn_script_.events[churn_next_].at <= simulator_.Now()) {
    const faults::ChurnEvent& ev = churn_script_.events[churn_next_++];
    if (ev.kind == faults::ChurnEvent::Kind::kCrash) {
      // Never crash the last node; the script event is simply skipped.
      if (network_.alive_count() <= 1) continue;
      std::vector<chord::Node*> alive;
      alive.reserve(network_.alive_count());
      for (chord::Node* n : nodes_) {
        if (n->alive()) alive.push_back(n);
      }
      CrashNodeInternal(alive[ev.ordinal % alive.size()]);
      crashed = true;
    } else {
      JoinNewNodeInternal();
    }
    changed = true;
  }
  if (!changed) return;
  network_.RewireIdeal();
  // Retransmit-on-route-change: every survivor re-sends its un-acked
  // messages against the healed ring before the drain, so recovery is
  // bounded by hop latency, not by wherever each message happened to be
  // in its exponential backoff when its target died.
  if (options_.reliability.enabled) {
    for (chord::Node* n : nodes_) {
      if (n->alive()) reliability::RetransmitPending(*this, *n);
    }
  }
  simulator_.Run();
  if (options_.reliability.enabled && options_.reliability.repair_on_churn) {
    ReconcilePlacement();
    // Joins only displace responsibility (handled by the handoff above);
    // crashes destroy state, which only the origin logs can rebuild.
    if (crashed) RefreshIndexes();
  }
}

void ContinuousQueryNetwork::CrashNode(size_t node_index) {
  CJ_CHECK(node_index < nodes_.size());
  CJ_CHECK(network_.alive_count() > 1) << "cannot crash the last node";
  CrashNodeInternal(nodes_[node_index]);
  network_.RewireIdeal();
  simulator_.Run();
}

void ContinuousQueryNetwork::CrashNodeInternal(chord::Node* node) {
  if (!node->alive()) return;
  node->Fail();
  NodeState& state = StateOf(*node);
  // The process dies: every protocol table is gone. The subscriber inbox
  // and query serial survive — they model client-side application state,
  // not overlay state.
  state.rewriter = rewriter::State(options_.jfrt_capacity);
  state.evaluator = evaluator::State();
  state.mw = mw::State();
  state.otj = otj::State();
  state.reliability = reliability::State();
  state.adapt = ::contjoin::adapt::AdaptState();
  state.subscriber.subscriber_addr.clear();
  // Serving-path overlay state dies too: buffered digests and in-flight
  // slots are process memory, not client state.
  state.subscriber.digest_buffer.clear();
  state.subscriber.digest_flush_scheduled = false;
  state.subscriber.inflight = 0;
  node->store().ExtractAll();  // Ring-stored items die with the node.
}

chord::Node* ContinuousQueryNetwork::JoinNewNodeInternal() {
  chord::Node* node = network_.CreateNode(
      "churn-" + std::to_string(churn_join_serial_++));
  node->SetAliveDirect(true);
  network_.OnNodeBirth();
  node->set_app(this);
  states_.emplace(node, std::make_unique<NodeState>(options_.jfrt_capacity));
  nodes_.push_back(node);
  nodes_by_key_[node->key()] = node;
  return node;
}

size_t ContinuousQueryNetwork::JoinNewNode() {
  JoinNewNodeInternal();
  network_.RewireIdeal();
  simulator_.Run();
  return nodes_.size() - 1;
}

chord::Node* ContinuousQueryNetwork::FirstAliveNode() const {
  for (chord::Node* node : nodes_) {
    if (node->alive()) return node;
  }
  return nullptr;
}

chord::Node* ContinuousQueryNetwork::EntryNode(size_t node_index) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    chord::Node* node = nodes_[(node_index + i) % nodes_.size()];
    if (node->alive()) return node;
  }
  CJ_CHECK(false) << "no alive node";  // Churn never crashes the last node.
  return nullptr;
}

size_t ContinuousQueryNetwork::ReconcilePlacement() {
  size_t moved = 0;
  auto transfer = [this, &moved](size_t objects) {
    network_.CountHop(sim::MsgClass::kControl);
    moved += objects;
  };
  // Adaptive directory sync: union every surviving directory and write it
  // back, so all owners (including freshly joined nodes) agree on each
  // family's live shard set before buckets are re-homed below.
  if (options_.adapt.enabled) {
    ::contjoin::adapt::Directory merged;
    for (chord::Node* node : nodes_) {
      if (node->alive()) merged.MergeFrom(StateOf(*node).adapt.directory);
    }
    for (chord::Node* node : nodes_) {
      if (node->alive()) StateOf(*node).adapt.directory.MergeFrom(merged);
    }
  }
  for (chord::Node* node : nodes_) {
    if (!node->alive()) continue;
    NodeState& state = StateOf(*node);

    // ALQT buckets, keyed "R+A#<replica>". Buckets holding a moved
    // identifier's generation (§4.7) live away from their base identifier
    // on purpose and keep doing so; the base forwarding pointer covers them.
    for (const std::string& mkey : state.rewriter.alqt.Level1Keys()) {
      if (state.rewriter.held_generation.count(mkey) > 0) continue;
      size_t pos = mkey.rfind('#');
      CJ_CHECK(pos != std::string::npos) << "malformed ALQT key " << mkey;
      int replica = std::stoi(mkey.substr(pos + 1));
      chord::Node* home = network_.OracleSuccessor(
          AttrIndexIdOfKey(mkey.substr(0, pos), replica));
      if (home == nullptr || home == node) continue;
      auto bucket = state.rewriter.alqt.TakeLevel1(mkey);
      size_t objects = 0;
      for (const auto& [signature, group] : bucket) objects += group.size();
      StateOf(*home).rewriter.alqt.AbsorbLevel1(mkey, std::move(bucket));
      auto stats = state.rewriter.attr_stats.find(mkey);
      if (stats != state.rewriter.attr_stats.end()) {
        StateOf(*home).rewriter.attr_stats[mkey].Merge(stats->second);
        state.rewriter.attr_stats.erase(stats);
      }
      transfer(objects);
    }

    // VLQT / VLTT buckets: home = Successor(Hash(level1 + "+" + value)).
    // Split families (adaptive manager) are keyed by the base value but
    // live at their virtual sub-key homes: rewritten queries at every
    // shard home, tuples at their sequence shard's home. A node that is
    // still one of the live homes keeps its bucket — crash-lost copies
    // are recovered by index replay, as in the base protocol.
    for (const auto& [level1, value_key] :
         state.evaluator.vlqt.BucketKeys()) {
      const int split = options_.adapt.enabled
                            ? state.adapt.directory.SplitOf(level1, value_key)
                            : 1;
      if (split > 1) {
        bool is_home = false;
        std::vector<chord::Node*> homes;
        for (int j = 0; j < split; ++j) {
          chord::Node* home = network_.OracleSuccessor(ValueIndexIdOfKey(
              level1,
              ::contjoin::adapt::ShardValueKey(value_key, j, split)));
          if (home == nullptr) continue;
          if (home == node) {
            is_home = true;
          } else if (std::find(homes.begin(), homes.end(), home) ==
                     homes.end()) {
            homes.push_back(home);
          }
        }
        if (is_home) continue;
        auto bucket = state.evaluator.vlqt.TakeBucket(level1, value_key);
        size_t objects = bucket.size();
        for (chord::Node* home : homes) {
          StateOf(*home).evaluator.vlqt.AbsorbBucket(level1, value_key,
                                                     bucket);
          transfer(objects);
        }
        continue;
      }
      chord::Node* home =
          network_.OracleSuccessor(ValueIndexIdOfKey(level1, value_key));
      if (home == nullptr || home == node) continue;
      auto bucket = state.evaluator.vlqt.TakeBucket(level1, value_key);
      size_t objects = bucket.size();
      StateOf(*home).evaluator.vlqt.AbsorbBucket(level1, value_key,
                                                 std::move(bucket));
      transfer(objects);
    }
    for (const auto& [level1, value_key] :
         state.evaluator.vltt.BucketKeys()) {
      const int split = options_.adapt.enabled
                            ? state.adapt.directory.SplitOf(level1, value_key)
                            : 1;
      if (split > 1) {
        auto bucket = state.evaluator.vltt.TakeBucket(level1, value_key);
        ValueLevelTupleTable::Bucket keep;
        for (int j = 0; j < split; ++j) {
          chord::Node* home = network_.OracleSuccessor(ValueIndexIdOfKey(
              level1,
              ::contjoin::adapt::ShardValueKey(value_key, j, split)));
          ValueLevelTupleTable::Bucket group;
          for (const StoredTuple& st : bucket) {
            if (::contjoin::adapt::ShardOfSeq(st.tuple->seq(), split) == j) {
              group.push_back(st);
            }
          }
          if (group.empty()) continue;
          if (home == nullptr || home == node) {
            for (StoredTuple& st : group) keep.push_back(std::move(st));
            continue;
          }
          size_t objects = group.size();
          StateOf(*home).evaluator.vltt.AbsorbBucket(level1, value_key,
                                                     std::move(group));
          transfer(objects);
        }
        if (!keep.empty()) {
          state.evaluator.vltt.AbsorbBucket(level1, value_key,
                                            std::move(keep));
        }
        continue;
      }
      chord::Node* home =
          network_.OracleSuccessor(ValueIndexIdOfKey(level1, value_key));
      if (home == nullptr || home == node) continue;
      auto bucket = state.evaluator.vltt.TakeBucket(level1, value_key);
      size_t objects = bucket.size();
      StateOf(*home).evaluator.vltt.AbsorbBucket(level1, value_key,
                                                 std::move(bucket));
      transfer(objects);
    }

    // DAI-V buckets: the sub key is "Key(q)#L/R"; the home identifier is
    // Hash(value) or Hash(Key(q)+value) for the key-prefixed variant.
    for (const auto& [value_key, sub_key] :
         state.evaluator.daiv.BucketKeys()) {
      CJ_CHECK(sub_key.size() > 2) << "malformed DAI-V sub key " << sub_key;
      const int split =
          options_.adapt.enabled && !options_.daiv_prefix_query_key
              ? state.adapt.directory.SplitOf("", value_key)
              : 1;
      if (split > 1) {
        // Side 1 ("#R", the replicated side) lives at every shard home;
        // side 0 ("#L") is partitioned by the stored trigger sequence.
        const bool replicated = sub_key.back() == 'R';
        if (replicated) {
          bool is_home = false;
          std::vector<chord::Node*> homes;
          for (int j = 0; j < split; ++j) {
            chord::Node* home = network_.OracleSuccessor(DaivIndexId(
                ::contjoin::adapt::ShardValueKey(value_key, j, split)));
            if (home == nullptr) continue;
            if (home == node) {
              is_home = true;
            } else if (std::find(homes.begin(), homes.end(), home) ==
                       homes.end()) {
              homes.push_back(home);
            }
          }
          if (is_home) continue;
          auto bucket = state.evaluator.daiv.TakeBucket(value_key, sub_key);
          size_t objects = bucket.size();
          for (chord::Node* home : homes) {
            StateOf(*home).evaluator.daiv.AbsorbBucket(value_key, sub_key,
                                                       bucket);
            transfer(objects);
          }
        } else {
          auto bucket = state.evaluator.daiv.TakeBucket(value_key, sub_key);
          DaivStore::Bucket keep;
          for (int j = 0; j < split; ++j) {
            chord::Node* home = network_.OracleSuccessor(DaivIndexId(
                ::contjoin::adapt::ShardValueKey(value_key, j, split)));
            DaivStore::Bucket group;
            for (const DaivStored& st : bucket) {
              if (::contjoin::adapt::ShardOfSeq(st.seq, split) == j) {
                group.push_back(st);
              }
            }
            if (group.empty()) continue;
            if (home == nullptr || home == node) {
              for (DaivStored& st : group) keep.push_back(std::move(st));
              continue;
            }
            size_t objects = group.size();
            StateOf(*home).evaluator.daiv.AbsorbBucket(value_key, sub_key,
                                                       std::move(group));
            transfer(objects);
          }
          if (!keep.empty()) {
            state.evaluator.daiv.AbsorbBucket(value_key, sub_key,
                                              std::move(keep));
          }
        }
        continue;
      }
      chord::NodeId home_id =
          options_.daiv_prefix_query_key
              ? DaivPrefixedIndexId(sub_key.substr(0, sub_key.size() - 2),
                                    value_key)
              : DaivIndexId(value_key);
      chord::Node* home = network_.OracleSuccessor(home_id);
      if (home == nullptr || home == node) continue;
      auto bucket = state.evaluator.daiv.TakeBucket(value_key, sub_key);
      size_t objects = bucket.size();
      StateOf(*home).evaluator.daiv.AbsorbBucket(value_key, sub_key,
                                                 std::move(bucket));
      transfer(objects);
    }

    // DHT-stored items (notifications for off-line subscribers): re-place
    // each key at its current successor.
    auto stored = node->store().ExtractAll();
    for (auto& [key, items] : stored) {
      chord::Node* home = network_.OracleSuccessor(key);
      if (home == nullptr) home = node;
      if (home != node) transfer(items.size());
      for (chord::PayloadPtr& item : items) {
        home->store().Put(key, std::move(item));
      }
    }
  }
  return moved;
}

void ContinuousQueryNetwork::RefreshIndexes() {
  // DAI-T's rewrite dedup would suppress re-creating exactly the rewritten
  // state a crash destroyed: reset it before replaying. Over-rewriting is
  // safe — receiver-side table inserts are idempotent and redundant
  // notifications collapse at the subscriber.
  for (chord::Node* node : nodes_) {
    if (!node->alive()) continue;
    StateOf(*node).rewriter.sent_rewritten_keys.clear();
  }
  for (const query::QueryPtr& query : submission_log_) {
    chord::Node* origin = NodeByKey(query->subscriber_key());
    if (origin == nullptr || !origin->alive()) origin = FirstAliveNode();
    if (origin == nullptr) return;
    IndexQueryFrom(origin, query);
    simulator_.Run();
  }
  for (const auto& [publisher, tuple] : publish_log_) {
    chord::Node* origin = publisher->alive() ? publisher : FirstAliveNode();
    if (origin == nullptr) return;
    PublishTupleFrom(origin, tuple);
    simulator_.Run();
  }
}

// --- Metrics -------------------------------------------------------------------------

const NodeMetrics& ContinuousQueryNetwork::metrics(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  return states_.find(nodes_[node_index])->second->metrics;
}

NodeStorage ContinuousQueryNetwork::storage(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  const chord::Node* node = nodes_[node_index];
  const NodeState& state = *states_.find(node)->second;
  NodeStorage out;
  out.alqt_queries = state.rewriter.alqt.size();
  out.vlqt_rewritten = state.evaluator.vlqt.size();
  out.vltt_tuples = state.evaluator.vltt.size();
  out.daiv_entries = state.evaluator.daiv.size();
  out.stored_notifications = const_cast<chord::Node*>(node)->store().size();
  out.mw_queries = state.mw.alqt_size;
  out.mw_partials = state.mw.vlqt_size;
  return out;
}

const NodeState* ContinuousQueryNetwork::state(size_t node_index) const {
  CJ_CHECK(node_index < nodes_.size());
  return states_.find(nodes_[node_index])->second.get();
}

namespace {

/// Per-alive-node load distribution over an arbitrary projection.
template <typename Fn>
LoadDistribution DistributionOver(const std::vector<chord::Node*>& nodes,
                                  Fn&& load_of) {
  LoadDistribution out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i]->alive()) continue;
    out.Add(static_cast<double>(load_of(i)));
  }
  return out;
}

}  // namespace

LoadDistribution ContinuousQueryNetwork::FilteringLoadDistribution() const {
  return DistributionOver(
      nodes_, [this](size_t i) { return metrics(i).TotalFilterOps(); });
}

LoadDistribution ContinuousQueryNetwork::AttrFilteringLoadDistribution()
    const {
  return DistributionOver(
      nodes_, [this](size_t i) { return metrics(i).filter_ops_attr; });
}

LoadDistribution ContinuousQueryNetwork::ValueFilteringLoadDistribution()
    const {
  return DistributionOver(
      nodes_, [this](size_t i) { return metrics(i).filter_ops_value; });
}

LoadDistribution ContinuousQueryNetwork::StorageLoadDistribution() const {
  return DistributionOver(nodes_,
                          [this](size_t i) { return storage(i).Total(); });
}

NodeMetrics ContinuousQueryNetwork::TotalMetrics() const {
  NodeMetrics total;
  // contjoin-check: ordered-ok(commutative accumulation of counters)
  for (const auto& [node, state] : states_) total.Accumulate(state->metrics);
  return total;
}

NodeStorage ContinuousQueryNetwork::TotalStorage() const {
  NodeStorage total;
  for (size_t i = 0; i < nodes_.size(); ++i) total.Accumulate(storage(i));
  return total;
}

void ContinuousQueryNetwork::ResetLoadMetrics() {
  // contjoin-check: ordered-ok(independent per-node reset, no emission)
  for (auto& [node, state] : states_) state->metrics.Reset();
  network_.stats().Reset();
}

size_t ContinuousQueryNetwork::PruneExpired() {
  if (options_.window == 0) return 0;
  rel::Timestamp now_time = simulator_.Now();
  rel::Timestamp cutoff =
      now_time > options_.window ? now_time - options_.window : 0;
  size_t dropped = 0;
  // contjoin-check: ordered-ok(commutative sum of per-node expiry counts)
  for (auto& [node, state] : states_) {
    dropped += evaluator::ExpireBefore(state->evaluator, cutoff);
  }
  return dropped;
}

}  // namespace contjoin::core
