// Message-dispatch registry: maps each CqMsgType to its role handler and
// keeps per-type receive counters, replacing the monolithic switch. The
// default table wires up the paper's protocols; tests can build their own
// table to exercise handlers in isolation.

#ifndef CONTJOIN_CORE_DISPATCH_H_
#define CONTJOIN_CORE_DISPATCH_H_

#include <array>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"

namespace contjoin::core {

class MessageDispatcher {
 public:
  using Handler = void (*)(ProtocolContext&, chord::Node&,
                           const chord::AppMessage&);

  /// An empty table; use Register (or Default()) to populate it.
  MessageDispatcher() = default;

  /// Registers a handler for `type`. Every message type has exactly one
  /// owning role: if a handler is already registered the call is refused
  /// (the existing handler stays) and false is returned, so a wiring
  /// mistake surfaces instead of silently rerouting a protocol message.
  bool Register(CqMsgType type, Handler handler) {
    size_t index = static_cast<size_t>(type);
    if (handlers_[index] != nullptr) return false;
    handlers_[index] = handler;
    return true;
  }

  bool HasHandler(CqMsgType type) const {
    return handlers_[static_cast<size_t>(type)] != nullptr;
  }

  /// Routes `msg` to the handler registered for its payload type, counting
  /// the receipt in the node's metrics. Returns false (and counts the
  /// message as unhandled) when no handler is registered; a null payload is
  /// ignored entirely.
  bool Dispatch(ProtocolContext& ctx, chord::Node& node,
                const chord::AppMessage& msg) const;

  /// The shared table with every protocol handler registered.
  static const MessageDispatcher& Default();

 private:
  std::array<Handler, kCqMsgTypeCount> handlers_{};
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_DISPATCH_H_
