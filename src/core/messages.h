// Application-level message payloads exchanged by the continuous-query
// protocols, plus the key-derivation helpers that implement the paper's
// two-level indexing identifiers.

#ifndef CONTJOIN_CORE_MESSAGES_H_
#define CONTJOIN_CORE_MESSAGES_H_

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chord/types.h"
#include "core/notification.h"
#include "query/mw_query.h"
#include "query/query.h"
#include "relational/tuple.h"

namespace contjoin::core {

/// A partially bound select-list row: positions of the already-triggered
/// side are concrete; the remaining side's positions are empty until an
/// evaluator joins them with a matching tuple.
using RowTemplate = std::vector<std::optional<rel::Value>>;

// --- Identifier derivation (paper §4.2/§4.3) ---------------------------------

/// Level-1 key "R+A" (attribute level).
std::string AttrKey(const std::string& relation, const std::string& attr);

/// Attribute-level identifier, with optional load-balancing replicas
/// (§4.7): replica 0 hashes the plain "R+A" key, replica j > 0 hashes
/// "R+A#r<j>".
chord::NodeId AttrIndexId(const std::string& relation, const std::string& attr,
                          int replica);

/// AttrIndexId from an already-built attribute key (repair sweeps re-derive
/// a bucket's home identifier from its stored "R+A" key).
chord::NodeId AttrIndexIdOfKey(const std::string& attr_key, int replica);

/// Value-level key "R+A+v" and its identifier.
std::string ValueKeyOf(const std::string& relation, const std::string& attr,
                       const std::string& value_key);
/// ValueIndexId from an already-built attribute key.
chord::NodeId ValueIndexIdOfKey(const std::string& attr_key,
                                const std::string& value_key);
chord::NodeId ValueIndexId(const std::string& relation,
                           const std::string& attr,
                           const std::string& value_key);

/// DAI-V evaluator identifier: Hash(value) alone, or Hash(Key(q)+value) for
/// the key-prefixed variant (§4.5).
chord::NodeId DaivIndexId(const std::string& value_key);
chord::NodeId DaivPrefixedIndexId(const std::string& query_key,
                                  const std::string& value_key);

// --- Payloads ------------------------------------------------------------------

enum class CqMsgType : unsigned char {
  kQueryIndex,    // query(q): index a query at the attribute level.
  kTupleAl,       // al-index(t, A).
  kTupleVl,       // vl-index(t, A).
  kJoin,          // join(q'): rewritten queries for a T1-algorithm evaluator.
  kDaivJoin,      // join(q', t'): DAI-V rewritten query + projected tuple.
  kNotification,  // Routed notification (off-line / moved subscriber).
  kUnsubscribe,   // Query removal (extension beyond the paper).
  kIpUpdate,      // Subscriber address update (§4.6).
  kJfrtAck,       // Evaluator tells a rewriter its address (JFRT fill).
  kMigrateCmd,    // "Move this attribute-level identifier" (§4.7).
  kMwQueryIndex,  // Multi-way query indexing (future-work extension).
  kMwJoin,        // Multi-way partial binding reindexed at the value level.
  kOtjScan,    // One-time join: broadcast scan request (PIER baseline).
  kOtjRehash,  // One-time join: tuples rehashed by join value.
  kDeliveryAck,  // Reliable-delivery ack for a message id (back to origin).
  kNotificationDigest,  // Coalesced per-(destination, epoch) notifications.
  kAdaptReplicate,  // Adapt directive: attr key's effective replica count.
  kAdaptSplit,      // Adapt directive: value key's virtual split factor.
};

/// Number of message types (size of dispatch / per-type counter tables).
inline constexpr size_t kCqMsgTypeCount =
    static_cast<size_t>(CqMsgType::kAdaptSplit) + 1;

/// Base payload carrying the dispatch tag.
struct CqPayload : chord::Payload {
  explicit CqPayload(CqMsgType t) : type(t) {}
  CqMsgType type;
};

struct QueryIndexPayload : CqPayload {
  QueryIndexPayload() : CqPayload(CqMsgType::kQueryIndex) {}
  query::QueryPtr query;
  int index_side = 0;    // Side whose attribute indexes the query here.
  std::string level1;    // "R+A" of the index attribute.
  int replica = 0;       // Attribute-level replica this copy targets.
};

struct TupleIndexPayload : CqPayload {
  explicit TupleIndexPayload(bool value_level)
      : CqPayload(value_level ? CqMsgType::kTupleVl : CqMsgType::kTupleAl) {}
  rel::TuplePtr tuple;
  size_t attr_index = 0;  // IndexA(t): which attribute indexed it here.
  std::string level1;     // "R+A".
  std::string value_key;  // Canonical value (vl-index only).
  int replica = 0;        // Attribute-level replica (al-index only).
};

/// One rewritten query q' (paper §4.3.2): the original query reduced to a
/// select-project query by substituting the trigger tuple's values.
struct RewrittenEntry {
  query::QueryPtr query;
  int remaining_side = 0;        // DisR side, still to be matched.
  std::string rewritten_key;     // Key(q') = Key(q)+v1+...+vl+valDA (§4.3.3).
  rel::Value required_value;     // valDA.
  RowTemplate row;               // Trigger side's select values bound.
  rel::Timestamp trigger_pub = 0;
  uint64_t trigger_seq = 0;
};

struct JoinPayload : CqPayload {
  JoinPayload() : CqPayload(CqMsgType::kJoin) {}
  std::string level1;     // "DisR+DisA".
  std::string value_key;  // valDA canonical string (or a virtual sub-key).
  std::vector<RewrittenEntry> entries;  // Grouped rewritten queries (§4.3.5).
  chord::NodeId rewriter;               // For JFRT acks (zero = none).
  chord::NodeId vindex;                 // Target identifier (ack bookkeeping).
  bool want_ack = false;
  /// Split factor the sender fanned this batch across (adaptive load
  /// manager); a receiver with a newer directive tops up the shards the
  /// sender missed. 1 = the unsplit base scheme, 0 = a re-placement
  /// replay that must be processed where it lands.
  int known_split = 1;
  /// Version of the split directive `known_split` reflects (0 = none):
  /// the batch doubles as a directive carrier, so version comparison
  /// decides deterministically whether the sender or the receiver holds
  /// the fresher view of the family.
  uint64_t split_version = 0;
};

/// DAI-V rewritten query + projected trigger tuple (§4.5).
struct DaivEntry {
  query::QueryPtr query;
  int trigger_side = 0;
  RowTemplate row;        // Trigger side's select values bound.
  rel::Timestamp trigger_pub = 0;
  uint64_t trigger_seq = 0;
};

struct DaivJoinPayload : CqPayload {
  DaivJoinPayload() : CqPayload(CqMsgType::kDaivJoin) {}
  std::string value_key;  // valJC canonical string (level-1 in the store).
  std::vector<DaivEntry> entries;
  chord::NodeId rewriter;  // Zero = none.
  chord::NodeId vindex;
  bool want_ack = false;
  /// Split factor the sender fanned against (see JoinPayload).
  int known_split = 1;
  /// Version of the split directive `known_split` reflects (see
  /// JoinPayload).
  uint64_t split_version = 0;
};

struct NotificationPayload : CqPayload {
  NotificationPayload() : CqPayload(CqMsgType::kNotification) {}
  Notification notification;
  std::string subscriber_key;
  chord::NodeId evaluator;  // So the subscriber can send IP updates (0=none).
};

struct UnsubscribePayload : CqPayload {
  UnsubscribePayload() : CqPayload(CqMsgType::kUnsubscribe) {}
  std::string query_key;
  bool at_evaluator = false;  // false: rewriter stage; true: evaluator stage.
  std::string level1;         // Rewriter stage: "R+A" (migration routing).
  int replica = 0;
};

/// Command triggering the §4.7 "moving an identifier" load-balancing action
/// for one attribute-level key. Delivered to the key's base node, which
/// forwards it to the current holder if the identifier has already moved.
struct MigrateCmdPayload : CqPayload {
  MigrateCmdPayload() : CqPayload(CqMsgType::kMigrateCmd) {}
  std::string level1;
  int replica = 0;
  chord::NodeId base;  // Filled in at the base node (zero until then).
};

struct IpUpdatePayload : CqPayload {
  IpUpdatePayload() : CqPayload(CqMsgType::kIpUpdate) {}
  std::string subscriber_key;
  chord::NodeId node;
  uint64_t ip = 0;
};

struct JfrtAckPayload : CqPayload {
  JfrtAckPayload() : CqPayload(CqMsgType::kJfrtAck) {}
  chord::NodeId vindex;
  chord::NodeId evaluator;
};

// --- Multi-way joins (future-work extension; recursive SAI) --------------------

/// A partially bound m-way query: some relations are bound (their select
/// values filled into `row`, their outgoing join values recorded in
/// `pending`), and the partial is chasing `target_condition` toward the
/// next unbound relation of the join tree.
struct MwPartial {
  query::MwQueryPtr query;
  uint32_t bound_mask = 0;
  RowTemplate row;
  /// condition index -> required value of its (still unbound) other side.
  std::map<int, rel::Value> pending;
  int target_condition = -1;
  rel::Timestamp min_pub = 0;  // Publication span of the bound tuples
  rel::Timestamp max_pub = 0;  // (sliding-window checks).
  uint64_t last_seq = 0;
  std::string partial_key;  // Content identity (dedup at evaluators).
};

struct MwQueryIndexPayload : CqPayload {
  MwQueryIndexPayload() : CqPayload(CqMsgType::kMwQueryIndex) {}
  query::MwQueryPtr query;
  std::string level1;  // "R+A" of the root relation's index attribute.
};

struct MwJoinPayload : CqPayload {
  MwJoinPayload() : CqPayload(CqMsgType::kMwJoin) {}
  std::string level1;     // "Rj+B" of the chased condition's unbound side.
  std::string value_key;  // Required value, canonical form.
  std::vector<MwPartial> entries;
};

// --- One-time joins (PIER-style baseline) ----------------------------------------
//
// The paper contrasts its continuous algorithms with PIER, which evaluates
// one-time equi-joins over a DHT with a symmetric hash join: the query is
// disseminated to all nodes, every node rehashes its locally stored base
// tuples by the join value into a temporary namespace, and the nodes
// owning the temporary keys perform the join and stream results to the
// issuer. This baseline reproduces that architecture on our substrate.

/// Broadcast scan request: evaluate `query` over the snapshot of stored
/// tuples.
struct OtjScanPayload : CqPayload {
  OtjScanPayload() : CqPayload(CqMsgType::kOtjScan) {}
  query::QueryPtr query;
  uint64_t otj_id = 0;
  chord::NodeId issuer;
};

/// One side's projected tuple, rehashed by its join value.
struct OtjTuple {
  int side = 0;
  RowTemplate row;
  rel::Timestamp pub_time = 0;
  uint64_t seq = 0;
};

struct OtjRehashPayload : CqPayload {
  OtjRehashPayload() : CqPayload(CqMsgType::kOtjRehash) {}
  query::QueryPtr query;
  uint64_t otj_id = 0;
  chord::NodeId issuer;
  std::string value_key;  // Join value, canonical form.
  std::vector<OtjTuple> entries;
};

/// Confirms delivery of the reliable message `msg_id` to its origin, which
/// then stops retrying it. Acks themselves are best-effort: a lost ack only
/// costs a redundant retry, which the receiver's dedup absorbs.
struct DeliveryAckPayload : CqPayload {
  DeliveryAckPayload() : CqPayload(CqMsgType::kDeliveryAck) {}
  uint64_t msg_id = 0;
};

/// Fan-out batching (serving extension): all notifications an evaluator
/// produced for one subscriber within one virtual-time epoch, coalesced
/// into a single digest message. Content-lossless: the receiver unpacks
/// the digest into the exact notification set the unbatched path delivers.
struct NotificationDigestPayload : CqPayload {
  NotificationDigestPayload() : CqPayload(CqMsgType::kNotificationDigest) {}
  std::vector<Notification> notifications;
  std::string subscriber_key;
  chord::NodeId evaluator;  // So the subscriber can send IP updates (0=none).
};

// --- Adaptive load manager (runtime hot-key directives) -------------------------
//
// Each directive is broadcast best-effort to refresh every node's routing
// directory, and — where a stale holder would strand state — additionally
// routed reliably to the bucket owners that must act on it. Per-key
// versions make application idempotent under retries and reorderings.

/// Directive: attribute-level key `level1` now runs `replicas` rewriter
/// replicas. Escalations ship the replica-0 query bucket to the new
/// replicas via ordinary (armed) kQueryIndex messages.
struct AdaptReplicatePayload : CqPayload {
  AdaptReplicatePayload() : CqPayload(CqMsgType::kAdaptReplicate) {}
  std::string level1;  // "R+A".
  int replicas = 1;
  uint64_t version = 0;
};

/// Directive: value family (`level1`, `value`) now splits across `split`
/// virtual sub-keys "value#s<j>". Routed copies reach every affected
/// sub-key owner so partitioned state is re-placed even if the broadcast
/// frame is lost.
struct AdaptSplitPayload : CqPayload {
  AdaptSplitPayload() : CqPayload(CqMsgType::kAdaptSplit) {}
  std::string level1;  // "DisR+DisA"; empty for DAI-V families.
  std::string value;   // Base value (no shard suffix).
  int split = 1;
  uint64_t version = 0;
};


}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_MESSAGES_H_
