// One-time equi-joins (PIER-style baseline): the query is broadcast, every
// node rehashes its locally stored base tuples by join value into a
// temporary namespace, and the temporary-key owners run a symmetric hash
// join, streaming result rows straight back to the issuer.

#ifndef CONTJOIN_CORE_OTJ_PROTOCOL_H_
#define CONTJOIN_CORE_OTJ_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"

namespace contjoin::core::otj {

/// Temporary collector buffers a node keeps per in-flight execution.
struct State {
  /// otj id -> join value -> per-side rehashed tuples.
  std::unordered_map<
      uint64_t,
      std::unordered_map<std::string, std::array<std::vector<OtjTuple>, 2>>>
      buffers;
};

// Message handlers (wired up by the dispatch registry).
void HandleScan(ProtocolContext& ctx, chord::Node& node,
                const chord::AppMessage& msg);
void HandleRehash(ProtocolContext& ctx, chord::Node& node,
                  const chord::AppMessage& msg);

}  // namespace contjoin::core::otj

#endif  // CONTJOIN_CORE_OTJ_PROTOCOL_H_
