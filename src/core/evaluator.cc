#include "core/evaluator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "chord/node.h"
#include "common/logging.h"
#include "core/adapt_protocol.h"
#include "core/algorithm.h"
#include "core/mw_protocol.h"
#include "core/state.h"
#include "core/subscriber.h"

namespace contjoin::core::evaluator {

void RemoveQuery(State& state, const std::string& query_key) {
  state.vlqt.RemoveQuery(query_key);
  state.daiv.RemoveQuery(query_key);
}

size_t ExpireBefore(State& state, rel::Timestamp cutoff) {
  size_t dropped = 0;
  dropped += state.vltt.ExpireBefore(cutoff);
  dropped += state.daiv.ExpireBefore(cutoff);
  return dropped;
}

namespace {

/// Completes a row template with the remaining side's select values.
RowTemplate MergeRow(const RowTemplate& partial,
                     const query::ContinuousQuery& q, int remaining_side,
                     const rel::Tuple& tuple) {
  RowTemplate merged = partial;
  for (size_t i = 0; i < q.select().size(); ++i) {
    const query::SelectItem& item = q.select()[i];
    if (item.ref.side == remaining_side) {
      merged[i] = tuple.at(item.ref.attr_index);
    }
  }
  return merged;
}

/// Fills the rewriter's JFRT when it asked for an ack (one control hop).
template <typename PayloadT>
void MaybeAckJfrt(ProtocolContext& ctx, chord::Node& node, const PayloadT& p) {
  if (!p.want_ack || !ctx.options().use_jfrt ||
      p.rewriter == chord::NodeId() || p.rewriter == node.id()) {
    return;
  }
  chord::Node* rw = ctx.NodeById(p.rewriter);
  if (rw == nullptr || !rw->alive()) return;
  auto ack = std::make_shared<JfrtAckPayload>();
  ack->vindex = p.vindex;
  ack->evaluator = node.id();
  chord::AppMessage out;
  out.target = p.rewriter;
  out.cls = sim::MsgClass::kControl;
  out.payload = std::move(ack);
  ctx.TransmitMessage(node, p.rewriter, std::move(out));
}

}  // namespace

void HandleJoin(ProtocolContext& ctx, chord::Node& node,
                const JoinPayload& p) {
  if (adapt::OnJoinArrival(ctx, node, p)) return;
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.joins_received;
  ++state.metrics.filter_ops_value;

  MaybeAckJfrt(ctx, node, p);

  const AlgorithmStrategy& strategy = ctx.strategy();
  CJ_CHECK(!strategy.RewritesToDaiv()) << "T1 join message under DAI-V";
  // Adaptive mode runs every T1 evaluator symmetrically (store and match
  // both ways): re-placement replays can deliver a family's joins and
  // tuples in any relative order, so each arrival must catch up on what
  // the other side stored before it. Buckets are keyed by the base
  // value — routing uses virtual sub-keys, matching does not.
  const bool adaptive = ctx.options().adapt.enabled;
  const std::string& value_key =
      adaptive ? adapt::BaseValueOf(p.value_key) : p.value_key;
  for (const RewrittenEntry& entry : p.entries) {
    const query::ContinuousQuery& q = *entry.query;
    if (strategy.StoresRewrittenQueries() || adaptive) {
      bool is_new =
          state.evaluator.vlqt.InsertOrRefresh(p.level1, value_key, entry);
      // A refresh (duplicate rewritten key) only advances the trigger
      // time. When tuple arrivals match stored joins unconditionally,
      // every tuple stored between the old and new triggers was already
      // paired on its own arrival, so without a window no new content
      // is possible; with one, the fresher trigger may re-admit pairs,
      // so the match must be repeated.
      if (strategy.MatchesRewrittenOnTupleArrival() && !is_new &&
          ctx.options().window == 0) {
        continue;
      }
    }
    if (!(strategy.MatchesTuplesOnJoinArrival() || adaptive)) continue;
    const auto* bucket = state.evaluator.vltt.Find(p.level1, value_key);
    if (bucket == nullptr) continue;
    for (const StoredTuple& st : *bucket) {
      ++state.metrics.filter_ops_value;
      const rel::Tuple& t2 = *st.tuple;
      if (strategy.RequiresStrictlyOlderStored() &&
          !t2.Before(entry.trigger_pub, entry.trigger_seq)) {
        // The strict "stored older than trigger" rule makes each pair the
        // responsibility of exactly one of the two rewriters (§4.4.2).
        continue;
      }
      if (adaptive && !strategy.MatchesTuplesOnJoinArrival()) {
        // Adapt-only matching (DAI-T): the base path pairs a join with
        // every older tuple when that tuple's vl-index arrives, so this
        // catch-up only owes pairs whose tuple was stored (by replay or
        // reordering) before the join got here — the strictly newer
        // ones. Admitting older ones too would merely duplicate.
        const bool same = t2.pub_time() == entry.trigger_pub &&
                          t2.seq() == entry.trigger_seq;
        if (same || t2.Before(entry.trigger_pub, entry.trigger_seq)) {
          continue;
        }
      }
      if (t2.pub_time() < q.insertion_time()) continue;
      rel::Timestamp earlier = std::min(t2.pub_time(), entry.trigger_pub);
      rel::Timestamp later = std::max(t2.pub_time(), entry.trigger_pub);
      if (!ctx.InWindow(earlier, later)) continue;
      if (!q.side(entry.remaining_side).SatisfiesPredicates(t2)) continue;
      subscriber::EmitNotification(
          ctx, node, q, MergeRow(entry.row, q, entry.remaining_side, t2),
          earlier, later);
    }
  }
}

void HandleTupleVl(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg) {
  const auto& p = *static_cast<const TupleIndexPayload*>(msg.payload.get());
  if (adapt::OnValueTuple(ctx, node, p)) return;
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.tuples_received_value;
  ++state.metrics.filter_ops_value;
  const rel::TuplePtr& tuple = p.tuple;
  const AlgorithmStrategy& strategy = ctx.strategy();
  const bool adaptive = ctx.options().adapt.enabled;
  const std::string& value_key =
      adaptive ? adapt::BaseValueOf(p.value_key) : p.value_key;

  // SAI and DAI-T match stored rewritten queries on tuple arrival; in
  // adaptive mode every T1 evaluator does (symmetric catch-up — see
  // HandleJoin).
  if (strategy.MatchesRewrittenOnTupleArrival() || adaptive) {
    const auto* bucket = state.evaluator.vlqt.Find(p.level1, value_key);
    if (bucket != nullptr) {
      for (const auto& [rewritten_key, sr] : *bucket) {
        ++state.metrics.filter_ops_value;
        const query::ContinuousQuery& q = *sr.query;
        if (adaptive && !strategy.MatchesRewrittenOnTupleArrival() &&
            !tuple->Before(sr.latest_trigger_pub, sr.latest_trigger_seq)) {
          // Adapt-only matching (DAI-Q): the base path pairs a tuple
          // with every strictly newer join when that join arrives, so
          // this catch-up only owes pairs whose join was stored before
          // the (older) tuple got here.
          continue;
        }
        if (tuple->pub_time() < q.insertion_time()) continue;
        rel::Timestamp earlier =
            std::min(tuple->pub_time(), sr.latest_trigger_pub);
        rel::Timestamp later =
            std::max(tuple->pub_time(), sr.latest_trigger_pub);
        if (!ctx.InWindow(earlier, later)) continue;
        if (!q.side(sr.remaining_side).SatisfiesPredicates(*tuple)) continue;
        subscriber::EmitNotification(
            ctx, node, q, MergeRow(sr.row, q, sr.remaining_side, *tuple),
            earlier, later);
      }
    }
  }

  // Multi-way partials stored here are extended by matching tuples
  // (extension; recursive-SAI completeness mirrors §4.3.4).
  mw::MatchTupleVl(ctx, node, state, p);

  // SAI and DAI-Q store tuples at the value level (SAI for completeness,
  // §4.3.4; DAI-Q because its evaluators join on query arrival, §4.4.2).
  // Adaptive mode stores under every strategy: a join replayed here
  // later must find the tuples that preceded it.
  if (strategy.StoresTuples() || adaptive) {
    state.evaluator.vltt.Insert(p.level1, value_key,
                                StoredTuple{tuple, p.attr_index});
  }
}

void HandleDaivJoin(ProtocolContext& ctx, chord::Node& node,
                    const DaivJoinPayload& p) {
  if (adapt::OnDaivJoinArrival(ctx, node, p)) return;
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.joins_received;
  ++state.metrics.filter_ops_value;

  MaybeAckJfrt(ctx, node, p);

  const bool adaptive = ctx.options().adapt.enabled;
  // Re-placement replays (known_split == 0) can deliver entries after
  // newer opposite-side entries were stored at the new shard, so the
  // strictly-older rule must relax for them: admit any non-identical
  // pairing — duplicates collapse at the subscriber, misses cannot be
  // repaired.
  const bool replay = adaptive && p.known_split == 0;
  const std::string& value_key =
      adaptive ? adapt::BaseValueOf(p.value_key) : p.value_key;
  for (const DaivEntry& entry : p.entries) {
    const query::ContinuousQuery& q = *entry.query;
    const int opposite = 1 - entry.trigger_side;
    const auto* bucket =
        state.evaluator.daiv.Find(value_key, q.key(), opposite);
    if (bucket != nullptr) {
      for (const DaivStored& stored : *bucket) {
        ++state.metrics.filter_ops_value;
        if (replay) {
          if (stored.pub_time == entry.trigger_pub &&
              stored.seq == entry.trigger_seq) {
            continue;
          }
        } else {
          // Strictly-older rule keeps each pair exactly-once.
          bool older = stored.pub_time < entry.trigger_pub ||
                       (stored.pub_time == entry.trigger_pub &&
                        stored.seq < entry.trigger_seq);
          if (!older) continue;
        }
        rel::Timestamp earlier = std::min(stored.pub_time, entry.trigger_pub);
        rel::Timestamp later = std::max(stored.pub_time, entry.trigger_pub);
        if (!ctx.InWindow(earlier, later)) continue;
        RowTemplate merged = entry.row;
        for (size_t i = 0; i < merged.size(); ++i) {
          if (!merged[i].has_value() && stored.row[i].has_value()) {
            merged[i] = stored.row[i];
          }
        }
        subscriber::EmitNotification(ctx, node, q, std::move(merged),
                                     earlier, later);
      }
    }
    state.evaluator.daiv.Insert(
        value_key, q.key(), entry.trigger_side,
        DaivStored{entry.row, entry.trigger_pub, entry.trigger_seq,
                   entry.query});
  }
}

void HandleJoinMsg(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg) {
  HandleJoin(ctx, node,
             *static_cast<const JoinPayload*>(msg.payload.get()));
}

void HandleDaivJoinMsg(ProtocolContext& ctx, chord::Node& node,
                       const chord::AppMessage& msg) {
  HandleDaivJoin(ctx, node,
                 *static_cast<const DaivJoinPayload*>(msg.payload.get()));
}

}  // namespace contjoin::core::evaluator
