// Join Fingers Routing Table (paper §4.7 "optimizations"): a bounded LRU
// cache at rewriter nodes mapping value-level identifiers to evaluator
// addresses, so reindexing a rewritten query costs one hop instead of
// O(log N) once the evaluator is known.

#ifndef CONTJOIN_CORE_JFRT_H_
#define CONTJOIN_CORE_JFRT_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "chord/types.h"

namespace contjoin::core {

/// LRU cache: NodeId -> Node*. A stale entry (responsibility moved after
/// churn) is corrected when the true evaluator acknowledges a routed join.
class Jfrt {
 public:
  explicit Jfrt(size_t capacity) : capacity_(capacity) {}

  /// nullptr on miss. A hit refreshes recency.
  chord::Node* Lookup(const chord::NodeId& vindex);

  /// Inserts or updates, evicting the least-recently-used entry if full.
  void Insert(const chord::NodeId& vindex, chord::Node* evaluator);

  /// Drops an entry (stale detection).
  void Erase(const chord::NodeId& vindex);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    chord::NodeId vindex;
    chord::Node* evaluator;
  };
  using List = std::list<Entry>;

  size_t capacity_;
  List lru_;  // Front = most recent.
  std::unordered_map<chord::NodeId, List::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_JFRT_H_
