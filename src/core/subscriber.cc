#include "core/subscriber.h"

#include <memory>
#include <utility>

#include "chord/node.h"
#include "common/logging.h"
#include "core/reliability.h"
#include "core/state.h"

namespace contjoin::core::subscriber {

void EmitNotification(ProtocolContext& ctx, chord::Node& evaluator,
                      const query::ContinuousQuery& q, RowTemplate merged,
                      rel::Timestamp earlier, rel::Timestamp later) {
  Notification n;
  n.query_key = q.key();
  n.row.reserve(merged.size());
  for (auto& v : merged) {
    CJ_CHECK(v.has_value()) << "incomplete notification row for " << q.key();
    n.row.push_back(std::move(*v));
  }
  n.earlier_pub = earlier;
  n.later_pub = later;
  n.created_at = ctx.now();
  ++ctx.StateOf(evaluator).metrics.notifications_created;
  DeliverNotification(ctx, evaluator, q.subscriber_key(), q.subscriber_ip(),
                      std::move(n));
}

void EmitMwNotification(ProtocolContext& ctx, chord::Node& evaluator,
                        const query::MwQuery& q, const RowTemplate& row,
                        rel::Timestamp earlier, rel::Timestamp later) {
  Notification n;
  n.query_key = q.key();
  n.row.reserve(row.size());
  for (const auto& v : row) {
    CJ_CHECK(v.has_value()) << "incomplete multi-way row for " << q.key();
    n.row.push_back(*v);
  }
  n.earlier_pub = earlier;
  n.later_pub = later;
  n.created_at = ctx.now();
  ++ctx.StateOf(evaluator).metrics.notifications_created;
  DeliverNotification(ctx, evaluator, q.subscriber_key(), q.subscriber_ip(),
                      std::move(n));
}

void DeliverNotification(ProtocolContext& ctx, chord::Node& evaluator,
                         const std::string& subscriber_key,
                         uint64_t subscriber_ip, Notification n) {
  State& ev_state = ctx.StateOf(evaluator).subscriber;
  chord::Node* target = nullptr;
  uint64_t expect_ip = subscriber_ip;
  auto learned = ev_state.subscriber_addr.find(subscriber_key);
  if (learned != ev_state.subscriber_addr.end()) {
    target = learned->second.node;
    expect_ip = learned->second.ip;
  } else {
    target = ctx.NodeByKey(subscriber_key);
  }

  if (target == &evaluator && target->alive()) {
    ev_state.inbox.push_back(std::move(n));  // Local subscriber.
    return;
  }
  if (target != nullptr && target->alive() && target->ip() == expect_ip &&
      !ctx.options().reliability.enabled) {
    // Direct delivery by IP: one overlay hop (§4.6). The evaluator field
    // stays zero — the address is already known, so the subscriber must
    // not answer with an IP update. With reliability on, this path is
    // skipped: the armed message below delivers through the dispatch hook
    // (still one hop) so the ack / dedup machinery sees it.
    auto direct = std::make_shared<NotificationPayload>();
    direct->notification = std::move(n);
    direct->subscriber_key = subscriber_key;
    chord::AppMessage out;
    out.target = HashKey(subscriber_key);
    out.cls = sim::MsgClass::kNotification;
    out.payload = std::move(direct);
    ctx.TransmitMessage(evaluator, target->id(), std::move(out));
    return;
  }
  // Off-line or moved: route to Successor(Id(n)) where it is delivered or
  // stored (§4.6).
  auto payload = std::make_shared<NotificationPayload>();
  payload->notification = std::move(n);
  payload->subscriber_key = subscriber_key;
  payload->evaluator = evaluator.id();
  chord::AppMessage msg;
  msg.target = HashKey(subscriber_key);
  msg.cls = sim::MsgClass::kNotification;
  msg.payload = std::move(payload);
  if (ctx.options().reliability.enabled) {
    reliability::Arm(ctx, evaluator, msg);
    if (target != nullptr && target->alive() && target->ip() == expect_ip) {
      // Known address: one direct hop into dispatch, retries fall back to
      // routing toward Successor(Id(n)).
      ctx.TransmitMessage(evaluator, target->id(), std::move(msg));
      return;
    }
  }
  ctx.Send(evaluator, std::move(msg));
}

void AbsorbStoredItems(ProtocolContext& ctx, chord::Node& node,
                       const chord::NodeId& key,
                       std::vector<chord::PayloadPtr> items) {
  for (chord::PayloadPtr& item : items) {
    const auto* base = static_cast<const CqPayload*>(item.get());
    if (base != nullptr && base->type == CqMsgType::kNotification) {
      const auto& p = *static_cast<const NotificationPayload*>(base);
      if (p.subscriber_key == node.key()) {
        ctx.DepositNotification(node, p.notification);
        continue;
      }
    }
    node.store().Put(key, std::move(item));
  }
}

void HandleNotification(ProtocolContext& ctx, chord::Node& node,
                        const chord::AppMessage& msg) {
  const auto& p =
      *static_cast<const NotificationPayload*>(msg.payload.get());
  if (node.key() == p.subscriber_key) {
    ctx.DepositNotification(node, p.notification);
    // Tell the evaluator our (possibly new) address (§4.6). A zero
    // evaluator id means the notification came directly to a known
    // address, so there is nothing to teach.
    if (p.evaluator != chord::NodeId() && p.evaluator != node.id()) {
      chord::Node* evaluator = ctx.NodeById(p.evaluator);
      if (evaluator != nullptr && evaluator->alive()) {
        auto up = std::make_shared<IpUpdatePayload>();
        up->subscriber_key = node.key();
        up->node = node.id();
        up->ip = node.ip();
        chord::AppMessage out;
        out.target = p.evaluator;
        out.cls = sim::MsgClass::kControl;
        out.payload = std::move(up);
        ctx.TransmitMessage(node, p.evaluator, std::move(out));
      }
    }
  } else {
    // Subscriber off-line: store under its identifier; the Chord key
    // transfer hands it back on reconnection (§4.6).
    node.store().Put(HashKey(p.subscriber_key), msg.payload);
  }
}

void HandleIpUpdate(ProtocolContext& ctx, chord::Node& node,
                    const chord::AppMessage& msg) {
  const auto& p = *static_cast<const IpUpdatePayload*>(msg.payload.get());
  chord::Node* subscriber = ctx.NodeById(p.node);
  if (subscriber == nullptr) return;
  ctx.StateOf(node).subscriber.subscriber_addr[p.subscriber_key] = {
      subscriber, p.ip};
}

}  // namespace contjoin::core::subscriber
