#include "core/subscriber.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "chord/node.h"
#include "common/logging.h"
#include "core/reliability.h"
#include "core/state.h"

namespace contjoin::core::subscriber {

namespace {

/// One delivery occupies an in-flight slot for max(1, hop_latency) *
/// service_time virtual ticks — the node's service capacity. The release
/// timer runs on the evaluator's own shard and resolves the node by id so
/// a crash between occupy and release is harmless.
void OccupySlots(ProtocolContext& ctx, chord::Node& evaluator,
                 uint64_t units) {
  const ServingOptions& serving = ctx.options().serving;
  State& ev_state = ctx.StateOf(evaluator).subscriber;
  ev_state.inflight += units;
  const uint64_t hold =
      std::max<uint64_t>(1, ctx.options().chord.hop_latency) *
      std::max<uint64_t>(1, serving.service_time);
  const chord::NodeId ev = evaluator.id();
  ctx.ScheduleAfter(evaluator, hold, [&ctx, ev, units]() {
    chord::Node* node = ctx.NodeById(ev);
    if (node == nullptr) return;
    State& st = ctx.StateOf(*node).subscriber;
    st.inflight = st.inflight >= units ? st.inflight - units : 0;
  });
}

/// Admission control at the evaluator: past the high-water mark the
/// delivery is shed (dropped, counted) or deferred (the whole
/// DeliverNotification decision re-runs after defer_delay — the subscriber
/// may have moved meanwhile). Returns true when the delivery may proceed
/// now, in which case a slot has been occupied.
bool AdmitDelivery(ProtocolContext& ctx, chord::Node& evaluator,
                   const std::string& subscriber_key, uint64_t subscriber_ip,
                   Notification& n) {
  const ServingOptions& serving = ctx.options().serving;
  if (!serving.backpressure) return true;
  State& ev_state = ctx.StateOf(evaluator).subscriber;
  if (ev_state.inflight < serving.high_water) {
    OccupySlots(ctx, evaluator, 1);
    return true;
  }
  ctx.RecordBackpressure(serving.shed);
  if (serving.shed) return false;
  const chord::NodeId ev = evaluator.id();
  ctx.ScheduleAfter(
      evaluator, std::max<uint64_t>(1, serving.defer_delay),
      [&ctx, ev, subscriber_key, subscriber_ip, n = std::move(n)]() mutable {
        chord::Node* node = ctx.NodeById(ev);
        if (node == nullptr || !node->alive()) return;
        DeliverNotification(ctx, *node, subscriber_key, subscriber_ip,
                            std::move(n));
      });
  return false;
}

/// Resolves the delivery target for `subscriber_key` exactly like the
/// unbatched path: learned address first, registry second.
chord::Node* ResolveTarget(ProtocolContext& ctx, State& ev_state,
                           const std::string& subscriber_key,
                           uint64_t* expect_ip) {
  auto learned = ev_state.subscriber_addr.find(subscriber_key);
  if (learned != ev_state.subscriber_addr.end()) {
    *expect_ip = learned->second.ip;
    return learned->second.node;
  }
  return ctx.NodeByKey(subscriber_key);
}

/// Sends one digest (all notifications buffered for `subscriber_key` this
/// epoch) with the same local / direct / routed branching as a single
/// notification.
void SendDigest(ProtocolContext& ctx, chord::Node& evaluator,
                const std::string& subscriber_key, uint64_t subscriber_ip,
                std::vector<Notification> notifications) {
  State& ev_state = ctx.StateOf(evaluator).subscriber;
  uint64_t expect_ip = subscriber_ip;
  chord::Node* target =
      ResolveTarget(ctx, ev_state, subscriber_key, &expect_ip);

  if (target == &evaluator && target->alive()) {
    for (Notification& n : notifications) {
      ctx.DepositNotification(evaluator, std::move(n));
    }
    return;
  }
  auto payload = std::make_shared<NotificationDigestPayload>();
  payload->notifications = std::move(notifications);
  payload->subscriber_key = subscriber_key;
  chord::AppMessage msg;
  msg.target = HashKey(subscriber_key);
  msg.cls = sim::MsgClass::kNotification;
  if (target != nullptr && target->alive() && target->ip() == expect_ip &&
      !ctx.options().reliability.enabled) {
    // Direct delivery: evaluator field stays zero, no IP update expected.
    msg.payload = std::move(payload);
    ctx.TransmitMessage(evaluator, target->id(), std::move(msg));
    return;
  }
  payload->evaluator = evaluator.id();
  msg.payload = std::move(payload);
  if (ctx.options().reliability.enabled) {
    reliability::Arm(ctx, evaluator, msg);
    if (target != nullptr && target->alive() && target->ip() == expect_ip) {
      ctx.TransmitMessage(evaluator, target->id(), std::move(msg));
      return;
    }
  }
  ctx.Send(evaluator, std::move(msg));
}

/// End-of-epoch flush: drains the evaluator's digest buffer, one digest
/// message per subscriber. Runs on the evaluator's shard at the same
/// virtual timestamp as the buffered emissions (delay-0 event), so
/// coalescing is exactly per (destination, epoch).
void FlushDigests(ProtocolContext& ctx, chord::Node& evaluator) {
  State& ev_state = ctx.StateOf(evaluator).subscriber;
  ev_state.digest_flush_scheduled = false;
  std::map<std::string, std::pair<uint64_t, std::vector<Notification>>>
      buffer;
  buffer.swap(ev_state.digest_buffer);
  if (!evaluator.alive()) return;  // Crashed between buffer and flush.
  for (auto& [subscriber_key, entry] : buffer) {
    SendDigest(ctx, evaluator, subscriber_key, entry.first,
               std::move(entry.second));
  }
}

}  // namespace

void EmitNotification(ProtocolContext& ctx, chord::Node& evaluator,
                      const query::ContinuousQuery& q, RowTemplate merged,
                      rel::Timestamp earlier, rel::Timestamp later) {
  Notification n;
  n.query_key = q.key();
  n.row.reserve(merged.size());
  for (auto& v : merged) {
    CJ_CHECK(v.has_value()) << "incomplete notification row for " << q.key();
    n.row.push_back(std::move(*v));
  }
  n.earlier_pub = earlier;
  n.later_pub = later;
  n.created_at = ctx.now();
  ++ctx.StateOf(evaluator).metrics.notifications_created;
  DeliverNotification(ctx, evaluator, q.subscriber_key(), q.subscriber_ip(),
                      std::move(n));
}

void EmitMwNotification(ProtocolContext& ctx, chord::Node& evaluator,
                        const query::MwQuery& q, const RowTemplate& row,
                        rel::Timestamp earlier, rel::Timestamp later) {
  Notification n;
  n.query_key = q.key();
  n.row.reserve(row.size());
  for (const auto& v : row) {
    CJ_CHECK(v.has_value()) << "incomplete multi-way row for " << q.key();
    n.row.push_back(*v);
  }
  n.earlier_pub = earlier;
  n.later_pub = later;
  n.created_at = ctx.now();
  ++ctx.StateOf(evaluator).metrics.notifications_created;
  DeliverNotification(ctx, evaluator, q.subscriber_key(), q.subscriber_ip(),
                      std::move(n));
}

void DeliverNotification(ProtocolContext& ctx, chord::Node& evaluator,
                         const std::string& subscriber_key,
                         uint64_t subscriber_ip, Notification n) {
  if (!AdmitDelivery(ctx, evaluator, subscriber_key, subscriber_ip, n)) {
    return;  // Shed, or deferred to a later epoch.
  }
  State& ev_state = ctx.StateOf(evaluator).subscriber;
  if (ctx.options().serving.fanout_batching) {
    auto& entry = ev_state.digest_buffer[subscriber_key];
    entry.first = subscriber_ip;
    entry.second.push_back(std::move(n));
    if (!ev_state.digest_flush_scheduled) {
      ev_state.digest_flush_scheduled = true;
      const chord::NodeId ev = evaluator.id();
      // Delay-0 event on the evaluator's shard: fires within the current
      // virtual timestamp, after the batch that buffered the emissions.
      ctx.ScheduleAfter(evaluator, 0, [&ctx, ev]() {
        chord::Node* node = ctx.NodeById(ev);
        if (node == nullptr) return;
        FlushDigests(ctx, *node);
      });
    }
    return;
  }
  uint64_t expect_ip = subscriber_ip;
  chord::Node* target =
      ResolveTarget(ctx, ev_state, subscriber_key, &expect_ip);

  if (target == &evaluator && target->alive()) {
    ctx.DepositNotification(evaluator, std::move(n));  // Local subscriber.
    return;
  }
  if (target != nullptr && target->alive() && target->ip() == expect_ip &&
      !ctx.options().reliability.enabled) {
    // Direct delivery by IP: one overlay hop (§4.6). The evaluator field
    // stays zero — the address is already known, so the subscriber must
    // not answer with an IP update. With reliability on, this path is
    // skipped: the armed message below delivers through the dispatch hook
    // (still one hop) so the ack / dedup machinery sees it.
    auto direct = std::make_shared<NotificationPayload>();
    direct->notification = std::move(n);
    direct->subscriber_key = subscriber_key;
    chord::AppMessage out;
    out.target = HashKey(subscriber_key);
    out.cls = sim::MsgClass::kNotification;
    out.payload = std::move(direct);
    ctx.TransmitMessage(evaluator, target->id(), std::move(out));
    return;
  }
  // Off-line or moved: route to Successor(Id(n)) where it is delivered or
  // stored (§4.6).
  auto payload = std::make_shared<NotificationPayload>();
  payload->notification = std::move(n);
  payload->subscriber_key = subscriber_key;
  payload->evaluator = evaluator.id();
  chord::AppMessage msg;
  msg.target = HashKey(subscriber_key);
  msg.cls = sim::MsgClass::kNotification;
  msg.payload = std::move(payload);
  if (ctx.options().reliability.enabled) {
    reliability::Arm(ctx, evaluator, msg);
    if (target != nullptr && target->alive() && target->ip() == expect_ip) {
      // Known address: one direct hop into dispatch, retries fall back to
      // routing toward Successor(Id(n)).
      ctx.TransmitMessage(evaluator, target->id(), std::move(msg));
      return;
    }
  }
  ctx.Send(evaluator, std::move(msg));
}

void AbsorbStoredItems(ProtocolContext& ctx, chord::Node& node,
                       const chord::NodeId& key,
                       std::vector<chord::PayloadPtr> items) {
  for (chord::PayloadPtr& item : items) {
    const auto* base = static_cast<const CqPayload*>(item.get());
    if (base != nullptr && base->type == CqMsgType::kNotification) {
      const auto& p = *static_cast<const NotificationPayload*>(base);
      if (p.subscriber_key == node.key()) {
        ctx.DepositNotification(node, p.notification);
        continue;
      }
    }
    if (base != nullptr && base->type == CqMsgType::kNotificationDigest) {
      const auto& p = *static_cast<const NotificationDigestPayload*>(base);
      if (p.subscriber_key == node.key()) {
        for (const Notification& n : p.notifications) {
          ctx.DepositNotification(node, n);
        }
        continue;
      }
    }
    node.store().Put(key, std::move(item));
  }
}

void HandleNotification(ProtocolContext& ctx, chord::Node& node,
                        const chord::AppMessage& msg) {
  const auto& p =
      *static_cast<const NotificationPayload*>(msg.payload.get());
  if (node.key() == p.subscriber_key) {
    ctx.DepositNotification(node, p.notification);
    // Tell the evaluator our (possibly new) address (§4.6). A zero
    // evaluator id means the notification came directly to a known
    // address, so there is nothing to teach.
    if (p.evaluator != chord::NodeId() && p.evaluator != node.id()) {
      chord::Node* evaluator = ctx.NodeById(p.evaluator);
      if (evaluator != nullptr && evaluator->alive()) {
        auto up = std::make_shared<IpUpdatePayload>();
        up->subscriber_key = node.key();
        up->node = node.id();
        up->ip = node.ip();
        chord::AppMessage out;
        out.target = p.evaluator;
        out.cls = sim::MsgClass::kControl;
        out.payload = std::move(up);
        ctx.TransmitMessage(node, p.evaluator, std::move(out));
      }
    }
  } else {
    // Subscriber off-line: store under its identifier; the Chord key
    // transfer hands it back on reconnection (§4.6).
    node.store().Put(HashKey(p.subscriber_key), msg.payload);
  }
}

void HandleNotificationDigest(ProtocolContext& ctx, chord::Node& node,
                              const chord::AppMessage& msg) {
  const auto& p =
      *static_cast<const NotificationDigestPayload*>(msg.payload.get());
  if (node.key() == p.subscriber_key) {
    for (const Notification& n : p.notifications) {
      ctx.DepositNotification(node, n);
    }
    // One IP update per digest — the fan-out saving extends to the
    // control-plane answer too (§4.6 semantics otherwise unchanged).
    if (p.evaluator != chord::NodeId() && p.evaluator != node.id()) {
      chord::Node* evaluator = ctx.NodeById(p.evaluator);
      if (evaluator != nullptr && evaluator->alive()) {
        auto up = std::make_shared<IpUpdatePayload>();
        up->subscriber_key = node.key();
        up->node = node.id();
        up->ip = node.ip();
        chord::AppMessage out;
        out.target = p.evaluator;
        out.cls = sim::MsgClass::kControl;
        out.payload = std::move(up);
        ctx.TransmitMessage(node, p.evaluator, std::move(out));
      }
    }
  } else {
    // Subscriber off-line: store the whole digest under its identifier;
    // the Chord key transfer hands it back on reconnection (§4.6).
    node.store().Put(HashKey(p.subscriber_key), msg.payload);
  }
}

void HandleIpUpdate(ProtocolContext& ctx, chord::Node& node,
                    const chord::AppMessage& msg) {
  const auto& p = *static_cast<const IpUpdatePayload*>(msg.payload.get());
  chord::Node* subscriber = ctx.NodeById(p.node);
  if (subscriber == nullptr) return;
  ctx.StateOf(node).subscriber.subscriber_addr[p.subscriber_key] = {
      subscriber, p.ip};
}

}  // namespace contjoin::core::subscriber
