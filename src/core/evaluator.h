// The evaluator role (value level, paper §4.3.4/§4.4/§4.5): stores
// rewritten queries (VLQT), tuples (VLTT) and DAI-V projections, and
// produces notifications by matching the two against each other according
// to the configured algorithm's policy.

#ifndef CONTJOIN_CORE_EVALUATOR_H_
#define CONTJOIN_CORE_EVALUATOR_H_

#include <cstddef>
#include <string>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"
#include "core/tables.h"

namespace contjoin::core::evaluator {

/// The tables a node keeps to play the evaluator role.
struct State {
  ValueLevelQueryTable vlqt;
  ValueLevelTupleTable vltt;
  DaivStore daiv;
};

/// Evaluator-side unsubscription: drops every trace of `query_key`.
void RemoveQuery(State& state, const std::string& query_key);

/// Sliding-window expiry over the evaluator's value-level state; returns
/// the number of objects dropped.
size_t ExpireBefore(State& state, rel::Timestamp cutoff);

// Payload-level entry points: the JFRT fast path delivers join payloads
// directly (one hop, no routing), bypassing message dispatch.
void HandleJoin(ProtocolContext& ctx, chord::Node& node,
                const JoinPayload& p);
void HandleDaivJoin(ProtocolContext& ctx, chord::Node& node,
                    const DaivJoinPayload& p);

// Message handlers (wired up by the dispatch registry).
void HandleTupleVl(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg);
void HandleJoinMsg(ProtocolContext& ctx, chord::Node& node,
                   const chord::AppMessage& msg);
void HandleDaivJoinMsg(ProtocolContext& ctx, chord::Node& node,
                       const chord::AppMessage& msg);

}  // namespace contjoin::core::evaluator

#endif  // CONTJOIN_CORE_EVALUATOR_H_
