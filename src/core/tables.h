// Local two-level hash-table data structures maintained by rewriter and
// evaluator nodes (paper §4.3.5): the attribute-level query table (ALQT),
// the value-level query table (VLQT), the value-level tuple table (VLTT)
// and the DAI-V evaluator store.

#ifndef CONTJOIN_CORE_TABLES_H_
#define CONTJOIN_CORE_TABLES_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/messages.h"
#include "query/query.h"
#include "relational/tuple.h"

namespace contjoin::core {

// --- ALQT ----------------------------------------------------------------------

/// A query stored at a rewriter, together with the side it is indexed by.
struct AlqtEntry {
  query::QueryPtr query;
  int index_side = 0;
};

/// Attribute-level query table: level 1 keyed by the index attribute
/// ("R+A"), level 2 by the join-condition signature, grouping similar
/// queries so a tuple triggers a whole group in one step (§4.3.5).
///
/// Level 2 is an ordered map: triggered groups are iterated when building
/// outgoing join batches, so the iteration order reaches the wire and must
/// not depend on hash-table layout.
class AttrLevelQueryTable {
 public:
  using Group = std::vector<AlqtEntry>;
  using GroupMap = std::map<std::string, Group>;

  /// Inserts unless an entry with the same (query key, index side) already
  /// sits in the group — re-indexing after a retry or a soft-state refresh
  /// is therefore idempotent.
  void Insert(const std::string& level1, const std::string& signature,
              AlqtEntry entry);

  /// Groups triggered by a tuple indexed under `level1`; nullptr if none.
  const GroupMap* Find(const std::string& level1) const;

  /// Removes every entry of `query_key`; returns the number removed.
  size_t RemoveQuery(const std::string& query_key);

  /// Extracts and returns an entire level-1 bucket (used when an
  /// attribute-level identifier is moved to another node, §4.7).
  GroupMap TakeLevel1(const std::string& level1);

  /// Merges a handed-off level-1 bucket (key-range handoff during churn
  /// repair); duplicates collapse via the Insert dedup rule.
  void AbsorbLevel1(const std::string& level1, GroupMap groups);

  /// Level-1 keys in sorted order (deterministic handoff sweeps).
  std::vector<std::string> Level1Keys() const;

  /// Total stored queries (storage-load contribution).
  size_t size() const { return size_; }

 private:
  std::unordered_map<std::string, GroupMap> map_;
  size_t size_ = 0;
};

// --- VLQT ----------------------------------------------------------------------

/// A rewritten query stored at an evaluator. Identical rewritten queries
/// (same rewritten key) collapse into one entry whose trigger time advances
/// (§4.3.3: "if there is a query with the same key, only pubT(t) is stored").
struct StoredRewritten {
  query::QueryPtr query;
  int remaining_side = 0;
  rel::Value required_value;
  RowTemplate row;
  rel::Timestamp latest_trigger_pub = 0;
  uint64_t latest_trigger_seq = 0;
};

/// Value-level query table: level 1 keyed by the load-distributing
/// attribute ("DisR+DisA"), level 2 by the required value, then by
/// rewritten key. Buckets are ordered maps: an arriving tuple iterates a
/// whole bucket emitting notifications, so the order must be reproducible.
class ValueLevelQueryTable {
 public:
  using Bucket = std::map<std::string, StoredRewritten>;

  /// Inserts or refreshes; returns true when the rewritten key is new.
  bool InsertOrRefresh(const std::string& level1, const std::string& value_key,
                       const RewrittenEntry& entry);

  /// Rewritten queries possibly matched by a tuple of `level1` with value
  /// `value_key`; nullptr if none.
  const Bucket* Find(const std::string& level1,
                     const std::string& value_key) const;

  size_t RemoveQuery(const std::string& query_key);

  /// All (level1, value_key) bucket coordinates in sorted order.
  std::vector<std::pair<std::string, std::string>> BucketKeys() const;

  /// Extracts one bucket for handoff; empty if absent.
  Bucket TakeBucket(const std::string& level1, const std::string& value_key);

  /// Merges a handed-off bucket; an existing rewritten key only has its
  /// trigger time advanced, mirroring InsertOrRefresh.
  void AbsorbBucket(const std::string& level1, const std::string& value_key,
                    Bucket bucket);

  size_t size() const { return size_; }

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, Bucket>>
      map_;
  size_t size_ = 0;
};

// --- VLTT ----------------------------------------------------------------------

/// A tuple stored at the value level with the attribute that indexed it.
struct StoredTuple {
  rel::TuplePtr tuple;
  size_t index_attr = 0;
};

/// Value-level tuple table: level 1 "R+A", level 2 the attribute's value.
/// Supports sliding-window expiry of stored tuples.
class ValueLevelTupleTable {
 public:
  using Bucket = std::vector<StoredTuple>;

  /// Inserts unless a tuple with the same (sequence number, index attribute)
  /// already sits in the bucket, so re-publication after a retry or a
  /// soft-state refresh is idempotent.
  void Insert(const std::string& level1, const std::string& value_key,
              StoredTuple stored);

  /// Bucket for matching; nullptr if none. The bucket may contain expired
  /// tuples; callers filter by time (or call ExpireBefore first).
  const Bucket* Find(const std::string& level1,
                     const std::string& value_key) const;

  /// All (level1, value_key) bucket coordinates in sorted order.
  std::vector<std::pair<std::string, std::string>> BucketKeys() const;

  /// Extracts one bucket for handoff; empty if absent.
  Bucket TakeBucket(const std::string& level1, const std::string& value_key);

  /// Merges a handed-off bucket via the Insert dedup rule.
  void AbsorbBucket(const std::string& level1, const std::string& value_key,
                    Bucket bucket);

  /// Drops every tuple with pub_time < cutoff; returns the number dropped.
  size_t ExpireBefore(rel::Timestamp cutoff);

  /// Visits every stored tuple (one-time scans) in deterministic
  /// (level1, value) key order — scans feed rehash messages, so the visit
  /// order reaches the wire. A tuple stored under h attributes is visited
  /// h times; filter on StoredTuple::index_attr to see each tuple once.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    using ByValue = std::unordered_map<std::string, Bucket>;
    std::vector<std::pair<std::string_view, const ByValue*>> level1s;
    level1s.reserve(map_.size());
    // contjoin-check: ordered-ok(keys are collected and sorted below)
    for (const auto& [level1, by_value] : map_) {
      level1s.emplace_back(level1, &by_value);
    }
    std::sort(level1s.begin(), level1s.end());
    std::vector<std::pair<std::string_view, const Bucket*>> values;
    for (const auto& [level1, by_value] : level1s) {
      values.clear();
      values.reserve(by_value->size());
      // contjoin-check: ordered-ok(keys are collected and sorted below)
      for (const auto& [value, bucket] : *by_value) {
        values.emplace_back(value, &bucket);
      }
      std::sort(values.begin(), values.end());
      for (const auto& [value, bucket] : values) {
        for (const StoredTuple& stored : *bucket) fn(stored);
      }
    }
  }

  size_t size() const { return size_; }

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, Bucket>>
      map_;
  size_t size_ = 0;
};

// --- DAI-V store ------------------------------------------------------------------

/// Projected tuple stored at a DAI-V evaluator on behalf of one side of one
/// query (§4.5: the evaluator stores t', the projection of the trigger
/// tuple, and matches future opposite-side rewritten queries against it).
struct DaivStored {
  RowTemplate row;
  rel::Timestamp pub_time = 0;
  uint64_t seq = 0;
  /// The query this projection was stored for. Lets the adaptive load
  /// manager reconstruct and re-send the entry as an ordinary kDaivJoin
  /// when a split directive re-places the bucket; null in legacy paths
  /// is tolerated (such entries simply cannot be re-shipped).
  query::QueryPtr query;
};

class DaivStore {
 public:
  using Bucket = std::vector<DaivStored>;

  /// Inserts unless an entry with the same sequence number already sits in
  /// the bucket (replay-idempotent, like the other tables).
  void Insert(const std::string& value_key, const std::string& query_key,
              int side, DaivStored stored);

  /// Entries stored for (`query_key`, `side`) under `value_key`.
  const Bucket* Find(const std::string& value_key,
                     const std::string& query_key, int side) const;

  /// All (value_key, sub_key) bucket coordinates in sorted order; sub_key
  /// is the internal "query#side" composite, fed back into TakeBucket /
  /// AbsorbBucket verbatim.
  std::vector<std::pair<std::string, std::string>> BucketKeys() const;

  /// Extracts one bucket for handoff; empty if absent.
  Bucket TakeBucket(const std::string& value_key, const std::string& sub_key);

  /// Merges a handed-off bucket via the Insert dedup rule.
  void AbsorbBucket(const std::string& value_key, const std::string& sub_key,
                    Bucket bucket);

  size_t ExpireBefore(rel::Timestamp cutoff);
  size_t RemoveQuery(const std::string& query_key);

  size_t size() const { return size_; }

 private:
  static std::string SubKey(const std::string& query_key, int side) {
    return query_key + (side == 0 ? "#L" : "#R");
  }

  std::unordered_map<std::string, std::unordered_map<std::string, Bucket>>
      map_;  // value_key -> (query#side -> entries)
  size_t size_ = 0;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_TABLES_H_
