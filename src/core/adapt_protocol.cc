#include "core/adapt_protocol.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/planner.h"
#include "adapt/policy.h"
#include "chord/node.h"
#include "core/reliability.h"
#include "core/rewriter.h"
#include "core/state.h"
#include "core/tables.h"

// Every adapt-originated payload is constructed in this translation unit
// and handed to reliability::SendReliable in the same function, so the
// critical kinds (kQueryIndex, kTupleAl, kTupleVl, kJoin, kDaivJoin,
// kAdaptSplit) are armed right where they are created. Re-placement
// replays carry known_split == 0 — "process where this lands" — and a
// zero rewriter id, so they never trigger JFRT acks.

namespace contjoin::core::adapt {
namespace {

namespace la = ::contjoin::adapt;

uint64_t EpochOf(const ProtocolContext& ctx) {
  const uint64_t len = std::max<uint64_t>(1, ctx.options().adapt.epoch_len);
  return static_cast<uint64_t>(ctx.now()) / len;
}

/// Home identifier of a value-family sub-key: T1 families hash
/// (level1, sub_key); DAI-V families (empty level1) hash the sub-key.
chord::NodeId HomeOf(const std::string& level1, const std::string& sub_key) {
  return level1.empty() ? DaivIndexId(sub_key)
                        : ValueIndexIdOfKey(level1, sub_key);
}

/// The live sub-keys of a family under split factor `split` (the plain
/// base value when unsplit).
std::vector<std::string> LiveSubKeys(const std::string& base, int split) {
  std::vector<std::string> keys;
  if (split <= 1) {
    keys.push_back(base);
    return keys;
  }
  keys.reserve(static_cast<size_t>(split));
  for (int j = 0; j < split; ++j) {
    keys.push_back(la::ShardValueKey(base, j, split));
  }
  return keys;
}

/// Liveness of an arrived key (`shard` = parsed index, -1 for the plain
/// base) under split factor `split`.
bool KeyLive(int shard, int split) {
  if (shard < 0) return split <= 1;
  return split > 1 && shard < split;
}

/// Splits an arrived value key into (base, shard); shard -1 = plain.
void ParseArrivedKey(const std::string& value_key, std::string* base,
                     int* shard) {
  *base = value_key;
  *shard = -1;
  std::string parsed;
  int s = 0;
  if (la::ParseShardSuffix(value_key, &parsed, &s)) {
    *base = parsed;
    *shard = s;
  }
}

/// Does `node` own any live sub-key of the family? A node that does can
/// keep all of the family's state: the replicated side (T1 rewritten
/// queries; DAI-V side-1 entries) fans to every live shard, so
/// partitioned-side state stored next to any live shard still meets
/// every future match. Only holders with no live shard strand.
bool OwnsLiveShard(const chord::Node& node, const std::string& level1,
                   const std::string& base, int split) {
  for (const std::string& key : LiveSubKeys(base, split)) {
    if (node.IsResponsibleFor(HomeOf(level1, key))) return true;
  }
  return false;
}

/// Sends one directed split directive (kAdaptSplit is critical, so the
/// send is armed when reliability is on).
void SendSplitDirective(ProtocolContext& ctx, chord::Node& from,
                        const chord::NodeId& target, const std::string& level1,
                        const std::string& base, int split, uint64_t version) {
  auto payload = std::make_shared<AdaptSplitPayload>();
  payload->level1 = level1;
  payload->value = base;
  payload->split = split;
  payload->version = version;
  chord::AppMessage msg;
  msg.target = target;
  msg.cls = sim::MsgClass::kControl;
  msg.payload = std::move(payload);
  reliability::SendReliable(ctx, from, std::move(msg));
}

/// Ships rewritten-query entries to one sub-key home as a replay batch.
void ShipJoinEntries(ProtocolContext& ctx, chord::Node& from,
                     const std::string& level1, const std::string& sub_key,
                     std::vector<RewrittenEntry> entries) {
  if (entries.empty()) return;
  auto payload = std::make_shared<JoinPayload>();
  payload->level1 = level1;
  payload->value_key = sub_key;
  payload->vindex = ValueIndexIdOfKey(level1, sub_key);
  payload->known_split = 0;
  payload->entries = std::move(entries);
  chord::AppMessage msg;
  msg.target = payload->vindex;
  msg.cls = sim::MsgClass::kControl;
  msg.payload = std::move(payload);
  reliability::SendReliable(ctx, from, std::move(msg));
  ctx.RecordAdapt(AdaptStat::kReship);
}

std::vector<RewrittenEntry> BucketToEntries(
    const ValueLevelQueryTable::Bucket& bucket) {
  std::vector<RewrittenEntry> entries;
  entries.reserve(bucket.size());
  for (const auto& [rewritten_key, sr] : bucket) {
    RewrittenEntry entry;
    entry.query = sr.query;
    entry.remaining_side = sr.remaining_side;
    entry.rewritten_key = rewritten_key;
    entry.required_value = sr.required_value;
    entry.row = sr.row;
    entry.trigger_pub = sr.latest_trigger_pub;
    entry.trigger_seq = sr.latest_trigger_seq;
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Re-ships one stored tuple to a sub-key home (vl-index replay).
void ShipStoredTuple(ProtocolContext& ctx, chord::Node& from,
                     const std::string& level1, const std::string& sub_key,
                     const StoredTuple& stored) {
  auto payload = std::make_shared<TupleIndexPayload>(/*value_level=*/true);
  payload->tuple = stored.tuple;
  payload->attr_index = stored.index_attr;
  payload->level1 = level1;
  payload->value_key = sub_key;
  chord::AppMessage msg;
  msg.target = ValueIndexIdOfKey(level1, sub_key);
  msg.cls = sim::MsgClass::kControl;
  msg.payload = std::move(payload);
  reliability::SendReliable(ctx, from, std::move(msg));
  ctx.RecordAdapt(AdaptStat::kReship);
}

/// Ships DAI-V entries (rebuilt from stored projections) to one sub-key
/// as a replay batch.
void ShipDaivEntries(ProtocolContext& ctx, chord::Node& from,
                     const std::string& sub_key,
                     std::vector<DaivEntry> entries) {
  if (entries.empty()) return;
  auto payload = std::make_shared<DaivJoinPayload>();
  payload->value_key = sub_key;
  payload->vindex = DaivIndexId(sub_key);
  payload->known_split = 0;
  payload->entries = std::move(entries);
  chord::AppMessage msg;
  msg.target = payload->vindex;
  msg.cls = sim::MsgClass::kControl;
  msg.payload = std::move(payload);
  reliability::SendReliable(ctx, from, std::move(msg));
  ctx.RecordAdapt(AdaptStat::kReship);
}

DaivEntry RebuildDaivEntry(const DaivStored& stored, int side) {
  DaivEntry entry;
  entry.query = stored.query;
  entry.trigger_side = side;
  entry.row = stored.row;
  entry.trigger_pub = stored.pub_time;
  entry.trigger_seq = stored.seq;
  return entry;
}

/// Side encoded in a DaivStore sub-key ("query#L" / "query#R").
int DaivSubKeySide(const std::string& sub_key) {
  return sub_key.size() >= 2 && sub_key[sub_key.size() - 1] == 'R' ? 1 : 0;
}

/// Re-places every piece of family state held by a node that no longer
/// owns a live sub-key; a node owning at least one live shard keeps
/// everything (see OwnsLiveShard).
void SweepFamily(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                 const std::string& level1, const std::string& base) {
  const int split = state.adapt.directory.SplitOf(level1, base);
  if (OwnsLiveShard(node, level1, base, split)) return;
  if (!level1.empty()) {
    // T1 family: rewritten queries fan to every live shard; stored
    // tuples hash to their sequence shard.
    ValueLevelQueryTable::Bucket joins =
        state.evaluator.vlqt.TakeBucket(level1, base);
    if (!joins.empty()) {
      std::vector<RewrittenEntry> entries = BucketToEntries(joins);
      for (const std::string& key : LiveSubKeys(base, split)) {
        ShipJoinEntries(ctx, node, level1, key, entries);
      }
    }
    ValueLevelTupleTable::Bucket tuples =
        state.evaluator.vltt.TakeBucket(level1, base);
    for (const StoredTuple& stored : tuples) {
      const int shard = la::ShardOfSeq(stored.tuple->seq(), split);
      ShipStoredTuple(ctx, node, level1,
                      la::ShardValueKey(base, shard, split), stored);
    }
    ++state.metrics.adapt_reships;
    return;
  }
  // DAI-V family: side-1 entries fan everywhere, side-0 projections
  // hash to their sequence shard.
  const std::vector<std::string> live = LiveSubKeys(base, split);
  std::map<std::string, std::vector<DaivEntry>> by_target;
  for (const auto& [value_key, sub_key] : state.evaluator.daiv.BucketKeys()) {
    if (value_key != base) continue;
    DaivStore::Bucket bucket = state.evaluator.daiv.TakeBucket(base, sub_key);
    const int side = DaivSubKeySide(sub_key);
    for (const DaivStored& stored : bucket) {
      if (stored.query == nullptr) continue;  // Cannot rebuild: no query.
      DaivEntry entry = RebuildDaivEntry(stored, side);
      if (side == 1) {
        for (const std::string& key : live) by_target[key].push_back(entry);
      } else {
        const int shard = la::ShardOfSeq(stored.seq, split);
        by_target[la::ShardValueKey(base, shard, split)].push_back(
            std::move(entry));
      }
    }
  }
  for (auto& [key, entries] : by_target) {
    ShipDaivEntries(ctx, node, key, std::move(entries));
  }
  ++state.metrics.adapt_reships;
}

/// Performs this node's local transition for the newest known split
/// directive of a family, at most once per directive version.
void ActOnSplit(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                const std::string& level1, const std::string& base) {
  const la::Directive* d = state.adapt.directory.FindSplit(level1, base);
  if (d == nullptr || d->version == 0) return;
  uint64_t& acted = state.adapt.acted_split[la::FamilyKey(level1, base)];
  if (acted >= d->version) return;
  acted = d->version;
  SweepFamily(ctx, node, state, level1, base);
}

/// Copies the replicated side of a family (T1 rewritten queries; DAI-V
/// side-1 entries) to shards [lo, hi) after an escalation the decider
/// survived. The partitioned side needs no copy: its entries already
/// sit next to a live shard.
void TopUpFamily(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                 const std::string& level1, const std::string& base, int split,
                 int lo, int hi) {
  if (!level1.empty()) {
    const auto* bucket = state.evaluator.vlqt.Find(level1, base);
    if (bucket == nullptr || bucket->empty()) return;
    std::vector<RewrittenEntry> entries = BucketToEntries(*bucket);
    for (int j = lo; j < hi; ++j) {
      ShipJoinEntries(ctx, node, level1, la::ShardValueKey(base, j, split),
                      entries);
    }
    return;
  }
  std::vector<DaivEntry> entries;
  for (const auto& [value_key, sub_key] : state.evaluator.daiv.BucketKeys()) {
    if (value_key != base || DaivSubKeySide(sub_key) != 1) continue;
    const std::string query_key = sub_key.substr(0, sub_key.size() - 2);
    const auto* bucket = state.evaluator.daiv.Find(base, query_key, 1);
    if (bucket == nullptr) continue;
    for (const DaivStored& stored : *bucket) {
      if (stored.query == nullptr) continue;
      entries.push_back(RebuildDaivEntry(stored, 1));
    }
  }
  for (int j = lo; j < hi; ++j) {
    ShipDaivEntries(ctx, node, la::ShardValueKey(base, j, split), entries);
  }
}

/// Records `weight` arrivals for a value family at its decider and runs
/// the split policy; a changed proposal is applied locally, acted on
/// (sweep or top-up) and published.
void DecideValue(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                 const std::string& level1, const std::string& base,
                 uint64_t weight) {
  const la::Params& params = ctx.options().adapt;
  const uint64_t epoch = EpochOf(ctx);
  const std::string family = la::FamilyKey(level1, base);
  const uint64_t rate = state.adapt.value_load.Record(family, epoch, weight);
  const la::Directive* d = state.adapt.directory.FindSplit(level1, base);
  const int current = d == nullptr ? 1 : d->level;
  if (d != nullptr && d->version > 0 &&
      epoch < d->changed_epoch + params.dwell_epochs) {
    return;
  }
  const int next = la::ProposeSplit(params, rate, current);
  if (next == current) return;
  const uint64_t version = (d == nullptr ? 0 : d->version) + 1;
  state.adapt.directory.ApplySplit(level1, base, next, version, epoch);
  state.adapt.acted_split[family] = version;
  ++state.metrics.adapt_directives;
  ctx.RecordAdapt(AdaptStat::kDirective);
  // Local transition first: the shard set changed under this node.
  if (!OwnsLiveShard(node, level1, base, next)) {
    SweepFamily(ctx, node, state, level1, base);
  } else if (next > current) {
    // New shards need the replicated side. An escalation from the plain
    // scheme moves live duty to "#s" sub-keys wholesale, so every shard
    // (including 0) counts as new.
    const int lo = current == 1 ? 0 : current;
    TopUpFamily(ctx, node, state, level1, base, next, lo, next);
  }
  // Publish: a best-effort broadcast refreshes every directory, and
  // directed armed copies reach the owners that must act even if
  // broadcast frames are lost. The plain base owner is included — it
  // takes over live duty when the family cools back to 1.
  auto bc = std::make_shared<AdaptSplitPayload>();
  bc->level1 = level1;
  bc->value = base;
  bc->split = next;
  bc->version = version;
  node.Broadcast(bc, sim::MsgClass::kControl);
  const int span = std::max(current, next);
  for (const std::string& key : LiveSubKeys(base, span)) {
    SendSplitDirective(ctx, node, HomeOf(level1, key), level1, base, next,
                       version);
  }
  SendSplitDirective(ctx, node, HomeOf(level1, base), level1, base, next,
                     version);
}

/// Records one arrival for an attribute-level key at replica 0 and runs
/// the replication policy; escalations ship the replica-0 query bucket
/// to the new replicas as ordinary (armed) kQueryIndex messages.
void DecideAttr(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                const std::string& level1) {
  const la::Params& params = ctx.options().adapt;
  const uint64_t epoch = EpochOf(ctx);
  const uint64_t rate = state.adapt.attr_load.Record(level1, epoch, 1);
  const int base = std::max(1, ctx.options().attribute_replication);
  const la::Directive* d = state.adapt.directory.FindReplicas(level1);
  const int current = state.adapt.directory.ReplicasOf(level1, base);
  if (d != nullptr && d->version > 0 &&
      epoch < d->changed_epoch + params.dwell_epochs) {
    return;
  }
  const int next = la::ProposeReplicas(params, rate, current, base);
  if (next == current) return;
  const uint64_t version = (d == nullptr ? 0 : d->version) + 1;
  state.adapt.directory.ApplyReplicas(level1, next, version, epoch);
  ++state.metrics.adapt_directives;
  ctx.RecordAdapt(AdaptStat::kDirective);
  if (next > current) {
    // Ship the replica-0 bucket to each new replica. ALQT inserts are
    // idempotent, so overlap with per-arrival top-ups is harmless. A
    // cooldown ships nothing: dropped replicas keep their (now stale)
    // buckets and OnAttrTuple redirects arrivals away from them.
    const auto* groups = state.rewriter.alqt.Find(rewriter::MKey(level1, 0));
    if (groups != nullptr) {
      for (int r = current; r < next; ++r) {
        for (const auto& [signature, group] : *groups) {
          for (const AlqtEntry& stored : group) {
            auto payload = std::make_shared<QueryIndexPayload>();
            payload->query = stored.query;
            payload->index_side = stored.index_side;
            payload->level1 = level1;
            payload->replica = r;
            chord::AppMessage msg;
            msg.target = AttrIndexIdOfKey(level1, r);
            msg.cls = sim::MsgClass::kQueryIndex;
            msg.payload = std::move(payload);
            reliability::SendReliable(ctx, node, std::move(msg));
          }
        }
        ++state.metrics.adapt_reships;
        ctx.RecordAdapt(AdaptStat::kReship);
      }
    }
  }
  auto bc = std::make_shared<AdaptReplicatePayload>();
  bc->level1 = level1;
  bc->replicas = next;
  bc->version = version;
  node.Broadcast(bc, sim::MsgClass::kControl);
}

/// Re-dispatches a join batch addressed to a dead sub-key across the
/// live shard set, stamped with the local directive so receivers learn
/// it. The rewriter id is dropped: JFRT bookkeeping ended at the first
/// hop.
void RedispatchJoin(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                    const JoinPayload& p, const std::string& base, int split) {
  const la::Directive* d = state.adapt.directory.FindSplit(p.level1, base);
  const uint64_t version = d == nullptr ? 0 : d->version;
  for (const std::string& key : LiveSubKeys(base, split)) {
    auto copy = std::make_shared<JoinPayload>();
    copy->level1 = p.level1;
    copy->value_key = key;
    copy->entries = p.entries;
    copy->vindex = ValueIndexIdOfKey(p.level1, key);
    copy->known_split = split;
    copy->split_version = version;
    chord::AppMessage msg;
    msg.target = copy->vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(copy);
    reliability::SendReliable(ctx, node, std::move(msg));
  }
  ++state.metrics.adapt_redirects;
  ctx.RecordAdapt(AdaptStat::kRedirect);
}

/// DAI-V counterpart of RedispatchJoin: side-1 entries fan to every
/// live shard, side-0 entries hash to their sequence shard.
void RedispatchDaiv(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                    const DaivJoinPayload& p, const std::string& base,
                    int split) {
  const la::Directive* d = state.adapt.directory.FindSplit("", base);
  const uint64_t version = d == nullptr ? 0 : d->version;
  const std::vector<std::string> live = LiveSubKeys(base, split);
  std::map<std::string, std::vector<DaivEntry>> by_target;
  for (const DaivEntry& entry : p.entries) {
    if (entry.trigger_side == 1) {
      for (const std::string& key : live) by_target[key].push_back(entry);
    } else {
      const int shard = la::ShardOfSeq(entry.trigger_seq, split);
      by_target[la::ShardValueKey(base, shard, split)].push_back(entry);
    }
  }
  for (auto& [key, entries] : by_target) {
    auto copy = std::make_shared<DaivJoinPayload>();
    copy->value_key = key;
    copy->entries = std::move(entries);
    copy->vindex = DaivIndexId(key);
    copy->known_split = split;
    copy->split_version = version;
    chord::AppMessage msg;
    msg.target = copy->vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(copy);
    reliability::SendReliable(ctx, node, std::move(msg));
  }
  ++state.metrics.adapt_redirects;
  ctx.RecordAdapt(AdaptStat::kRedirect);
}

}  // namespace

std::string BaseValueOf(const std::string& value_key) {
  std::string base;
  int shard = 0;
  if (la::ParseShardSuffix(value_key, &base, &shard)) return base;
  return value_key;
}

std::string SubValueKey(const std::string& base, int shard, int split) {
  return la::ShardValueKey(base, shard, split);
}

int ShardOf(uint64_t seq, int split) { return la::ShardOfSeq(seq, split); }

int SplitFor(const ProtocolContext& ctx, const NodeState& state,
             const std::string& level1, const std::string& value,
             uint64_t* version) {
  *version = 0;
  if (!Enabled(ctx)) return 1;
  const la::Directive* d = state.adapt.directory.FindSplit(level1, value);
  if (d == nullptr || d->version == 0) return 1;
  *version = d->version;
  return d->level;
}

int ReplicasFor(const ProtocolContext& ctx, const NodeState& state,
                const std::string& level1) {
  const int base = std::max(1, ctx.options().attribute_replication);
  if (!Enabled(ctx)) return base;
  return state.adapt.directory.ReplicasOf(level1, base);
}

void HandleReplicate(ProtocolContext& ctx, chord::Node& node,
                     const chord::AppMessage& msg) {
  const auto& p =
      *static_cast<const AdaptReplicatePayload*>(msg.payload.get());
  if (!Enabled(ctx)) return;
  NodeState& state = ctx.StateOf(node);
  state.adapt.directory.ApplyReplicas(p.level1, p.replicas, p.version,
                                      EpochOf(ctx));
}

void HandleSplit(ProtocolContext& ctx, chord::Node& node,
                 const chord::AppMessage& msg) {
  const auto& p = *static_cast<const AdaptSplitPayload*>(msg.payload.get());
  if (!Enabled(ctx)) return;
  NodeState& state = ctx.StateOf(node);
  state.adapt.directory.ApplySplit(p.level1, p.value, p.split, p.version,
                                   EpochOf(ctx));
  ActOnSplit(ctx, node, state, p.level1, p.value);
}

void OnQueryIndexed(ProtocolContext& ctx, chord::Node& node,
                    const QueryIndexPayload& p) {
  if (!Enabled(ctx) || p.replica != 0) return;
  NodeState& state = ctx.StateOf(node);
  const int base = std::max(1, ctx.options().attribute_replication);
  const int replicas = state.adapt.directory.ReplicasOf(p.level1, base);
  // Submitters always fan a query to the static [0, base) floor; replica
  // 0 tops up the adaptive extras on every arrival (idempotent inserts).
  for (int r = base; r < replicas; ++r) {
    auto copy = std::make_shared<QueryIndexPayload>();
    copy->query = p.query;
    copy->index_side = p.index_side;
    copy->level1 = p.level1;
    copy->replica = r;
    chord::AppMessage msg;
    msg.target = AttrIndexIdOfKey(p.level1, r);
    msg.cls = sim::MsgClass::kQueryIndex;
    msg.payload = std::move(copy);
    reliability::SendReliable(ctx, node, std::move(msg));
  }
}

bool OnAttrTuple(ProtocolContext& ctx, chord::Node& node,
                 const TupleIndexPayload& p) {
  if (!Enabled(ctx)) return false;
  NodeState& state = ctx.StateOf(node);
  const int base = std::max(1, ctx.options().attribute_replication);
  const int replicas = state.adapt.directory.ReplicasOf(p.level1, base);
  if (p.replica >= replicas) {
    // A stale-high publisher targeted a de-replicated copy, which no
    // longer receives new queries. Re-dispatch to a live replica; the
    // target index is strictly smaller than the arrived one, so
    // redirect chains terminate at replica 0 however stale each hop is.
    const int target =
        static_cast<int>(p.tuple->seq() % static_cast<uint64_t>(replicas));
    auto copy = std::make_shared<TupleIndexPayload>(/*value_level=*/false);
    copy->tuple = p.tuple;
    copy->attr_index = p.attr_index;
    copy->level1 = p.level1;
    copy->replica = target;
    chord::AppMessage msg;
    msg.target = AttrIndexIdOfKey(p.level1, target);
    msg.cls = sim::MsgClass::kTupleIndex;
    msg.payload = std::move(copy);
    reliability::SendReliable(ctx, node, std::move(msg));
    ++state.metrics.adapt_redirects;
    ctx.RecordAdapt(AdaptStat::kRedirect);
    return true;
  }
  if (p.replica == 0) DecideAttr(ctx, node, state, p.level1);
  return false;
}

bool OnValueTuple(ProtocolContext& ctx, chord::Node& node,
                  const TupleIndexPayload& p) {
  if (!Enabled(ctx)) return false;
  NodeState& state = ctx.StateOf(node);
  std::string base;
  int shard = 0;
  ParseArrivedKey(p.value_key, &base, &shard);
  int split = state.adapt.directory.SplitOf(p.level1, base);
  if (KeyLive(shard, split) && shard <= 0) {
    // Decider key (the plain base when unsplit, shard 0 when split):
    // record load and maybe re-plan, which can change the shard set.
    DecideValue(ctx, node, state, p.level1, base, 1);
    split = state.adapt.directory.SplitOf(p.level1, base);
  }
  if (KeyLive(shard, split)) return false;
  // Dead sub-key: forward to the owner our directory deems live,
  // preceded by a directive refresh so a stale owner applies the newer
  // view instead of bouncing the tuple back.
  const int target_shard = la::ShardOfSeq(p.tuple->seq(), split);
  const std::string target_key = la::ShardValueKey(base, target_shard, split);
  const chord::NodeId target = ValueIndexIdOfKey(p.level1, target_key);
  const la::Directive* d = state.adapt.directory.FindSplit(p.level1, base);
  if (d != nullptr && d->version > 0) {
    SendSplitDirective(ctx, node, target, p.level1, base, split, d->version);
  }
  auto fwd = std::make_shared<TupleIndexPayload>(/*value_level=*/true);
  fwd->tuple = p.tuple;
  fwd->attr_index = p.attr_index;
  fwd->level1 = p.level1;
  fwd->value_key = target_key;
  chord::AppMessage msg;
  msg.target = target;
  msg.cls = sim::MsgClass::kTupleIndex;
  msg.payload = std::move(fwd);
  reliability::SendReliable(ctx, node, std::move(msg));
  ++state.metrics.adapt_redirects;
  ctx.RecordAdapt(AdaptStat::kRedirect);
  return true;
}

bool OnJoinArrival(ProtocolContext& ctx, chord::Node& node,
                   const JoinPayload& p) {
  if (!Enabled(ctx) || p.known_split == 0) return false;  // Replay batch.
  NodeState& state = ctx.StateOf(node);
  std::string base;
  int shard = 0;
  ParseArrivedKey(p.value_key, &base, &shard);
  // The batch doubles as a directive carrier: apply the sender's view,
  // then perform this node's transition if the directive is news.
  if (p.split_version > 0) {
    state.adapt.directory.ApplySplit(p.level1, base, p.known_split,
                                     p.split_version, EpochOf(ctx));
    ActOnSplit(ctx, node, state, p.level1, base);
  }
  int split = state.adapt.directory.SplitOf(p.level1, base);
  if (KeyLive(shard, split) && shard <= 0) {
    DecideValue(ctx, node, state, p.level1, base, p.entries.size());
    split = state.adapt.directory.SplitOf(p.level1, base);
  }
  if (!KeyLive(shard, split)) {
    RedispatchJoin(ctx, node, state, p, base, split);
    return true;
  }
  if (shard == 0 && p.known_split >= 1 && p.known_split < split) {
    // Shard 0 tops up the shards a stale sender's narrower fan missed.
    for (int j = std::max(1, p.known_split); j < split; ++j) {
      ShipJoinEntries(ctx, node, p.level1, la::ShardValueKey(base, j, split),
                      p.entries);
    }
  }
  return false;
}

bool OnDaivJoinArrival(ProtocolContext& ctx, chord::Node& node,
                       const DaivJoinPayload& p) {
  if (!Enabled(ctx) || p.known_split == 0) return false;
  // Key-prefixed DAI-V evaluators are already partitioned per query;
  // the split scheme stays out of their way.
  if (ctx.options().daiv_prefix_query_key) return false;
  NodeState& state = ctx.StateOf(node);
  std::string base;
  int shard = 0;
  ParseArrivedKey(p.value_key, &base, &shard);
  if (p.split_version > 0) {
    state.adapt.directory.ApplySplit("", base, p.known_split, p.split_version,
                                     EpochOf(ctx));
    ActOnSplit(ctx, node, state, "", base);
  }
  int split = state.adapt.directory.SplitOf("", base);
  if (KeyLive(shard, split) && shard <= 0) {
    DecideValue(ctx, node, state, "", base, p.entries.size());
    split = state.adapt.directory.SplitOf("", base);
  }
  if (!KeyLive(shard, split)) {
    RedispatchDaiv(ctx, node, state, p, base, split);
    return true;
  }
  if (shard == 0 && p.known_split >= 1 && p.known_split < split) {
    // Top up the replicated (side-1) entries the sender's fan missed;
    // side-0 entries were hashed into [0, known_split), all live.
    std::vector<DaivEntry> side1;
    for (const DaivEntry& entry : p.entries) {
      if (entry.trigger_side == 1) side1.push_back(entry);
    }
    for (int j = std::max(1, p.known_split); j < split; ++j) {
      ShipDaivEntries(ctx, node, la::ShardValueKey(base, j, split), side1);
    }
  }
  return false;
}

}  // namespace contjoin::core::adapt
