// Wire codecs for the continuous-query payloads and the chord hop frames.
//
// Every CqMsgType has a registered Encode/Decode pair in a central registry
// (codec.cc keeps them side by side per type; tools/check rule "codecs"
// enforces exhaustiveness against the enum). The format is the positional
// little-endian layout of common/wire.h. Queries travel as their raw SQL
// plus submission metadata and are re-parsed on receipt, so the parser
// stays the single source of structural truth.
//
// Not everything the simulator ships is encodable: DhtFetchPayload carries
// a completion closure and stays simulator-only, as do the migration
// state-transfer and one-time-join result-streaming interactions (which
// never leave the closure-based Transmit path). Encoders report those
// cases by returning false / an empty buffer instead of aborting, so the
// byte meter can skip them and a socket transport can reject them.

#ifndef CONTJOIN_CORE_CODEC_H_
#define CONTJOIN_CORE_CODEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "chord/types.h"
#include "common/wire.h"
#include "core/messages.h"
#include "relational/schema.h"

namespace contjoin::core {

/// Registry of per-type payload codecs, keyed by CqMsgType. The default
/// instance covers every enumerator; the pass/fail pair is kept adjacent
/// in codec.cc so the wire format of a type is reviewed as one unit.
class PayloadCodec {
 public:
  /// Appends the body of `payload` (no type tag) to `w`. Returns false if
  /// the payload cannot travel (it then wrote nothing).
  using EncodeFn = bool (*)(const CqPayload& payload, wire::Writer& w);
  /// Parses a body of type `type`; nullptr on malformed input (the reader's
  /// ok() also turns false on short reads). `catalog` resolves re-parsed
  /// query schemas.
  using DecodeFn = std::shared_ptr<const CqPayload> (*)(
      CqMsgType type, wire::Reader& r, const rel::Catalog& catalog);

  /// The registry covering every CqMsgType (checked at first use).
  static const PayloadCodec& Default();

  /// Registers the pair for `type`; false if one was already registered.
  bool RegisterCodec(CqMsgType type, EncodeFn encode, DecodeFn decode);

  bool HasCodec(CqMsgType type) const;

  /// Writes [u8 type][body]. False (nothing written) if unencodable.
  bool Encode(const CqPayload& payload, wire::Writer& w) const;

  /// Reads [u8 type][body]; nullptr on malformed input.
  std::shared_ptr<const CqPayload> Decode(wire::Reader& r,
                                          const rel::Catalog& catalog) const;

 private:
  struct Entry {
    EncodeFn encode = nullptr;
    DecodeFn decode = nullptr;
  };
  Entry entries_[kCqMsgTypeCount];
};

/// Serializes a routable message: target, class, kind, reliability
/// envelope, payload. False (nothing written) if the payload is
/// simulator-only (DhtFetch, or a DhtStore item that is not a CqPayload).
bool EncodeAppMessage(const chord::AppMessage& msg, wire::Writer& w);

/// Inverse of EncodeAppMessage; false on malformed input.
bool DecodeAppMessage(wire::Reader& r, const rel::Catalog& catalog,
                      chord::AppMessage* out);

/// Serializes one overlay hop to a self-contained buffer:
/// [u8 version][u8 hop kind][u8 class][u32 ttl][per-kind body]. A socket
/// transport prepends its own u32 length prefix for stream framing.
/// Returns an empty buffer if any contained message is unencodable.
std::vector<uint8_t> EncodeHopFrame(const chord::HopFrame& frame);

/// Inverse of EncodeHopFrame; false on malformed or version-mismatched
/// input.
bool DecodeHopFrame(const uint8_t* data, size_t size,
                    const rel::Catalog& catalog, chord::HopFrame* out);

/// Encoded size of `frame` in bytes, or 0 if it is unencodable — the
/// bytes-on-wire meter installed by the engine (Options::count_wire_bytes)
/// feeds sim::NetStats::AddBytes with this.
size_t EncodedFrameSize(const chord::HopFrame& frame);

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_CODEC_H_
