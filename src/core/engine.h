// The continuous-query engine facade: ContinuousQueryNetwork owns the
// simulator, the Chord ring and the per-node protocol state, and exposes
// the submission / results / introspection API applications program
// against. The protocol logic itself lives in the role modules (rewriter,
// evaluator, subscriber, mw, otj) behind the ProtocolContext seam; the
// facade implements that seam and routes incoming messages through the
// dispatch registry.

#ifndef CONTJOIN_CORE_ENGINE_H_
#define CONTJOIN_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chord/network.h"
#include "chord/node.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "core/algorithm.h"
#include "core/context.h"
#include "core/dispatch.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "core/options.h"
#include "core/state.h"
#include "faults/churn.h"
#include "faults/fault_plan.h"
#include "query/parser.h"
#include "relational/schema.h"
#include "sim/simulator.h"

namespace contjoin::core {

/// The complete system: simulator + Chord ring + continuous-query protocol.
///
/// Typical use:
///
///   core::Options opts;
///   opts.num_nodes = 256;
///   opts.algorithm = core::Algorithm::kDaiT;
///   core::ContinuousQueryNetwork net(opts);
///   net.catalog()->Register(...);
///   auto key = net.SubmitQuery(7, "SELECT ... FROM R, S WHERE R.B = S.E");
///   net.InsertTuple(12, "R", {rel::Value::Int(1), ...});
///   for (auto& n : net.TakeNotifications(7)) ...;
class ContinuousQueryNetwork : public chord::Application,
                               private ProtocolContext {
 public:
  explicit ContinuousQueryNetwork(Options options);
  ~ContinuousQueryNetwork() override;

  ContinuousQueryNetwork(const ContinuousQueryNetwork&) = delete;
  ContinuousQueryNetwork& operator=(const ContinuousQueryNetwork&) = delete;

  // --- Setup ----------------------------------------------------------------

  rel::Catalog* catalog() { return &catalog_; }
  const Options& options() const override { return options_; }

  // --- Submitting work ---------------------------------------------------------

  /// Parses `sql`, indexes the query from node `node_index` and returns the
  /// query key. T2 queries require Algorithm::kDaiV.
  StatusOr<std::string> SubmitQuery(size_t node_index, std::string_view sql);

  /// Continuous m-way equi-join (future-work extension, 2 <= m <= 8):
  /// recursive SAI over the query's join tree. Requires
  /// Algorithm::kSai and attribute_replication == 1.
  StatusOr<std::string> SubmitMultiwayQuery(size_t node_index,
                                            std::string_view sql);

  /// PIER-style one-time equi-join (the baseline architecture the paper
  /// contrasts its continuous algorithms with): the query is broadcast,
  /// every node rehashes its stored base tuples by join value into a
  /// temporary namespace, and the temporary-key owners run a symmetric
  /// hash join, streaming rows back to the issuer. Snapshot semantics:
  /// every stored tuple participates regardless of age; windows do not
  /// apply. Requires an algorithm that stores tuples at the value level
  /// (kSai or kDaiQ).
  StatusOr<std::vector<Notification>> OneTimeJoin(size_t node_index,
                                                  std::string_view sql);

  /// Inserts a tuple of `relation` from node `node_index`. The full
  /// consequence cascade (indexing, rewriting, evaluation, notification
  /// delivery) completes before the call returns.
  Status InsertTuple(size_t node_index, const std::string& relation,
                     std::vector<rel::Value> values);

  /// Inserts a batch of tuples that all arrive at the same virtual time,
  /// each published from its own origin node, then drains the combined
  /// cascade in one run. Semantically equivalent to consecutive
  /// InsertTuple calls at one timestamp, but the wide epoch it creates is
  /// what lets the parallel simulator core spread delivery across workers
  /// (the throughput benchmark's operating mode).
  Status InsertTupleWave(
      const std::vector<std::pair<size_t, std::string>>& origins_relations,
      std::vector<std::vector<rel::Value>> rows);

  // --- Open-loop serving (src/serving drives these) ----------------------------

  /// Schedules a tuple publication at absolute virtual time `when` (>= Now)
  /// without draining the cascade: the tuple is stamped with its birth time
  /// `when` and a fresh sequence number immediately, and the publication
  /// fires when the simulator clock reaches `when`. Unlike InsertTuple the
  /// call returns before any protocol work happens — this is what lets an
  /// open-loop driver keep arrivals coming whether or not the system keeps
  /// up. The origin node is resolved at fire time (churn-safe).
  Status SchedulePublish(sim::SimTime when, size_t node_index,
                         const std::string& relation,
                         std::vector<rel::Value> values);

  /// Runs all events with timestamp <= `until`, advances the clock to
  /// exactly `until`, then applies scripted churn that became due. The
  /// open-loop driver alternates SchedulePublish batches with
  /// RunOpenLoopUntil segment boundaries. Returns events run.
  uint64_t RunOpenLoopUntil(sim::SimTime until);

  /// Cancels a continuous query (extension; requires
  /// options.track_evaluators for evaluator-side garbage collection).
  Status Unsubscribe(size_t node_index, const std::string& query_key);

  /// §4.7 "moving an identifier": moves the rewriter role of one
  /// attribute-level key (and its stored queries and statistics) to the
  /// successor of a fresh identifier; the base node keeps a one-hop
  /// forwarding pointer. Issued from `node_index` (control traffic is
  /// accounted). Can be repeated; the base pointer always targets the
  /// newest holder.
  Status MigrateAttribute(size_t node_index, const std::string& relation,
                          const std::string& attr, int replica = 0);

  // --- Results -----------------------------------------------------------------

  /// Drains the notifications delivered to node `node_index`.
  std::vector<Notification> TakeNotifications(size_t node_index);

  /// Notifications currently queued (without draining).
  size_t PendingNotifications(size_t node_index) const;

  // --- Subscriber dynamics (§4.6) --------------------------------------------------

  /// Disconnects a node (graceful departure; its DHT keys move on).
  /// Notifications for its queries are then stored at Successor(Id(n)).
  void DisconnectNode(size_t node_index);

  /// Reconnects, optionally from a new address; stored notifications are
  /// handed back through the Chord key-transfer rule.
  void ReconnectNode(size_t node_index, bool new_ip);

  // --- Fault tolerance (extension; §3.2 is best-effort by design) -------------

  /// Installs a scripted churn schedule (events must be time-sorted). Due
  /// events are applied as virtual time passes, at operation boundaries
  /// (quiescent points of the event queue), followed by the repair sweep
  /// when options.reliability enables it.
  void InstallChurnScript(faults::ChurnScript script);

  /// Crashes a node without warning: ring failure plus loss of all its
  /// volatile protocol state (ALQT/VLQT/VLTT/DAI-V tables, JFRT, dedup
  /// caches, DHT-stored items). The subscriber inbox and query serial
  /// survive, modeling client-side application state.
  void CrashNode(size_t node_index);

  /// Adds a brand-new node to the ring (ideal rewire; ReconcilePlacement
  /// moves the index entries it is now responsible for). Returns its index.
  size_t JoinNewNode();

  /// Soft-state repair, part 1 — key-range handoff: moves every ALQT /
  /// VLQT / VLTT / DAI-V bucket and DHT-stored item whose home identifier
  /// now resolves to a different alive node over to that node (one control
  /// hop per moved bucket). Returns the number of objects moved.
  size_t ReconcilePlacement();

  /// Soft-state repair, part 2 — re-index refresh: replays every live
  /// query submission and tuple publication from the origin-side durable
  /// logs with their original keys and timestamps. Receiver-side dedup and
  /// idempotent table inserts make the replay converge instead of
  /// duplicating state.
  void RefreshIndexes();

  const faults::FaultPlan* fault_plan() const { return fault_plan_.get(); }
  /// Churn events not yet applied.
  size_t PendingChurnEvents() const {
    return churn_script_.events.size() - churn_next_;
  }

  // --- Introspection ---------------------------------------------------------------

  size_t num_nodes() const { return nodes_.size(); }
  chord::Node* node(size_t i) { return nodes_[i]; }
  chord::Network* network() { return &network_; }
  sim::Simulator* simulator() { return &simulator_; }
  sim::NetStats& stats() { return network_.stats(); }
  rel::Timestamp now() const override { return simulator_.Now(); }

  const NodeMetrics& metrics(size_t node_index) const;
  NodeStorage storage(size_t node_index) const;
  const NodeState* state(size_t node_index) const;

  /// Per-node total filtering load (TF) across all alive nodes.
  LoadDistribution FilteringLoadDistribution() const;
  /// Attribute-level / value-level shares.
  LoadDistribution AttrFilteringLoadDistribution() const;
  LoadDistribution ValueFilteringLoadDistribution() const;
  /// Per-node storage load (TS).
  LoadDistribution StorageLoadDistribution() const;

  /// Aggregate counters over all nodes.
  NodeMetrics TotalMetrics() const;
  NodeStorage TotalStorage() const;

  /// Zeroes every node's filtering counters (storage is state, not a
  /// counter) and the traffic statistics — used to isolate workload phases.
  void ResetLoadMetrics();

  /// Applies sliding-window expiry across all value-level state; returns
  /// the number of objects dropped. No-op when options.window == 0.
  size_t PruneExpired();

  // --- chord::Application ------------------------------------------------------------

  void HandleMessage(chord::Node& node, const chord::AppMessage& msg) override;
  void HandleStoredItems(chord::Node& node, const chord::NodeId& key,
                         std::vector<chord::PayloadPtr> items) override;

 private:
  // --- ProtocolContext seam (role handlers reach the engine through this) ---

  const AlgorithmStrategy& strategy() const override { return *strategy_; }
  rel::Catalog& GetCatalog() override { return catalog_; }
  Rng& GetRng() override { return rng_; }
  NodeState& StateOf(chord::Node& node) override;
  void Send(chord::Node& from, chord::AppMessage msg) override {
    from.Send(std::move(msg));
  }
  void Multisend(chord::Node& from, std::vector<chord::AppMessage> msgs,
                 sim::MsgClass cls) override {
    from.Multisend(std::move(msgs), cls);
  }
  void Transmit(chord::Node* from, chord::Node* to, sim::MsgClass cls,
                std::function<void()> deliver) override {
    network_.Transmit(from, to, cls, std::move(deliver));
  }
  void TransmitMessage(chord::Node& from, const chord::NodeId& to,
                       chord::AppMessage msg) override {
    chord::HopFrame frame;
    frame.kind = chord::HopFrame::Kind::kDeliver;
    frame.cls = msg.cls;
    frame.msgs.push_back(std::move(msg));
    network_.TransmitHop(&from, to, std::move(frame));
  }
  void CountHop(sim::MsgClass cls) override { network_.CountHop(cls); }
  void RecordBackpressure(bool shed) override {
    if (shed) {
      network_.stats().AddShed();
    } else {
      network_.stats().AddDeferred();
    }
  }
  void RecordAdapt(AdaptStat stat) override {
    switch (stat) {
      case AdaptStat::kDirective:
        network_.stats().AddAdaptDirective();
        break;
      case AdaptStat::kRedirect:
        network_.stats().AddAdaptRedirect();
        break;
      case AdaptStat::kReship:
        network_.stats().AddAdaptReship();
        break;
    }
  }
  void Redeliver(chord::Node& node, const chord::AppMessage& msg) override {
    HandleMessage(node, msg);
  }
  uint64_t NextReliableId(chord::Node& from) override {
    // Ids embed the node serial so two nodes never collide, and live in
    // NodeState (outside reliability::State) so a crash wiping the
    // volatile tables cannot make a reconnecting node reissue old ids.
    return ((from.serial() + 1) << 32) | ++StateOf(from).next_reliable_seq;
  }
  void ScheduleAfter(chord::Node& node, sim::SimTime delay,
                     std::function<void()> fn) override {
    simulator_.ScheduleSharded(delay, node.serial(), std::move(fn));
  }
  void ScheduleAfterCancellable(chord::Node& node, sim::SimTime delay,
                                sim::CancelToken cancel,
                                std::function<void()> fn) override {
    simulator_.ScheduleCancellable(delay, node.serial(), std::move(cancel),
                                   std::move(fn));
  }
  chord::Node* NodeByKey(const std::string& key) override {
    auto it = nodes_by_key_.find(key);
    return it == nodes_by_key_.end() ? nullptr : it->second;
  }
  chord::Node* NodeById(const chord::NodeId& id) override {
    return network_.FindById(id);
  }
  void DepositNotification(chord::Node& node, Notification n) override {
    // Delivery stamp for the serving layer's latency accounting; inbox
    // consumers that predate it ignore the field.
    n.delivered_at = simulator_.Now();
    StateOf(node).subscriber.inbox.push_back(std::move(n));
  }
  void AppendOtjResults(uint64_t otj_id,
                        std::vector<Notification> rows) override {
    auto& out = otj_results_[otj_id];
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }

  /// Advances virtual time by time_step, applies churn events that became
  /// due, and drains pending events.
  void Tick();

  /// Applies scripted churn events with at <= Now, then repairs.
  void ProcessChurnDue();
  void CrashNodeInternal(chord::Node* node);
  chord::Node* JoinNewNodeInternal();
  chord::Node* FirstAliveNode() const;

  /// Resolves the entry node for a client operation after Tick(): the
  /// scripted churn applied there may have crashed the node the caller
  /// chose while it was still up, and publishing from a dead process
  /// would silently void the whole batch. A real client notices the dead
  /// connection and resubmits through the next node that is up; probing
  /// in index order keeps the choice deterministic.
  chord::Node* EntryNode(size_t node_index);

  /// Builds and sends the attribute-level index messages for `query` from
  /// `origin` (shared by SubmitQuery and RefreshIndexes).
  void IndexQueryFrom(chord::Node* origin, const query::QueryPtr& query);
  /// Builds and multisends the al-/vl-index batch for `tuple` from
  /// `origin` (shared by InsertTuple and RefreshIndexes).
  void PublishTupleFrom(chord::Node* origin,
                        const std::shared_ptr<const rel::Tuple>& tuple);

  Options options_;
  const AlgorithmStrategy* strategy_;
  sim::Simulator simulator_;
  chord::Network network_;
  rel::Catalog catalog_;
  Rng rng_;

  std::vector<chord::Node*> nodes_;
  std::unordered_map<const chord::Node*, std::unique_ptr<NodeState>> states_;
  std::unordered_map<std::string, chord::Node*> nodes_by_key_;
  /// Submitted queries by key (subscriber-side bookkeeping).
  std::unordered_map<std::string, query::QueryPtr> submitted_;

  /// In-flight one-time join results, keyed by otj id.
  std::unordered_map<uint64_t, std::vector<Notification>> otj_results_;
  uint64_t next_otj_id_ = 0;

  uint64_t next_tuple_seq_ = 0;

  // --- Fault tolerance ---------------------------------------------------------

  std::unique_ptr<faults::FaultPlan> fault_plan_;
  faults::ChurnScript churn_script_;
  size_t churn_next_ = 0;  // First unapplied script event.
  uint64_t churn_join_serial_ = 0;
  /// Origin-side durable logs feeding RefreshIndexes, in original order.
  /// Entries keep their engine-assigned keys and timestamps so a replay
  /// reproduces the same match decisions.
  std::vector<query::QueryPtr> submission_log_;
  std::vector<std::pair<chord::Node*, std::shared_ptr<const rel::Tuple>>>
      publish_log_;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_ENGINE_H_
