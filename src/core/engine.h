// The continuous-query engine: the per-node rewriter/evaluator protocol of
// the paper's four algorithms (SAI, DAI-Q, DAI-T, DAI-V) and the public
// facade ContinuousQueryNetwork that applications program against.

#ifndef CONTJOIN_CORE_ENGINE_H_
#define CONTJOIN_CORE_ENGINE_H_

#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chord/network.h"
#include "chord/node.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "core/jfrt.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "core/options.h"
#include "core/tables.h"
#include "query/parser.h"
#include "relational/schema.h"
#include "sim/simulator.h"

namespace contjoin::core {

/// Per-attribute arrival statistics a rewriter keeps so index-attribute
/// selection strategies can consult it at query-submission time (§4.3.6:
/// "any node can simply ask the two possible rewriter nodes").
struct AttrArrivalStats {
  uint64_t tuples_seen = 0;
  /// Bounded per-value frequency map (skew / distinct-count estimation).
  std::unordered_map<std::string, uint64_t> value_counts;
  uint64_t overflow_values = 0;  // Arrivals beyond the tracked-value cap.

  static constexpr size_t kMaxTrackedValues = 4096;

  void Record(const std::string& value_key);
  /// Folds another node's statistics in (identifier migration, §4.7).
  void Merge(const AttrArrivalStats& other);
  /// Share of the most frequent value (1.0 = fully skewed).
  double SkewEstimate() const;
  size_t DistinctEstimate() const { return value_counts.size(); }
};

/// State a node keeps to play its roles (rewriter / evaluator / subscriber).
struct NodeState {
  explicit NodeState(size_t jfrt_capacity) : jfrt(jfrt_capacity) {}

  AttrLevelQueryTable alqt;
  ValueLevelQueryTable vlqt;
  ValueLevelTupleTable vltt;
  DaivStore daiv;
  Jfrt jfrt;
  NodeMetrics metrics;

  /// Arrival statistics per attribute-level key "R+A#<replica>".
  std::unordered_map<std::string, AttrArrivalStats> attr_stats;
  std::unordered_set<std::string> sent_rewritten_keys;  // DAI-T dedup (§4.4.3).

  /// §4.7 "moving an identifier": at the base node of a moved key, where
  /// the role now lives; at the holder, the generation it holds.
  struct MovedAttr {
    int generation;
    chord::Node* holder;
  };
  std::unordered_map<std::string, MovedAttr> moved_attrs;
  std::unordered_map<std::string, int> held_generation;
  /// query key -> evaluator identifiers used (for unsubscription).
  std::unordered_map<std::string, std::set<chord::NodeId>> query_evaluators;
  /// Learned subscriber addresses (IP updates, §4.6).
  struct Addr {
    chord::Node* node;
    uint64_t ip;
  };
  std::unordered_map<std::string, Addr> subscriber_addr;

  std::vector<Notification> inbox;
  uint64_t next_query_serial = 0;

  // --- Multi-way extension state -------------------------------------------

  /// Multi-way queries indexed at this rewriter, by "R+A#replica".
  std::unordered_map<std::string, std::vector<query::MwQueryPtr>> mw_alqt;
  /// Stored partial bindings: "R+A" -> value -> partial key -> partial.
  using MwBucket = std::unordered_map<std::string, MwPartial>;
  std::unordered_map<std::string, std::unordered_map<std::string, MwBucket>>
      mw_vlqt;
  size_t mw_alqt_size = 0;
  size_t mw_vlqt_size = 0;

  // --- One-time join (PIER baseline) collector buffers --------------------

  /// otj id -> join value -> per-side rehashed tuples.
  std::unordered_map<
      uint64_t,
      std::unordered_map<std::string, std::array<std::vector<OtjTuple>, 2>>>
      otj_buffers;
};

/// The complete system: simulator + Chord ring + continuous-query protocol.
///
/// Typical use:
///
///   core::Options opts;
///   opts.num_nodes = 256;
///   opts.algorithm = core::Algorithm::kDaiT;
///   core::ContinuousQueryNetwork net(opts);
///   net.catalog()->Register(...);
///   auto key = net.SubmitQuery(7, "SELECT ... FROM R, S WHERE R.B = S.E");
///   net.InsertTuple(12, "R", {rel::Value::Int(1), ...});
///   for (auto& n : net.TakeNotifications(7)) ...;
class ContinuousQueryNetwork : public chord::Application {
 public:
  explicit ContinuousQueryNetwork(Options options);
  ~ContinuousQueryNetwork() override;

  ContinuousQueryNetwork(const ContinuousQueryNetwork&) = delete;
  ContinuousQueryNetwork& operator=(const ContinuousQueryNetwork&) = delete;

  // --- Setup ----------------------------------------------------------------

  rel::Catalog* catalog() { return &catalog_; }
  const Options& options() const { return options_; }

  // --- Submitting work ---------------------------------------------------------

  /// Parses `sql`, indexes the query from node `node_index` and returns the
  /// query key. T2 queries require Algorithm::kDaiV.
  StatusOr<std::string> SubmitQuery(size_t node_index, std::string_view sql);

  /// Continuous m-way equi-join (future-work extension, 2 <= m <= 8):
  /// recursive SAI over the query's join tree. Requires
  /// Algorithm::kSai and attribute_replication == 1.
  StatusOr<std::string> SubmitMultiwayQuery(size_t node_index,
                                            std::string_view sql);

  /// PIER-style one-time equi-join (the baseline architecture the paper
  /// contrasts its continuous algorithms with): the query is broadcast,
  /// every node rehashes its stored base tuples by join value into a
  /// temporary namespace, and the temporary-key owners run a symmetric
  /// hash join, streaming rows back to the issuer. Snapshot semantics:
  /// every stored tuple participates regardless of age; windows do not
  /// apply. Requires an algorithm that stores tuples at the value level
  /// (kSai or kDaiQ).
  StatusOr<std::vector<Notification>> OneTimeJoin(size_t node_index,
                                                  std::string_view sql);

  /// Inserts a tuple of `relation` from node `node_index`. The full
  /// consequence cascade (indexing, rewriting, evaluation, notification
  /// delivery) completes before the call returns.
  Status InsertTuple(size_t node_index, const std::string& relation,
                     std::vector<rel::Value> values);

  /// Cancels a continuous query (extension; requires
  /// options.track_evaluators for evaluator-side garbage collection).
  Status Unsubscribe(size_t node_index, const std::string& query_key);

  /// §4.7 "moving an identifier": moves the rewriter role of one
  /// attribute-level key (and its stored queries and statistics) to the
  /// successor of a fresh identifier; the base node keeps a one-hop
  /// forwarding pointer. Issued from `node_index` (control traffic is
  /// accounted). Can be repeated; the base pointer always targets the
  /// newest holder.
  Status MigrateAttribute(size_t node_index, const std::string& relation,
                          const std::string& attr, int replica = 0);

  // --- Results -----------------------------------------------------------------

  /// Drains the notifications delivered to node `node_index`.
  std::vector<Notification> TakeNotifications(size_t node_index);

  /// Notifications currently queued (without draining).
  size_t PendingNotifications(size_t node_index) const;

  // --- Subscriber dynamics (§4.6) --------------------------------------------------

  /// Disconnects a node (graceful departure; its DHT keys move on).
  /// Notifications for its queries are then stored at Successor(Id(n)).
  void DisconnectNode(size_t node_index);

  /// Reconnects, optionally from a new address; stored notifications are
  /// handed back through the Chord key-transfer rule.
  void ReconnectNode(size_t node_index, bool new_ip);

  // --- Introspection ---------------------------------------------------------------

  size_t num_nodes() const { return nodes_.size(); }
  chord::Node* node(size_t i) { return nodes_[i]; }
  chord::Network* network() { return &network_; }
  sim::Simulator* simulator() { return &simulator_; }
  sim::NetStats& stats() { return network_.stats(); }
  rel::Timestamp now() const { return simulator_.Now(); }

  const NodeMetrics& metrics(size_t node_index) const;
  NodeStorage storage(size_t node_index) const;
  const NodeState* state(size_t node_index) const;

  /// Per-node total filtering load (TF) across all alive nodes.
  LoadDistribution FilteringLoadDistribution() const;
  /// Attribute-level / value-level shares.
  LoadDistribution AttrFilteringLoadDistribution() const;
  LoadDistribution ValueFilteringLoadDistribution() const;
  /// Per-node storage load (TS).
  LoadDistribution StorageLoadDistribution() const;

  /// Aggregate counters over all nodes.
  NodeMetrics TotalMetrics() const;
  NodeStorage TotalStorage() const;

  /// Zeroes every node's filtering counters (storage is state, not a
  /// counter) and the traffic statistics — used to isolate workload phases.
  void ResetLoadMetrics();

  /// Applies sliding-window expiry across all value-level state; returns
  /// the number of objects dropped. No-op when options.window == 0.
  size_t PruneExpired();

  // --- chord::Application ------------------------------------------------------------

  void HandleMessage(chord::Node& node, const chord::AppMessage& msg) override;
  void HandleStoredItems(chord::Node& node, const chord::NodeId& key,
                         std::vector<chord::PayloadPtr> items) override;

 private:
  NodeState& StateOf(chord::Node& node);

  /// Advances virtual time by time_step and drains pending events.
  void Tick();

  // Submission helpers.
  int ChooseSaiIndexSide(size_t node_index, const query::ContinuousQuery& q);
  uint64_t ProbeAttrRate(size_t node_index, const std::string& relation,
                         const std::string& attr, uint64_t* distinct,
                         double* skew);

  // Message handlers (per role). Attribute-level handlers receive the full
  // message so a moved key can forward it unchanged (§4.7).
  void HandleQueryIndex(chord::Node& node, const chord::AppMessage& msg);
  void HandleTupleAl(chord::Node& node, const chord::AppMessage& msg);
  void HandleTupleVl(chord::Node& node, const TupleIndexPayload& p);
  void HandleJoin(chord::Node& node, const JoinPayload& p);
  void HandleDaivJoin(chord::Node& node, const DaivJoinPayload& p);
  void HandleUnsubscribe(chord::Node& node, const chord::AppMessage& msg);
  void HandleMigrateCmd(chord::Node& node, const chord::AppMessage& msg);
  void HandleMwQueryIndex(chord::Node& node, const MwQueryIndexPayload& p);
  void HandleMwJoin(chord::Node& node, const MwJoinPayload& p);
  void HandleOtjScan(chord::Node& node, const OtjScanPayload& p);
  void HandleOtjRehash(chord::Node& node, const OtjRehashPayload& p);

  /// Forwards an attribute-level message when its key has moved (§4.7);
  /// returns true if forwarded.
  bool ForwardIfMoved(chord::Node& node, NodeState& state,
                      const std::string& mkey, const chord::AppMessage& msg);

  // Rewriting machinery.
  struct PendingJoin {
    chord::NodeId vindex;
    std::shared_ptr<JoinPayload> payload;
  };
  struct PendingDaivJoin {
    chord::NodeId vindex;
    std::shared_ptr<DaivJoinPayload> payload;
  };
  void RewriteT1(chord::Node& node, NodeState& state, const AlqtEntry& entry,
                 const rel::Tuple& tuple,
                 std::map<std::string, PendingJoin>* out);
  void RewriteDaiv(chord::Node& node, NodeState& state, const AlqtEntry& entry,
                   const rel::Tuple& tuple,
                   std::map<std::string, PendingDaivJoin>* out);
  void DispatchJoins(chord::Node& node, NodeState& state,
                     std::map<std::string, PendingJoin> joins);
  void DispatchDaivJoins(chord::Node& node, NodeState& state,
                         std::map<std::string, PendingDaivJoin> joins);

  // Multi-way machinery.
  struct PendingMwJoin {
    chord::NodeId vindex;
    std::shared_ptr<MwJoinPayload> payload;
  };
  using MwJoinMap = std::map<std::string, PendingMwJoin>;
  /// Starts a fresh partial from a root-relation tuple (at the rewriter).
  void MwTrigger(chord::Node& node, NodeState& state,
                 const query::MwQueryPtr& q, const rel::Tuple& tuple,
                 MwJoinMap* out);
  /// Extends `p` with a matched tuple: emits a notification when complete,
  /// otherwise queues the next-hop partial.
  void MwExtend(chord::Node& node, const MwPartial& p, const rel::Tuple& t2,
                MwJoinMap* out);
  /// Queues `p` (already targeted) into the per-evaluator groups.
  void MwQueuePartial(MwPartial p, MwJoinMap* out);
  void DispatchMwJoins(chord::Node& node, MwJoinMap joins);
  /// Matches an incoming value-level tuple against stored partials.
  void MwMatchTupleVl(chord::Node& node, NodeState& state,
                      const TupleIndexPayload& p);

  // Notification creation & delivery.
  void EmitNotification(chord::Node& evaluator, const query::ContinuousQuery& q,
                        RowTemplate merged, rel::Timestamp earlier,
                        rel::Timestamp later);
  void EmitMwNotification(chord::Node& evaluator, const query::MwQuery& q,
                          const RowTemplate& row, rel::Timestamp earlier,
                          rel::Timestamp later);
  void DeliverNotification(chord::Node& evaluator,
                           const std::string& subscriber_key,
                           uint64_t subscriber_ip, Notification n);

  /// True when a stored object from `pub` is still inside the window
  /// relative to `now_time`.
  bool InWindow(rel::Timestamp pub, rel::Timestamp now_time) const {
    return options_.window == 0 || now_time - pub <= options_.window;
  }

  Options options_;
  sim::Simulator simulator_;
  chord::Network network_;
  rel::Catalog catalog_;
  Rng rng_;

  std::vector<chord::Node*> nodes_;
  std::unordered_map<const chord::Node*, std::unique_ptr<NodeState>> states_;
  std::unordered_map<std::string, chord::Node*> nodes_by_key_;
  /// Submitted queries by key (subscriber-side bookkeeping).
  std::unordered_map<std::string, query::QueryPtr> submitted_;

  /// In-flight one-time join results, keyed by otj id.
  std::unordered_map<uint64_t, std::vector<Notification>> otj_results_;
  uint64_t next_otj_id_ = 0;

  uint64_t next_tuple_seq_ = 0;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_ENGINE_H_
