// The subscriber role (paper §4.6): notification creation and delivery —
// direct by learned IP, or routed to Successor(Id(n)) and stored while the
// subscriber is off-line — plus the address-update machinery evaluators use
// to keep delivering after a subscriber reconnects from a new address.

#ifndef CONTJOIN_CORE_SUBSCRIBER_H_
#define CONTJOIN_CORE_SUBSCRIBER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"
#include "core/notification.h"

namespace contjoin::core::subscriber {

/// The state a node keeps to play the subscriber role (and to deliver to
/// other subscribers when acting as an evaluator).
struct State {
  /// Learned subscriber addresses (IP updates, §4.6).
  struct Addr {
    chord::Node* node;
    uint64_t ip;
  };
  std::unordered_map<std::string, Addr> subscriber_addr;

  std::vector<Notification> inbox;
  uint64_t next_query_serial = 0;

  // --- Serving extension (volatile evaluator-side state; a crash wipes it
  // like the index tables — buffered digests die with the process) --------

  /// Fan-out batching: notifications produced within the current epoch,
  /// buffered per subscriber key (with the subscriber ip seen at emit
  /// time) until the end-of-epoch flush. Ordered map: the flush iterates
  /// it, and iteration order is part of the determinism contract.
  std::map<std::string, std::pair<uint64_t, std::vector<Notification>>>
      digest_buffer;
  bool digest_flush_scheduled = false;

  /// Backpressure: notification deliveries currently occupying one of this
  /// node's in-flight slots.
  uint64_t inflight = 0;
};

/// Builds a notification from a completed row and delivers it (§4.6).
void EmitNotification(ProtocolContext& ctx, chord::Node& evaluator,
                      const query::ContinuousQuery& q, RowTemplate merged,
                      rel::Timestamp earlier, rel::Timestamp later);
void EmitMwNotification(ProtocolContext& ctx, chord::Node& evaluator,
                        const query::MwQuery& q, const RowTemplate& row,
                        rel::Timestamp earlier, rel::Timestamp later);

/// Delivery policy: local inbox, direct by IP (one hop), or routed to
/// Successor(Id(n)) where it is delivered or stored (§4.6).
void DeliverNotification(ProtocolContext& ctx, chord::Node& evaluator,
                         const std::string& subscriber_key,
                         uint64_t subscriber_ip, Notification n);

/// Chord key transfer handed stored items to `node`: notifications
/// addressed to it go to the inbox, everything else back to the store.
void AbsorbStoredItems(ProtocolContext& ctx, chord::Node& node,
                       const chord::NodeId& key,
                       std::vector<chord::PayloadPtr> items);

// Message handlers (wired up by the dispatch registry).
void HandleNotification(ProtocolContext& ctx, chord::Node& node,
                        const chord::AppMessage& msg);
void HandleNotificationDigest(ProtocolContext& ctx, chord::Node& node,
                              const chord::AppMessage& msg);
void HandleIpUpdate(ProtocolContext& ctx, chord::Node& node,
                    const chord::AppMessage& msg);

}  // namespace contjoin::core::subscriber

#endif  // CONTJOIN_CORE_SUBSCRIBER_H_
