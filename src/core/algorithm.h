// Per-algorithm strategy objects: the policy differences between the
// paper's four algorithms (where tuples are indexed, what gets rewritten,
// how evaluators store and match, dedup rules) expressed behind one
// interface consulted by the role handlers, so a fifth algorithm is a new
// strategy rather than another pass through the protocol modules.

#ifndef CONTJOIN_CORE_ALGORITHM_H_
#define CONTJOIN_CORE_ALGORITHM_H_

#include "chord/types.h"
#include "core/context.h"
#include "core/options.h"
#include "query/query.h"

namespace contjoin::core {

class AlgorithmStrategy {
 public:
  virtual ~AlgorithmStrategy() = default;

  virtual Algorithm id() const = 0;
  const char* name() const { return AlgorithmName(id()); }

  // --- Submission & insertion policy -----------------------------------------

  /// DAI algorithms index every query under both join-attribute identifiers
  /// (§4.4.1); SAI picks a single side.
  virtual bool DoubleIndexesQueries() const = 0;
  /// T1 algorithms index tuples at the value level too; DAI-V keeps tuples
  /// at the attribute level only (§4.5).
  virtual bool IndexesTuplesAtValueLevel() const = 0;
  /// T2 expression joins are evaluable only under DAI-V (§4.5).
  virtual bool SupportsT2Queries() const = 0;
  /// The recursive-SAI multi-way extension builds on single-side indexing.
  virtual bool SupportsRecursiveMultiway() const = 0;

  // --- Rewriter policy --------------------------------------------------------

  /// Rewriters emit DAI-V projections (the join value alone addresses the
  /// evaluator) instead of T1 rewritten queries.
  virtual bool RewritesToDaiv() const = 0;
  /// Rewriters never reindex the same rewritten key twice (DAI-T §4.4.3).
  /// Sliding windows need fresh trigger times, so dedup is windowless-only.
  virtual bool DeduplicatesRewrites(const Options& options) const = 0;

  // --- Evaluator policy -------------------------------------------------------

  /// Arriving rewritten queries are stored in the VLQT (SAI, DAI-T).
  virtual bool StoresRewrittenQueries() const = 0;
  /// Arriving rewritten queries probe the VLTT immediately (SAI, DAI-Q).
  virtual bool MatchesTuplesOnJoinArrival() const = 0;
  /// Join-arrival matching admits only strictly-older stored tuples — the
  /// DAI-Q exactly-once rule (§4.4.2).
  virtual bool RequiresStrictlyOlderStored() const = 0;
  /// Arriving value-level tuples probe the VLQT (SAI, DAI-T).
  virtual bool MatchesRewrittenOnTupleArrival() const = 0;
  /// Value-level tuples are stored in the VLTT (SAI for completeness §4.3.4,
  /// DAI-Q because its evaluators join on query arrival §4.4.2).
  virtual bool StoresTuples() const = 0;

  /// The strategy singleton for `a`.
  static const AlgorithmStrategy& For(Algorithm a);
};

/// SAI index-side selection (§4.3.6): applies options().sai_strategy,
/// probing live attribute statistics at the rewriter nodes when informed.
int ChooseSaiIndexSide(ProtocolContext& ctx, chord::Node& origin,
                       const query::ContinuousQuery& q);

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_ALGORITHM_H_
