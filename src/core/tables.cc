#include "core/tables.h"

namespace contjoin::core {

// --- AttrLevelQueryTable ---------------------------------------------------

void AttrLevelQueryTable::Insert(const std::string& level1,
                                 const std::string& signature,
                                 AlqtEntry entry) {
  Group& group = map_[level1][signature];
  for (const AlqtEntry& existing : group) {
    if (existing.query->key() == entry.query->key() &&
        existing.index_side == entry.index_side) {
      return;  // Redelivered or replayed indexing: already stored.
    }
  }
  group.push_back(std::move(entry));
  ++size_;
}

const AttrLevelQueryTable::GroupMap* AttrLevelQueryTable::Find(
    const std::string& level1) const {
  auto it = map_.find(level1);
  return it == map_.end() ? nullptr : &it->second;
}

size_t AttrLevelQueryTable::RemoveQuery(const std::string& query_key) {
  size_t removed = 0;
  for (auto l1 = map_.begin(); l1 != map_.end();) {
    for (auto l2 = l1->second.begin(); l2 != l1->second.end();) {
      Group& group = l2->second;
      for (auto it = group.begin(); it != group.end();) {
        if (it->query->key() == query_key) {
          it = group.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
      l2 = group.empty() ? l1->second.erase(l2) : std::next(l2);
    }
    l1 = l1->second.empty() ? map_.erase(l1) : std::next(l1);
  }
  size_ -= removed;
  return removed;
}

AttrLevelQueryTable::GroupMap AttrLevelQueryTable::TakeLevel1(
    const std::string& level1) {
  auto it = map_.find(level1);
  if (it == map_.end()) return {};
  GroupMap out = std::move(it->second);
  for (const auto& [signature, group] : out) size_ -= group.size();
  map_.erase(it);
  return out;
}

void AttrLevelQueryTable::AbsorbLevel1(const std::string& level1,
                                       GroupMap groups) {
  for (auto& [signature, group] : groups) {
    for (AlqtEntry& entry : group) {
      Insert(level1, signature, std::move(entry));
    }
  }
}

std::vector<std::string> AttrLevelQueryTable::Level1Keys() const {
  std::vector<std::string> keys;
  keys.reserve(map_.size());
  // contjoin-check: ordered-ok(keys are collected and sorted below)
  for (const auto& [level1, groups] : map_) keys.push_back(level1);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- ValueLevelQueryTable ----------------------------------------------------

bool ValueLevelQueryTable::InsertOrRefresh(const std::string& level1,
                                           const std::string& value_key,
                                           const RewrittenEntry& entry) {
  Bucket& bucket = map_[level1][value_key];
  auto it = bucket.find(entry.rewritten_key);
  if (it != bucket.end()) {
    // Same rewritten key: only the trigger time advances (§4.3.3).
    if (entry.trigger_pub > it->second.latest_trigger_pub ||
        (entry.trigger_pub == it->second.latest_trigger_pub &&
         entry.trigger_seq > it->second.latest_trigger_seq)) {
      it->second.latest_trigger_pub = entry.trigger_pub;
      it->second.latest_trigger_seq = entry.trigger_seq;
    }
    return false;
  }
  StoredRewritten stored;
  stored.query = entry.query;
  stored.remaining_side = entry.remaining_side;
  stored.required_value = entry.required_value;
  stored.row = entry.row;
  stored.latest_trigger_pub = entry.trigger_pub;
  stored.latest_trigger_seq = entry.trigger_seq;
  bucket.emplace(entry.rewritten_key, std::move(stored));
  ++size_;
  return true;
}

const ValueLevelQueryTable::Bucket* ValueLevelQueryTable::Find(
    const std::string& level1, const std::string& value_key) const {
  auto l1 = map_.find(level1);
  if (l1 == map_.end()) return nullptr;
  auto l2 = l1->second.find(value_key);
  return l2 == l1->second.end() ? nullptr : &l2->second;
}

std::vector<std::pair<std::string, std::string>>
ValueLevelQueryTable::BucketKeys() const {
  std::vector<std::pair<std::string, std::string>> keys;
  // contjoin-check: ordered-ok(keys are collected and sorted below)
  for (const auto& [level1, by_value] : map_) {
    // contjoin-check: ordered-ok(keys are collected and sorted below)
    for (const auto& [value_key, bucket] : by_value) {
      keys.emplace_back(level1, value_key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

ValueLevelQueryTable::Bucket ValueLevelQueryTable::TakeBucket(
    const std::string& level1, const std::string& value_key) {
  auto l1 = map_.find(level1);
  if (l1 == map_.end()) return {};
  auto l2 = l1->second.find(value_key);
  if (l2 == l1->second.end()) return {};
  Bucket out = std::move(l2->second);
  size_ -= out.size();
  l1->second.erase(l2);
  if (l1->second.empty()) map_.erase(l1);
  return out;
}

void ValueLevelQueryTable::AbsorbBucket(const std::string& level1,
                                        const std::string& value_key,
                                        Bucket bucket) {
  Bucket& dst = map_[level1][value_key];
  for (auto& [rewritten_key, stored] : bucket) {
    auto it = dst.find(rewritten_key);
    if (it == dst.end()) {
      dst.emplace(rewritten_key, std::move(stored));
      ++size_;
    } else if (stored.latest_trigger_pub > it->second.latest_trigger_pub ||
               (stored.latest_trigger_pub == it->second.latest_trigger_pub &&
                stored.latest_trigger_seq > it->second.latest_trigger_seq)) {
      it->second.latest_trigger_pub = stored.latest_trigger_pub;
      it->second.latest_trigger_seq = stored.latest_trigger_seq;
    }
  }
}

size_t ValueLevelQueryTable::RemoveQuery(const std::string& query_key) {
  size_t removed = 0;
  for (auto l1 = map_.begin(); l1 != map_.end();) {
    for (auto l2 = l1->second.begin(); l2 != l1->second.end();) {
      Bucket& bucket = l2->second;
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (it->second.query->key() == query_key) {
          it = bucket.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
      l2 = bucket.empty() ? l1->second.erase(l2) : std::next(l2);
    }
    l1 = l1->second.empty() ? map_.erase(l1) : std::next(l1);
  }
  size_ -= removed;
  return removed;
}

// --- ValueLevelTupleTable -----------------------------------------------------

void ValueLevelTupleTable::Insert(const std::string& level1,
                                  const std::string& value_key,
                                  StoredTuple stored) {
  Bucket& bucket = map_[level1][value_key];
  for (const StoredTuple& existing : bucket) {
    if (existing.tuple->seq() == stored.tuple->seq() &&
        existing.index_attr == stored.index_attr) {
      return;  // Redelivered or replayed publication: already stored.
    }
  }
  bucket.push_back(std::move(stored));
  ++size_;
}

std::vector<std::pair<std::string, std::string>>
ValueLevelTupleTable::BucketKeys() const {
  std::vector<std::pair<std::string, std::string>> keys;
  // contjoin-check: ordered-ok(keys are collected and sorted below)
  for (const auto& [level1, by_value] : map_) {
    // contjoin-check: ordered-ok(keys are collected and sorted below)
    for (const auto& [value_key, bucket] : by_value) {
      keys.emplace_back(level1, value_key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

ValueLevelTupleTable::Bucket ValueLevelTupleTable::TakeBucket(
    const std::string& level1, const std::string& value_key) {
  auto l1 = map_.find(level1);
  if (l1 == map_.end()) return {};
  auto l2 = l1->second.find(value_key);
  if (l2 == l1->second.end()) return {};
  Bucket out = std::move(l2->second);
  size_ -= out.size();
  l1->second.erase(l2);
  if (l1->second.empty()) map_.erase(l1);
  return out;
}

void ValueLevelTupleTable::AbsorbBucket(const std::string& level1,
                                        const std::string& value_key,
                                        Bucket bucket) {
  for (StoredTuple& stored : bucket) {
    Insert(level1, value_key, std::move(stored));
  }
}

const ValueLevelTupleTable::Bucket* ValueLevelTupleTable::Find(
    const std::string& level1, const std::string& value_key) const {
  auto l1 = map_.find(level1);
  if (l1 == map_.end()) return nullptr;
  auto l2 = l1->second.find(value_key);
  return l2 == l1->second.end() ? nullptr : &l2->second;
}

size_t ValueLevelTupleTable::ExpireBefore(rel::Timestamp cutoff) {
  size_t dropped = 0;
  for (auto l1 = map_.begin(); l1 != map_.end();) {
    for (auto l2 = l1->second.begin(); l2 != l1->second.end();) {
      Bucket& bucket = l2->second;
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (it->tuple->pub_time() < cutoff) {
          it = bucket.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
      l2 = bucket.empty() ? l1->second.erase(l2) : std::next(l2);
    }
    l1 = l1->second.empty() ? map_.erase(l1) : std::next(l1);
  }
  size_ -= dropped;
  return dropped;
}

// --- DaivStore ---------------------------------------------------------------

void DaivStore::Insert(const std::string& value_key,
                       const std::string& query_key, int side,
                       DaivStored stored) {
  Bucket& bucket = map_[value_key][SubKey(query_key, side)];
  for (const DaivStored& existing : bucket) {
    if (existing.seq == stored.seq) return;  // Redelivered projection.
  }
  bucket.push_back(std::move(stored));
  ++size_;
}

std::vector<std::pair<std::string, std::string>> DaivStore::BucketKeys()
    const {
  std::vector<std::pair<std::string, std::string>> keys;
  // contjoin-check: ordered-ok(keys are collected and sorted below)
  for (const auto& [value_key, by_sub] : map_) {
    // contjoin-check: ordered-ok(keys are collected and sorted below)
    for (const auto& [sub_key, bucket] : by_sub) {
      keys.emplace_back(value_key, sub_key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

DaivStore::Bucket DaivStore::TakeBucket(const std::string& value_key,
                                        const std::string& sub_key) {
  auto l1 = map_.find(value_key);
  if (l1 == map_.end()) return {};
  auto l2 = l1->second.find(sub_key);
  if (l2 == l1->second.end()) return {};
  Bucket out = std::move(l2->second);
  size_ -= out.size();
  l1->second.erase(l2);
  if (l1->second.empty()) map_.erase(l1);
  return out;
}

void DaivStore::AbsorbBucket(const std::string& value_key,
                             const std::string& sub_key, Bucket bucket) {
  Bucket& dst = map_[value_key][sub_key];
  for (DaivStored& stored : bucket) {
    bool dup = false;
    for (const DaivStored& existing : dst) {
      if (existing.seq == stored.seq) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      dst.push_back(std::move(stored));
      ++size_;
    }
  }
}

const DaivStore::Bucket* DaivStore::Find(const std::string& value_key,
                                         const std::string& query_key,
                                         int side) const {
  auto l1 = map_.find(value_key);
  if (l1 == map_.end()) return nullptr;
  auto l2 = l1->second.find(SubKey(query_key, side));
  return l2 == l1->second.end() ? nullptr : &l2->second;
}

size_t DaivStore::ExpireBefore(rel::Timestamp cutoff) {
  size_t dropped = 0;
  for (auto l1 = map_.begin(); l1 != map_.end();) {
    for (auto l2 = l1->second.begin(); l2 != l1->second.end();) {
      Bucket& bucket = l2->second;
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (it->pub_time < cutoff) {
          it = bucket.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
      l2 = bucket.empty() ? l1->second.erase(l2) : std::next(l2);
    }
    l1 = l1->second.empty() ? map_.erase(l1) : std::next(l1);
  }
  size_ -= dropped;
  return dropped;
}

size_t DaivStore::RemoveQuery(const std::string& query_key) {
  std::string keys[2] = {SubKey(query_key, 0), SubKey(query_key, 1)};
  size_t removed = 0;
  for (auto l1 = map_.begin(); l1 != map_.end();) {
    for (const std::string& key : keys) {
      auto l2 = l1->second.find(key);
      if (l2 != l1->second.end()) {
        removed += l2->second.size();
        l1->second.erase(l2);
      }
    }
    l1 = l1->second.empty() ? map_.erase(l1) : std::next(l1);
  }
  size_ -= removed;
  return removed;
}

}  // namespace contjoin::core
