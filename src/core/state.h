// NodeState: the composition of the per-role protocol tables one node
// keeps. Each role module owns its slice; the engine owns the map from
// Chord nodes to their NodeState.

#ifndef CONTJOIN_CORE_STATE_H_
#define CONTJOIN_CORE_STATE_H_

#include <cstddef>
#include <cstdint>

#include "adapt/planner.h"
#include "core/evaluator.h"
#include "core/metrics.h"
#include "core/mw_protocol.h"
#include "core/otj_protocol.h"
#include "core/reliability.h"
#include "core/rewriter.h"
#include "core/subscriber.h"

namespace contjoin::core {

/// State a node keeps to play its roles (rewriter / evaluator / subscriber,
/// plus the multi-way and one-time-join extensions).
struct NodeState {
  explicit NodeState(size_t jfrt_capacity) : rewriter(jfrt_capacity) {}

  rewriter::State rewriter;
  evaluator::State evaluator;
  subscriber::State subscriber;
  mw::State mw;
  otj::State otj;
  reliability::State reliability;
  /// Adaptive load manager: directive directory, per-key load trackers
  /// and transition bookkeeping. Volatile — a crash wipes it, and churn
  /// repair re-seeds the directory from the survivors' union.
  contjoin::adapt::AdaptState adapt;
  NodeMetrics metrics;
  /// Monotone counter behind NextReliableId. Deliberately outside
  /// reliability::State: a crash wipes the volatile protocol tables, but a
  /// reconnecting node must never reissue an id a receiver may still
  /// remember in its dedup set.
  uint64_t next_reliable_seq = 0;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_STATE_H_
