#include "core/reliability.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/state.h"

namespace contjoin::core {
namespace reliability {
namespace {

void OnTimeout(ProtocolContext& ctx, chord::Node& node, uint64_t id,
               int attempt);

void ScheduleRetry(ProtocolContext& ctx, chord::Node& node, uint64_t id,
                   int attempt, sim::CancelToken cancel) {
  uint64_t scale = std::max<uint64_t>(1, ctx.options().chord.hop_latency);
  // Exponential backoff, shift-capped so pathological max_retries settings
  // cannot overflow the virtual clock.
  int shift = std::min(attempt - 1, 20);
  sim::SimTime timeout = ctx.options().reliability.base_timeout * scale
                         << shift;
  ctx.ScheduleAfterCancellable(
      node, timeout, std::move(cancel),
      [ctx_ptr = &ctx, node_ptr = &node, id, attempt]() {
        OnTimeout(*ctx_ptr, *node_ptr, id, attempt);
      });
}

/// Upper bound on how long after first delivery any retransmission of the
/// same id can still arrive: the sum of every backoff interval the origin
/// may wait through, plus slack for routing latency. Past this, the dedup
/// entry can never suppress anything again and is safe to retire.
sim::SimTime SeenRetireHorizon(const ProtocolContext& ctx) {
  uint64_t scale = std::max<uint64_t>(1, ctx.options().chord.hop_latency);
  const sim::SimTime base = ctx.options().reliability.base_timeout * scale;
  sim::SimTime horizon = base;  // Routing-latency slack.
  const int last_attempt = ctx.options().reliability.max_retries + 1;
  for (int a = 1; a <= last_attempt; ++a) {
    horizon += base << std::min(a - 1, 20);
  }
  return horizon;
}

void OnTimeout(ProtocolContext& ctx, chord::Node& node, uint64_t id,
               int attempt) {
  NodeState& ns = ctx.StateOf(node);
  auto it = ns.reliability.pending.find(id);
  if (it == ns.reliability.pending.end()) return;  // Acked meanwhile.
  if (!node.alive()) {
    // The origin itself is gone; its durable logs, not this timer, are
    // what resurrects the intent.
    ns.reliability.pending.erase(it);
    return;
  }
  if (it->second.attempts >= ctx.options().reliability.max_retries) {
    ++ns.metrics.reliable_abandoned;
    ns.reliability.pending.erase(it);
    return;
  }
  ++it->second.attempts;
  ++ns.metrics.reliable_retries;
  const int next_attempt = it->second.attempts + 1;
  sim::CancelToken cancel = it->second.cancel;
  // Send may deliver synchronously when this node now owns the target key
  // (e.g. after ring repair); the self-delivery path erases the pending
  // entry in place, so nothing of `it` survives the call.
  ctx.Send(node, it->second.msg);
  if (ns.reliability.pending.count(id) != 0) {
    ScheduleRetry(ctx, node, id, next_attempt, std::move(cancel));
  }
}

}  // namespace

bool IsCritical(CqMsgType type) {
  switch (type) {
    case CqMsgType::kQueryIndex:
    case CqMsgType::kTupleAl:
    case CqMsgType::kTupleVl:
    case CqMsgType::kJoin:
    case CqMsgType::kDaivJoin:
    case CqMsgType::kNotification:
    case CqMsgType::kNotificationDigest:
    case CqMsgType::kAdaptSplit:
      return true;
    default:
      return false;
  }
}

void Arm(ProtocolContext& ctx, chord::Node& from, chord::AppMessage& msg) {
  msg.reliable_id = ctx.NextReliableId(from);
  msg.reliable_origin = from.id();
  NodeState& ns = ctx.StateOf(from);
  sim::CancelToken cancel = sim::MakeCancelToken();
  ns.reliability.pending.emplace(msg.reliable_id,
                                 PendingSend{msg, 0, cancel});
  ++ns.metrics.reliable_sent;
  ScheduleRetry(ctx, from, msg.reliable_id, 1, std::move(cancel));
}

void SendReliable(ProtocolContext& ctx, chord::Node& from,
                  chord::AppMessage msg) {
  const auto* payload = static_cast<const CqPayload*>(msg.payload.get());
  if (ctx.options().reliability.enabled && payload != nullptr &&
      IsCritical(payload->type)) {
    Arm(ctx, from, msg);
  }
  ctx.Send(from, std::move(msg));
}

void ArmAll(ProtocolContext& ctx, chord::Node& from,
            std::vector<chord::AppMessage>& msgs) {
  if (!ctx.options().reliability.enabled) return;
  for (chord::AppMessage& msg : msgs) {
    const auto* payload = static_cast<const CqPayload*>(msg.payload.get());
    if (payload != nullptr && IsCritical(payload->type)) {
      Arm(ctx, from, msg);
    }
  }
}

bool ObserveDelivery(ProtocolContext& ctx, chord::Node& node,
                     const chord::AppMessage& msg) {
  NodeState& ns = ctx.StateOf(node);
  if (msg.reliable_origin == node.id()) {
    // Delivered back at the origin (it owns the target key): confirm
    // in place, no ack traffic.
    ns.reliability.pending.erase(msg.reliable_id);
  } else {
    // Resolve the origin by identifier at ack time: under churn the node
    // that armed the message may have crashed since, and a raw pointer
    // captured at send time would now be dangling.
    chord::Node* origin = ctx.NodeById(msg.reliable_origin);
    if (origin != nullptr && origin->alive()) {
      auto ack = std::make_shared<DeliveryAckPayload>();
      ack->msg_id = msg.reliable_id;
      chord::AppMessage out;
      out.target = origin->id();
      out.cls = sim::MsgClass::kControl;
      out.payload = std::move(ack);
      ++ns.metrics.reliable_acks_sent;
      // One direct hop back: the receiver learned the origin's address
      // from the message. The ack itself is best-effort — a lost ack only
      // causes a retry, which this dedup set absorbs.
      ctx.TransmitMessage(node, origin->id(), std::move(out));
    }
  }
  if (!ns.reliability.seen.insert(msg.reliable_id).second) {
    ++ns.metrics.reliable_dups_suppressed;
    return true;
  }
  ns.reliability.seen_by_time.emplace_back(ctx.now(), msg.reliable_id);
  // Retire dedup entries whose origin's retry window has certainly lapsed;
  // this bounds the set by the id-arrival rate times the horizon instead
  // of growing one entry per critical message forever.
  const sim::SimTime horizon = SeenRetireHorizon(ctx);
  while (!ns.reliability.seen_by_time.empty() &&
         ns.reliability.seen_by_time.front().first + horizon <
             static_cast<sim::SimTime>(ctx.now())) {
    ns.reliability.seen.erase(ns.reliability.seen_by_time.front().second);
    ns.reliability.seen_by_time.pop_front();
  }
  return false;
}

void HandleDeliveryAck(ProtocolContext& ctx, chord::Node& node,
                       const chord::AppMessage& msg) {
  const auto& p = static_cast<const DeliveryAckPayload&>(*msg.payload);
  ctx.StateOf(node).reliability.pending.erase(p.msg_id);
}

void RetransmitPending(ProtocolContext& ctx, chord::Node& node) {
  if (!ctx.options().reliability.enabled) return;
  NodeState& ns = ctx.StateOf(node);
  // Snapshot the ids first: after repair this node may own a target key
  // itself, making Send deliver synchronously and erase the pending entry
  // mid-loop — live iterators and references would dangle.
  std::vector<uint64_t> ids;
  ids.reserve(ns.reliability.pending.size());
  for (const auto& [id, pending] : ns.reliability.pending) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = ns.reliability.pending.find(id);
    if (it == ns.reliability.pending.end()) continue;
    // Kill the old backoff timer and rearm from a fresh token; the
    // retransmission still counts against max_retries so a permanently
    // undeliverable message is abandoned on the usual schedule.
    if (it->second.cancel != nullptr) {
      it->second.cancel->store(true, std::memory_order_release);
    }
    it->second.cancel = sim::MakeCancelToken();
    ++it->second.attempts;
    ++ns.metrics.reliable_retries;
    const int next_attempt = it->second.attempts + 1;
    sim::CancelToken cancel = it->second.cancel;
    ctx.Send(node, it->second.msg);
    if (ns.reliability.pending.count(id) != 0) {
      ScheduleRetry(ctx, node, id, next_attempt, std::move(cancel));
    }
  }
}

}  // namespace reliability
}  // namespace contjoin::core
