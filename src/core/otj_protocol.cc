#include "core/otj_protocol.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "chord/node.h"
#include "core/state.h"

namespace contjoin::core::otj {

void HandleScan(ProtocolContext& ctx, chord::Node& node,
                const chord::AppMessage& msg) {
  const auto& p = *static_cast<const OtjScanPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.filter_ops_value;
  const query::ContinuousQuery& q = *p.query;

  // Rehash this node's slice of the two base relations by join value.
  // Every tuple lives in the VLTT once per attribute; the copy stored
  // under attribute 0 is the canonical one for scans.
  struct Pending {
    chord::NodeId vindex;
    std::shared_ptr<OtjRehashPayload> payload;
  };
  std::map<std::string, Pending> groups;
  state.evaluator.vltt.ForEach([&](const StoredTuple& stored) {
    if (stored.index_attr != 0) return;
    const rel::Tuple& tuple = *stored.tuple;
    int side = q.SideOfRelation(tuple.relation());
    if (side < 0) return;
    ++state.metrics.filter_ops_value;
    if (!q.side(side).SatisfiesPredicates(tuple)) return;
    auto value = q.side(side).join_expr->EvalSingle(side, tuple);
    if (!value.ok() || value.value().is_null()) return;
    std::string value_key = value.value().ToKeyString();

    OtjTuple entry;
    entry.side = side;
    entry.row.assign(q.select().size(), std::nullopt);
    for (size_t i = 0; i < q.select().size(); ++i) {
      if (q.select()[i].ref.side == side) {
        entry.row[i] = tuple.at(q.select()[i].ref.attr_index);
      }
    }
    entry.pub_time = tuple.pub_time();
    entry.seq = tuple.seq();

    Pending& pending = groups[value_key];
    if (pending.payload == nullptr) {
      pending.vindex = HashKey("otj#" + std::to_string(p.otj_id) + "#" +
                               value_key);
      pending.payload = std::make_shared<OtjRehashPayload>();
      pending.payload->query = p.query;
      pending.payload->otj_id = p.otj_id;
      pending.payload->issuer = p.issuer;
      pending.payload->value_key = value_key;
    }
    pending.payload->entries.push_back(std::move(entry));
  });

  std::vector<chord::AppMessage> batch;
  for (auto& [value_key, pending] : groups) {
    chord::AppMessage out;
    out.target = pending.vindex;
    out.cls = sim::MsgClass::kOneTime;
    out.payload = std::move(pending.payload);
    batch.push_back(std::move(out));
  }
  if (batch.size() == 1) {
    ctx.Send(node, std::move(batch[0]));
  } else if (!batch.empty()) {
    ctx.Multisend(node, std::move(batch), sim::MsgClass::kOneTime);
  }
}

void HandleRehash(ProtocolContext& ctx, chord::Node& node,
                  const chord::AppMessage& msg) {
  const auto& p = *static_cast<const OtjRehashPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.filter_ops_value;
  const query::ContinuousQuery& q = *p.query;
  auto& sides = state.otj.buffers[p.otj_id][p.value_key];
  auto rows = std::make_shared<std::vector<Notification>>();
  for (const OtjTuple& entry : p.entries) {
    // Symmetric hash join: probe the opposite buffer, then insert.
    for (const OtjTuple& other :
         sides[static_cast<size_t>(1 - entry.side)]) {
      ++state.metrics.filter_ops_value;
      Notification n;
      n.query_key = q.key();
      n.row.reserve(q.select().size());
      bool complete = true;
      for (size_t i = 0; i < q.select().size(); ++i) {
        const auto& mine = entry.row[i];
        const auto& theirs = other.row[i];
        if (mine.has_value()) {
          n.row.push_back(*mine);
        } else if (theirs.has_value()) {
          n.row.push_back(*theirs);
        } else {
          complete = false;
          break;
        }
      }
      if (!complete) continue;
      n.earlier_pub = std::min(entry.pub_time, other.pub_time);
      n.later_pub = std::max(entry.pub_time, other.pub_time);
      n.created_at = ctx.now();
      rows->push_back(std::move(n));
    }
    sides[static_cast<size_t>(entry.side)].push_back(entry);
  }
  if (rows->empty()) return;
  // Stream the rows straight back to the issuer (PIER-style). The result
  // transfer itself is an engine-sink interaction (the issuer-side buffer
  // lives outside any node), so it stays on the closure path.
  if (p.issuer == chord::NodeId()) return;
  chord::Node* issuer = ctx.NodeById(p.issuer);
  if (issuer == nullptr) return;
  uint64_t otj_id = p.otj_id;
  if (issuer == &node) {
    ctx.AppendOtjResults(otj_id, std::move(*rows));
    return;
  }
  ctx.Transmit(&node, issuer, sim::MsgClass::kOneTime,
               [ctx = &ctx, otj_id, rows]() {
                 ctx->AppendOtjResults(otj_id, std::move(*rows));
               });
}

}  // namespace contjoin::core::otj
