// Per-node load metrics (one of the paper's stated contributions is the
// introduction of metrics capturing individual node load and total system
// load).
//
// Definitions used throughout the benchmarks:
//  * Filtering load TF(n): the number of filtering operations node n
//    performed — each incoming al-index / vl-index / join message counts 1,
//    plus 1 per candidate (query, rewritten query or tuple) examined while
//    matching. Split into the attribute-level and value-level shares so the
//    two-level comparisons of the paper can be reproduced.
//  * Storage load TS(n): the number of objects resident at n — queries in
//    the ALQT, rewritten queries in the VLQT, tuples in the VLTT, DAI-V
//    projections, and stored off-line notifications.

#ifndef CONTJOIN_CORE_METRICS_H_
#define CONTJOIN_CORE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "core/messages.h"

namespace contjoin::core {

struct NodeMetrics {
  // --- Filtering load --------------------------------------------------------
  uint64_t filter_ops_attr = 0;   // At the attribute level (rewriter role).
  uint64_t filter_ops_value = 0;  // At the value level (evaluator role).

  // --- Message receipts -------------------------------------------------------
  uint64_t tuples_received_attr = 0;
  uint64_t tuples_received_value = 0;
  uint64_t joins_received = 0;
  uint64_t queries_received = 0;

  // --- Work results -------------------------------------------------------------
  uint64_t rewrites_sent = 0;          // Rewritten-query entries emitted.
  uint64_t rewrites_skipped_dup = 0;   // DAI-T dedup savings.
  uint64_t rewrites_skipped_nosol = 0; // Inversion had no representable sol.
  uint64_t notifications_created = 0;

  // --- Reliable delivery (extension) --------------------------------------------
  uint64_t reliable_sent = 0;       // Messages armed with a reliable id here.
  uint64_t reliable_retries = 0;    // Timeout-triggered resends.
  uint64_t reliable_acks_sent = 0;  // Delivery acks emitted by this node.
  uint64_t reliable_dups_suppressed = 0;  // Duplicate deliveries absorbed.
  uint64_t reliable_abandoned = 0;  // Gave up after max_retries.

  // --- Adaptive load manager (extension) -----------------------------------------
  uint64_t adapt_directives = 0;  // Replicate/split directives issued here.
  uint64_t adapt_redirects = 0;   // Dead-key arrivals re-dispatched.
  uint64_t adapt_reships = 0;     // Bucket re-placements / top-up copies sent.

  // --- Dispatch-level receipts -------------------------------------------------
  /// Messages dispatched here, by CqMsgType index.
  std::array<uint64_t, kCqMsgTypeCount> received_by_type{};
  /// Messages whose type had no registered handler.
  uint64_t msgs_unhandled = 0;

  uint64_t TotalFilterOps() const { return filter_ops_attr + filter_ops_value; }

  /// Folds another node's counters in (system-wide aggregation).
  void Accumulate(const NodeMetrics& m) {
    filter_ops_attr += m.filter_ops_attr;
    filter_ops_value += m.filter_ops_value;
    tuples_received_attr += m.tuples_received_attr;
    tuples_received_value += m.tuples_received_value;
    joins_received += m.joins_received;
    queries_received += m.queries_received;
    rewrites_sent += m.rewrites_sent;
    rewrites_skipped_dup += m.rewrites_skipped_dup;
    rewrites_skipped_nosol += m.rewrites_skipped_nosol;
    notifications_created += m.notifications_created;
    reliable_sent += m.reliable_sent;
    reliable_retries += m.reliable_retries;
    reliable_acks_sent += m.reliable_acks_sent;
    reliable_dups_suppressed += m.reliable_dups_suppressed;
    reliable_abandoned += m.reliable_abandoned;
    adapt_directives += m.adapt_directives;
    adapt_redirects += m.adapt_redirects;
    adapt_reships += m.adapt_reships;
    for (size_t i = 0; i < received_by_type.size(); ++i) {
      received_by_type[i] += m.received_by_type[i];
    }
    msgs_unhandled += m.msgs_unhandled;
  }

  void Reset() { *this = NodeMetrics(); }
};

/// Storage snapshot of one node (computed from its tables on demand).
struct NodeStorage {
  uint64_t alqt_queries = 0;
  uint64_t vlqt_rewritten = 0;
  uint64_t vltt_tuples = 0;
  uint64_t daiv_entries = 0;
  uint64_t stored_notifications = 0;
  uint64_t mw_queries = 0;   // Multi-way queries at rewriters (extension).
  uint64_t mw_partials = 0;  // Multi-way partial bindings at evaluators.

  uint64_t Total() const {
    return alqt_queries + vlqt_rewritten + vltt_tuples + daiv_entries +
           stored_notifications + mw_queries + mw_partials;
  }

  /// Folds another node's snapshot in (system-wide aggregation).
  void Accumulate(const NodeStorage& s) {
    alqt_queries += s.alqt_queries;
    vlqt_rewritten += s.vlqt_rewritten;
    vltt_tuples += s.vltt_tuples;
    daiv_entries += s.daiv_entries;
    stored_notifications += s.stored_notifications;
    mw_queries += s.mw_queries;
    mw_partials += s.mw_partials;
  }
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_METRICS_H_
