#include "core/messages.h"

#include "common/uint160.h"

namespace contjoin::core {

std::string AttrKey(const std::string& relation, const std::string& attr) {
  return relation + "+" + attr;
}

chord::NodeId AttrIndexIdOfKey(const std::string& attr_key, int replica) {
  std::string key = attr_key;
  if (replica > 0) key += "#r" + std::to_string(replica);
  return HashKey(key);
}

chord::NodeId AttrIndexId(const std::string& relation, const std::string& attr,
                          int replica) {
  return AttrIndexIdOfKey(AttrKey(relation, attr), replica);
}

std::string ValueKeyOf(const std::string& relation, const std::string& attr,
                       const std::string& value_key) {
  return relation + "+" + attr + "+" + value_key;
}

chord::NodeId ValueIndexIdOfKey(const std::string& attr_key,
                                const std::string& value_key) {
  return HashKey(attr_key + "+" + value_key);
}

chord::NodeId ValueIndexId(const std::string& relation,
                           const std::string& attr,
                           const std::string& value_key) {
  return HashKey(ValueKeyOf(relation, attr, value_key));
}

chord::NodeId DaivIndexId(const std::string& value_key) {
  return HashKey(value_key);
}

chord::NodeId DaivPrefixedIndexId(const std::string& query_key,
                                  const std::string& value_key) {
  return HashKey(query_key + "+" + value_key);
}

}  // namespace contjoin::core
