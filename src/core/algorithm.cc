#include "core/algorithm.h"

#include <string>

#include "chord/node.h"
#include "core/messages.h"
#include "core/rewriter.h"
#include "core/state.h"

namespace contjoin::core {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSai:
      return "SAI";
    case Algorithm::kDaiQ:
      return "DAI-Q";
    case Algorithm::kDaiT:
      return "DAI-T";
    case Algorithm::kDaiV:
      return "DAI-V";
  }
  return "?";
}

const char* SaiStrategyName(SaiStrategy s) {
  switch (s) {
    case SaiStrategy::kRandom:
      return "random";
    case SaiStrategy::kLowerRate:
      return "lower-rate";
    case SaiStrategy::kLowerSkew:
      return "lower-skew";
    case SaiStrategy::kSmallerDomain:
      return "smaller-domain";
  }
  return "?";
}

namespace {

class SaiAlgorithm final : public AlgorithmStrategy {
 public:
  Algorithm id() const override { return Algorithm::kSai; }
  bool DoubleIndexesQueries() const override { return false; }
  bool IndexesTuplesAtValueLevel() const override { return true; }
  bool SupportsT2Queries() const override { return false; }
  bool SupportsRecursiveMultiway() const override { return true; }
  bool RewritesToDaiv() const override { return false; }
  bool DeduplicatesRewrites(const Options&) const override { return false; }
  bool StoresRewrittenQueries() const override { return true; }
  bool MatchesTuplesOnJoinArrival() const override { return true; }
  bool RequiresStrictlyOlderStored() const override { return false; }
  bool MatchesRewrittenOnTupleArrival() const override { return true; }
  bool StoresTuples() const override { return true; }
};

class DaiQAlgorithm final : public AlgorithmStrategy {
 public:
  Algorithm id() const override { return Algorithm::kDaiQ; }
  bool DoubleIndexesQueries() const override { return true; }
  bool IndexesTuplesAtValueLevel() const override { return true; }
  bool SupportsT2Queries() const override { return false; }
  bool SupportsRecursiveMultiway() const override { return false; }
  bool RewritesToDaiv() const override { return false; }
  bool DeduplicatesRewrites(const Options&) const override { return false; }
  bool StoresRewrittenQueries() const override { return false; }
  bool MatchesTuplesOnJoinArrival() const override { return true; }
  bool RequiresStrictlyOlderStored() const override { return true; }
  bool MatchesRewrittenOnTupleArrival() const override { return false; }
  bool StoresTuples() const override { return true; }
};

class DaiTAlgorithm final : public AlgorithmStrategy {
 public:
  Algorithm id() const override { return Algorithm::kDaiT; }
  bool DoubleIndexesQueries() const override { return true; }
  bool IndexesTuplesAtValueLevel() const override { return true; }
  bool SupportsT2Queries() const override { return false; }
  bool SupportsRecursiveMultiway() const override { return false; }
  bool RewritesToDaiv() const override { return false; }
  bool DeduplicatesRewrites(const Options& options) const override {
    return options.window == 0;
  }
  bool StoresRewrittenQueries() const override { return true; }
  bool MatchesTuplesOnJoinArrival() const override { return false; }
  bool RequiresStrictlyOlderStored() const override { return false; }
  bool MatchesRewrittenOnTupleArrival() const override { return true; }
  bool StoresTuples() const override { return false; }
};

class DaiVAlgorithm final : public AlgorithmStrategy {
 public:
  Algorithm id() const override { return Algorithm::kDaiV; }
  bool DoubleIndexesQueries() const override { return true; }
  bool IndexesTuplesAtValueLevel() const override { return false; }
  bool SupportsT2Queries() const override { return true; }
  bool SupportsRecursiveMultiway() const override { return false; }
  bool RewritesToDaiv() const override { return true; }
  bool DeduplicatesRewrites(const Options&) const override { return false; }
  bool StoresRewrittenQueries() const override { return false; }
  bool MatchesTuplesOnJoinArrival() const override { return false; }
  bool RequiresStrictlyOlderStored() const override { return false; }
  bool MatchesRewrittenOnTupleArrival() const override { return false; }
  bool StoresTuples() const override { return false; }
};

/// Probes the rewriter responsible for (relation, attr) for its live
/// arrival statistics (§4.3.6: "any node can simply ask the two possible
/// rewriter nodes").
uint64_t ProbeAttrRate(ProtocolContext& ctx, chord::Node& origin,
                       const std::string& relation, const std::string& attr,
                       uint64_t* distinct, double* skew) {
  chord::NodeId aid = AttrIndexId(relation, attr, /*replica=*/0);
  chord::Node* rw = origin.FindSuccessor(aid, sim::MsgClass::kControl);
  if (rw == nullptr) {
    *distinct = 0;
    *skew = 0;
    return 0;
  }
  ctx.CountHop(sim::MsgClass::kControl);  // The response.
  std::string mkey = rewriter::MKey(AttrKey(relation, attr), 0);
  // Follow a moved identifier (§4.7) to the statistics' current holder.
  auto moved = ctx.StateOf(*rw).rewriter.moved_attrs.find(mkey);
  if (moved != ctx.StateOf(*rw).rewriter.moved_attrs.end() &&
      moved->second.holder != nullptr && moved->second.holder->alive()) {
    rw = moved->second.holder;
    ctx.CountHop(sim::MsgClass::kControl);
  }
  const AttrArrivalStats& stats = ctx.StateOf(*rw).rewriter.attr_stats[mkey];
  *distinct = stats.DistinctEstimate();
  *skew = stats.SkewEstimate();
  return stats.tuples_seen;
}

}  // namespace

const AlgorithmStrategy& AlgorithmStrategy::For(Algorithm a) {
  static const SaiAlgorithm sai;
  static const DaiQAlgorithm dai_q;
  static const DaiTAlgorithm dai_t;
  static const DaiVAlgorithm dai_v;
  switch (a) {
    case Algorithm::kSai:
      return sai;
    case Algorithm::kDaiQ:
      return dai_q;
    case Algorithm::kDaiT:
      return dai_t;
    case Algorithm::kDaiV:
      return dai_v;
  }
  return sai;
}

int ChooseSaiIndexSide(ProtocolContext& ctx, chord::Node& origin,
                       const query::ContinuousQuery& q) {
  if (ctx.options().sai_strategy == SaiStrategy::kRandom) {
    return static_cast<int>(ctx.GetRng().NextBelow(2));
  }
  uint64_t rate[2], distinct[2];
  double skew[2];
  for (int s = 0; s < 2; ++s) {
    rate[s] = ProbeAttrRate(ctx, origin, q.side(s).relation,
                            q.side(s).index_attr_name(), &distinct[s],
                            &skew[s]);
  }
  switch (ctx.options().sai_strategy) {
    case SaiStrategy::kLowerRate:
      // Index by the relation whose tuples arrive more rarely: fewer
      // triggers, fewer rewrites, less traffic (§4.3.6).
      if (rate[0] != rate[1]) return rate[0] < rate[1] ? 0 : 1;
      break;
    case SaiStrategy::kLowerSkew:
      // Index by the attribute whose values spread evaluators widest.
      if (skew[0] != skew[1]) return skew[0] < skew[1] ? 0 : 1;
      break;
    case SaiStrategy::kSmallerDomain:
      // Index by the attribute with the smaller observed value range.
      if (distinct[0] != distinct[1]) return distinct[0] < distinct[1] ? 0 : 1;
      break;
    case SaiStrategy::kRandom:
      break;
  }
  return static_cast<int>(ctx.GetRng().NextBelow(2));
}

}  // namespace contjoin::core
