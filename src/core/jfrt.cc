#include "core/jfrt.h"

namespace contjoin::core {

chord::Node* Jfrt::Lookup(const chord::NodeId& vindex) {
  auto it = map_.find(vindex);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->evaluator;
}

void Jfrt::Insert(const chord::NodeId& vindex, chord::Node* evaluator) {
  if (capacity_ == 0) return;
  auto it = map_.find(vindex);
  if (it != map_.end()) {
    it->second->evaluator = evaluator;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().vindex);
    lru_.pop_back();
  }
  lru_.push_front(Entry{vindex, evaluator});
  map_[vindex] = lru_.begin();
}

void Jfrt::Erase(const chord::NodeId& vindex) {
  auto it = map_.find(vindex);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

}  // namespace contjoin::core
