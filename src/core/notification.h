// Notifications: the answers delivered to query subscribers (paper §4.6).

#ifndef CONTJOIN_CORE_NOTIFICATION_H_
#define CONTJOIN_CORE_NOTIFICATION_H_

#include <string>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace contjoin::core {

/// One answer to a continuous query: the select-list row produced by a
/// satisfying tuple pair, plus time information about the contributing
/// tuples (paper: "a notification contains the results of a triggered
/// query ... along with time information about when those tuples were
/// inserted").
struct Notification {
  std::string query_key;
  std::vector<rel::Value> row;        // Select-list order.
  rel::Timestamp earlier_pub = 0;     // Publication time of the older tuple.
  rel::Timestamp later_pub = 0;       // Publication time of the newer tuple.
  rel::Timestamp created_at = 0;
  /// Virtual time the notification reached the subscriber's inbox. Stamped
  /// on deposit only — never serialized, never part of ContentKey — so the
  /// serving layer can measure time-in-flight (delivered_at - later_pub)
  /// without perturbing wire traffic or equivalence digests.
  rel::Timestamp delivered_at = 0;

  /// Canonical content identity: query key plus the row's key strings.
  /// Equivalence tests compare notification *sets* by this key (the paper's
  /// algorithms agree on content; duplicate-instance behaviour differs by
  /// design, e.g. SAI groups identical rewritten queries).
  std::string ContentKey() const {
    std::string out = query_key;
    for (const rel::Value& v : row) {
      out += '\x1f';
      out += v.ToKeyString();
    }
    return out;
  }

  std::string ToString() const {
    std::string out = query_key + " -> (";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += row[i].ToString();
    }
    out += ")";
    return out;
  }
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_NOTIFICATION_H_
