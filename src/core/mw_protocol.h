// Multi-way continuous joins (future-work extension; recursive SAI): a
// query is indexed once under its root relation, and each arriving tuple
// starts or extends a partially bound combination that chases the query's
// join tree condition by condition, reindexed at the value level hop by
// hop, until every relation is bound and a notification is emitted.

#ifndef CONTJOIN_CORE_MW_PROTOCOL_H_
#define CONTJOIN_CORE_MW_PROTOCOL_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/types.h"
#include "core/context.h"
#include "core/messages.h"
#include "query/mw_query.h"

namespace contjoin::core {
struct NodeState;

namespace mw {

/// The tables a node keeps for the multi-way extension.
struct State {
  /// Multi-way queries indexed at this rewriter, by "R+A#replica".
  std::unordered_map<std::string, std::vector<query::MwQueryPtr>> alqt;
  /// Stored partial bindings: "R+A" -> value -> partial key -> partial.
  /// Buckets are ordered maps: an arriving tuple iterates a whole bucket
  /// emitting notifications and next-hop partials, so the order must be
  /// reproducible.
  using Bucket = std::map<std::string, MwPartial>;
  std::unordered_map<std::string, std::unordered_map<std::string, Bucket>>
      vlqt;
  size_t alqt_size = 0;
  size_t vlqt_size = 0;
};

/// Triggers every multi-way query indexed under `mkey` with an arriving
/// attribute-level tuple (called from the rewriter's al-index handler).
void TriggerAll(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                const std::string& mkey, const rel::Tuple& tuple);

/// Matches an incoming value-level tuple against stored partials (called
/// from the evaluator's vl-index handler).
void MatchTupleVl(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                  const TupleIndexPayload& p);

// Message handlers (wired up by the dispatch registry).
void HandleQueryIndex(ProtocolContext& ctx, chord::Node& node,
                      const chord::AppMessage& msg);
void HandleJoin(ProtocolContext& ctx, chord::Node& node,
                const chord::AppMessage& msg);

}  // namespace mw
}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_MW_PROTOCOL_H_
