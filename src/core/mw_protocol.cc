#include "core/mw_protocol.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "chord/node.h"
#include "common/logging.h"
#include "core/state.h"
#include "core/subscriber.h"

namespace contjoin::core::mw {

namespace {

struct PendingMwJoin {
  chord::NodeId vindex;
  std::shared_ptr<MwJoinPayload> payload;
};
using MwJoinMap = std::map<std::string, PendingMwJoin>;

/// Canonical content identity of a partial binding: query, bound set,
/// bound select values and the pending join values. Identical keys imply
/// identical downstream results, so evaluators deduplicate on it.
std::string MwPartialKey(const MwPartial& p) {
  std::string out = p.query->key();
  out += "#" + std::to_string(p.bound_mask);
  for (const auto& v : p.row) {
    out += '\x1f';
    out += v.has_value() ? v->ToKeyString() : std::string("?");
  }
  for (const auto& [edge, value] : p.pending) {
    out += '\x1e';
    out += std::to_string(edge) + ":" + value.ToKeyString();
  }
  return out;
}

/// Queues `p` (already targeted) into the per-evaluator groups.
void MwQueuePartial(MwPartial p, MwJoinMap* out) {
  const query::MwQuery& q = *p.query;
  const query::MwCondition& cond =
      q.conditions()[static_cast<size_t>(p.target_condition)];
  // The unbound endpoint of the chased condition.
  int bound_end = ((p.bound_mask >> cond.rel_a) & 1u) ? cond.rel_a
                                                      : cond.rel_b;
  int target_rel = cond.Other(bound_end);
  const query::MwRelation& rel =
      q.relations()[static_cast<size_t>(target_rel)];
  const std::string& attr =
      rel.schema->attribute(cond.AttrOn(target_rel)).name;
  const rel::Value& required = p.pending.at(p.target_condition);
  std::string value_key = required.ToKeyString();
  std::string vkey_full = ValueKeyOf(rel.relation, attr, value_key);

  PendingMwJoin& pending = (*out)[vkey_full];
  if (pending.payload == nullptr) {
    pending.vindex = HashKey(vkey_full);
    pending.payload = std::make_shared<MwJoinPayload>();
    pending.payload->level1 = AttrKey(rel.relation, attr);
    pending.payload->value_key = value_key;
  }
  pending.payload->entries.push_back(std::move(p));
}

/// Starts a fresh partial from a root-relation tuple (at the rewriter).
void MwTrigger(chord::Node& node, NodeState& state,
               const query::MwQueryPtr& q, const rel::Tuple& tuple,
               MwJoinMap* out) {
  int side = q->SideOfRelation(tuple.relation());
  CJ_CHECK(side >= 0);
  if (tuple.pub_time() < q->insertion_time()) return;
  if (!q->relations()[static_cast<size_t>(side)].SatisfiesPredicates(tuple)) {
    return;
  }
  MwPartial p;
  p.query = q;
  p.bound_mask = 1u << side;
  p.row.assign(q->select().size(), std::nullopt);
  for (size_t i = 0; i < q->select().size(); ++i) {
    if (q->select()[i].ref.side == side) {
      p.row[i] = tuple.at(q->select()[i].ref.attr_index);
    }
  }
  for (size_t c = 0; c < q->conditions().size(); ++c) {
    const query::MwCondition& cond = q->conditions()[c];
    if (!cond.Touches(side)) continue;
    const rel::Value& v = tuple.at(cond.AttrOn(side));
    if (v.is_null()) return;  // A null join value can never complete.
    p.pending.emplace(static_cast<int>(c), v);
  }
  p.min_pub = p.max_pub = tuple.pub_time();
  p.last_seq = tuple.seq();
  p.target_condition = q->NextCondition(p.bound_mask);
  CJ_CHECK(p.target_condition >= 0);
  p.partial_key = MwPartialKey(p);
  ++state.metrics.rewrites_sent;
  MwQueuePartial(std::move(p), out);
}

/// Extends `p` with a matched tuple: emits a notification when complete,
/// otherwise queues the next-hop partial.
void MwExtend(ProtocolContext& ctx, chord::Node& node, const MwPartial& p,
              const rel::Tuple& t2, MwJoinMap* out) {
  const query::MwQuery& q = *p.query;
  int side = q.SideOfRelation(t2.relation());
  CJ_CHECK(side >= 0);
  MwPartial np;
  np.query = p.query;
  np.bound_mask = p.bound_mask | (1u << side);
  np.row = p.row;
  for (size_t i = 0; i < q.select().size(); ++i) {
    if (q.select()[i].ref.side == side) {
      np.row[i] = t2.at(q.select()[i].ref.attr_index);
    }
  }
  np.pending = p.pending;
  np.pending.erase(p.target_condition);
  for (size_t c = 0; c < q.conditions().size(); ++c) {
    const query::MwCondition& cond = q.conditions()[c];
    if (!cond.Touches(side)) continue;
    int other = cond.Other(side);
    if ((np.bound_mask >> other) & 1u) continue;  // Already consumed.
    const rel::Value& v = t2.at(cond.AttrOn(side));
    if (v.is_null()) return;
    np.pending.emplace(static_cast<int>(c), v);
  }
  np.min_pub = std::min(p.min_pub, t2.pub_time());
  np.max_pub = std::max(p.max_pub, t2.pub_time());
  np.last_seq = std::max(p.last_seq, t2.seq());
  np.target_condition = q.NextCondition(np.bound_mask);
  if (np.target_condition < 0) {
    // Every relation bound: the combination is an answer.
    subscriber::EmitMwNotification(ctx, node, q, np.row, np.min_pub,
                                   np.max_pub);
    return;
  }
  np.partial_key = MwPartialKey(np);
  ++ctx.StateOf(node).metrics.rewrites_sent;
  MwQueuePartial(std::move(np), out);
}

void DispatchMwJoins(ProtocolContext& ctx, chord::Node& node,
                     MwJoinMap joins) {
  std::vector<chord::AppMessage> batch;
  for (auto& [vkey, pending] : joins) {
    chord::AppMessage msg;
    msg.target = pending.vindex;
    msg.cls = sim::MsgClass::kRewrittenQuery;
    msg.payload = std::move(pending.payload);
    batch.push_back(std::move(msg));
  }
  if (batch.size() == 1) {
    ctx.Send(node, std::move(batch[0]));
  } else if (!batch.empty()) {
    ctx.Multisend(node, std::move(batch), sim::MsgClass::kRewrittenQuery);
  }
}

}  // namespace

void TriggerAll(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                const std::string& mkey, const rel::Tuple& tuple) {
  auto mw_it = state.mw.alqt.find(mkey);
  if (mw_it == state.mw.alqt.end()) return;
  state.metrics.filter_ops_attr += mw_it->second.size();
  MwJoinMap mw_joins;
  for (const query::MwQueryPtr& q : mw_it->second) {
    MwTrigger(node, state, q, tuple, &mw_joins);
  }
  if (!mw_joins.empty()) DispatchMwJoins(ctx, node, std::move(mw_joins));
}

void MatchTupleVl(ProtocolContext& ctx, chord::Node& node, NodeState& state,
                  const TupleIndexPayload& p) {
  auto l1 = state.mw.vlqt.find(p.level1);
  if (l1 == state.mw.vlqt.end()) return;
  auto l2 = l1->second.find(p.value_key);
  if (l2 == l1->second.end()) return;
  const rel::Tuple& tuple = *p.tuple;
  MwJoinMap next;
  for (const auto& [partial_key, partial] : l2->second) {
    ++state.metrics.filter_ops_value;
    const query::MwQuery& q = *partial.query;
    if (tuple.pub_time() < q.insertion_time()) continue;
    rel::Timestamp span_min = std::min(partial.min_pub, tuple.pub_time());
    rel::Timestamp span_max = std::max(partial.max_pub, tuple.pub_time());
    if (ctx.options().window != 0 &&
        span_max - span_min > ctx.options().window) {
      continue;
    }
    int side = q.SideOfRelation(tuple.relation());
    if (side < 0) continue;
    if (!q.relations()[static_cast<size_t>(side)].SatisfiesPredicates(
            tuple)) {
      continue;
    }
    MwExtend(ctx, node, partial, tuple, &next);
  }
  if (!next.empty()) DispatchMwJoins(ctx, node, std::move(next));
}

void HandleQueryIndex(ProtocolContext& ctx, chord::Node& node,
                      const chord::AppMessage& msg) {
  const auto& p =
      *static_cast<const MwQueryIndexPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.queries_received;
  state.mw.alqt[rewriter::MKey(p.level1, 0)].push_back(p.query);
  ++state.mw.alqt_size;
}

void HandleJoin(ProtocolContext& ctx, chord::Node& node,
                const chord::AppMessage& msg) {
  const auto& p = *static_cast<const MwJoinPayload*>(msg.payload.get());
  NodeState& state = ctx.StateOf(node);
  ++state.metrics.joins_received;
  ++state.metrics.filter_ops_value;
  MwJoinMap next;
  for (const MwPartial& entry : p.entries) {
    State::Bucket& bucket = state.mw.vlqt[p.level1][p.value_key];
    auto it = bucket.find(entry.partial_key);
    bool is_new = it == bucket.end();
    if (is_new) {
      bucket.emplace(entry.partial_key, entry);
      ++state.mw.vlqt_size;
    } else {
      // Identical content: keep the tightest publication span so windowed
      // matching stays maximally permissive for future tuples.
      if (entry.min_pub > it->second.min_pub) {
        it->second.min_pub = entry.min_pub;
        it->second.max_pub = entry.max_pub;
        it->second.last_seq = entry.last_seq;
      }
    }
    if (!is_new && ctx.options().window == 0) continue;
    // Match against already-stored tuples of the target relation/value.
    const auto* tuples = state.evaluator.vltt.Find(p.level1, p.value_key);
    if (tuples == nullptr) continue;
    const query::MwQuery& q = *entry.query;
    const query::MwCondition& cond =
        q.conditions()[static_cast<size_t>(entry.target_condition)];
    int bound_end = ((entry.bound_mask >> cond.rel_a) & 1u) ? cond.rel_a
                                                            : cond.rel_b;
    int target_rel = cond.Other(bound_end);
    const query::MwRelation& rel =
        q.relations()[static_cast<size_t>(target_rel)];
    for (const StoredTuple& st : *tuples) {
      ++state.metrics.filter_ops_value;
      const rel::Tuple& t2 = *st.tuple;
      if (t2.pub_time() < q.insertion_time()) continue;
      rel::Timestamp span_min = std::min(entry.min_pub, t2.pub_time());
      rel::Timestamp span_max = std::max(entry.max_pub, t2.pub_time());
      if (ctx.options().window != 0 &&
          span_max - span_min > ctx.options().window) {
        continue;
      }
      if (!rel.SatisfiesPredicates(t2)) continue;
      MwExtend(ctx, node, entry, t2, &next);
    }
  }
  if (!next.empty()) DispatchMwJoins(ctx, node, std::move(next));
}

}  // namespace contjoin::core::mw
