// Configuration of the continuous-query network.

#ifndef CONTJOIN_CORE_OPTIONS_H_
#define CONTJOIN_CORE_OPTIONS_H_

#include <cstdint>
#include <cstddef>

#include "adapt/policy.h"
#include "chord/network.h"
#include "faults/fault_plan.h"
#include "relational/tuple.h"

namespace contjoin::core {

/// The four algorithms of the paper (Chapter 4).
enum class Algorithm : unsigned char { kSai, kDaiQ, kDaiT, kDaiV };

const char* AlgorithmName(Algorithm a);

/// SAI index-attribute selection strategies (§4.3.6).
enum class SaiStrategy : unsigned char {
  kRandom,         // Uniform coin flip.
  kLowerRate,      // Index by the relation with the lower tuple-arrival rate.
  kLowerSkew,      // Index by the attribute with more uniform values.
  kSmallerDomain,  // Index by the attribute with fewer observed values.
};

const char* SaiStrategyName(SaiStrategy s);

/// Reliable-delivery knobs (extension beyond the paper: §3.2 leaves failure
/// handling to the DHT; this layer adds ack/retry + dedup + repair on top).
struct ReliabilityOptions {
  /// Master switch. Off = the paper's best-effort semantics, bit-identical
  /// to the engine without this subsystem.
  bool enabled = false;

  /// Retries per critical message before giving up.
  int max_retries = 8;

  /// First retry fires after base_timeout * max(1, hop_latency) virtual
  /// time units; subsequent retries back off exponentially (x2).
  uint64_t base_timeout = 64;

  /// Run the soft-state repair sweep (index handoff + re-index refresh)
  /// after scripted churn events.
  bool repair_on_churn = true;
};

/// Serving-path knobs (open-loop extension): subscriber fan-out batching
/// and per-node delivery backpressure. All off by default — the engine is
/// bit-identical to one without this subsystem when disabled.
struct ServingOptions {
  /// Coalesce an evaluator's notifications per (subscriber, epoch) into a
  /// single kNotificationDigest message instead of one kNotification each.
  bool fanout_batching = false;

  /// Cap in-flight notification deliveries per evaluator node. Past the
  /// high-water mark new deliveries are shed (dropped, counted) or
  /// deferred (retried after defer_delay), per `shed`.
  bool backpressure = false;
  uint64_t high_water = 64;
  bool shed = false;  // false = defer (retry later), true = drop.
  uint64_t defer_delay = 4;

  /// Virtual time one delivery slot stays occupied; with hop_latency h the
  /// node services ~high_water deliveries per max(1,h)*service_time ticks,
  /// which is what makes "max sustainable rate" a real capacity question.
  uint64_t service_time = 1;
};

struct Options {
  /// Ring size for the built-in ideal ring; ignored when the caller builds
  /// the ring itself.
  size_t num_nodes = 64;

  Algorithm algorithm = Algorithm::kSai;
  SaiStrategy sai_strategy = SaiStrategy::kRandom;

  /// Join fingers routing table (§4.7): evaluator-address caching at
  /// rewriters.
  bool use_jfrt = false;
  size_t jfrt_capacity = 1 << 16;

  /// Attribute-level load balancing (§4.7): number of rewriter replicas per
  /// "Relation+Attribute" key. 1 = the paper's base scheme.
  int attribute_replication = 1;

  /// Sliding window over value-level state: a stored tuple participates in
  /// joins only while (now - pubT) <= window. 0 means unlimited (the base
  /// semantics of the paper).
  rel::Timestamp window = 0;

  /// DAI-V variant prefixing the query key into evaluator identifiers
  /// (§4.5: better balance, ~250x the traffic — reproduced in Table 4.1).
  bool daiv_prefix_query_key = false;

  /// Track, at rewriters, the evaluators each query has been rewritten to,
  /// enabling exact unsubscription (extension beyond the paper).
  bool track_evaluators = false;

  /// Virtual-time increment applied before each submit/insert so that
  /// publication/insertion times are strictly ordered.
  uint64_t time_step = 1;

  uint64_t seed = 42;

  /// Meter bytes-on-wire: every transmitted hop frame is run through the
  /// wire codec and its encoded size accounted per message class in
  /// sim::NetStats. Off by default — encoding costs real time and event
  /// ordering is unaffected either way (the counter is the only output).
  bool count_wire_bytes = false;

  chord::NetworkOptions chord;

  /// Fault injection applied to the overlay transport (none by default).
  faults::FaultOptions faults;

  ReliabilityOptions reliability;

  ServingOptions serving;

  /// Adaptive load manager (runtime hot-key detection, auto-replication,
  /// value splitting, hysteresis cooldown). Off by default — the engine
  /// is bit-identical to one without this subsystem when disabled.
  contjoin::adapt::Params adapt;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_OPTIONS_H_
