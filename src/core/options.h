// Configuration of the continuous-query network.

#ifndef CONTJOIN_CORE_OPTIONS_H_
#define CONTJOIN_CORE_OPTIONS_H_

#include <cstdint>
#include <cstddef>

#include "chord/network.h"
#include "relational/tuple.h"

namespace contjoin::core {

/// The four algorithms of the paper (Chapter 4).
enum class Algorithm : unsigned char { kSai, kDaiQ, kDaiT, kDaiV };

const char* AlgorithmName(Algorithm a);

/// SAI index-attribute selection strategies (§4.3.6).
enum class SaiStrategy : unsigned char {
  kRandom,         // Uniform coin flip.
  kLowerRate,      // Index by the relation with the lower tuple-arrival rate.
  kLowerSkew,      // Index by the attribute with more uniform values.
  kSmallerDomain,  // Index by the attribute with fewer observed values.
};

const char* SaiStrategyName(SaiStrategy s);

struct Options {
  /// Ring size for the built-in ideal ring; ignored when the caller builds
  /// the ring itself.
  size_t num_nodes = 64;

  Algorithm algorithm = Algorithm::kSai;
  SaiStrategy sai_strategy = SaiStrategy::kRandom;

  /// Join fingers routing table (§4.7): evaluator-address caching at
  /// rewriters.
  bool use_jfrt = false;
  size_t jfrt_capacity = 1 << 16;

  /// Attribute-level load balancing (§4.7): number of rewriter replicas per
  /// "Relation+Attribute" key. 1 = the paper's base scheme.
  int attribute_replication = 1;

  /// Sliding window over value-level state: a stored tuple participates in
  /// joins only while (now - pubT) <= window. 0 means unlimited (the base
  /// semantics of the paper).
  rel::Timestamp window = 0;

  /// DAI-V variant prefixing the query key into evaluator identifiers
  /// (§4.5: better balance, ~250x the traffic — reproduced in Table 4.1).
  bool daiv_prefix_query_key = false;

  /// Track, at rewriters, the evaluators each query has been rewritten to,
  /// enabling exact unsubscription (extension beyond the paper).
  bool track_evaluators = false;

  /// Virtual-time increment applied before each submit/insert so that
  /// publication/insertion times are strictly ordered.
  uint64_t time_step = 1;

  uint64_t seed = 42;

  chord::NetworkOptions chord;
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_OPTIONS_H_
