#include "core/dispatch.h"

#include "common/logging.h"
#include "core/adapt_protocol.h"
#include "core/evaluator.h"
#include "core/mw_protocol.h"
#include "core/otj_protocol.h"
#include "core/reliability.h"
#include "core/rewriter.h"
#include "core/state.h"
#include "core/subscriber.h"

namespace contjoin::core {

// contjoin-check: hot
bool MessageDispatcher::Dispatch(ProtocolContext& ctx, chord::Node& node,
                                 const chord::AppMessage& msg) const {
  const auto* base = static_cast<const CqPayload*>(msg.payload.get());
  if (base == nullptr) return false;
  if (msg.reliable_id != 0 &&
      reliability::ObserveDelivery(ctx, node, msg)) {
    return true;  // Duplicate delivery: acked again, handler suppressed.
  }
  size_t index = static_cast<size_t>(base->type);
  if (index >= handlers_.size() || handlers_[index] == nullptr) {
    ++ctx.StateOf(node).metrics.msgs_unhandled;
    return false;
  }
  ++ctx.StateOf(node).metrics.received_by_type[index];
  handlers_[index](ctx, node, msg);
  return true;
}

const MessageDispatcher& MessageDispatcher::Default() {
  static const MessageDispatcher table = [] {
    MessageDispatcher t;
    // Register refuses duplicates; a false return here is a wiring bug.
    CJ_CHECK(t.Register(CqMsgType::kQueryIndex, rewriter::HandleQueryIndex));
    CJ_CHECK(t.Register(CqMsgType::kTupleAl, rewriter::HandleTupleAl));
    CJ_CHECK(t.Register(CqMsgType::kTupleVl, evaluator::HandleTupleVl));
    CJ_CHECK(t.Register(CqMsgType::kJoin, evaluator::HandleJoinMsg));
    CJ_CHECK(t.Register(CqMsgType::kDaivJoin, evaluator::HandleDaivJoinMsg));
    CJ_CHECK(
        t.Register(CqMsgType::kNotification, subscriber::HandleNotification));
    CJ_CHECK(t.Register(CqMsgType::kUnsubscribe, rewriter::HandleUnsubscribe));
    CJ_CHECK(t.Register(CqMsgType::kIpUpdate, subscriber::HandleIpUpdate));
    CJ_CHECK(t.Register(CqMsgType::kJfrtAck, rewriter::HandleJfrtAck));
    CJ_CHECK(t.Register(CqMsgType::kMigrateCmd, rewriter::HandleMigrateCmd));
    CJ_CHECK(t.Register(CqMsgType::kMwQueryIndex, mw::HandleQueryIndex));
    CJ_CHECK(t.Register(CqMsgType::kMwJoin, mw::HandleJoin));
    CJ_CHECK(t.Register(CqMsgType::kOtjScan, otj::HandleScan));
    CJ_CHECK(t.Register(CqMsgType::kOtjRehash, otj::HandleRehash));
    CJ_CHECK(t.Register(CqMsgType::kDeliveryAck,
                        reliability::HandleDeliveryAck));
    CJ_CHECK(t.Register(CqMsgType::kNotificationDigest,
                        subscriber::HandleNotificationDigest));
    CJ_CHECK(t.Register(CqMsgType::kAdaptReplicate, adapt::HandleReplicate));
    CJ_CHECK(t.Register(CqMsgType::kAdaptSplit, adapt::HandleSplit));
    return t;
  }();
  return table;
}

}  // namespace contjoin::core
