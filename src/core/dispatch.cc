#include "core/dispatch.h"

#include "core/evaluator.h"
#include "core/mw_protocol.h"
#include "core/otj_protocol.h"
#include "core/rewriter.h"
#include "core/state.h"
#include "core/subscriber.h"

namespace contjoin::core {

bool MessageDispatcher::Dispatch(ProtocolContext& ctx, chord::Node& node,
                                 const chord::AppMessage& msg) const {
  const auto* base = static_cast<const CqPayload*>(msg.payload.get());
  if (base == nullptr) return false;
  size_t index = static_cast<size_t>(base->type);
  if (index >= handlers_.size() || handlers_[index] == nullptr) {
    ++ctx.StateOf(node).metrics.msgs_unhandled;
    return false;
  }
  ++ctx.StateOf(node).metrics.received_by_type[index];
  handlers_[index](ctx, node, msg);
  return true;
}

const MessageDispatcher& MessageDispatcher::Default() {
  static const MessageDispatcher table = [] {
    MessageDispatcher t;
    t.Register(CqMsgType::kQueryIndex, rewriter::HandleQueryIndex);
    t.Register(CqMsgType::kTupleAl, rewriter::HandleTupleAl);
    t.Register(CqMsgType::kTupleVl, evaluator::HandleTupleVl);
    t.Register(CqMsgType::kJoin, evaluator::HandleJoinMsg);
    t.Register(CqMsgType::kDaivJoin, evaluator::HandleDaivJoinMsg);
    t.Register(CqMsgType::kNotification, subscriber::HandleNotification);
    t.Register(CqMsgType::kUnsubscribe, rewriter::HandleUnsubscribe);
    t.Register(CqMsgType::kIpUpdate, subscriber::HandleIpUpdate);
    t.Register(CqMsgType::kJfrtAck, rewriter::HandleJfrtAck);
    t.Register(CqMsgType::kMigrateCmd, rewriter::HandleMigrateCmd);
    t.Register(CqMsgType::kMwQueryIndex, mw::HandleQueryIndex);
    t.Register(CqMsgType::kMwJoin, mw::HandleJoin);
    t.Register(CqMsgType::kOtjScan, otj::HandleScan);
    t.Register(CqMsgType::kOtjRehash, otj::HandleRehash);
    return t;
  }();
  return table;
}

}  // namespace contjoin::core
