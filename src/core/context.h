// ProtocolContext: the narrow seam between the protocol role handlers
// (rewriter / evaluator / subscriber / multi-way / one-time-join) and the
// engine hosting them. Handlers reach the catalog, options, rng, per-node
// state, transport, clock and notification sink exclusively through this
// interface — it is the boundary a sharded simulator or a real wire
// transport plugs into, and what unit tests mock to exercise one handler in
// isolation.

#ifndef CONTJOIN_CORE_CONTEXT_H_
#define CONTJOIN_CORE_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chord/types.h"
#include "common/rng.h"
#include "core/notification.h"
#include "core/options.h"
#include "relational/tuple.h"
#include "sim/net_stats.h"
#include "sim/simulator.h"

namespace contjoin::rel {
class Catalog;
}  // namespace contjoin::rel

namespace contjoin::core {

struct NodeState;
class AlgorithmStrategy;

/// Event classes of the adaptive load manager, accounted through
/// ProtocolContext::RecordAdapt into sim::NetStats.
enum class AdaptStat {
  kDirective,  // A new replicate/split directive was issued.
  kRedirect,   // Traffic at a dead key was re-dispatched to live owners.
  kReship,     // A stored bucket (or a top-up copy) was re-placed.
};

class ProtocolContext {
 public:
  virtual ~ProtocolContext() = default;

  // --- Configuration & environment -----------------------------------------

  virtual const Options& options() const = 0;
  /// Strategy object of the configured algorithm (SAI / DAI-Q / DAI-T /
  /// DAI-V policy differences).
  virtual const AlgorithmStrategy& strategy() const = 0;
  virtual rel::Catalog& GetCatalog() = 0;
  virtual Rng& GetRng() = 0;
  /// Clock: current virtual time.
  virtual rel::Timestamp now() const = 0;

  // --- Per-node protocol state ----------------------------------------------

  virtual NodeState& StateOf(chord::Node& node) = 0;

  // --- Transport ------------------------------------------------------------

  /// Routes `msg` from `from` toward Successor(msg.target).
  virtual void Send(chord::Node& from, chord::AppMessage msg) = 0;
  /// Routes a batch with the paper's recursive multisend (§2.3).
  virtual void Multisend(chord::Node& from,
                         std::vector<chord::AppMessage> msgs,
                         sim::MsgClass cls) = 0;
  /// Point-to-point (one-hop) delivery to a known address; `deliver` runs at
  /// the destination when the hop completes. Simulator-only closure path —
  /// protocol messages use TransmitMessage so they can cross a wire.
  virtual void Transmit(chord::Node* from, chord::Node* to, sim::MsgClass cls,
                        std::function<void()> deliver) = 0;
  /// Point-to-point (one-hop) delivery of a typed message to the node whose
  /// identifier is exactly `to`. Resolution happens at the transport, so no
  /// raw Node* crosses the hop; the destination dispatches `msg` by type.
  virtual void TransmitMessage(chord::Node& from, const chord::NodeId& to,
                               chord::AppMessage msg) = 0;
  /// Accounts one overlay hop of class `cls` (e.g. an implied response).
  virtual void CountHop(sim::MsgClass cls) = 0;
  /// Accounts one backpressure decision (serving extension): `shed` = the
  /// delivery was dropped at the high-water mark, otherwise it was
  /// deferred to a later epoch. Default no-op so seam mocks that predate
  /// the serving layer keep working unchanged.
  virtual void RecordBackpressure(bool shed) { (void)shed; }
  /// Accounts one adaptive-load-manager event (see AdaptStat). Default
  /// no-op so seam mocks that predate the subsystem keep working.
  virtual void RecordAdapt(AdaptStat stat) { (void)stat; }
  /// Re-enters message dispatch at `node` — moved attribute-level
  /// identifiers forward whole messages to their holder (§4.7).
  virtual void Redeliver(chord::Node& node, const chord::AppMessage& msg) = 0;

  // --- Reliable delivery ------------------------------------------------------

  /// Fresh engine-unique id for a message reliably sent by `from` (never
  /// 0). Ids are drawn from a per-node counter so concurrently executing
  /// shards never contend, and the sequence each node draws is independent
  /// of worker count.
  virtual uint64_t NextReliableId(chord::Node& from) = 0;
  /// Runs `fn` after `delay` virtual time units (retry timers). The timer
  /// executes under `node`'s event shard, like a message delivered to it.
  virtual void ScheduleAfter(chord::Node& node, sim::SimTime delay,
                             std::function<void()> fn) = 0;
  /// ScheduleAfter with a cancellation handle: once `*cancel` is set the
  /// timer is discarded without firing and without holding the virtual
  /// clock open to its deadline. Retry backoff timers use this so an acked
  /// message's speculative far-future retries stop stretching queue drains.
  /// Default: plain ScheduleAfter (seam mocks predate cancellation; a timer
  /// that fires as a no-op is behaviourally equivalent, just slower).
  virtual void ScheduleAfterCancellable(chord::Node& node, sim::SimTime delay,
                                        sim::CancelToken cancel,
                                        std::function<void()> fn) {
    (void)cancel;
    ScheduleAfter(node, delay, std::move(fn));
  }

  // --- Subscribers & results -------------------------------------------------

  /// Node currently registered under application key `key` (subscriber
  /// lookup for direct notification delivery); nullptr if unknown.
  virtual chord::Node* NodeByKey(const std::string& key) = 0;
  /// Node with exactly identifier `id` (alive or dead); nullptr if no such
  /// node ever existed. Used to resolve reliable-delivery origins without
  /// holding raw pointers in messages.
  virtual chord::Node* NodeById(const chord::NodeId& id) = 0;
  /// Notification sink: appends `n` to `node`'s local inbox.
  virtual void DepositNotification(chord::Node& node, Notification n) = 0;
  /// One-time-join result sink: appends `rows` to the issuer-side result
  /// buffer of execution `otj_id`.
  virtual void AppendOtjResults(uint64_t otj_id,
                                std::vector<Notification> rows) = 0;

  /// True when a stored object published at `pub` is still inside the
  /// sliding window relative to `now_time`.
  bool InWindow(rel::Timestamp pub, rel::Timestamp now_time) const {
    return options().window == 0 || now_time - pub <= options().window;
  }
};

}  // namespace contjoin::core

#endif  // CONTJOIN_CORE_CONTEXT_H_
