#include "workload/workload.h"

#include <sstream>

#include "common/logging.h"

namespace contjoin::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      zipf_(static_cast<uint64_t>(options_.domain), options_.zipf_theta),
      s_zipf_(static_cast<uint64_t>(options_.s_domain > 0 ? options_.s_domain
                                                          : options_.domain),
              options_.s_zipf_theta >= 0 ? options_.s_zipf_theta
                                         : options_.zipf_theta) {
  CJ_CHECK(options_.domain > 0);
  CJ_CHECK(options_.attrs_per_relation >= 1);
  CJ_CHECK(options_.num_relation_pairs >= 1);
}

std::string WorkloadGenerator::AttrName(bool is_r, size_t index) const {
  return (is_r ? "a" : "b") + std::to_string(index);
}

std::string WorkloadGenerator::RelName(bool is_r, size_t pair) const {
  const std::string& base = is_r ? options_.relation_r : options_.relation_s;
  if (options_.num_relation_pairs == 1) return base;
  return base + std::to_string(pair);
}

Status WorkloadGenerator::RegisterSchemas(rel::Catalog* catalog) {
  for (size_t pair = 0; pair < options_.num_relation_pairs; ++pair) {
    for (int rel_index = 0; rel_index < 2; ++rel_index) {
      bool is_r = rel_index == 0;
      std::vector<rel::Attribute> attrs;
      for (size_t i = 0; i < options_.attrs_per_relation; ++i) {
        attrs.push_back({AttrName(is_r, i), rel::ValueType::kInt});
      }
      CJ_RETURN_IF_ERROR(catalog->Register(
          rel::RelationSchema(RelName(is_r, pair), std::move(attrs))));
    }
  }
  return Status::OK();
}

int64_t WorkloadGenerator::SampleValue() {
  return static_cast<int64_t>(zipf_.Sample(&rng_));
}

int64_t WorkloadGenerator::SampleValueFor(bool is_r) {
  return static_cast<int64_t>(is_r ? zipf_.Sample(&rng_)
                                   : s_zipf_.Sample(&rng_));
}

std::string WorkloadGenerator::NextQuerySql() {
  const size_t k = options_.attrs_per_relation;
  const size_t pair = rng_.NextBelow(options_.num_relation_pairs);
  const std::string rel_r = RelName(true, pair);
  const std::string rel_s = RelName(false, pair);
  size_t ra = rng_.NextBelow(k);
  size_t sa = rng_.NextBelow(k);
  std::ostringstream sql;
  // Select one attribute from each side (the projected answer); a
  // configurable fraction of queries project the join attributes
  // themselves.
  bool select_join = rng_.NextBernoulli(options_.select_join_fraction);
  size_t r_sel = select_join ? ra : rng_.NextBelow(k);
  size_t s_sel = select_join ? sa : rng_.NextBelow(k);
  sql << "SELECT " << rel_r << "." << AttrName(true, r_sel) << ", " << rel_s
      << "." << AttrName(false, s_sel) << " FROM " << rel_r << ", " << rel_s
      << " WHERE ";

  bool t2 = k >= 2 && rng_.NextBernoulli(options_.t2_fraction);
  if (t2) {
    // Multi-attribute expression sides (paper §4.5 shape), e.g.
    //   R.a0 + R.a1 = S.b2 + S.b3.
    size_t ra2 = (ra + 1) % k;
    size_t sa2 = (sa + 1) % k;
    sql << rel_r << "." << AttrName(true, ra) << " + " << rel_r << "."
        << AttrName(true, ra2) << " = " << rel_s << "." << AttrName(false, sa)
        << " + " << rel_s << "." << AttrName(false, sa2);
  } else if (rng_.NextBernoulli(options_.linear_fraction)) {
    // Linear invertible side with small integer coefficients (exact in
    // doubles, so forward evaluation and inversion agree).
    int64_t scale = rng_.NextInRange(1, 3);
    int64_t offset = rng_.NextInRange(-2, 2);
    sql << scale << "*" << rel_r << "." << AttrName(true, ra);
    if (offset > 0) sql << " + " << offset;
    if (offset < 0) sql << " - " << -offset;
    sql << " = " << rel_s << "." << AttrName(false, sa);
  } else {
    sql << rel_r << "." << AttrName(true, ra) << " = " << rel_s << "."
        << AttrName(false, sa);
  }

  if (rng_.NextBernoulli(options_.predicate_fraction)) {
    bool on_r = rng_.NextBernoulli(0.5);
    sql << " AND " << (on_r ? rel_r : rel_s) << "."
        << AttrName(on_r, rng_.NextBelow(k)) << " >= "
        << rng_.NextInRange(0, options_.domain / 2);
  }
  return sql.str();
}

std::pair<std::string, std::vector<rel::Value>>
WorkloadGenerator::NextTuple() {
  const size_t pair = rng_.NextBelow(options_.num_relation_pairs);
  double p_r = options_.bos_ratio / (options_.bos_ratio + 1.0);
  bool is_r = rng_.NextBernoulli(p_r);
  std::vector<rel::Value> values;
  values.reserve(options_.attrs_per_relation);
  for (size_t i = 0; i < options_.attrs_per_relation; ++i) {
    values.push_back(rel::Value::Int(SampleValueFor(is_r)));
  }
  return {RelName(is_r, pair), std::move(values)};
}

}  // namespace contjoin::workload
