#include "workload/driver.h"

#include "common/logging.h"

namespace contjoin::workload {

ExperimentDriver::ExperimentDriver(DriverConfig config)
    : gen_(config.workload),
      net_(std::make_unique<core::ContinuousQueryNetwork>(config.engine)),
      placement_rng_(config.workload.seed ^ 0x9E3779B97F4A7C15ull) {
  Status status = gen_.RegisterSchemas(net_->catalog());
  CJ_CHECK(status.ok()) << status.ToString();
}

size_t ExperimentDriver::InstallQueries(size_t n) {
  size_t installed = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t node = placement_rng_.NextBelow(net_->num_nodes());
    auto key = net_->SubmitQuery(node, gen_.NextQuerySql());
    CJ_CHECK(key.ok()) << key.status().ToString();
    query_keys_.push_back(std::move(key).value());
    ++installed;
  }
  return installed;
}

size_t ExperimentDriver::StreamTuples(size_t n) {
  size_t inserted = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t node = placement_rng_.NextBelow(net_->num_nodes());
    auto [relation, values] = gen_.NextTuple();
    Status status = net_->InsertTuple(node, relation, std::move(values));
    CJ_CHECK(status.ok()) << status.ToString();
    ++inserted;
  }
  return inserted;
}

sim::NetStats ExperimentDriver::TrafficSinceLastSnapshot() {
  sim::NetStats current = net_->stats();
  sim::NetStats delta = current.Since(last_snapshot_);
  last_snapshot_ = current;
  return delta;
}

size_t ExperimentDriver::DrainNotifications() {
  size_t total = 0;
  for (size_t i = 0; i < net_->num_nodes(); ++i) {
    total += net_->TakeNotifications(i).size();
  }
  return total;
}

}  // namespace contjoin::workload
