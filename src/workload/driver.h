// Experiment driver shared by the benchmarks and integration tests: builds
// the network, installs a generated query population, streams tuples and
// snapshots the metrics the paper's figures report.

#ifndef CONTJOIN_WORKLOAD_DRIVER_H_
#define CONTJOIN_WORKLOAD_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/workload.h"

namespace contjoin::workload {

struct DriverConfig {
  core::Options engine;
  WorkloadOptions workload;
};

class ExperimentDriver {
 public:
  explicit ExperimentDriver(DriverConfig config);

  /// Submits `n` generated queries from random alive nodes. Returns the
  /// number successfully installed (generation guarantees acceptance; the
  /// count is for sanity checks).
  size_t InstallQueries(size_t n);

  /// Inserts `n` generated tuples from random alive nodes.
  size_t StreamTuples(size_t n);

  core::ContinuousQueryNetwork& net() { return *net_; }
  WorkloadGenerator& gen() { return gen_; }
  const std::vector<std::string>& query_keys() const { return query_keys_; }

  /// Traffic accumulated since the previous snapshot (or construction).
  sim::NetStats TrafficSinceLastSnapshot();

  /// Drains every node's inbox; returns how many notifications were
  /// delivered in total.
  size_t DrainNotifications();

 private:
  WorkloadGenerator gen_;
  std::unique_ptr<core::ContinuousQueryNetwork> net_;
  Rng placement_rng_;
  std::vector<std::string> query_keys_;
  sim::NetStats last_snapshot_;
};

}  // namespace contjoin::workload

#endif  // CONTJOIN_WORKLOAD_DRIVER_H_
