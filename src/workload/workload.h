// Workload generation: synthetic schemas, continuous-query mixes and tuple
// streams with controllable skew and relation arrival ratio, reconstructing
// the simulated workloads of the paper's Chapter 5.

#ifndef CONTJOIN_WORKLOAD_WORKLOAD_H_
#define CONTJOIN_WORKLOAD_WORKLOAD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace contjoin::workload {

struct WorkloadOptions {
  /// The two relations of the two-way joins.
  std::string relation_r = "R";
  std::string relation_s = "S";
  size_t attrs_per_relation = 4;

  /// Number of independent relation pairs in the schema. With P > 1 the
  /// relations are named "<relation_r><i>"/"<relation_s><i>" for i in
  /// [0, P); every query joins one random pair and every tuple belongs to
  /// one random pair. Larger schemas dilute the per-rewriter query
  /// population, which is how realistic deployments behave.
  size_t num_relation_pairs = 1;

  /// Attribute values are integers in [0, domain).
  int64_t domain = 10000;

  /// Zipf skew of generated values; 0 = uniform. The paper's experiments
  /// assume "a highly skewed distribution for all attributes" (§4.3.6).
  double zipf_theta = 0.9;

  /// Optional asymmetry between the two relations (exercises SAI's
  /// index-attribute selection strategies): when >= 0, S-relation values
  /// use this skew / domain instead of the shared ones.
  double s_zipf_theta = -1.0;
  int64_t s_domain = -1;

  /// Arrival-rate ratio between the two relation streams: a generated tuple
  /// belongs to R with probability bos_ratio / (bos_ratio + 1). Our reading
  /// of the thesis' "bos ratio" experiment (see DESIGN.md §4).
  double bos_ratio = 1.0;

  /// Fraction of generated queries that are T2 (multi-attribute expression
  /// sides, DAI-V only).
  double t2_fraction = 0.0;

  /// Fraction of queries with a linear (a*X + b) rather than bare join side.
  double linear_fraction = 0.0;

  /// Fraction of queries carrying an extra selection predicate.
  double predicate_fraction = 0.0;

  /// Fraction of queries whose select list is exactly the two join
  /// attributes ("which values joined?"). Such rewritten queries repeat
  /// whenever a join value repeats, which is what DAI-T's
  /// never-reindex-twice optimization exploits (§4.4.3).
  double select_join_fraction = 0.0;

  uint64_t seed = 1;
};

/// Deterministic generator of schemas, query SQL and tuples.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  const WorkloadOptions& options() const { return options_; }

  /// Registers the two relation schemas R(a0..) and S(b0..), all integer
  /// attributes.
  Status RegisterSchemas(rel::Catalog* catalog);

  /// Generates the SQL of the next continuous query.
  std::string NextQuerySql();

  /// Generates the next tuple: relation name plus values.
  std::pair<std::string, std::vector<rel::Value>> NextTuple();

  /// Zipf/uniform sample from the value domain (R-side distribution).
  int64_t SampleValue();

  Rng* rng() { return &rng_; }

 private:
  std::string AttrName(bool is_r, size_t index) const;
  std::string RelName(bool is_r, size_t pair) const;
  int64_t SampleValueFor(bool is_r);

  WorkloadOptions options_;
  Rng rng_;
  ZipfSampler zipf_;
  ZipfSampler s_zipf_;
};

}  // namespace contjoin::workload

#endif  // CONTJOIN_WORKLOAD_WORKLOAD_H_
