// A Chord node: identifier, finger table, successor list, predecessor, the
// Chord maintenance protocol (join / leave / stabilize / fix-fingers) and the
// extended routing API of the paper (send, multisend recursive & iterative).

#ifndef CONTJOIN_CHORD_NODE_H_
#define CONTJOIN_CHORD_NODE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chord/local_store.h"
#include "chord/types.h"
#include "sim/net_stats.h"

namespace contjoin::chord {

class Network;

/// One overlay node. Created via Network::CreateNode(); owned by the Network.
///
/// In the simulator a node "address" (the paper's IP) is the Node pointer
/// plus an `ip` epoch number: direct (1-hop) communication succeeds only if
/// the node is alive and its epoch matches the epoch the sender captured,
/// modelling subscribers that reconnect from a different address (§4.6).
class Node {
 public:
  Node(Network* network, std::string key, uint64_t ip, uint64_t serial = 0);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // --- Identity -----------------------------------------------------------

  const std::string& key() const { return key_; }
  const NodeId& id() const { return id_; }
  uint64_t ip() const { return ip_; }
  /// Creation index within the Network; the event shard this node's
  /// deliveries execute under, and the per-sender fault stream id.
  uint64_t serial() const { return serial_; }
  bool alive() const { return alive_; }
  Network* network() const { return network_; }

  Application* app() const { return app_; }
  void set_app(Application* app) { app_ = app; }

  // --- Ring pointers ------------------------------------------------------

  /// First alive entry of the successor list (pruning dead ones), or nullptr
  /// if every known successor has failed.
  Node* successor();

  /// Same answer as successor() but without pruning: safe to call on a
  /// *remote* node from inside an event handler, where mutating another
  /// shard's successor list would race under parallel execution.
  Node* FirstAliveSuccessor() const;

  Node* predecessor() const { return predecessor_; }
  const std::vector<Node*>& successor_list() const { return successor_list_; }
  Node* finger(int i) const { return fingers_[static_cast<size_t>(i)]; }

  /// True iff this node is the successor of `target` as far as it can tell
  /// (target in (predecessor, self]); with an unknown/dead predecessor the
  /// node accepts responsibility (best-effort, as the paper assumes).
  bool IsResponsibleFor(const NodeId& target) const;

  // --- Protocol operations (paper §2.2) -------------------------------------

  /// Bootstraps a one-node ring.
  void CreateRing();

  /// Joins the ring known to `bootstrap`: finds the successor of this node's
  /// identifier and links in. Stabilization completes the join.
  void Join(Node* bootstrap);

  /// Voluntary departure: hands stored keys to the successor and splices
  /// neighbours' pointers.
  void LeaveGracefully();

  /// Crash: the node simply stops responding.
  void Fail();

  /// Rejoins after a departure, optionally from a new address (new ip
  /// epoch). Stored keys for this node's identifier are handed back by the
  /// new successor per the Chord transfer rule.
  void Reconnect(Node* bootstrap, bool new_ip);

  /// Periodic: verifies the immediate successor and tells it about us.
  void Stabilize();

  /// Periodic: refreshes one finger per call (round-robin), as in Chord.
  void FixNextFinger();

  /// Refreshes the whole finger table at once (tests and ideal rings).
  void FixAllFingers();

  /// Periodic: clears a failed predecessor pointer.
  void CheckPredecessor();

  /// Chord notify: `candidate` believes it might be our predecessor. Updates
  /// the pointer and transfers any stored keys that now belong to it.
  void NotifyFrom(Node* candidate);

  // --- Lookup ---------------------------------------------------------------

  /// Iterative find_successor starting at this node. Every remote probe
  /// counts one overlay hop of class `cls`. Returns nullptr only if the ring
  /// is unusable (no alive successor).
  Node* FindSuccessor(const NodeId& target, sim::MsgClass cls);

  /// Largest finger (or successor-list entry) strictly between this node and
  /// `target`; nullptr when none qualifies.
  Node* ClosestPrecedingFinger(const NodeId& target);

  // --- Extended API (paper §2.3) ---------------------------------------------

  /// send(msg, I): routes recursively to Successor(msg.target); each forward
  /// costs one hop; delivery happens via Application::HandleMessage.
  void Send(AppMessage msg);

  /// multisend(M, L), recursive design: one batch travels clockwise, each
  /// responsible node consumes its messages; every batch transmission costs
  /// one hop of class `cls`.
  void Multisend(std::vector<AppMessage> msgs, sim::MsgClass cls);

  /// The iterative baseline the paper compares against: every message is
  /// located with an iterative lookup from here, then delivered directly.
  void MultisendIterative(std::vector<AppMessage> msgs);

  /// Delivers a message directly to this node's application (no routing;
  /// used after the sender already knows the responsible node, e.g. JFRT).
  void DeliverLocal(const AppMessage& msg);

  /// Executes one received overlay hop: continue routing, deliver, take a
  /// multisend batch step, or expand a broadcast branch. Transports call
  /// this on the destination node after shipping the frame.
  void ApplyHop(HopFrame frame);

  /// Broadcasts `payload` to every alive node (including this one), using
  /// the classic finger-partitioned DHT broadcast: each node covers a
  /// disjoint ring interval through its fingers, so every node receives
  /// the payload exactly once at a cost of one message per node and
  /// O(log N) depth.
  void Broadcast(PayloadPtr payload, sim::MsgClass cls);

  // --- DHT interface (paper §2.1: put(ID, item) / get(ID)) --------------------

  /// put(ID, item): routes `item` to Successor(key) where it is stored.
  /// Costs O(log N) hops.
  void DhtPut(const NodeId& key, PayloadPtr item);

  /// get(ID): routes a fetch to Successor(key); `on_result` runs back at
  /// this node with copies of the stored items (empty if none). Costs
  /// O(log N) + 1 hops.
  void DhtGet(const NodeId& key,
              std::function<void(std::vector<PayloadPtr>)> on_result);

  // --- Storage ---------------------------------------------------------------

  LocalStore& store() { return store_; }

  /// Receives a batch of stored items (key transfer); forwards to the app.
  void AcceptStoredItems(
      std::vector<std::pair<NodeId, std::vector<PayloadPtr>>> batch);

  // --- Wiring used by Network ring builders ----------------------------------

  void SetSuccessorListDirect(std::vector<Node*> list) {
    successor_list_ = std::move(list);
  }
  void SetPredecessorDirect(Node* pred) { predecessor_ = pred; }
  void SetFingerDirect(int i, Node* node) {
    fingers_[static_cast<size_t>(i)] = node;
  }
  void SetAliveDirect(bool alive) { alive_ = alive; }
  void SetIpDirect(uint64_t ip) { ip_ = ip; }

  /// Monotone per-sender transmission counter: with the destination-shard
  /// execution model only this node's shard advances it, so the sequence a
  /// given sender draws is independent of thread interleaving. The network
  /// keys fault decisions on (sender serial, this counter).
  uint64_t NextFaultSeq() { return fault_seq_++; }

 private:
  friend class Network;

  /// Recursive routing step with a hop budget.
  void RouteMessage(AppMessage msg, int ttl);

  /// Recursive multisend step: consume what we own, forward the rest.
  void HandleBatch(std::vector<AppMessage> batch, sim::MsgClass cls, int ttl);

  /// Broadcast recursion: forward to fingers covering (self, limit).
  void BroadcastRange(const PayloadPtr& payload, sim::MsgClass cls,
                      const NodeId& limit);

  /// Next hop toward `target` (successor if target in (self, succ], else the
  /// closest preceding finger).
  Node* NextHopFor(const NodeId& target);

  /// Rebuilds the successor list from the current successor's list.
  void RefreshSuccessorList();

  Network* network_;
  std::string key_;
  NodeId id_;
  uint64_t ip_;
  uint64_t serial_;
  uint64_t fault_seq_ = 0;
  bool alive_ = false;

  Application* app_ = nullptr;
  Node* predecessor_ = nullptr;
  std::vector<Node*> successor_list_;
  std::array<Node*, Uint160::kBits> fingers_{};
  int next_finger_to_fix_ = 0;

  LocalStore store_;
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_NODE_H_
