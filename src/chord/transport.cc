#include "chord/transport.h"

#include <utility>

#include "chord/network.h"
#include "chord/node.h"

namespace contjoin::chord {

void SimTransport::SendHop(Node* from, const NodeId& to, HopFrame frame) {
  // Exact-identifier resolution (dead nodes included): Transmit counts the
  // hop and drops on a dead or unknown destination, exactly as the closure
  // path always did.
  Node* dest = network_->FindById(to);
  sim::MsgClass cls = frame.cls;
  network_->Transmit(from, dest, cls,
                     [dest, frame = std::move(frame)]() mutable {
                       dest->ApplyHop(std::move(frame));
                     });
}

}  // namespace contjoin::chord
