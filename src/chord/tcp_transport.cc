#include "chord/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <tuple>
#include <utility>

#include "chord/network.h"
#include "chord/node.h"
#include "common/logging.h"
#include "common/wire.h"

namespace contjoin::chord {

namespace {

// Backstop against corrupt length prefixes; no protocol message comes close.
constexpr uint32_t kMaxMessageBytes = 64u << 20;

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Parses "host:port" into a loopback/IPv4 sockaddr. False on bad input.
bool ParseEndpoint(const std::string& endpoint, sockaddr_in* addr) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = endpoint.substr(0, colon);
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(Network* network, TcpTransportOptions options)
    : network_(network), options_(std::move(options)) {
  peer_fds_.assign(options_.peers.size(), -1);
}

TcpTransport::~TcpTransport() { CloseAll(); }

bool TcpTransport::Listen() {
  std::lock_guard<std::mutex> lock(mu_);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(listen_fd_);
  return true;
}

void TcpTransport::SendHop(Node* from, const NodeId& to, HopFrame frame) {
  Node* dest = network_->FindById(to);
  if (dest == nullptr) {
    network_->CountDrop(frame.cls);
    return;
  }
  int owner = options_.owner_of
                  ? options_.owner_of(*dest)
                  : static_cast<int>(dest->serial() %
                                     std::max<size_t>(1, peer_fds_.size()));
  if (owner == options_.self || peer_fds_.empty()) {
    network_->sim_transport()->SendHop(from, to, std::move(frame));
    return;
  }

  std::vector<uint8_t> body =
      options_.encode_frame ? options_.encode_frame(frame)
                            : std::vector<uint8_t>();
  if (body.empty()) {
    // Simulator-only interaction reached the socket seam: it cannot
    // travel. Counted so a misconfigured deployment is visible.
    ++unencodable_frames_;
    network_->CountDrop(frame.cls);
    return;
  }
  // A shipped hop is still one overlay hop; the per-class counters stay
  // comparable with in-simulator runs (byte metering, when installed,
  // already ran in Network::TransmitHop).
  network_->CountHop(frame.cls);

  wire::Writer w;
  w.Id(to);
  std::vector<uint8_t> payload = w.Take();
  payload.insert(payload.end(), body.begin(), body.end());

  std::lock_guard<std::mutex> lock(mu_);
  int fd = PeerFd(owner);
  if (fd < 0) {
    network_->CountDrop(frame.cls);
    return;
  }
  QueueLocked(fd, kTagHop, payload.data(), payload.size());
  ++frames_sent_;
}

void TcpTransport::SendOn(int fd, uint8_t tag,
                          const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (conns_.count(fd) == 0) return;
  QueueLocked(fd, tag, payload.data(), payload.size());
}

int TcpTransport::PeerFd(int peer) {
  if (peer < 0 || static_cast<size_t>(peer) >= peer_fds_.size()) return -1;
  if (peer_fds_[peer] >= 0) return peer_fds_[peer];

  sockaddr_in addr;
  if (!ParseEndpoint(options_.peers[peer], &addr)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  // Blocking connect: peers listen before any traffic flows (the client
  // only issues work once every daemon answered), so this succeeds
  // immediately on loopback.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  conns_[fd];  // Register for Poll (peers may answer on the same socket).
  peer_fds_[peer] = fd;
  return fd;
}

void TcpTransport::QueueLocked(int fd, uint8_t tag, const uint8_t* payload,
                               size_t size) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  std::vector<uint8_t>& out = it->second.out;
  uint32_t len = static_cast<uint32_t>(size) + 1;  // tag + payload.
  out.push_back(static_cast<uint8_t>(len));
  out.push_back(static_cast<uint8_t>(len >> 8));
  out.push_back(static_cast<uint8_t>(len >> 16));
  out.push_back(static_cast<uint8_t>(len >> 24));
  out.push_back(tag);
  out.insert(out.end(), payload, payload + size);
  FlushLocked(fd, it->second);
}

void TcpTransport::FlushLocked(int fd, Conn& conn) {
  while (!conn.out.empty()) {
    ssize_t n = ::send(fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseLocked(fd);
    return;
  }
}

void TcpTransport::CloseLocked(int fd) {
  ::close(fd);
  conns_.erase(fd);
  for (int& peer_fd : peer_fds_) {
    if (peer_fd == fd) peer_fd = -1;
  }
}

void TcpTransport::Poll(int timeout_ms) {
  std::vector<pollfd> fds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
  }
  if (::poll(fds.data(), fds.size(), timeout_ms) < 0) return;

  // fd, tag, payload of every message completed this round.
  std::vector<std::tuple<int, uint8_t, std::vector<uint8_t>>> inbox;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const pollfd& p : fds) {
      if (p.fd == listen_fd_) {
        if ((p.revents & POLLIN) == 0) continue;
        while (true) {
          int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          SetNonBlocking(fd);
          SetNoDelay(fd);
          conns_[fd];
        }
        continue;
      }
      auto it = conns_.find(p.fd);
      if (it == conns_.end()) continue;
      if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
        while (true) {
          uint8_t buf[65536];
          ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            it->second.in.insert(it->second.in.end(), buf, buf + n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          CloseLocked(p.fd);  // Peer departed (or hard error).
          it = conns_.end();
          break;
        }
        if (it == conns_.end()) continue;
      }
      if (p.revents & POLLOUT) FlushLocked(p.fd, it->second);
    }

    for (auto& [fd, conn] : conns_) {
      while (conn.in.size() >= 4) {
        uint32_t len = static_cast<uint32_t>(conn.in[0]) |
                       static_cast<uint32_t>(conn.in[1]) << 8 |
                       static_cast<uint32_t>(conn.in[2]) << 16 |
                       static_cast<uint32_t>(conn.in[3]) << 24;
        if (len < 1 || len > kMaxMessageBytes) {
          conn.in.clear();  // Corrupt stream; drop the buffered bytes.
          break;
        }
        if (conn.in.size() < 4 + static_cast<size_t>(len)) break;
        uint8_t tag = conn.in[4];
        std::vector<uint8_t> payload(conn.in.begin() + 5,
                                     conn.in.begin() + 4 + len);
        conn.in.erase(conn.in.begin(), conn.in.begin() + 4 + len);
        if (tag == kTagHop) ++frames_received_;
        inbox.emplace_back(fd, tag, std::move(payload));
      }
    }
  }

  // Dispatch outside the lock: handlers send replies, ship follow-up hops
  // (possibly dialing new peers), and run simulator events.
  for (auto& [fd, tag, payload] : inbox) {
    if (handler_) handler_(fd, tag, std::move(payload));
  }
}

bool TcpTransport::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [fd, conn] : conns_) {
    if (!conn.out.empty() || !conn.in.empty()) return false;
  }
  return true;
}

void TcpTransport::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  peer_fds_.assign(peer_fds_.size(), -1);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace contjoin::chord
