// Shared Chord-layer types: identifiers, application payloads and the
// interface through which the continuous-query layer receives messages.

#ifndef CONTJOIN_CHORD_TYPES_H_
#define CONTJOIN_CHORD_TYPES_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/uint160.h"
#include "sim/net_stats.h"

namespace contjoin::chord {

/// Position on the 2^160 identifier circle.
using NodeId = Uint160;

class Node;

/// Base class for application message bodies. The continuous-query layer
/// derives concrete payloads; the Chord layer routes them opaquely.
/// Payloads are shared (const) so a multisend batch can reference one body
/// from many messages without copying.
struct Payload {
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// How a delivered message is consumed: by the attached Application, or by
/// the node itself (the put/get DHT interface of paper §2.1).
enum class MsgKind : unsigned char { kApp = 0, kDhtStore, kDhtFetch };

/// A routable application message: deliver `payload` to Successor(target).
struct AppMessage {
  NodeId target;
  sim::MsgClass cls = sim::MsgClass::kControl;
  PayloadPtr payload;
  MsgKind kind = MsgKind::kApp;
  /// Reliable-delivery envelope (chord routes it opaquely; the application
  /// layer acks/dedups on it). 0 = best-effort, no ack expected.
  uint64_t reliable_id = 0;
  /// Identifier of the node the delivery ack goes to, resolved through the
  /// network's node table at ack time (a raw pointer here would dangle if
  /// the origin crashed between send and delivery). Only meaningful when
  /// reliable_id != 0; zero otherwise.
  NodeId reliable_origin{};
};

/// One overlay hop in flight, in typed (wire-encodable) form. Every hop the
/// routing layer ships — a recursive routing step, a multisend batch leg, a
/// broadcast branch, or a direct delivery to a known node — is one of these
/// four kinds; the receiver executes it via Node::ApplyHop. Keeping the hop
/// a value type (instead of a captured closure) is what lets a transport
/// serialize it and move it across a process boundary.
struct HopFrame {
  enum class Kind : unsigned char {
    kRoute = 0,  // Continue routing msgs[0] with `ttl` hops left.
    kDeliver,    // Deliver msgs[0] locally (destination already resolved).
    kBatch,      // Recursive multisend step over `msgs` with `ttl` left.
    kBroadcast,  // Deliver broadcast_payload, then cover (self, limit).
  };
  Kind kind = Kind::kDeliver;
  sim::MsgClass cls = sim::MsgClass::kControl;
  int ttl = 0;
  std::vector<AppMessage> msgs;
  PayloadPtr broadcast_payload;
  NodeId broadcast_limit;
};

/// Internal payload of a DhtPut in flight.
struct DhtStorePayload : Payload {
  NodeId key;
  PayloadPtr item;
};

/// Internal payload of a DhtGet in flight.
struct DhtFetchPayload : Payload {
  NodeId key;
  Node* origin = nullptr;
  std::function<void(std::vector<PayloadPtr>)> on_result;
};


/// Upper-layer hook attached to each node. The continuous-query engine
/// implements this to play the rewriter/evaluator/subscriber roles.
class Application {
 public:
  virtual ~Application() = default;

  /// Called when `node` is the successor of `msg.target` and must process the
  /// message.
  virtual void HandleMessage(Node& node, const AppMessage& msg) = 0;

  /// Called when DHT-stored items keyed by `key` are handed to `node` (on
  /// join/reconnect key transfer). Used for off-line notification delivery.
  virtual void HandleStoredItems(Node& node, const NodeId& key,
                                 std::vector<PayloadPtr> items) {
    (void)node;
    (void)key;
    (void)items;
  }
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_TYPES_H_
