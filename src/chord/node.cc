#include "chord/node.h"

#include <algorithm>

#include "chord/network.h"
#include "common/logging.h"

namespace contjoin::chord {

Node::Node(Network* network, std::string key, uint64_t ip, uint64_t serial)
    : network_(network),
      key_(std::move(key)),
      id_(HashKey(key_)),
      ip_(ip),
      serial_(serial) {}

Node* Node::successor() {
  // Prune dead entries from the front; the list self-heals via stabilize.
  while (!successor_list_.empty() && !successor_list_.front()->alive()) {
    successor_list_.erase(successor_list_.begin());
  }
  return successor_list_.empty() ? nullptr : successor_list_.front();
}

Node* Node::FirstAliveSuccessor() const {
  for (Node* s : successor_list_) {
    if (s->alive()) return s;
  }
  return nullptr;
}

bool Node::IsResponsibleFor(const NodeId& target) const {
  if (predecessor_ != nullptr && predecessor_->alive()) {
    return target.InOpenClosed(predecessor_->id(), id_);
  }
  // Unknown predecessor: accept (best-effort). Routing only hands us
  // messages it believes we own.
  return true;
}

void Node::CreateRing() {
  CJ_CHECK(!alive_) << "node already in a ring";
  alive_ = true;
  predecessor_ = this;
  successor_list_.assign(1, this);
  network_->OnNodeBirth();
}

void Node::Join(Node* bootstrap) {
  CJ_CHECK(!alive_) << "node already in a ring";
  CJ_CHECK(bootstrap != nullptr && bootstrap->alive())
      << "join requires an alive bootstrap node";
  alive_ = true;
  network_->OnNodeBirth();
  predecessor_ = nullptr;
  Node* succ = bootstrap->FindSuccessor(id_, sim::MsgClass::kMaintenance);
  CJ_CHECK(succ != nullptr) << "bootstrap could not resolve a successor";
  successor_list_.assign(1, succ);
  // One immediate stabilize completes the link and triggers key transfer.
  Stabilize();
}

void Node::LeaveGracefully() {
  if (!alive_) return;
  Node* succ = this;
  // Find the first alive successor other than ourselves.
  for (Node* s : successor_list_) {
    if (s != this && s->alive()) {
      succ = s;
      break;
    }
  }
  if (succ != this) {
    if (!store_.empty()) {
      network_->CountHop(sim::MsgClass::kMaintenance);
      succ->AcceptStoredItems(store_.ExtractAll());
    }
    if (predecessor_ != nullptr && predecessor_->alive() &&
        predecessor_ != this) {
      // Splice: predecessor adopts our successor.
      network_->CountHop(sim::MsgClass::kMaintenance);
      auto& plist = predecessor_->successor_list_;
      plist.erase(std::remove(plist.begin(), plist.end(), this), plist.end());
      plist.insert(plist.begin(), succ);
    }
    if (succ->predecessor_ == this) {
      network_->CountHop(sim::MsgClass::kMaintenance);
      succ->predecessor_ = (predecessor_ != nullptr && predecessor_->alive() &&
                            predecessor_ != this)
                               ? predecessor_
                               : nullptr;
    }
  }
  alive_ = false;
  predecessor_ = nullptr;
  successor_list_.clear();
  network_->OnNodeDeath();
}

void Node::Fail() {
  if (!alive_) return;
  alive_ = false;
  network_->OnNodeDeath();
}

void Node::Reconnect(Node* bootstrap, bool new_ip) {
  CJ_CHECK(!alive_) << "Reconnect on an alive node";
  if (new_ip) ip_ = network_->AssignIp();
  fingers_.fill(nullptr);
  Join(bootstrap);
}

void Node::Stabilize() {
  if (!alive_) return;
  Node* s = successor();
  if (s == nullptr) {
    // All known successors failed; fall back on the predecessor to keep the
    // ring connected (it will be corrected by future rounds).
    if (predecessor_ != nullptr && predecessor_->alive() &&
        predecessor_ != this) {
      successor_list_.assign(1, predecessor_);
      s = predecessor_;
    } else {
      successor_list_.assign(1, this);
      s = this;
    }
  }
  if (s != this) network_->CountHop(sim::MsgClass::kMaintenance);
  Node* x = s->predecessor_;
  if (x != nullptr && x != this && x->alive() &&
      x->id().InOpenOpen(id_, s->id())) {
    successor_list_.insert(successor_list_.begin(), x);
    s = x;
  }
  if (s != this) {
    network_->CountHop(sim::MsgClass::kMaintenance);
    s->NotifyFrom(this);
  }
  RefreshSuccessorList();
}

void Node::RefreshSuccessorList() {
  Node* s = successor();
  if (s == nullptr || s == this) return;
  std::vector<Node*> list;
  list.push_back(s);
  for (Node* entry : s->successor_list_) {
    if (static_cast<int>(list.size()) >=
        network_->options().successor_list_size) {
      break;
    }
    if (entry == this) break;  // Wrapped all the way around.
    if (!entry->alive()) continue;
    if (std::find(list.begin(), list.end(), entry) != list.end()) continue;
    list.push_back(entry);
  }
  successor_list_ = std::move(list);
}

void Node::CheckPredecessor() {
  if (predecessor_ != nullptr && !predecessor_->alive()) {
    predecessor_ = nullptr;
  }
}

void Node::NotifyFrom(Node* candidate) {
  if (!alive_ || candidate == this) return;
  bool adopt = predecessor_ == nullptr || !predecessor_->alive() ||
               candidate->id().InOpenOpen(predecessor_->id(), id_);
  if (!adopt) return;
  predecessor_ = candidate;
  // Chord key-transfer rule: everything outside our new range (candidate,
  // self] belongs closer to the new predecessor.
  auto moved = store_.ExtractRange(id_, candidate->id());
  if (!moved.empty()) {
    network_->CountHop(sim::MsgClass::kMaintenance);
    candidate->AcceptStoredItems(std::move(moved));
  }
}

void Node::FixNextFinger() {
  if (!alive_) return;
  int i = next_finger_to_fix_;
  next_finger_to_fix_ = (next_finger_to_fix_ + 1) % Uint160::kBits;
  NodeId target = id_ + Uint160::PowerOfTwo(i);
  fingers_[static_cast<size_t>(i)] =
      FindSuccessor(target, sim::MsgClass::kMaintenance);
}

void Node::FixAllFingers() {
  if (!alive_) return;
  for (int i = 0; i < Uint160::kBits; ++i) {
    NodeId target = id_ + Uint160::PowerOfTwo(i);
    fingers_[static_cast<size_t>(i)] =
        FindSuccessor(target, sim::MsgClass::kMaintenance);
  }
}

Node* Node::FindSuccessor(const NodeId& target, sim::MsgClass cls) {
  Node* cur = this;
  for (int steps = 0; steps <= network_->options().max_route_hops; ++steps) {
    // Probing a remote node must not mutate it (other shards may be
    // executing it concurrently); pruning our own list is safe.
    Node* succ = cur == this ? cur->successor() : cur->FirstAliveSuccessor();
    if (succ == nullptr) return nullptr;
    if (target.InOpenClosed(cur->id(), succ->id())) return succ;
    Node* next = cur->ClosestPrecedingFinger(target);
    if (next == nullptr || next == cur) next = succ;
    network_->CountHop(cls);  // Probe RPC to the next node.
    cur = next;
  }
  network_->CountDrop(cls);
  return nullptr;
}

Node* Node::ClosestPrecedingFinger(const NodeId& target) {
  for (int i = Uint160::kBits - 1; i >= 0; --i) {
    Node* f = fingers_[static_cast<size_t>(i)];
    if (f != nullptr && f->alive() && f != this &&
        f->id().InOpenOpen(id_, target)) {
      return f;
    }
  }
  // Fall back on the farthest qualifying successor-list entry.
  Node* best = nullptr;
  Uint160 best_dist;
  for (Node* s : successor_list_) {
    if (s == nullptr || !s->alive() || s == this) continue;
    if (!s->id().InOpenOpen(id_, target)) continue;
    Uint160 dist = s->id() - id_;
    if (best == nullptr || dist > best_dist) {
      best = s;
      best_dist = dist;
    }
  }
  return best;
}

Node* Node::NextHopFor(const NodeId& target) {
  Node* succ = successor();
  if (succ == nullptr) return nullptr;
  if (target.InOpenClosed(id_, succ->id())) return succ;
  Node* f = ClosestPrecedingFinger(target);
  return f != nullptr ? f : succ;
}

void Node::Send(AppMessage msg) {
  RouteMessage(std::move(msg), network_->options().max_route_hops);
}

void Node::RouteMessage(AppMessage msg, int ttl) {
  if (!alive_) {
    network_->CountDrop(msg.cls);
    return;
  }
  if (IsResponsibleFor(msg.target)) {
    DeliverLocal(msg);
    return;
  }
  if (ttl <= 0) {
    network_->CountDrop(msg.cls);
    return;
  }
  Node* next = NextHopFor(msg.target);
  if (next == nullptr || next == this) {
    network_->CountDrop(msg.cls);
    return;
  }
  HopFrame frame;
  frame.kind = HopFrame::Kind::kRoute;
  frame.cls = msg.cls;
  frame.ttl = ttl - 1;
  frame.msgs.push_back(std::move(msg));
  network_->TransmitHop(this, next->id(), std::move(frame));
}

void Node::Multisend(std::vector<AppMessage> msgs, sim::MsgClass cls) {
  if (msgs.empty()) return;
  HandleBatch(std::move(msgs), cls, network_->options().max_route_hops);
}

void Node::HandleBatch(std::vector<AppMessage> batch, sim::MsgClass cls,
                       int ttl) {
  if (!alive_) {
    network_->CountDrop(cls);
    return;
  }
  // Consume every message we are responsible for; keep the rest.
  std::vector<AppMessage> remaining;
  remaining.reserve(batch.size());
  for (AppMessage& msg : batch) {
    if (IsResponsibleFor(msg.target)) {
      DeliverLocal(msg);
    } else {
      remaining.push_back(std::move(msg));
    }
  }
  if (remaining.empty()) return;
  if (ttl <= 0) {
    network_->CountDrop(cls);
    return;
  }
  // Head = the remaining target nearest clockwise from here (the batch was
  // implicitly sorted by consumption; recomputing keeps this robust).
  size_t head = 0;
  Uint160 head_dist = remaining[0].target - id_;
  for (size_t i = 1; i < remaining.size(); ++i) {
    Uint160 dist = remaining[i].target - id_;
    if (dist < head_dist) {
      head_dist = dist;
      head = i;
    }
  }
  Node* next = NextHopFor(remaining[head].target);
  if (next == nullptr || next == this) {
    network_->CountDrop(cls);
    return;
  }
  HopFrame frame;
  frame.kind = HopFrame::Kind::kBatch;
  frame.cls = cls;
  frame.ttl = ttl - 1;
  frame.msgs = std::move(remaining);
  network_->TransmitHop(this, next->id(), std::move(frame));
}

void Node::MultisendIterative(std::vector<AppMessage> msgs) {
  for (AppMessage& msg : msgs) {
    Node* dest = FindSuccessor(msg.target, msg.cls);
    if (dest == nullptr) {
      network_->CountDrop(msg.cls);
      continue;
    }
    HopFrame frame;
    frame.kind = HopFrame::Kind::kDeliver;
    frame.cls = msg.cls;
    frame.msgs.push_back(std::move(msg));
    network_->TransmitHop(this, dest->id(), std::move(frame));
  }
}

void Node::ApplyHop(HopFrame frame) {
  switch (frame.kind) {
    case HopFrame::Kind::kRoute:
      RouteMessage(std::move(frame.msgs[0]), frame.ttl);
      return;
    case HopFrame::Kind::kDeliver:
      DeliverLocal(frame.msgs[0]);
      return;
    case HopFrame::Kind::kBatch:
      HandleBatch(std::move(frame.msgs), frame.cls, frame.ttl);
      return;
    case HopFrame::Kind::kBroadcast: {
      AppMessage local;
      local.target = id_;
      local.cls = frame.cls;
      local.payload = frame.broadcast_payload;
      DeliverLocal(local);
      BroadcastRange(frame.broadcast_payload, frame.cls,
                     frame.broadcast_limit);
      return;
    }
  }
}

void Node::DeliverLocal(const AppMessage& msg) {
  if (!alive_) {
    network_->CountDrop(msg.cls);
    return;
  }
  switch (msg.kind) {
    case MsgKind::kApp:
      if (app_ != nullptr) app_->HandleMessage(*this, msg);
      return;
    case MsgKind::kDhtStore: {
      const auto* p = static_cast<const DhtStorePayload*>(msg.payload.get());
      store_.Put(p->key, p->item);
      return;
    }
    case MsgKind::kDhtFetch: {
      const auto* p = static_cast<const DhtFetchPayload*>(msg.payload.get());
      // Copy the items (get() returns them; they stay stored).
      std::vector<PayloadPtr> items = store_.Take(p->key);
      for (const PayloadPtr& item : items) store_.Put(p->key, item);
      Node* origin = p->origin;
      auto on_result = p->on_result;
      if (origin == this) {
        on_result(std::move(items));
        return;
      }
      network_->Transmit(this, origin, sim::MsgClass::kLookup,
                         [on_result = std::move(on_result),
                          items = std::move(items)]() mutable {
                           on_result(std::move(items));
                         });
      return;
    }
  }
}

void Node::Broadcast(PayloadPtr payload, sim::MsgClass cls) {
  if (!alive_) return;
  // Deliver locally first, then cover the rest of the ring (self, self) ==
  // the full circle minus this node.
  AppMessage local;
  local.target = id_;
  local.cls = cls;
  local.payload = payload;
  DeliverLocal(local);
  BroadcastRange(payload, cls, id_);
}

void Node::BroadcastRange(const PayloadPtr& payload, sim::MsgClass cls,
                          const NodeId& limit) {
  // Collect the distinct alive fingers in clockwise order from this node;
  // the successor guarantees coverage when finger entries are sparse.
  std::vector<Node*> hops;
  Node* succ = successor();
  if (succ != nullptr && succ != this) hops.push_back(succ);
  for (int i = 0; i < Uint160::kBits; ++i) {
    Node* f = fingers_[static_cast<size_t>(i)];
    if (f == nullptr || !f->alive() || f == this) continue;
    if (std::find(hops.begin(), hops.end(), f) == hops.end()) {
      hops.push_back(f);
    }
  }
  std::sort(hops.begin(), hops.end(), [this](Node* a, Node* b) {
    return (a->id() - id_) < (b->id() - id_);
  });
  for (size_t i = 0; i < hops.size(); ++i) {
    Node* next = hops[i];
    if (!next->id().InOpenOpen(id_, limit)) break;  // Outside our interval.
    // This branch covers up to the following finger (or our own limit).
    NodeId sub_limit = limit;
    if (i + 1 < hops.size() && hops[i + 1]->id().InOpenOpen(id_, limit)) {
      sub_limit = hops[i + 1]->id();
    }
    HopFrame frame;
    frame.kind = HopFrame::Kind::kBroadcast;
    frame.cls = cls;
    frame.broadcast_payload = payload;
    frame.broadcast_limit = sub_limit;
    network_->TransmitHop(this, next->id(), std::move(frame));
  }
}

void Node::DhtPut(const NodeId& key, PayloadPtr item) {
  auto payload = std::make_shared<DhtStorePayload>();
  payload->key = key;
  payload->item = std::move(item);
  AppMessage msg;
  msg.target = key;
  msg.cls = sim::MsgClass::kLookup;
  msg.payload = std::move(payload);
  msg.kind = MsgKind::kDhtStore;
  Send(std::move(msg));
}

void Node::DhtGet(const NodeId& key,
                  std::function<void(std::vector<PayloadPtr>)> on_result) {
  auto payload = std::make_shared<DhtFetchPayload>();
  payload->key = key;
  payload->origin = this;
  payload->on_result = std::move(on_result);
  AppMessage msg;
  msg.target = key;
  msg.cls = sim::MsgClass::kLookup;
  msg.payload = std::move(payload);
  msg.kind = MsgKind::kDhtFetch;
  Send(std::move(msg));
}

void Node::AcceptStoredItems(
    std::vector<std::pair<NodeId, std::vector<PayloadPtr>>> batch) {
  for (auto& [key, items] : batch) {
    if (app_ != nullptr) {
      app_->HandleStoredItems(*this, key, std::move(items));
    } else {
      for (PayloadPtr& item : items) store_.Put(key, std::move(item));
    }
  }
}

}  // namespace contjoin::chord
