#include "chord/network.h"

#include <algorithm>

#include "chord/transport.h"
#include "common/logging.h"
#include "faults/fault_plan.h"

namespace contjoin::chord {

Network::Network(sim::Simulator* simulator, NetworkOptions options)
    : simulator_(simulator),
      options_(options),
      sim_transport_(std::make_unique<SimTransport>(this)),
      transport_(sim_transport_.get()) {
  CJ_CHECK(simulator_ != nullptr);
  CJ_CHECK(options_.successor_list_size >= 1);
  if (options_.coalesce) {
    simulator_->set_post_action_hook([this] { CloseCoalescingBuffers(); });
  }
}

Network::~Network() {
  if (options_.coalesce) simulator_->set_post_action_hook(nullptr);
}

void Network::set_transport(Transport* transport) {
  transport_ = transport != nullptr ? transport : sim_transport_.get();
}

Transport* Network::sim_transport() const { return sim_transport_.get(); }

void Network::TransmitHop(Node* from, const NodeId& to, HopFrame frame) {
  if (frame_sizer_) stats_.AddBytes(frame.cls, frame_sizer_(frame));
  transport_->SendHop(from, to, std::move(frame));
}

Node* Network::CreateNode(const std::string& key) {
  auto node = std::make_unique<Node>(this, key, AssignIp(), nodes_.size());
  Node* raw = node.get();
  auto [it, inserted] = by_id_.emplace(raw->id(), raw);
  CJ_CHECK(inserted) << "identifier collision for key '" << key << "'";
  nodes_.push_back(std::move(node));
  return raw;
}

Node* Network::CreateAndJoin(const std::string& key, Node* bootstrap) {
  Node* node = CreateNode(key);
  if (bootstrap == nullptr) {
    node->CreateRing();
  } else {
    node->Join(bootstrap);
  }
  return node;
}

std::vector<Node*> Network::BuildIdealRing(size_t n) {
  CJ_CHECK(n >= 1);
  std::vector<Node*> created;
  created.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Node* node = CreateNode("node-" + std::to_string(next_key_serial_++));
    node->SetAliveDirect(true);
    OnNodeBirth();
    created.push_back(node);
  }
  RewireIdeal();
  return created;
}

void Network::RewireIdeal() {
  std::vector<Node*> sorted = AliveNodes();
  std::sort(sorted.begin(), sorted.end(),
            [](const Node* a, const Node* b) { return a->id() < b->id(); });
  WireIdeal(sorted);
}

void Network::WireIdeal(const std::vector<Node*>& sorted) {
  if (sorted.empty()) return;
  const size_t n = sorted.size();
  auto successor_of = [&](const NodeId& target) -> Node* {
    // First node with id >= target, wrapping.
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), target,
        [](const Node* node, const NodeId& id) { return node->id() < id; });
    return it == sorted.end() ? sorted.front() : *it;
  };
  const size_t r = static_cast<size_t>(options_.successor_list_size);
  for (size_t i = 0; i < n; ++i) {
    Node* node = sorted[i];
    std::vector<Node*> list;
    for (size_t k = 1; k <= std::min(r, n - 1); ++k) {
      list.push_back(sorted[(i + k) % n]);
    }
    if (list.empty()) list.push_back(node);  // Singleton ring.
    node->SetSuccessorListDirect(std::move(list));
    node->SetPredecessorDirect(sorted[(i + n - 1) % n]);
    for (int j = 0; j < Uint160::kBits; ++j) {
      node->SetFingerDirect(j,
                            successor_of(node->id() + Uint160::PowerOfTwo(j)));
    }
  }
}

Node* Network::OracleSuccessor(const NodeId& id) const {
  if (alive_count_ == 0) return nullptr;
  auto it = by_id_.lower_bound(id);
  // Scan clockwise (wrapping once) for the first alive node.
  for (size_t scanned = 0; scanned < by_id_.size(); ++scanned) {
    if (it == by_id_.end()) it = by_id_.begin();
    if (it->second->alive()) return it->second;
    ++it;
  }
  return nullptr;
}

std::vector<Node*> Network::AliveNodes() const {
  std::vector<Node*> out;
  out.reserve(alive_count_);
  for (const auto& node : nodes_) {
    if (node->alive()) out.push_back(node.get());
  }
  return out;
}

bool Network::RingIsConsistent() const {
  static const Uint160 kOne = Uint160::FromUint64(1);
  for (const auto& node : nodes_) {
    if (!node->alive()) continue;
    Node* expected = OracleSuccessor(node->id() + kOne);
    Node* actual = node->successor();
    if (actual != expected) return false;
  }
  return true;
}

bool Network::RingIsFullyConsistent() const {
  if (!RingIsConsistent()) return false;
  std::vector<Node*> sorted = AliveNodes();
  std::sort(sorted.begin(), sorted.end(),
            [](const Node* a, const Node* b) { return a->id() < b->id(); });
  const size_t n = sorted.size();
  for (size_t i = 0; i < n; ++i) {
    Node* node = sorted[i];
    Node* expected_pred = sorted[(i + n - 1) % n];
    if (n > 1 && node->predecessor() != expected_pred) return false;
    for (int j = 0; j < Uint160::kBits; ++j) {
      Node* expected = OracleSuccessor(node->id() + Uint160::PowerOfTwo(j));
      if (node->finger(j) != expected) return false;
    }
  }
  return true;
}

void Network::RunMaintenanceRound(int fingers_per_round) {
  std::vector<Node*> alive = AliveNodes();
  for (Node* node : alive) {
    if (!node->alive()) continue;  // May have died mid-round.
    node->CheckPredecessor();
    node->Stabilize();
    for (int k = 0; k < fingers_per_round; ++k) node->FixNextFinger();
  }
}

int Network::StabilizeUntilConsistent(int max_rounds) {
  for (int round = 1; round <= max_rounds; ++round) {
    RunMaintenanceRound(/*fingers_per_round=*/8);
    if (RingIsFullyConsistent()) return round;
  }
  return max_rounds;
}

namespace {

// One per-destination aggregation buffer, open between a handler's first
// transmission to (net, to, cls, latency) and the end of that handler.
// Thread-local because concurrently executing shards each aggregate their
// own outbound traffic; the flush event was scheduled at open time and
// runs in a later micro-epoch, after every append.
struct OpenBuffer {
  Network* net;
  Node* to;
  sim::MsgClass cls;
  sim::SimTime latency;
  std::shared_ptr<std::vector<std::function<void()>>> actions;
};
thread_local std::vector<OpenBuffer> open_buffers;

}  // namespace

void Network::AppendCoalesced(Node* to, sim::MsgClass cls,
                              sim::SimTime latency,
                              std::function<void()> action) {
  for (OpenBuffer& buf : open_buffers) {
    if (buf.net == this && buf.to == to && buf.cls == cls &&
        buf.latency == latency) {
      buf.actions->push_back(std::move(action));
      coalesced_messages_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  auto actions =
      std::make_shared<std::vector<std::function<void()>>>();
  actions->push_back(std::move(action));
  open_buffers.push_back(OpenBuffer{this, to, cls, latency, actions});
  simulator_->ScheduleSharded(latency, to->serial(), [this, to, cls,
                                                      actions]() {
    if (!to->alive()) {
      // Each logical message in the batch is lost and accounted.
      for (size_t i = 0; i < actions->size(); ++i) stats_.AddDrop(cls);
      return;
    }
    for (const std::function<void()>& batched : *actions) batched();
  });
}

void Network::CloseCoalescingBuffers() {
  open_buffers.erase(
      std::remove_if(open_buffers.begin(), open_buffers.end(),
                     [this](const OpenBuffer& b) { return b.net == this; }),
      open_buffers.end());
}

void Network::Transmit(Node* from, Node* to, sim::MsgClass cls,
                       std::function<void()> action) {
  stats_.AddHop(cls);
  if (to == nullptr || !to->alive()) {
    stats_.AddDrop(cls);
    return;
  }
  sim::SimTime latency = options_.hop_latency;
  if (fault_plan_ != nullptr) {
    // Keyed per sender: the destination-shard execution model guarantees
    // only `from`'s shard advances its counter, so the decision stream a
    // sender sees is identical at any worker count.
    faults::FaultDecision fate =
        from != nullptr ? fault_plan_->Decide(cls, from->serial() + 1,
                                              from->NextFaultSeq())
                        : fault_plan_->Decide(cls);
    if (fate.drop) {
      stats_.AddDrop(cls);
      return;
    }
    latency += fate.extra_delay;
    for (int i = 0; i < fate.duplicates; ++i) {
      // The duplicate is real traffic: one more hop, delivered at the same
      // time as the original (delivery still re-checks liveness).
      stats_.AddHop(cls);
      simulator_->ScheduleSharded(latency, to->serial(),
                                  [this, to, cls, action]() {
                                    if (!to->alive()) {
                                      stats_.AddDrop(cls);
                                      return;
                                    }
                                    action();
                                  });
    }
    if (fate.extra_delay > 0) {
      // Delayed messages ride alone so the perturbed latency stays visible
      // per message.
      simulator_->ScheduleSharded(latency, to->serial(),
                                  [this, to, cls,
                                   action = std::move(action)]() {
                                    if (!to->alive()) {
                                      stats_.AddDrop(cls);
                                      return;
                                    }
                                    action();
                                  });
      return;
    }
  }
  if (options_.coalesce && simulator_->InExecution()) {
    AppendCoalesced(to, cls, latency, std::move(action));
    return;
  }
  simulator_->ScheduleSharded(latency, to->serial(),
                              [this, to, cls,
                               action = std::move(action)]() {
                                if (!to->alive()) {
                                  stats_.AddDrop(cls);
                                  return;
                                }
                                action();
                              });
}

}  // namespace contjoin::chord
