#include "chord/local_store.h"

namespace contjoin::chord {

std::vector<PayloadPtr> LocalStore::Take(const NodeId& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return {};
  std::vector<PayloadPtr> out = std::move(it->second);
  size_ -= out.size();
  items_.erase(it);
  return out;
}

std::vector<std::pair<NodeId, std::vector<PayloadPtr>>>
LocalStore::ExtractRange(const NodeId& from, const NodeId& to) {
  std::vector<std::pair<NodeId, std::vector<PayloadPtr>>> out;
  for (auto it = items_.begin(); it != items_.end();) {
    if (it->first.InOpenClosed(from, to)) {
      size_ -= it->second.size();
      out.emplace_back(it->first, std::move(it->second));
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<std::pair<NodeId, std::vector<PayloadPtr>>>
LocalStore::ExtractAll() {
  std::vector<std::pair<NodeId, std::vector<PayloadPtr>>> out;
  out.reserve(items_.size());
  for (auto& [key, items] : items_) {
    out.emplace_back(key, std::move(items));
  }
  items_.clear();
  size_ = 0;
  return out;
}

}  // namespace contjoin::chord
