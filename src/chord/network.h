// The simulated overlay network: node registry, hop-counted transport,
// ground-truth oracle, ring construction (protocol-based and ideal) and
// maintenance driving.

#ifndef CONTJOIN_CHORD_NETWORK_H_
#define CONTJOIN_CHORD_NETWORK_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chord/node.h"
#include "chord/types.h"
#include "common/rng.h"
#include "sim/net_stats.h"
#include "sim/simulator.h"

namespace contjoin::faults {
class FaultPlan;
}  // namespace contjoin::faults

namespace contjoin::chord {

/// Transport and protocol knobs.
struct NetworkOptions {
  /// Successor-list length r (paper §2.2: small values suffice).
  int successor_list_size = 4;
  /// Virtual-time latency of one overlay hop. Zero gives deterministic
  /// cascades (an insertion's consequences complete before the next event).
  sim::SimTime hop_latency = 0;
  /// Hop budget per routed message; exceeded messages are dropped and
  /// counted (only reachable in inconsistent transitional rings).
  int max_route_hops = 512;
};

/// Owns all nodes, counts traffic, and provides ring-construction helpers.
class Network {
 public:
  explicit Network(sim::Simulator* simulator, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator* simulator() const { return simulator_; }
  sim::NetStats& stats() { return stats_; }
  const NetworkOptions& options() const { return options_; }

  // --- Node lifecycle -------------------------------------------------------

  /// Creates an unjoined node with the given application key (paper §2.2:
  /// e.g. derived from public key / IP). Identifier = SHA-1(key).
  Node* CreateNode(const std::string& key);

  /// Creates a node and joins it through `bootstrap` (protocol join).
  Node* CreateAndJoin(const std::string& key, Node* bootstrap);

  /// Builds an N-node ring with exact pointers: sorted successors,
  /// predecessors, successor lists and fingers computed directly. Routing
  /// over the result is identical to a converged protocol-built ring; only
  /// construction messages are skipped (used by the large benchmarks).
  /// Node keys are "node-<i>".
  std::vector<Node*> BuildIdealRing(size_t n);

  /// Recomputes every alive node's pointers to the ideal state (used after
  /// scripted churn in benchmarks).
  void RewireIdeal();

  // --- Introspection ---------------------------------------------------------

  /// Ground truth: first alive node whose identifier >= id (clockwise),
  /// i.e. Successor(id). nullptr if no node is alive.
  Node* OracleSuccessor(const NodeId& id) const;

  std::vector<Node*> AliveNodes() const;
  size_t alive_count() const { return alive_count_; }
  const std::vector<std::unique_ptr<Node>>& all_nodes() const {
    return nodes_;
  }

  /// True iff every alive node's successor pointer matches the oracle.
  bool RingIsConsistent() const;

  /// True iff, additionally, all predecessor pointers and finger tables
  /// match the oracle.
  bool RingIsFullyConsistent() const;

  // --- Maintenance ------------------------------------------------------------

  /// One round: every alive node runs check-predecessor, stabilize, and
  /// fixes `fingers_per_round` fingers.
  void RunMaintenanceRound(int fingers_per_round = 1);

  /// Runs rounds until RingIsFullyConsistent() or `max_rounds` is hit.
  /// Returns the number of rounds executed.
  int StabilizeUntilConsistent(int max_rounds);

  // --- Transport (used by Node) -----------------------------------------------

  /// One overlay hop from `from` to `to`: counts a hop of class `cls` and
  /// schedules `action` after the hop latency. Messages to dead nodes are
  /// dropped and counted.
  void Transmit(Node* from, Node* to, sim::MsgClass cls,
                std::function<void()> action);

  /// Hop accounting for synchronous probe RPCs (iterative lookups), which
  /// execute inline rather than through the event queue.
  void CountHop(sim::MsgClass cls) { stats_.AddHop(cls); }
  void CountDrop(sim::MsgClass cls) { stats_.AddDrop(cls); }

  /// Installs (or clears, with nullptr) the fault-injection plan consulted
  /// by Transmit. The plan must outlive the network. No plan means the
  /// historical loss-free transport.
  void set_fault_plan(faults::FaultPlan* plan) { fault_plan_ = plan; }
  faults::FaultPlan* fault_plan() const { return fault_plan_; }

  // --- Node lifecycle hooks (used by Node) ------------------------------------

  void OnNodeDeath() { --alive_count_; }
  void OnNodeBirth() { ++alive_count_; }

  /// Fresh address epoch for a node reconnecting from a new "IP".
  uint64_t AssignIp() { return next_ip_++; }

 private:
  void WireIdeal(const std::vector<Node*>& sorted);

  sim::Simulator* simulator_;
  NetworkOptions options_;
  sim::NetStats stats_;
  faults::FaultPlan* fault_plan_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<NodeId, Node*> by_id_;  // All nodes ever created, dead included.
  size_t alive_count_ = 0;
  uint64_t next_ip_ = 1;
  uint64_t next_key_serial_ = 0;
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_NETWORK_H_
