// The simulated overlay network: node registry, hop-counted transport,
// ground-truth oracle, ring construction (protocol-based and ideal) and
// maintenance driving.

#ifndef CONTJOIN_CHORD_NETWORK_H_
#define CONTJOIN_CHORD_NETWORK_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chord/node.h"
#include "chord/types.h"
#include "common/rng.h"
#include "sim/net_stats.h"
#include "sim/simulator.h"

namespace contjoin::faults {
class FaultPlan;
}  // namespace contjoin::faults

namespace contjoin::chord {

class SimTransport;
class Transport;

/// Transport and protocol knobs.
struct NetworkOptions {
  /// Successor-list length r (paper §2.2: small values suffice).
  int successor_list_size = 4;
  /// Virtual-time latency of one overlay hop. Zero gives deterministic
  /// cascades (an insertion's consequences complete before the next event).
  sim::SimTime hop_latency = 0;
  /// Hop budget per routed message; exceeded messages are dropped and
  /// counted (only reachable in inconsistent transitional rings).
  int max_route_hops = 512;
  /// Sender-side per-destination aggregation (Grappa-style): transmissions
  /// a handler issues to the same destination, class and latency ride one
  /// delivery event. Hop accounting and fault injection stay per logical
  /// message; only the event count shrinks. Off by default so historical
  /// runs stay bit-identical.
  bool coalesce = false;
};

/// Owns all nodes, counts traffic, and provides ring-construction helpers.
class Network {
 public:
  explicit Network(sim::Simulator* simulator, NetworkOptions options = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator* simulator() const { return simulator_; }
  sim::NetStats& stats() { return stats_; }
  const NetworkOptions& options() const { return options_; }

  // --- Node lifecycle -------------------------------------------------------

  /// Creates an unjoined node with the given application key (paper §2.2:
  /// e.g. derived from public key / IP). Identifier = SHA-1(key).
  Node* CreateNode(const std::string& key);

  /// Creates a node and joins it through `bootstrap` (protocol join).
  Node* CreateAndJoin(const std::string& key, Node* bootstrap);

  /// Builds an N-node ring with exact pointers: sorted successors,
  /// predecessors, successor lists and fingers computed directly. Routing
  /// over the result is identical to a converged protocol-built ring; only
  /// construction messages are skipped (used by the large benchmarks).
  /// Node keys are "node-<i>".
  std::vector<Node*> BuildIdealRing(size_t n);

  /// Recomputes every alive node's pointers to the ideal state (used after
  /// scripted churn in benchmarks).
  void RewireIdeal();

  // --- Introspection ---------------------------------------------------------

  /// Ground truth: first alive node whose identifier >= id (clockwise),
  /// i.e. Successor(id). nullptr if no node is alive.
  Node* OracleSuccessor(const NodeId& id) const;

  /// Exact-identifier lookup over every node ever created (dead included).
  /// Read-only over a map that only grows at serial time, so event
  /// handlers on any shard may call it (the reliability layer routes acks
  /// to origins by identifier through here).
  Node* FindById(const NodeId& id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
  }

  std::vector<Node*> AliveNodes() const;
  size_t alive_count() const { return alive_count_; }
  const std::vector<std::unique_ptr<Node>>& all_nodes() const {
    return nodes_;
  }

  /// True iff every alive node's successor pointer matches the oracle.
  bool RingIsConsistent() const;

  /// True iff, additionally, all predecessor pointers and finger tables
  /// match the oracle.
  bool RingIsFullyConsistent() const;

  // --- Maintenance ------------------------------------------------------------

  /// One round: every alive node runs check-predecessor, stabilize, and
  /// fixes `fingers_per_round` fingers.
  void RunMaintenanceRound(int fingers_per_round = 1);

  /// Runs rounds until RingIsFullyConsistent() or `max_rounds` is hit.
  /// Returns the number of rounds executed.
  int StabilizeUntilConsistent(int max_rounds);

  // --- Transport (used by Node) -----------------------------------------------

  /// One overlay hop from `from` to `to`: counts a hop of class `cls` and
  /// schedules `action` after the hop latency. Messages to dead nodes are
  /// dropped and counted. This closure path remains for simulator-only
  /// interactions (DHT fetch replies, migration state transfers, engine
  /// result sinks); protocol hops travel as typed frames via TransmitHop.
  void Transmit(Node* from, Node* to, sim::MsgClass cls,
                std::function<void()> action);

  /// Ships one typed overlay hop to the node with identifier `to` through
  /// the installed transport (the one true send path for protocol
  /// messages). When a frame sizer is installed, the encoded size is
  /// accounted per message class first.
  void TransmitHop(Node* from, const NodeId& to, HopFrame frame);

  /// The hop-shipping seam. Defaults to the in-simulator transport;
  /// nullptr restores the default.
  Transport* transport() const { return transport_; }
  void set_transport(Transport* transport);

  /// The built-in in-simulator transport (always available; socket
  /// transports delegate locally-owned hops to it).
  Transport* sim_transport() const;

  /// Installs the bytes-on-wire meter: a callback returning the encoded
  /// size of a frame (wired up by the engine, which owns the codec; the
  /// chord layer cannot encode application payloads itself). Unset by
  /// default — hop accounting then stays byte-free and free of encoding
  /// cost.
  void set_frame_sizer(std::function<size_t(const HopFrame&)> sizer) {
    frame_sizer_ = std::move(sizer);
  }

  /// Hop accounting for synchronous probe RPCs (iterative lookups), which
  /// execute inline rather than through the event queue.
  void CountHop(sim::MsgClass cls) { stats_.AddHop(cls); }
  void CountDrop(sim::MsgClass cls) { stats_.AddDrop(cls); }

  /// Installs (or clears, with nullptr) the fault-injection plan consulted
  /// by Transmit. The plan must outlive the network. No plan means the
  /// historical loss-free transport.
  void set_fault_plan(faults::FaultPlan* plan) { fault_plan_ = plan; }
  faults::FaultPlan* fault_plan() const { return fault_plan_; }

  // --- Node lifecycle hooks (used by Node) ------------------------------------

  void OnNodeDeath() { --alive_count_; }
  void OnNodeBirth() { ++alive_count_; }

  /// Fresh address epoch for a node reconnecting from a new "IP".
  uint64_t AssignIp() { return next_ip_++; }

  /// Logical messages that shared a delivery event with an earlier one
  /// (only nonzero with options().coalesce).
  uint64_t coalesced_messages() const {
    return coalesced_messages_.load(std::memory_order_relaxed);
  }

 private:
  void WireIdeal(const std::vector<Node*>& sorted);

  /// Appends `action` to the calling thread's open buffer for (to, cls,
  /// latency), opening the buffer (and scheduling its single flush event)
  /// on first use. Buffers seal when the current handler returns, via the
  /// simulator's post-action hook.
  void AppendCoalesced(Node* to, sim::MsgClass cls, sim::SimTime latency,
                       std::function<void()> action);
  void CloseCoalescingBuffers();

  sim::Simulator* simulator_;
  NetworkOptions options_;
  std::unique_ptr<SimTransport> sim_transport_;
  Transport* transport_;
  std::function<size_t(const HopFrame&)> frame_sizer_;
  sim::NetStats stats_;
  faults::FaultPlan* fault_plan_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<NodeId, Node*> by_id_;  // All nodes ever created, dead included.
  size_t alive_count_ = 0;
  uint64_t next_ip_ = 1;
  uint64_t next_key_serial_ = 0;
  std::atomic<uint64_t> coalesced_messages_{0};
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_NETWORK_H_
