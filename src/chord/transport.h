// The transport seam: every typed overlay hop (HopFrame) leaves the
// routing layer through a Transport. SimTransport keeps today's
// deterministic in-simulator semantics bit-for-bit (hop accounting, fault
// injection, destination-shard scheduling all stay in Network::Transmit);
// a socket transport ships the encoded frame to the process owning the
// destination node instead. Frame encoding itself lives above this layer
// (core/codec) and is injected where a transport needs bytes, keeping the
// chord layer free of application payload knowledge.

#ifndef CONTJOIN_CHORD_TRANSPORT_H_
#define CONTJOIN_CHORD_TRANSPORT_H_

#include "chord/types.h"

namespace contjoin::chord {

class Network;
class Node;

/// Ships overlay hops to nodes addressed by identifier. Implementations
/// resolve the identifier to a location (simulator node table, peer socket
/// table) at send time — no raw Node* travels inside a frame, so the
/// dangling-pointer bug class the reliability layer once hit cannot recur
/// at the transport layer.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one hop to the node whose identifier is exactly `to` (already
  /// resolved by routing; this is not a Successor() lookup). The receiver
  /// executes the frame via Node::ApplyHop. Accounting and fault injection
  /// are the implementation's responsibility.
  virtual void SendHop(Node* from, const NodeId& to, HopFrame frame) = 0;
};

/// The discrete-event implementation: resolves `to` through the network's
/// node table and delegates to Network::Transmit, which is where hop
/// counting, fault injection, coalescing and destination-shard scheduling
/// have always lived — runs over this transport are bit-identical to the
/// pre-seam engine.
class SimTransport : public Transport {
 public:
  explicit SimTransport(Network* network) : network_(network) {}

  void SendHop(Node* from, const NodeId& to, HopFrame frame) override;

 private:
  Network* network_;
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_TRANSPORT_H_
