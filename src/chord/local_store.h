// Per-node DHT storage for items keyed by ring identifiers, with the range
// extraction needed by Chord's key-transfer rules (join, voluntary leave).

#ifndef CONTJOIN_CHORD_LOCAL_STORE_H_
#define CONTJOIN_CHORD_LOCAL_STORE_H_

#include <map>
#include <utility>
#include <vector>

#include "chord/types.h"

namespace contjoin::chord {

/// Items a node stores on behalf of the ring (here: notifications for
/// off-line subscribers). Multiple items may share a key.
class LocalStore {
 public:
  void Put(const NodeId& key, PayloadPtr item) {
    items_[key].push_back(std::move(item));
    ++size_;
  }

  /// Removes and returns all items under `key`.
  std::vector<PayloadPtr> Take(const NodeId& key);

  /// Removes and returns all (key, items) pairs with key in the ring
  /// interval (from, to]. Used when handing a key range to another node.
  std::vector<std::pair<NodeId, std::vector<PayloadPtr>>> ExtractRange(
      const NodeId& from, const NodeId& to);

  /// Removes and returns everything (voluntary departure hands all keys to
  /// the successor).
  std::vector<std::pair<NodeId, std::vector<PayloadPtr>>> ExtractAll();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  std::map<NodeId, std::vector<PayloadPtr>> items_;
  size_t size_ = 0;
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_LOCAL_STORE_H_
