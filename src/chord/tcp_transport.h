// TcpTransport: the socket implementation of the transport seam. A ring of
// N overlay nodes is partitioned over D daemon processes; hops whose
// destination node is owned by this process fall through to the in-simulator
// transport, hops to remotely-owned nodes are encoded (via an injected
// frame encoder — the chord layer cannot serialize application payloads)
// and shipped to the owning peer over a length-prefixed TCP stream.
//
// The socket machinery is poll(2)-based and non-blocking: Poll() makes one
// round of accept/read/write progress and dispatches every complete inbound
// message to the installed handler. Messages are tagged bytes — the
// transport reserves kTagHop for its own frames and passes everything else
// (daemon control commands, replies) through opaquely, so one listening
// port serves both peers and clients.
//
// Wire framing: [u32 length][u8 tag][payload], little-endian length of
// tag+payload. A kTagHop payload is [20-byte destination identifier]
// [encoded HopFrame] (the frame itself does not carry its destination).

#ifndef CONTJOIN_CHORD_TCP_TRANSPORT_H_
#define CONTJOIN_CHORD_TCP_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "chord/transport.h"
#include "chord/types.h"

namespace contjoin::chord {

class Network;
class Node;

struct TcpTransportOptions {
  /// Port this process listens on (loopback only).
  uint16_t listen_port = 0;

  /// Index of this process in `peers`.
  int self = 0;

  /// "host:port" of every daemon in the ring, indexed by daemon number.
  std::vector<std::string> peers;

  /// Maps an overlay node to the daemon that owns it. Defaults to
  /// serial() % peers.size() when unset.
  std::function<int(const Node&)> owner_of;

  /// Serializes a hop frame (injected from the layer that owns the codec).
  /// An empty result means the frame is simulator-only and cannot travel;
  /// the transport drops it and counts unencodable_frames().
  std::function<std::vector<uint8_t>(const HopFrame&)> encode_frame;
};

class TcpTransport : public Transport {
 public:
  /// Message tag of an encoded hop frame. Other tag values are free for
  /// the embedding application (daemon command/reply channels).
  static constexpr uint8_t kTagHop = 1;

  /// Inbound message callback: connection fd (usable with SendOn for
  /// replies), tag byte, payload bytes.
  using MessageHandler =
      std::function<void(int fd, uint8_t tag, std::vector<uint8_t> payload)>;

  TcpTransport(Network* network, TcpTransportOptions options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void set_message_handler(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  /// Binds and listens on options.listen_port. False on error.
  bool Listen();

  /// Locally-owned destination: delegate to the in-simulator transport.
  /// Remote destination: encode and enqueue to the owning peer
  /// (connecting lazily). Unknown identifiers and unencodable frames are
  /// dropped and counted, mirroring the sim transport's dead-node drops.
  void SendHop(Node* from, const NodeId& to, HopFrame frame) override;

  /// Queues a tagged message on an accepted connection (replies).
  void SendOn(int fd, uint8_t tag, const std::vector<uint8_t>& payload);

  /// One round of socket progress: accepts, reads, writes; blocks at most
  /// `timeout_ms`. Complete inbound messages are dispatched to the handler
  /// after the socket sweep, so handlers may freely send (even connect).
  void Poll(int timeout_ms);

  /// True when every outbound byte has been handed to the kernel and no
  /// inbound message is partially read — the process's contribution to
  /// ring-wide quiescence.
  bool idle() const;

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t unencodable_frames() const { return unencodable_frames_; }

  void CloseAll();

 private:
  struct Conn {
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;
  };

  /// Connected fd for peer daemon `peer`, dialing on first use; -1 on
  /// connection failure.
  int PeerFd(int peer);
  void QueueLocked(int fd, uint8_t tag, const uint8_t* payload, size_t size);
  void FlushLocked(int fd, Conn& conn);
  void CloseLocked(int fd);

  Network* network_;
  TcpTransportOptions options_;
  MessageHandler handler_;

  mutable std::mutex mu_;
  int listen_fd_ = -1;
  std::map<int, Conn> conns_;
  std::vector<int> peer_fds_;  // daemon index -> fd, -1 when not connected.

  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t unencodable_frames_ = 0;
};

}  // namespace contjoin::chord

#endif  // CONTJOIN_CHORD_TCP_TRANSPORT_H_
