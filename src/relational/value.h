// Typed attribute values. Equality follows the paper's DHT convention:
// values are compared through their canonical string form (the same form
// that is hashed into value-level identifiers), so local matching and
// network-level routing can never disagree.

#ifndef CONTJOIN_RELATIONAL_VALUE_H_
#define CONTJOIN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace contjoin::rel {

enum class ValueType : unsigned char { kNull = 0, kInt, kDouble, kString };

/// Name of a value type ("int", "double", ...).
const char* ValueTypeName(ValueType t);

/// A relational attribute value: null, 64-bit integer, double or string.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the caller must check type() first.
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view (ints widen to double); nullopt for null/string.
  std::optional<double> AsNumeric() const;

  /// Canonical string used as the value component of value-level DHT keys
  /// (paper §4.2: "when the value of an attribute is numeric, this value is
  /// also treated as a string"). Integral doubles print like integers.
  std::string ToKeyString() const;

  /// Display form: strings quoted, others as ToKeyString().
  std::string ToString() const;

  /// Equality = canonical-key-string equality, matching the network's
  /// behaviour exactly (Int(2) == Double(2.0) == anything keyed "2").
  bool operator==(const Value& other) const {
    return ToKeyString() == other.ToKeyString();
  }

  /// Ordering for selection predicates: numeric if both sides are numeric,
  /// otherwise lexicographic on key strings. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  size_t HashValue() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace contjoin::rel

namespace std {
template <>
struct hash<contjoin::rel::Value> {
  size_t operator()(const contjoin::rel::Value& v) const {
    return v.HashValue();
  }
};
}  // namespace std

#endif  // CONTJOIN_RELATIONAL_VALUE_H_
