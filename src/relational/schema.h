// Relation schemas and the shared catalog (paper §3.2: different schemas
// co-exist; schema mappings are not supported).

#ifndef CONTJOIN_RELATIONAL_SCHEMA_H_
#define CONTJOIN_RELATIONAL_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace contjoin::rel {

/// A named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// Schema of one relation: name plus ordered attributes.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes);

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Position of the attribute named `name`, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

  /// "R(A int, B string, ...)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::map<std::string, size_t> index_;
};

/// Registry of relation schemas, known to every node (the paper assumes a
/// globally known schema vocabulary; tuples and queries carry relation and
/// attribute *names*, which the catalog resolves).
class Catalog {
 public:
  /// Registers a schema; fails on duplicate relation names or attributes.
  Status Register(RelationSchema schema);

  /// nullptr when unknown.
  const RelationSchema* Find(const std::string& relation) const;

  std::vector<std::string> RelationNames() const;
  size_t size() const { return schemas_.size(); }

 private:
  std::map<std::string, RelationSchema> schemas_;
};

}  // namespace contjoin::rel

#endif  // CONTJOIN_RELATIONAL_SCHEMA_H_
