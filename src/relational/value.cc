#include "relational/value.h"

#include <functional>

#include "common/string_util.h"

namespace contjoin::rel {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
    default:
      return ValueType::kNull;
  }
}

std::optional<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    default:
      return std::nullopt;
  }
}

std::string Value::ToKeyString() const {
  switch (type()) {
    case ValueType::kNull:
      return "<null>";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble:
      return CanonicalDouble(as_double());
    case ValueType::kString:
      return as_string();
  }
  return "<null>";
}

std::string Value::ToString() const {
  if (type() == ValueType::kString) return "'" + as_string() + "'";
  return ToKeyString();
}

int Value::Compare(const Value& other) const {
  auto a = AsNumeric();
  auto b = other.AsNumeric();
  if (a.has_value() && b.has_value()) {
    if (*a < *b) return -1;
    if (*a > *b) return 1;
    return 0;
  }
  return ToKeyString().compare(other.ToKeyString());
}

size_t Value::HashValue() const {
  return std::hash<std::string>{}(ToKeyString());
}

}  // namespace contjoin::rel
