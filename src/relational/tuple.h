// Data tuples with publication-time semantics (paper §3.2).

#ifndef CONTJOIN_RELATIONAL_TUPLE_H_
#define CONTJOIN_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace contjoin::rel {

/// Virtual timestamp (mirrors sim::SimTime without a layering dependency).
using Timestamp = uint64_t;

/// An immutable tuple of some relation, stamped with its publication time
/// pubT(t) and a global sequence number that breaks publication-time ties
/// deterministically.
class Tuple {
 public:
  Tuple(std::string relation, std::vector<Value> values, Timestamp pub_time,
        uint64_t seq)
      : relation_(std::move(relation)),
        values_(std::move(values)),
        pub_time_(pub_time),
        seq_(seq) {}

  const std::string& relation() const { return relation_; }
  const std::vector<Value>& values() const { return values_; }
  const Value& at(size_t i) const { return values_[i]; }
  size_t arity() const { return values_.size(); }

  Timestamp pub_time() const { return pub_time_; }
  uint64_t seq() const { return seq_; }

  /// Strict "happened before": publication time with sequence tiebreak.
  bool Before(Timestamp other_time, uint64_t other_seq) const {
    if (pub_time_ != other_time) return pub_time_ < other_time;
    return seq_ < other_seq;
  }

  /// Validates the tuple against `schema`: arity and value types (ints are
  /// accepted where doubles are expected; null is accepted everywhere).
  Status CheckAgainst(const RelationSchema& schema) const;

  /// "R(1, 'x', 2.5)".
  std::string ToString() const;

 private:
  std::string relation_;
  std::vector<Value> values_;
  Timestamp pub_time_;
  uint64_t seq_;
};

using TuplePtr = std::shared_ptr<const Tuple>;

}  // namespace contjoin::rel

#endif  // CONTJOIN_RELATIONAL_TUPLE_H_
