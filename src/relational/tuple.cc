#include "relational/tuple.h"

#include <sstream>

namespace contjoin::rel {

Status Tuple::CheckAgainst(const RelationSchema& schema) const {
  if (relation_ != schema.name()) {
    return Status::InvalidArgument("tuple relation '" + relation_ +
                                   "' does not match schema '" +
                                   schema.name() + "'");
  }
  if (values_.size() != schema.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values_.size()) +
        " does not match schema arity " + std::to_string(schema.arity()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    ValueType expect = schema.attribute(i).type;
    ValueType got = values_[i].type();
    if (got == ValueType::kNull) continue;
    bool ok = got == expect ||
              (expect == ValueType::kDouble && got == ValueType::kInt);
    if (!ok) {
      return Status::InvalidArgument(
          "attribute '" + schema.attribute(i).name + "' expects " +
          ValueTypeName(expect) + ", got " + ValueTypeName(got));
    }
  }
  return Status::OK();
}

std::string Tuple::ToString() const {
  std::ostringstream out;
  out << relation_ << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out << ", ";
    out << values_[i].ToString();
  }
  out << ")";
  return out.str();
}

}  // namespace contjoin::rel
