#include "relational/schema.h"

#include <sstream>

namespace contjoin::rel {

RelationSchema::RelationSchema(std::string name,
                               std::vector<Attribute> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, i);
  }
}

std::optional<size_t> RelationSchema::AttributeIndex(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string RelationSchema::ToString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out << ", ";
    out << attributes_[i].name << " " << ValueTypeName(attributes_[i].type);
  }
  out << ")";
  return out.str();
}

Status Catalog::Register(RelationSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (schema.arity() == 0) {
    return Status::InvalidArgument("relation '" + schema.name() +
                                   "' has no attributes");
  }
  // Attribute names must be unique (the index map would have collapsed).
  std::map<std::string, int> seen;
  for (const Attribute& attr : schema.attributes()) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (++seen[attr.name] > 1) {
      return Status::InvalidArgument("duplicate attribute '" + attr.name +
                                     "' in relation '" + schema.name() + "'");
    }
  }
  auto [it, inserted] = schemas_.emplace(schema.name(), std::move(schema));
  if (!inserted) {
    return Status::AlreadyExists("relation '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

const RelationSchema* Catalog::Find(const std::string& relation) const {
  auto it = schemas_.find(relation);
  return it == schemas_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) out.push_back(name);
  return out;
}

}  // namespace contjoin::rel
