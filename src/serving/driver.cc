#include "serving/driver.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "faults/churn.h"

namespace contjoin::serving {

ServingDriver::ServingDriver(ServingConfig config)
    : config_(std::move(config)), gen_(config_.workload) {
  net_ = std::make_unique<core::ContinuousQueryNetwork>(config_.engine);
  CJ_CHECK(gen_.RegisterSchemas(net_->catalog()).ok());
}

ServingReport ServingDriver::Run() {
  CJ_CHECK(!ran_) << "one Run() per ServingDriver";
  ran_ = true;
  ServingReport report;
  Rng placement(config_.placement_seed);
  const size_t n = net_->num_nodes();
  const size_t sub_pool =
      config_.subscriber_nodes == 0 ? n : std::min(config_.subscriber_nodes, n);

  // Query population with subscriber fan-out: the same SQL submitted from
  // `fanout` nodes means every join result notifies `fanout` subscribers.
  // A small subscriber pool concentrates those subscriptions on few nodes,
  // which is what lets per-(destination, epoch) digests coalesce.
  for (size_t q = 0; q < config_.num_queries; ++q) {
    const std::string sql = gen_.NextQuerySql();
    for (size_t f = 0; f < config_.fanout; ++f) {
      CJ_CHECK(net_->SubmitQuery(placement.NextBelow(sub_pool), sql).ok());
    }
  }

  // The full open-loop workload exists before the first publication fires:
  // arrival instants from the seeded process, tuple contents and origins
  // from the generators, all independent of how the engine keeps up.
  const sim::SimTime start = net_->simulator()->Now() + 1;
  const sim::SimTime end = start + config_.duration;
  if (config_.churn) {
    // Crash ordinals are offset past the subscriber pool: the column
    // measures serving through fabric churn, and a crashed subscriber's
    // notifications sit in ring storage until it reconnects — which an
    // open-loop run never does — so its inflated "latency" would only
    // measure the storm's victim choice. Ordinals index the alive set in
    // creation order and the pool is never crashed, so the offset holds.
    faults::ChurnScript script;
    sim::SimTime at = start + config_.churn_start;
    for (size_t i = 0; i < config_.churn_crashes; ++i) {
      faults::ChurnEvent ev;
      ev.at = at;
      ev.kind = faults::ChurnEvent::Kind::kCrash;
      ev.ordinal = sub_pool + 2 * i + 1;
      script.events.push_back(ev);
      at += config_.churn_interval;
    }
    for (size_t i = 0; i < config_.churn_joins; ++i) {
      faults::ChurnEvent ev;
      ev.at = at;
      ev.kind = faults::ChurnEvent::Kind::kJoin;
      script.events.push_back(ev);
      at += config_.churn_interval;
    }
    net_->InstallChurnScript(std::move(script));
  }
  std::vector<sim::SimTime> arrivals = GenerateArrivals(
      config_.arrivals, config_.arrival_seed, start, config_.duration);
  struct Arrival {
    sim::SimTime at;
    size_t origin;
    std::string relation;
    std::vector<rel::Value> values;
  };
  std::vector<Arrival> schedule;
  schedule.reserve(arrivals.size());
  for (sim::SimTime at : arrivals) {
    auto [relation, values] = gen_.NextTuple();
    schedule.push_back(
        {at, placement.NextBelow(n), std::move(relation), std::move(values)});
  }
  report.arrivals_scheduled = schedule.size();

  const sim::NetStats before = net_->stats();
  const core::NodeMetrics metrics_before = net_->TotalMetrics();

  // Segmented replay: only the next segment's arrivals are scheduled
  // before each RunOpenLoopUntil, because churn repair at a boundary
  // drains the whole event queue — pre-scheduled future arrivals would
  // fire early and out of order relative to later churn.
  size_t next = 0;
  const sim::SimTime step = std::max<sim::SimTime>(1, config_.sample_every);
  for (sim::SimTime boundary = std::min(start + step, end);;
       boundary = std::min(boundary + step, end)) {
    while (next < schedule.size() && schedule[next].at <= boundary) {
      Arrival& a = schedule[next++];
      CJ_CHECK(net_->SchedulePublish(a.at, a.origin, a.relation,
                                     std::move(a.values))
                   .ok());
    }
    report.events_run += net_->RunOpenLoopUntil(boundary);

    QueueSample sample;
    sample.at = boundary;
    sample.pending_events = net_->simulator()->pending_events();
    for (size_t i = 0; i < net_->num_nodes(); ++i) {
      const core::NodeState* st = net_->state(i);
      if (st == nullptr) continue;
      sample.inflight_total += st->subscriber.inflight;
      for (const auto& [key, entry] : st->subscriber.digest_buffer) {
        sample.buffered_total += entry.second.size();
      }
    }
    report.samples.push_back(sample);
    if (boundary >= end) break;
  }
  // Tail drain: deferred deliveries and reliability retries past the last
  // arrival; no new work enters, so the queue empties.
  report.events_run += net_->simulator()->Run();

  report.traffic = net_->stats().Since(before);
  const core::NodeMetrics metrics_after = net_->TotalMetrics();
  report.reliable_sent =
      metrics_after.reliable_sent - metrics_before.reliable_sent;
  report.reliable_retries =
      metrics_after.reliable_retries - metrics_before.reliable_retries;

  const sim::SimTime measure_from = start + config_.warmup;
  // Delivery is at-least-once: churn repair replays the publish log, so a
  // subscriber can receive the same result again long after the original.
  // Latency measures the FIRST delivery of each distinct result (what a
  // deduping subscriber experiences); replays count as redeliveries, not
  // as slow deliveries.
  std::set<std::string> first_delivery;
  for (size_t i = 0; i < net_->num_nodes(); ++i) {
    for (const core::Notification& note : net_->TakeNotifications(i)) {
      ++report.notifications;
      const std::string result_key =
          std::to_string(i) + "|" + note.ContentKey() + "|" +
          std::to_string(note.earlier_pub) + "|" +
          std::to_string(note.later_pub);
      report.delivered.push_back(result_key + "|" +
                                 std::to_string(note.created_at) + "|" +
                                 std::to_string(note.delivered_at));
      if (note.later_pub < measure_from) continue;
      CJ_CHECK(note.delivered_at >= note.later_pub);
      // Inbox order is deposit order, so the first occurrence carries the
      // earliest delivery stamp.
      if (!first_delivery.insert(result_key).second) {
        ++report.redelivered;
        continue;
      }
      ++report.measured;
      report.latency.Record(
          static_cast<double>(note.delivered_at - note.later_pub));
    }
  }
  return report;
}

}  // namespace contjoin::serving
