// Virtual-time latency accounting: collects per-notification
// time-in-flight samples (delivered_at - later_pub) and reports the
// percentile summary the serving SLO sweep is built on.

#ifndef CONTJOIN_SERVING_LATENCY_H_
#define CONTJOIN_SERVING_LATENCY_H_

#include <cstddef>
#include <string>

#include "common/histogram.h"

namespace contjoin::serving {

class LatencyRecorder {
 public:
  void Record(double latency) { dist_.Add(latency); }

  size_t count() const { return dist_.count(); }
  double mean() const { return dist_.mean(); }
  double max() const { return dist_.max(); }
  /// Linear-interpolated order statistics (common/histogram semantics).
  double p50() const { return dist_.Percentile(50.0); }
  double p99() const { return dist_.Percentile(99.0); }
  double p999() const { return dist_.Percentile(99.9); }
  double Percentile(double p) const { return dist_.Percentile(p); }

  const LoadDistribution& distribution() const { return dist_; }

  /// One line: count/mean/p50/p99/p999/max, for bench output.
  std::string Summary() const;

 private:
  LoadDistribution dist_;
};

}  // namespace contjoin::serving

#endif  // CONTJOIN_SERVING_LATENCY_H_
