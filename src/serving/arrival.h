// Seeded open-loop arrival processes. An arrival sequence is a pure
// function of (spec, seed): the serving driver pre-generates every arrival
// instant before any simulation runs, so the workload an engine faces is
// identical at any worker count — the open-loop analogue of the
// closed-loop determinism contract.

#ifndef CONTJOIN_SERVING_ARRIVAL_H_
#define CONTJOIN_SERVING_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace contjoin::serving {

enum class ArrivalKind : unsigned char {
  kPoisson,      // Memoryless arrivals at a constant mean rate.
  kBurstyOnOff,  // Poisson bursts during exponentially-long on periods,
                 // silence during off periods (interrupted Poisson).
  kDiurnalRamp,  // Rate ramps linearly low -> peak -> low over each period
                 // (thinning of a peak-rate Poisson stream).
};

const char* ArrivalKindName(ArrivalKind k);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;

  /// Mean arrivals per virtual tick: the steady rate (Poisson), the
  /// in-burst rate (bursty), or the peak rate (diurnal).
  double rate = 1.0;

  /// Bursty on/off: mean length of on and off periods, in ticks.
  double mean_on = 32.0;
  double mean_off = 32.0;

  /// Diurnal ramp: rate at the trough as a fraction of `rate`, and the
  /// length of one low->peak->low cycle in ticks.
  double trough_fraction = 0.1;
  uint64_t period = 256;
};

/// Generates every arrival instant in [start, start + duration), sorted
/// ascending. Instants are integer ticks; several arrivals may share one
/// tick (that is what an open-loop burst is). Pure: same (spec, seed,
/// start, duration) always yields the same sequence.
std::vector<sim::SimTime> GenerateArrivals(const ArrivalSpec& spec,
                                           uint64_t seed, sim::SimTime start,
                                           sim::SimTime duration);

}  // namespace contjoin::serving

#endif  // CONTJOIN_SERVING_ARRIVAL_H_
