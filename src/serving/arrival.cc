#include "serving/arrival.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace contjoin::serving {

const char* ArrivalKindName(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBurstyOnOff:
      return "bursty";
    case ArrivalKind::kDiurnalRamp:
      return "diurnal";
  }
  return "unknown";
}

namespace {

/// The diurnal rate multiplier at continuous time `t` past the window
/// start: a triangular wave from trough_fraction up to 1 and back, one
/// cycle per `period` ticks.
double DiurnalFactor(const ArrivalSpec& spec, double t) {
  const double period = static_cast<double>(spec.period);
  const double phase = (t - period * std::floor(t / period)) / period;
  const double tri = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
  return spec.trough_fraction + (1.0 - spec.trough_fraction) * tri;
}

}  // namespace

std::vector<sim::SimTime> GenerateArrivals(const ArrivalSpec& spec,
                                           uint64_t seed, sim::SimTime start,
                                           sim::SimTime duration) {
  CJ_CHECK(spec.rate > 0) << "arrival rate must be positive";
  std::vector<sim::SimTime> out;
  Rng rng(seed);
  const double end = static_cast<double>(duration);
  // Continuous arrival instants relative to `start`, floored onto the tick
  // grid at the end; the continuous process is what has the textbook
  // interarrival moments the tests verify.
  double t = 0.0;
  switch (spec.kind) {
    case ArrivalKind::kPoisson: {
      for (t = rng.NextExponential(spec.rate); t < end;
           t += rng.NextExponential(spec.rate)) {
        out.push_back(start + static_cast<sim::SimTime>(t));
      }
      break;
    }
    case ArrivalKind::kBurstyOnOff: {
      CJ_CHECK(spec.mean_on > 0 && spec.mean_off > 0);
      bool on = true;  // Every sequence opens with a burst.
      double phase_end = rng.NextExponential(1.0 / spec.mean_on);
      while (t < end) {
        if (on) {
          const double step = rng.NextExponential(spec.rate);
          if (t + step < phase_end) {
            t += step;
            if (t < end) out.push_back(start + static_cast<sim::SimTime>(t));
            continue;
          }
        }
        // Phase exhausted (or silent): jump to the next boundary.
        t = phase_end;
        on = !on;
        phase_end =
            t + rng.NextExponential(1.0 / (on ? spec.mean_on : spec.mean_off));
      }
      break;
    }
    case ArrivalKind::kDiurnalRamp: {
      CJ_CHECK(spec.period > 0);
      // Thinning: draw candidates at the peak rate, keep each with
      // probability equal to the instantaneous rate fraction.
      for (t = rng.NextExponential(spec.rate); t < end;
           t += rng.NextExponential(spec.rate)) {
        if (rng.NextBernoulli(DiurnalFactor(spec, t))) {
          out.push_back(start + static_cast<sim::SimTime>(t));
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace contjoin::serving
