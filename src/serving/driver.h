// The open-loop serving driver: replays a seeded arrival process against
// the engine and measures what the closed-loop benches cannot — notification
// time-in-flight percentiles, queue depths over time, backpressure activity
// and retry amplification. Arrivals keep coming whether or not the system
// keeps up: tuples are stamped with their virtual-time birth when the
// arrival process emits them, and publications fire by simulator schedule,
// never gated on the previous cascade having drained.

#ifndef CONTJOIN_SERVING_DRIVER_H_
#define CONTJOIN_SERVING_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "serving/arrival.h"
#include "serving/latency.h"
#include "sim/net_stats.h"
#include "workload/workload.h"

namespace contjoin::serving {

struct ServingConfig {
  core::Options engine;
  workload::WorkloadOptions workload;
  ArrivalSpec arrivals;

  /// Seed of the arrival process (independent of engine / workload seeds).
  uint64_t arrival_seed = 7;
  /// Seed choosing publication origin nodes.
  uint64_t placement_seed = 11;

  /// Continuous queries installed before the open-loop phase; each query's
  /// SQL is submitted `fanout` times from distinct-ish subscriber nodes,
  /// so one join result must notify `fanout` subscribers (the fan-out the
  /// digest batching coalesces).
  size_t num_queries = 16;
  size_t fanout = 1;

  /// When nonzero, subscribers are drawn only from node indices
  /// [0, subscriber_nodes): co-locating many subscriptions on few nodes is
  /// what makes same-(destination, epoch) digests actually coalesce.
  size_t subscriber_nodes = 0;

  /// Open-loop phase length in virtual ticks, and the prefix of it whose
  /// notifications are excluded from latency statistics (ramp-up).
  sim::SimTime duration = 256;
  sim::SimTime warmup = 32;

  /// Queue depths are sampled at every multiple of this interval; segment
  /// boundaries are also where scripted churn applies (quiescent points).
  sim::SimTime sample_every = 32;

  /// Scripted churn storm through the open-loop phase: `churn_crashes`
  /// crashes then `churn_joins` joins, the first due `churn_start` ticks
  /// after the open-loop phase begins and the rest spaced
  /// `churn_interval` apart. Installed after the query population is in
  /// place (a script measured from construction time would crash
  /// subscriber nodes mid-installation), applied at segment boundaries.
  bool churn = false;
  sim::SimTime churn_start = 64;
  sim::SimTime churn_interval = 64;
  size_t churn_crashes = 3;
  size_t churn_joins = 2;
};

/// One queue-depth observation, taken at a quiescent segment boundary.
struct QueueSample {
  sim::SimTime at = 0;
  uint64_t pending_events = 0;    // Simulator events still scheduled.
  uint64_t inflight_total = 0;    // Occupied backpressure slots, all nodes.
  uint64_t buffered_total = 0;    // Digest-buffered notifications, all nodes.
};

struct ServingReport {
  LatencyRecorder latency;        // Post-warmup time-in-flight samples.
  size_t arrivals_scheduled = 0;
  size_t notifications = 0;       // Total delivered (incl. warmup).
  size_t measured = 0;            // Post-warmup first deliveries (latency).
  size_t redelivered = 0;         // Post-warmup repair-replay duplicates.
  /// One line per delivered notification, inbox order:
  /// "<node>|<ContentKey>|<earlier>|<later>|<created>|<delivered>".
  /// Equivalence tests compare sorted copies; determinism tests compare
  /// the raw order byte-for-byte.
  std::vector<std::string> delivered;
  uint64_t events_run = 0;
  std::vector<QueueSample> samples;
  sim::NetStats traffic;          // Open-loop phase only.
  uint64_t reliable_sent = 0;
  uint64_t reliable_retries = 0;

  /// Retries per reliably-sent message (0 when reliability is off).
  double RetryAmplification() const {
    return reliable_sent == 0
               ? 0.0
               : static_cast<double>(reliable_retries) /
                     static_cast<double>(reliable_sent);
  }
};

class ServingDriver {
 public:
  explicit ServingDriver(ServingConfig config);

  /// The engine, e.g. to install a churn script before Run().
  core::ContinuousQueryNetwork& net() { return *net_; }

  /// Installs the query population (with fan-out duplication), replays the
  /// arrival process and drains the tail; one call per driver.
  ServingReport Run();

 private:
  ServingConfig config_;
  workload::WorkloadGenerator gen_;
  std::unique_ptr<core::ContinuousQueryNetwork> net_;
  bool ran_ = false;
};

}  // namespace contjoin::serving

#endif  // CONTJOIN_SERVING_DRIVER_H_
