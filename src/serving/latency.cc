#include "serving/latency.h"

#include <cstdio>

namespace contjoin::serving {

std::string LatencyRecorder::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.2f p50=%.2f p99=%.2f p999=%.2f max=%.2f",
                count(), count() ? mean() : 0.0, count() ? p50() : 0.0,
                count() ? p99() : 0.0, count() ? p999() : 0.0,
                count() ? max() : 0.0);
  return buf;
}

}  // namespace contjoin::serving
