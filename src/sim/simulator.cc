#include "sim/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace contjoin::sim {

thread_local Simulator::ExecContext Simulator::exec_context_;

Simulator::Simulator() {
  if (const char* env = std::getenv("CONTJOIN_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 256) {
      workers_ = static_cast<int>(v);
    }
  }
}

Simulator::~Simulator() { StopPool(); }

// contjoin-check: hot
void Simulator::ScheduleShardedAt(SimTime when, uint64_t shard, Action action,
                                  CancelToken cancel) {
  CJ_CHECK(when >= now_) << "cannot schedule in the past: " << when << " < "
                         << now_;
  ExecContext& ctx = exec_context_;
  if (ctx.sim == this && ctx.children != nullptr) {
    ctx.children->push_back(
        PendingChild{when, shard, std::move(action), std::move(cancel)});
    return;
  }
  queue_.push(
      Event{when, next_seq_++, shard, std::move(action), std::move(cancel)});
}

bool Simulator::InExecution() const { return exec_context_.sim == this; }

void Simulator::DiscardCancelled() {
  while (!queue_.empty() && queue_.top().cancel != nullptr &&
         queue_.top().cancel->load(std::memory_order_acquire)) {
    queue_.pop();
  }
}

size_t Simulator::Run() {
  size_t ran = 0;
  for (;;) {
    DiscardCancelled();
    if (queue_.empty()) break;
    ran += RunBatch();
  }
  return ran;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t ran = 0;
  for (;;) {
    DiscardCancelled();
    if (queue_.empty() || queue_.top().when > until) break;
    ran += RunBatch();
  }
  if (now_ < until) now_ = until;
  return ran;
}

// contjoin-check: hot
size_t Simulator::RunBatch() {
  const SimTime t = queue_.top().when;
  now_ = t;
  batch_.clear();
  bool all_sharded = true;
  while (!queue_.empty() && queue_.top().when == t) {
    // A cancelled event further down the same timestamp cohort: drop it
    // here (the clock is already at t because of a live sibling).
    if (queue_.top().cancel != nullptr &&
        queue_.top().cancel->load(std::memory_order_acquire)) {
      queue_.pop();
      continue;
    }
    // Moving out of a priority_queue top requires a const_cast; the element
    // is popped immediately after.
    batch_.push_back(std::move(const_cast<Event&>(queue_.top())));
    queue_.pop();
    if (batch_.back().shard == kNoShard) all_sharded = false;
  }
  const size_t n = batch_.size();
  if (workers_ > 1 && all_sharded && n >= kMinParallelBatch) {
    ExecuteParallel();
  } else {
    ExecuteSerial();
  }
  batch_.clear();
  events_run_ += n;
  return n;
}

// contjoin-check: hot
void Simulator::RunEvent(size_t index, std::vector<PendingChild>* children) {
  ExecContext& ctx = exec_context_;
  ctx.sim = this;
  ctx.children = children;
  batch_[index].action();
  if (post_action_hook_) post_action_hook_();
  ctx.sim = nullptr;
  ctx.children = nullptr;
}

void Simulator::ExecuteSerial() {
  // Children push straight into the queue with fresh sequence numbers —
  // exactly what the historical one-event-at-a-time loop did.
  for (size_t i = 0; i < batch_.size(); ++i) RunEvent(i, nullptr);
}

void Simulator::ExecuteParallel() {
  EnsurePool();
  ++parallel_batches_run_;
  const size_t n = batch_.size();
  if (child_bufs_.size() < n) child_bufs_.resize(n);
  for (size_t i = 0; i < n; ++i) child_bufs_[i].clear();

  // Group batch positions by shard; within a shard the original FIFO order
  // is preserved (batch_ is already seq-sorted, and the sort key breaks
  // ties by position).
  group_order_.resize(n);
  for (size_t i = 0; i < n; ++i) group_order_[i] = static_cast<uint32_t>(i);
  std::sort(group_order_.begin(), group_order_.end(),
            [this](uint32_t a, uint32_t b) {
              if (batch_[a].shard != batch_[b].shard) {
                return batch_[a].shard < batch_[b].shard;
              }
              return a < b;
            });
  group_bounds_.clear();
  group_bounds_.push_back(0);
  for (size_t k = 1; k < n; ++k) {
    if (batch_[group_order_[k]].shard != batch_[group_order_[k - 1]].shard) {
      group_bounds_.push_back(static_cast<uint32_t>(k));
    }
  }
  group_bounds_.push_back(static_cast<uint32_t>(n));
  next_group_.store(0, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    ++work_generation_;
    workers_active_ = pool_.size();
  }
  work_cv_.notify_all();
  ProcessGroups();  // The coordinating thread pulls groups too.
  {
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [this] { return workers_active_ == 0; });
  }

  // Canonical merge: walking events in batch order and each event's
  // children in scheduling order reproduces the exact sequence numbers the
  // serial path would have assigned.
  for (size_t i = 0; i < n; ++i) {
    for (PendingChild& child : child_bufs_[i]) {
      queue_.push(Event{child.when, next_seq_++, child.shard,
                        std::move(child.action), std::move(child.cancel)});
    }
    child_bufs_[i].clear();
  }
}

void Simulator::ProcessGroups() {  // contjoin-check: hot — lock-free group pull
  const size_t num_groups = group_bounds_.size() - 1;
  for (;;) {
    size_t g = next_group_.fetch_add(1, std::memory_order_relaxed);
    if (g >= num_groups) return;
    for (uint32_t k = group_bounds_[g]; k < group_bounds_[g + 1]; ++k) {
      const size_t index = group_order_[k];
      RunEvent(index, &child_bufs_[index]);
    }
  }
}

void Simulator::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      work_cv_.wait(lk, [this, seen_generation] {
        return shutdown_ || work_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = work_generation_;
    }
    ProcessGroups();
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      --workers_active_;
      if (workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void Simulator::EnsurePool() {
  const size_t want = static_cast<size_t>(workers_ - 1);
  if (pool_.size() == want) return;
  StopPool();
  pool_.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    pool_.emplace_back([this] { WorkerLoop(); });
  }
}

void Simulator::StopPool() {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : pool_) worker.join();
  pool_.clear();
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = false;
  }
}

void Simulator::SetWorkers(int workers) {
  CJ_CHECK(!InExecution()) << "SetWorkers must not run inside a handler";
  if (workers < 1) workers = 1;
  if (workers == workers_) return;
  StopPool();
  workers_ = workers;
}

}  // namespace contjoin::sim
