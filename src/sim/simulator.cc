#include "sim/simulator.h"

namespace contjoin::sim {

void Simulator::ScheduleAt(SimTime when, Action action) {
  CJ_CHECK(when >= now_) << "cannot schedule in the past: " << when << " < "
                         << now_;
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

size_t Simulator::Run() {
  size_t ran = 0;
  while (!queue_.empty()) {
    // Moving out of a priority_queue top requires a const_cast; the element
    // is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.action();
    ++ran;
    ++events_run_;
  }
  return ran;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.action();
    ++ran;
    ++events_run_;
  }
  if (now_ < until) now_ = until;
  return ran;
}

}  // namespace contjoin::sim
