// Network traffic accounting. One overlay hop = one message transmission =
// one unit of traffic, the cost model used throughout the paper.

#ifndef CONTJOIN_SIM_NET_STATS_H_
#define CONTJOIN_SIM_NET_STATS_H_

#include <cstdint>
#include <string>

namespace contjoin::sim {

/// Message categories tallied by the network layer. A multisend batch
/// transmission counts as one hop under the batch's class (that sharing is
/// exactly why the recursive multisend is cheaper in practice).
enum class MsgClass : int {
  kLookup = 0,      // Plain DHT lookups (find_successor probes).
  kMaintenance,     // Stabilize / notify / fix-finger / join traffic.
  kQueryIndex,      // query() messages indexing a query at attribute level.
  kTupleIndex,      // al-index/vl-index batches of a tuple insertion.
  kRewrittenQuery,  // join(q') reindexing messages.
  kNotification,    // Notification delivery.
  kControl,         // Unsubscribe / IP updates / misc control.
  kOneTime,         // PIER-style one-time join traffic (baseline).
  kClassCount,
};

/// Human-readable class name.
const char* MsgClassName(MsgClass c);

/// Flat counters; cheap to snapshot and diff, which is how the benchmarks
/// measure the traffic of a workload phase.
class NetStats {
 public:
  void AddHop(MsgClass c) {
    ++per_class_[static_cast<size_t>(c)];
    ++total_hops_;
  }
  void AddHops(MsgClass c, uint64_t n) {
    per_class_[static_cast<size_t>(c)] += n;
    total_hops_ += n;
  }
  void AddDrop(MsgClass c) {
    ++dropped_per_class_[static_cast<size_t>(c)];
    ++dropped_;
  }

  uint64_t hops(MsgClass c) const {
    return per_class_[static_cast<size_t>(c)];
  }
  uint64_t total_hops() const { return total_hops_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t dropped(MsgClass c) const {
    return dropped_per_class_[static_cast<size_t>(c)];
  }

  void Reset();

  /// Difference (*this - earlier), per class; used to isolate a phase.
  NetStats Since(const NetStats& earlier) const;

  /// Multi-line per-class report.
  std::string Report() const;

 private:
  uint64_t per_class_[static_cast<size_t>(MsgClass::kClassCount)] = {};
  uint64_t dropped_per_class_[static_cast<size_t>(MsgClass::kClassCount)] = {};
  uint64_t total_hops_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace contjoin::sim

#endif  // CONTJOIN_SIM_NET_STATS_H_
