// Network traffic accounting. One overlay hop = one message transmission =
// one unit of traffic, the cost model used throughout the paper.

#ifndef CONTJOIN_SIM_NET_STATS_H_
#define CONTJOIN_SIM_NET_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace contjoin::sim {

/// Message categories tallied by the network layer. A multisend batch
/// transmission counts as one hop under the batch's class (that sharing is
/// exactly why the recursive multisend is cheaper in practice).
enum class MsgClass : int {
  kLookup = 0,      // Plain DHT lookups (find_successor probes).
  kMaintenance,     // Stabilize / notify / fix-finger / join traffic.
  kQueryIndex,      // query() messages indexing a query at attribute level.
  kTupleIndex,      // al-index/vl-index batches of a tuple insertion.
  kRewrittenQuery,  // join(q') reindexing messages.
  kNotification,    // Notification delivery.
  kControl,         // Unsubscribe / IP updates / misc control.
  kOneTime,         // PIER-style one-time join traffic (baseline).
  kClassCount,
};

/// Human-readable class name.
const char* MsgClassName(MsgClass c);

/// Flat counters; cheap to snapshot and diff, which is how the benchmarks
/// measure the traffic of a workload phase. Increments are relaxed atomics
/// so concurrently executing event shards can account hops without locks:
/// the totals are exact because relaxed add is still atomic, and snapshots
/// are only taken at serial quiescent points between simulator epochs.
class NetStats {
 public:
  NetStats() = default;
  NetStats(const NetStats& other) { CopyFrom(other); }
  NetStats& operator=(const NetStats& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void AddHop(MsgClass c) {
    per_class_[static_cast<size_t>(c)].fetch_add(1,
                                                 std::memory_order_relaxed);
    total_hops_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddHops(MsgClass c, uint64_t n) {
    per_class_[static_cast<size_t>(c)].fetch_add(n,
                                                 std::memory_order_relaxed);
    total_hops_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddDrop(MsgClass c) {
    dropped_per_class_[static_cast<size_t>(c)].fetch_add(
        1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Bytes-on-wire for one encoded frame. Only accounted when the engine
  /// installs a frame sizer (wire-format encoding has a real cost, so the
  /// meter is opt-in); zero otherwise.
  void AddBytes(MsgClass c, uint64_t n) {
    bytes_per_class_[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
    total_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Backpressure accounting (serving extension): a delivery refused
  /// outright at the high-water mark, or pushed to a later epoch.
  void AddShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void AddDeferred() { deferred_.fetch_add(1, std::memory_order_relaxed); }
  /// Adaptive load manager accounting: directives decided, arrivals
  /// redirected away from dead keys, state batches re-shipped.
  void AddAdaptDirective() {
    adapt_directives_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddAdaptRedirect() {
    adapt_redirects_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddAdaptReship() {
    adapt_reshipped_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t hops(MsgClass c) const {
    return per_class_[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_hops() const {
    return total_hops_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t dropped(MsgClass c) const {
    return dropped_per_class_[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
  }
  uint64_t bytes(MsgClass c) const {
    return bytes_per_class_[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t deferred() const {
    return deferred_.load(std::memory_order_relaxed);
  }
  uint64_t adapt_directives() const {
    return adapt_directives_.load(std::memory_order_relaxed);
  }
  uint64_t adapt_redirects() const {
    return adapt_redirects_.load(std::memory_order_relaxed);
  }
  uint64_t adapt_reshipped() const {
    return adapt_reshipped_.load(std::memory_order_relaxed);
  }

  void Reset();

  /// Difference (*this - earlier), per class; used to isolate a phase.
  NetStats Since(const NetStats& earlier) const;

  /// Multi-line per-class report.
  std::string Report() const;

 private:
  static constexpr size_t kNumClasses =
      static_cast<size_t>(MsgClass::kClassCount);

  void CopyFrom(const NetStats& other) {
    for (size_t i = 0; i < kNumClasses; ++i) {
      per_class_[i].store(
          other.per_class_[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      dropped_per_class_[i].store(
          other.dropped_per_class_[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      bytes_per_class_[i].store(
          other.bytes_per_class_[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    total_hops_.store(other.total_hops_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    dropped_.store(other.dropped_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    total_bytes_.store(other.total_bytes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    shed_.store(other.shed_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    deferred_.store(other.deferred_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    adapt_directives_.store(
        other.adapt_directives_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    adapt_redirects_.store(
        other.adapt_redirects_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    adapt_reshipped_.store(
        other.adapt_reshipped_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }

  std::atomic<uint64_t> per_class_[kNumClasses] = {};
  std::atomic<uint64_t> dropped_per_class_[kNumClasses] = {};
  std::atomic<uint64_t> bytes_per_class_[kNumClasses] = {};
  std::atomic<uint64_t> total_hops_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deferred_{0};
  std::atomic<uint64_t> adapt_directives_{0};
  std::atomic<uint64_t> adapt_redirects_{0};
  std::atomic<uint64_t> adapt_reshipped_{0};
};

}  // namespace contjoin::sim

#endif  // CONTJOIN_SIM_NET_STATS_H_
