// Discrete-event simulator: a virtual clock plus a deterministic FIFO event
// queue. All overlay traffic, stabilization timers and tuple/query arrivals
// are events. The core executes events in virtual-time epochs: every event
// at the current minimum timestamp forms one batch; a batch whose events all
// carry a destination shard may be fanned across a worker pool, and the
// events each handler schedules are merged back into the queue in a
// canonical order, so the same seed yields bit-identical traffic, metrics
// and notification sets at any thread count.

#ifndef CONTJOIN_SIM_SIMULATOR_H_
#define CONTJOIN_SIM_SIMULATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace contjoin::sim {

/// Virtual time, in abstract ticks. Tuple publication times and query
/// insertion times are simulator timestamps.
using SimTime = uint64_t;

/// Shard id for events with no single-node destination; such events force
/// their epoch batch onto the serial path.
inline constexpr uint64_t kNoShard = ~uint64_t{0};

/// Cancellation handle for a scheduled event. Setting the flag makes the
/// simulator discard the event without running it — and, critically,
/// without advancing the virtual clock to its timestamp. This is what keeps
/// speculative far-future timers (reliability retry backoff) from
/// stretching every drain-to-empty out to their horizon: a cancelled timer
/// simply never happened. The flag is atomic because handlers running on
/// worker threads cancel timers mid-epoch; discards only happen on the
/// coordinating thread between epochs, after the pool barrier, so
/// cancellation is deterministic at any worker count (an event and its
/// cancellation in the same epoch batch: the event still runs — batch
/// membership is fixed before execution on both the serial and parallel
/// paths).
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/// Makes a fresh, unset cancellation token.
inline CancelToken MakeCancelToken() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Deterministic discrete-event scheduler.
///
/// Events scheduled for the same timestamp run in scheduling order (FIFO),
/// which makes a zero-latency message cascade deterministic: the full
/// consequence chain of one insertion drains before the next insertion that
/// was scheduled at a later time.
///
/// Determinism contract for parallel execution: events in one epoch batch
/// are grouped by shard; groups run concurrently but each group preserves
/// FIFO order, and handlers sharing a shard never interleave. Events
/// scheduled by a running handler are buffered per event and merged on the
/// coordinating thread in (batch position, scheduling order), receiving the
/// exact sequence numbers serial execution would have assigned.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `action` to run `delay` ticks from now.
  void Schedule(SimTime delay, Action action) {
    ScheduleShardedAt(now_ + delay, kNoShard, std::move(action));
  }

  /// Schedules `action` at an absolute virtual time (>= Now()).
  void ScheduleAt(SimTime when, Action action) {
    ScheduleShardedAt(when, kNoShard, std::move(action));
  }

  /// Schedules `action` under `shard` (the destination node's serial):
  /// within one epoch all events of a shard run on one thread, in order.
  void ScheduleSharded(SimTime delay, uint64_t shard, Action action) {
    ScheduleShardedAt(now_ + delay, shard, std::move(action));
  }

  /// Absolute-time form of ScheduleSharded. Safe to call from inside a
  /// running handler on any worker thread: the event lands in the
  /// handler's child buffer and is merged canonically after the epoch.
  void ScheduleShardedAt(SimTime when, uint64_t shard, Action action) {
    ScheduleShardedAt(when, shard, std::move(action), nullptr);
  }

  /// ScheduleSharded with a cancellation handle: if `*cancel` is set before
  /// the event's epoch forms, the event is dropped without running and
  /// without the clock ever reaching its timestamp.
  void ScheduleCancellable(SimTime delay, uint64_t shard, CancelToken cancel,
                           Action action) {
    ScheduleShardedAt(now_ + delay, shard, std::move(action),
                      std::move(cancel));
  }

  /// Runs events until the queue drains. Returns the number of events run.
  size_t Run();

  /// Runs events with timestamp <= `until` (the clock stops at `until` even
  /// if the queue drained earlier). Returns the number of events run.
  size_t RunUntil(SimTime until);

  /// Advances the clock without running events (used by drivers to space
  /// arrivals when the queue is empty).
  void AdvanceTo(SimTime when) {
    CJ_CHECK(when >= now_) << "clock cannot move backwards";
    now_ = when;
  }

  /// Sets the worker count (>= 1; 1 disables the pool). Must be called
  /// between runs, never from inside a handler. The CONTJOIN_THREADS
  /// environment variable provides the initial value.
  void SetWorkers(int workers);
  int workers() const { return workers_; }

  /// Hook invoked after every handler returns, on the thread that ran it
  /// and while its scheduling context is still installed (the network layer
  /// uses this to seal per-destination coalescing buffers).
  void set_post_action_hook(std::function<void()> hook) {
    post_action_hook_ = std::move(hook);
  }

  /// True when the calling thread is currently executing an event of this
  /// simulator.
  bool InExecution() const;

  size_t pending_events() const { return queue_.size(); }
  uint64_t total_events_run() const { return events_run_; }
  uint64_t parallel_batches_run() const { return parallel_batches_run_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak within a timestamp.
    uint64_t shard;
    Action action;
    CancelToken cancel;  // Null for the (common) non-cancellable case.
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // An event scheduled by a handler mid-epoch, before it has a seq.
  struct PendingChild {
    SimTime when;
    uint64_t shard;
    Action action;
    CancelToken cancel;
  };
  // Installed in thread-local storage around every handler invocation;
  // `children` is null on the serial path (children push straight into the
  // queue, preserving the historical single-threaded behaviour bit for
  // bit).
  struct ExecContext {
    Simulator* sim = nullptr;
    std::vector<PendingChild>* children = nullptr;
  };

  // Minimum epoch width worth fanning out; below this the barrier overhead
  // dominates and the serial path is both faster and trivially identical.
  static constexpr size_t kMinParallelBatch = 4;

  void ScheduleShardedAt(SimTime when, uint64_t shard, Action action,
                         CancelToken cancel);
  /// Pops cancelled events off the queue head without running them or
  /// moving the clock. Called between epochs, on the coordinating thread.
  void DiscardCancelled();
  size_t RunBatch();
  void ExecuteSerial();
  void ExecuteParallel();
  void RunEvent(size_t index, std::vector<PendingChild>* children);
  void ProcessGroups();
  void WorkerLoop();
  void EnsurePool();
  void StopPool();

  static thread_local ExecContext exec_context_;

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  uint64_t parallel_batches_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::function<void()> post_action_hook_;

  // Epoch scratch state, owned by the coordinating thread; workers read it
  // only between the generation hand-off and their active-count decrement,
  // both of which synchronize through pool_mu_.
  std::vector<Event> batch_;
  std::vector<std::vector<PendingChild>> child_bufs_;
  std::vector<uint32_t> group_order_;   // Batch indices, grouped by shard.
  std::vector<uint32_t> group_bounds_;  // group_order_ slice boundaries.
  std::atomic<size_t> next_group_{0};

  int workers_ = 1;
  std::vector<std::thread> pool_;
  std::mutex pool_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t work_generation_ = 0;
  size_t workers_active_ = 0;
  bool shutdown_ = false;
};

}  // namespace contjoin::sim

#endif  // CONTJOIN_SIM_SIMULATOR_H_
