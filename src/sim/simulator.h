// Discrete-event simulator: a virtual clock plus a deterministic FIFO event
// queue. All overlay traffic, stabilization timers and tuple/query arrivals
// are events; the simulator is single-threaded and fully reproducible.

#ifndef CONTJOIN_SIM_SIMULATOR_H_
#define CONTJOIN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace contjoin::sim {

/// Virtual time, in abstract ticks. Tuple publication times and query
/// insertion times are simulator timestamps.
using SimTime = uint64_t;

/// Deterministic discrete-event scheduler.
///
/// Events scheduled for the same timestamp run in scheduling order (FIFO),
/// which makes a zero-latency message cascade deterministic: the full
/// consequence chain of one insertion drains before the next insertion that
/// was scheduled at a later time.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `action` to run `delay` ticks from now.
  void Schedule(SimTime delay, Action action) {
    ScheduleAt(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute virtual time (>= Now()).
  void ScheduleAt(SimTime when, Action action);

  /// Runs events until the queue drains. Returns the number of events run.
  size_t Run();

  /// Runs events with timestamp <= `until` (the clock stops at `until` even
  /// if the queue drained earlier). Returns the number of events run.
  size_t RunUntil(SimTime until);

  /// Advances the clock without running events (used by drivers to space
  /// arrivals when the queue is empty).
  void AdvanceTo(SimTime when) {
    CJ_CHECK(when >= now_) << "clock cannot move backwards";
    now_ = when;
  }

  size_t pending_events() const { return queue_.size(); }
  uint64_t total_events_run() const { return events_run_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak within a timestamp.
    Action action;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace contjoin::sim

#endif  // CONTJOIN_SIM_SIMULATOR_H_
