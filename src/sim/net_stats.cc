#include "sim/net_stats.h"

#include <sstream>

namespace contjoin::sim {

const char* MsgClassName(MsgClass c) {
  switch (c) {
    case MsgClass::kLookup:
      return "lookup";
    case MsgClass::kMaintenance:
      return "maintenance";
    case MsgClass::kQueryIndex:
      return "query-index";
    case MsgClass::kTupleIndex:
      return "tuple-index";
    case MsgClass::kRewrittenQuery:
      return "join";
    case MsgClass::kNotification:
      return "notification";
    case MsgClass::kControl:
      return "control";
    case MsgClass::kOneTime:
      return "one-time";
    case MsgClass::kClassCount:
      break;
  }
  return "unknown";
}

void NetStats::Reset() {
  for (size_t i = 0; i < kNumClasses; ++i) {
    per_class_[i].store(0, std::memory_order_relaxed);
    dropped_per_class_[i].store(0, std::memory_order_relaxed);
    bytes_per_class_[i].store(0, std::memory_order_relaxed);
  }
  total_hops_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  total_bytes_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  deferred_.store(0, std::memory_order_relaxed);
  adapt_directives_.store(0, std::memory_order_relaxed);
  adapt_redirects_.store(0, std::memory_order_relaxed);
  adapt_reshipped_.store(0, std::memory_order_relaxed);
}

NetStats NetStats::Since(const NetStats& earlier) const {
  NetStats out;
  for (size_t i = 0; i < kNumClasses; ++i) {
    out.per_class_[i].store(
        per_class_[i].load(std::memory_order_relaxed) -
            earlier.per_class_[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    out.dropped_per_class_[i].store(
        dropped_per_class_[i].load(std::memory_order_relaxed) -
            earlier.dropped_per_class_[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    out.bytes_per_class_[i].store(
        bytes_per_class_[i].load(std::memory_order_relaxed) -
            earlier.bytes_per_class_[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  out.total_hops_.store(
      total_hops_.load(std::memory_order_relaxed) -
          earlier.total_hops_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  out.dropped_.store(dropped_.load(std::memory_order_relaxed) -
                         earlier.dropped_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  out.total_bytes_.store(
      total_bytes_.load(std::memory_order_relaxed) -
          earlier.total_bytes_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  out.shed_.store(shed_.load(std::memory_order_relaxed) -
                      earlier.shed_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  out.deferred_.store(
      deferred_.load(std::memory_order_relaxed) -
          earlier.deferred_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  out.adapt_directives_.store(
      adapt_directives_.load(std::memory_order_relaxed) -
          earlier.adapt_directives_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  out.adapt_redirects_.store(
      adapt_redirects_.load(std::memory_order_relaxed) -
          earlier.adapt_redirects_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  out.adapt_reshipped_.store(
      adapt_reshipped_.load(std::memory_order_relaxed) -
          earlier.adapt_reshipped_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return out;
}

std::string NetStats::Report() const {
  std::ostringstream out;
  out << "total overlay hops: " << total_hops();
  if (dropped() > 0) out << " (dropped: " << dropped() << ")";
  out << "\n";
  for (size_t i = 0; i < kNumClasses; ++i) {
    const MsgClass c = static_cast<MsgClass>(i);
    if (hops(c) == 0 && dropped(c) == 0) continue;
    out << "  " << MsgClassName(c) << ": " << hops(c);
    if (dropped(c) > 0) out << " (dropped: " << dropped(c) << ")";
    out << "\n";
  }
  // Backpressure lines only appear when the serving extension is active,
  // keeping legacy reports (and their golden digests) byte-identical.
  if (shed() > 0) out << "  backpressure shed: " << shed() << "\n";
  if (deferred() > 0) out << "  backpressure deferred: " << deferred() << "\n";
  // Likewise, adaptive-manager lines only appear when it acted.
  if (adapt_directives() > 0) {
    out << "  adapt directives: " << adapt_directives() << "\n";
  }
  if (adapt_redirects() > 0) {
    out << "  adapt redirects: " << adapt_redirects() << "\n";
  }
  if (adapt_reshipped() > 0) {
    out << "  adapt re-shipped: " << adapt_reshipped() << "\n";
  }
  return out.str();
}

}  // namespace contjoin::sim
