#include "sim/net_stats.h"

#include <cstring>
#include <sstream>

namespace contjoin::sim {

const char* MsgClassName(MsgClass c) {
  switch (c) {
    case MsgClass::kLookup:
      return "lookup";
    case MsgClass::kMaintenance:
      return "maintenance";
    case MsgClass::kQueryIndex:
      return "query-index";
    case MsgClass::kTupleIndex:
      return "tuple-index";
    case MsgClass::kRewrittenQuery:
      return "join";
    case MsgClass::kNotification:
      return "notification";
    case MsgClass::kControl:
      return "control";
    case MsgClass::kOneTime:
      return "one-time";
    case MsgClass::kClassCount:
      break;
  }
  return "unknown";
}

void NetStats::Reset() {
  std::memset(per_class_, 0, sizeof(per_class_));
  std::memset(dropped_per_class_, 0, sizeof(dropped_per_class_));
  total_hops_ = 0;
  dropped_ = 0;
}

NetStats NetStats::Since(const NetStats& earlier) const {
  NetStats out;
  for (size_t i = 0; i < static_cast<size_t>(MsgClass::kClassCount); ++i) {
    out.per_class_[i] = per_class_[i] - earlier.per_class_[i];
    out.dropped_per_class_[i] =
        dropped_per_class_[i] - earlier.dropped_per_class_[i];
  }
  out.total_hops_ = total_hops_ - earlier.total_hops_;
  out.dropped_ = dropped_ - earlier.dropped_;
  return out;
}

std::string NetStats::Report() const {
  std::ostringstream out;
  out << "total overlay hops: " << total_hops_;
  if (dropped_ > 0) out << " (dropped: " << dropped_ << ")";
  out << "\n";
  for (size_t i = 0; i < static_cast<size_t>(MsgClass::kClassCount); ++i) {
    if (per_class_[i] == 0 && dropped_per_class_[i] == 0) continue;
    out << "  " << MsgClassName(static_cast<MsgClass>(i)) << ": "
        << per_class_[i];
    if (dropped_per_class_[i] > 0) {
      out << " (dropped: " << dropped_per_class_[i] << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace contjoin::sim
