// The finger-partitioned DHT broadcast primitive (used by the one-time
// join baseline).

#include <gtest/gtest.h>

#include <map>

#include "chord_test_util.h"
#include "sim/simulator.h"

namespace contjoin::chord {
namespace {

class BroadcastTest : public ::testing::Test {
 protected:
  void Build(size_t n) {
    network_ = std::make_unique<Network>(&sim_);
    nodes_ = network_->BuildIdealRing(n);
    app_ = std::make_unique<CaptureApp>();
    for (Node* node : nodes_) node->set_app(app_.get());
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
  std::vector<Node*> nodes_;
  std::unique_ptr<CaptureApp> app_;
};

TEST_F(BroadcastTest, ReachesEveryNodeExactlyOnce) {
  for (size_t n : {1u, 2u, 3u, 8u, 64u, 257u}) {
    Build(n);
    nodes_[0]->Broadcast(std::make_shared<TaggedPayload>(7),
                         sim::MsgClass::kControl);
    sim_.Run();
    std::map<Node*, int> received;
    for (const auto& d : app_->deliveries) ++received[d.node];
    EXPECT_EQ(received.size(), n) << "ring size " << n;
    for (const auto& [node, count] : received) {
      EXPECT_EQ(count, 1) << "duplicate delivery at ring size " << n;
    }
  }
}

TEST_F(BroadcastTest, CostsOneMessagePerOtherNode) {
  Build(128);
  uint64_t before = network_->stats().total_hops();
  nodes_[5]->Broadcast(std::make_shared<TaggedPayload>(1),
                       sim::MsgClass::kControl);
  sim_.Run();
  EXPECT_EQ(network_->stats().total_hops() - before, 127u);
}

TEST_F(BroadcastTest, AnyOriginWorks) {
  Build(50);
  for (size_t origin : {0u, 17u, 49u}) {
    app_->deliveries.clear();
    nodes_[origin]->Broadcast(std::make_shared<TaggedPayload>(2),
                              sim::MsgClass::kControl);
    sim_.Run();
    EXPECT_EQ(app_->deliveries.size(), 50u);
  }
}

TEST_F(BroadcastTest, SkipsDeadNodes) {
  Build(32);
  nodes_[3]->Fail();
  nodes_[9]->Fail();
  network_->RewireIdeal();
  nodes_[0]->Broadcast(std::make_shared<TaggedPayload>(3),
                       sim::MsgClass::kControl);
  sim_.Run();
  EXPECT_EQ(app_->deliveries.size(), 30u);
  for (const auto& d : app_->deliveries) {
    EXPECT_TRUE(d.node->alive());
  }
}

TEST_F(BroadcastTest, WorksOnProtocolBuiltRing) {
  sim::Simulator sim;
  Network network(&sim);
  CaptureApp app;
  Node* seed = network.CreateAndJoin("seed", nullptr);
  for (int i = 0; i < 19; ++i) {
    network.CreateAndJoin("n-" + std::to_string(i), seed);
    network.RunMaintenanceRound(4);
  }
  network.StabilizeUntilConsistent(200);
  for (Node* n : network.AliveNodes()) n->set_app(&app);
  seed->Broadcast(std::make_shared<TaggedPayload>(4),
                  sim::MsgClass::kControl);
  sim.Run();
  EXPECT_EQ(app.deliveries.size(), 20u);
}

}  // namespace
}  // namespace contjoin::chord
