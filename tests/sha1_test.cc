#include "common/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace contjoin {
namespace {

std::string HexOf(std::string_view input) {
  return Sha1::ToHex(Sha1::Hash(input));
}

// RFC 3174 / FIPS 180-1 test vectors.
TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(HexOf(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(HexOf("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      HexOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(Sha1::ToHex(hasher.Finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(HexOf("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg =
      "Distributed evaluation of continuous equi-join queries over large "
      "structured overlay networks";
  Sha1 hasher;
  for (char c : msg) hasher.Update(&c, 1);
  EXPECT_EQ(hasher.Finish(), Sha1::Hash(msg));
}

TEST(Sha1Test, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha1 a;
    a.Update(msg);
    Sha1 b;
    b.Update(msg.substr(0, len / 2));
    b.Update(msg.substr(len / 2));
    EXPECT_EQ(a.Finish(), b.Finish()) << "length " << len;
  }
}

TEST(Sha1Test, ResetReusesHasher) {
  Sha1 hasher;
  hasher.Update("garbage");
  (void)hasher.Finish();
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(Sha1::ToHex(hasher.Finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1::Hash("R+A"), Sha1::Hash("R+B"));
  EXPECT_NE(Sha1::Hash("R+A+1"), Sha1::Hash("R+A+10"));
}

}  // namespace
}  // namespace contjoin
