#include "query/expr.h"

#include <gtest/gtest.h>

namespace contjoin::query {
namespace {

using rel::RelationSchema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : r_("R", {{"A", ValueType::kInt},
                 {"B", ValueType::kInt},
                 {"C", ValueType::kDouble},
                 {"N", ValueType::kString}}),
        s_("S", {{"D", ValueType::kInt}, {"E", ValueType::kString}}) {
    schemas_[0] = &r_;
    schemas_[1] = &s_;
  }

  static AttrRef Ref(int side, size_t index, std::string display) {
    AttrRef ref;
    ref.side = side;
    ref.attr_index = index;
    ref.display = std::move(display);
    return ref;
  }

  std::unique_ptr<Expr> RA() { return Expr::Attr(Ref(0, 0, "R.A")); }
  std::unique_ptr<Expr> RB() { return Expr::Attr(Ref(0, 1, "R.B")); }
  std::unique_ptr<Expr> RC() { return Expr::Attr(Ref(0, 2, "R.C")); }
  std::unique_ptr<Expr> RN() { return Expr::Attr(Ref(0, 3, "R.N")); }
  static std::unique_ptr<Expr> C(int64_t v) {
    return Expr::Const(Value::Int(v));
  }

  RelationSchema r_, s_;
  const RelationSchema* schemas_[2];
};

TEST_F(ExprTest, EvalConstAndAttr) {
  Tuple t("R", {Value::Int(4), Value::Int(9), Value::Double(2.5),
                Value::Str("x")},
          0, 0);
  EXPECT_EQ(C(7)->EvalSingle(0, t).value(), Value::Int(7));
  EXPECT_EQ(RA()->EvalSingle(0, t).value(), Value::Int(4));
  EXPECT_EQ(RN()->EvalSingle(0, t).value(), Value::Str("x"));
}

TEST_F(ExprTest, EvalArithmeticIntPreserving) {
  Tuple t("R", {Value::Int(4), Value::Int(9), Value::Double(2.5),
                Value::Str("x")},
          0, 0);
  // 4*R.A + R.B + 8 = 16 + 9 + 8 = 33, stays integer.
  auto e = Expr::Binary(
      Expr::Kind::kAdd,
      Expr::Binary(Expr::Kind::kAdd,
                   Expr::Binary(Expr::Kind::kMul, C(4), RA()), RB()),
      C(8));
  Value v = e->EvalSingle(0, t).value();
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.as_int(), 33);
}

TEST_F(ExprTest, EvalMixedPromotesToDouble) {
  Tuple t("R", {Value::Int(4), Value::Int(9), Value::Double(2.5),
                Value::Str("x")},
          0, 0);
  auto e = Expr::Binary(Expr::Kind::kAdd, RA(), RC());
  Value v = e->EvalSingle(0, t).value();
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_EQ(v.as_double(), 6.5);
}

TEST_F(ExprTest, EvalNegation) {
  Tuple t("R", {Value::Int(4), Value::Int(9), Value::Double(2.5),
                Value::Str("x")},
          0, 0);
  auto e = Expr::Unary(Expr::Kind::kNeg, RA());
  EXPECT_EQ(e->EvalSingle(0, t).value(), Value::Int(-4));
}

TEST_F(ExprTest, EvalErrors) {
  Tuple t("R", {Value::Int(4), Value::Int(9), Value::Double(2.5),
                Value::Str("x")},
          0, 0);
  // Arithmetic on string.
  auto e1 = Expr::Binary(Expr::Kind::kAdd, RN(), C(1));
  EXPECT_FALSE(e1->EvalSingle(0, t).ok());
  // Division by zero.
  auto e2 = Expr::Binary(Expr::Kind::kDiv, RA(), C(0));
  EXPECT_FALSE(e2->EvalSingle(0, t).ok());
  // Unbound side.
  const Tuple* tuples[2] = {nullptr, nullptr};
  EXPECT_FALSE(RA()->Eval(tuples, 2).ok());
}

TEST_F(ExprTest, CollectAttrs) {
  auto e = Expr::Binary(Expr::Kind::kAdd,
                        Expr::Binary(Expr::Kind::kMul, C(4), RA()), RB());
  auto attrs = e->Attrs();
  EXPECT_EQ(attrs.size(), 2u);
}

TEST_F(ExprTest, ToStringRoundTrip) {
  auto e = Expr::Binary(Expr::Kind::kSub,
                        Expr::Binary(Expr::Kind::kMul, C(5), RA()), C(2));
  EXPECT_EQ(e->ToString(), "((5 * R.A) - 2)");
}

TEST_F(ExprTest, AnalyzeLinearBareAttribute) {
  auto form = AnalyzeLinear(*RA(), schemas_);
  ASSERT_TRUE(form.has_value());
  EXPECT_TRUE(form->bare);
  EXPECT_EQ(form->ref.attr_index, 0u);
}

TEST_F(ExprTest, AnalyzeLinearBareStringAttributeAllowed) {
  auto form = AnalyzeLinear(*RN(), schemas_);
  ASSERT_TRUE(form.has_value());
  EXPECT_TRUE(form->bare);
}

TEST_F(ExprTest, AnalyzeLinearAffineForm) {
  // 5*A - 2  ->  scale 5, offset -2.
  auto e = Expr::Binary(Expr::Kind::kSub,
                        Expr::Binary(Expr::Kind::kMul, C(5), RA()), C(2));
  auto form = AnalyzeLinear(*e, schemas_);
  ASSERT_TRUE(form.has_value());
  EXPECT_FALSE(form->bare);
  EXPECT_EQ(form->scale, 5.0);
  EXPECT_EQ(form->offset, -2.0);
}

TEST_F(ExprTest, AnalyzeLinearCombinesSameAttribute) {
  // A + 2*A + 1 -> 3A + 1.
  auto e = Expr::Binary(
      Expr::Kind::kAdd,
      Expr::Binary(Expr::Kind::kAdd, RA(),
                   Expr::Binary(Expr::Kind::kMul, C(2), RA())),
      C(1));
  auto form = AnalyzeLinear(*e, schemas_);
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->scale, 3.0);
  EXPECT_EQ(form->offset, 1.0);
}

TEST_F(ExprTest, AnalyzeLinearDivisionByConstant) {
  auto e = Expr::Binary(Expr::Kind::kDiv, RA(), C(4));
  auto form = AnalyzeLinear(*e, schemas_);
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->scale, 0.25);
}

TEST_F(ExprTest, AnalyzeLinearRejectsTwoAttributes) {
  auto e = Expr::Binary(Expr::Kind::kAdd, RA(), RB());
  EXPECT_FALSE(AnalyzeLinear(*e, schemas_).has_value());
}

TEST_F(ExprTest, AnalyzeLinearRejectsQuadratic) {
  auto e = Expr::Binary(Expr::Kind::kMul, RA(), RA());
  EXPECT_FALSE(AnalyzeLinear(*e, schemas_).has_value());
}

TEST_F(ExprTest, AnalyzeLinearRejectsAttrInDenominator) {
  auto e = Expr::Binary(Expr::Kind::kDiv, C(1), RA());
  EXPECT_FALSE(AnalyzeLinear(*e, schemas_).has_value());
}

TEST_F(ExprTest, AnalyzeLinearRejectsZeroScale) {
  // A - A has scale 0: no unique solution.
  auto e = Expr::Binary(Expr::Kind::kSub, RA(), RA());
  EXPECT_FALSE(AnalyzeLinear(*e, schemas_).has_value());
}

TEST_F(ExprTest, AnalyzeLinearRejectsConstantOnly) {
  EXPECT_FALSE(AnalyzeLinear(*C(5), schemas_).has_value());
}

TEST_F(ExprTest, AnalyzeLinearRejectsArithmeticOnStringAttr) {
  auto e = Expr::Binary(Expr::Kind::kAdd, RN(), C(1));
  EXPECT_FALSE(AnalyzeLinear(*e, schemas_).has_value());
}

TEST_F(ExprTest, InvertBareInt) {
  LinearForm form{Ref(0, 0, "R.A"), true, 1.0, 0.0};
  auto v = InvertLinear(form, ValueType::kInt, Value::Int(7));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Value::Int(7));
  // Fractional target cannot be an int attribute's value.
  EXPECT_FALSE(
      InvertLinear(form, ValueType::kInt, Value::Double(7.5)).has_value());
  // Integral double target is fine.
  EXPECT_EQ(*InvertLinear(form, ValueType::kInt, Value::Double(7.0)),
            Value::Int(7));
}

TEST_F(ExprTest, InvertBareString) {
  LinearForm form{Ref(0, 3, "R.N"), true, 1.0, 0.0};
  auto v = InvertLinear(form, ValueType::kString, Value::Str("Smith"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Value::Str("Smith"));
}

TEST_F(ExprTest, InvertAffine) {
  // 5x - 2 = 13  ->  x = 3.
  LinearForm form{Ref(0, 0, "R.A"), false, 5.0, -2.0};
  auto v = InvertLinear(form, ValueType::kInt, Value::Int(13));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Value::Int(3));
}

TEST_F(ExprTest, InvertAffineNonIntegralSolutionRejected) {
  // 2x = 5 -> x = 2.5: impossible for an int attribute (§4.3.2).
  LinearForm form{Ref(0, 0, "R.A"), false, 2.0, 0.0};
  EXPECT_FALSE(InvertLinear(form, ValueType::kInt, Value::Int(5)).has_value());
  // But fine for a double attribute.
  auto v = InvertLinear(form, ValueType::kDouble, Value::Int(5));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Value::Double(2.5));
}

TEST_F(ExprTest, InvertRejectsNonNumericTarget) {
  LinearForm form{Ref(0, 0, "R.A"), false, 2.0, 0.0};
  EXPECT_FALSE(
      InvertLinear(form, ValueType::kInt, Value::Str("abc")).has_value());
}

}  // namespace
}  // namespace contjoin::query
