// The classic DHT put/get interface (paper §2.1).

#include <gtest/gtest.h>

#include "chord_test_util.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace contjoin::chord {
namespace {

class DhtApiTest : public ::testing::Test {
 protected:
  void Build(size_t n) {
    network_ = std::make_unique<Network>(&sim_);
    nodes_ = network_->BuildIdealRing(n);
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
  std::vector<Node*> nodes_;
};

TEST_F(DhtApiTest, PutThenGetRoundTrips) {
  Build(64);
  NodeId key = HashKey("item-1");
  nodes_[3]->DhtPut(key, std::make_shared<TaggedPayload>(42));
  sim_.Run();
  // The item landed at the responsible node.
  Node* owner = network_->OracleSuccessor(key);
  EXPECT_EQ(owner->store().size(), 1u);

  std::vector<int> results;
  nodes_[17]->DhtGet(key, [&](std::vector<PayloadPtr> items) {
    for (const auto& item : items) {
      results.push_back(static_cast<const TaggedPayload*>(item.get())->tag);
    }
  });
  sim_.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 42);
  // get() copies: the item remains stored.
  EXPECT_EQ(owner->store().size(), 1u);
}

TEST_F(DhtApiTest, GetMissingKeyReturnsEmpty) {
  Build(32);
  bool called = false;
  nodes_[0]->DhtGet(HashKey("nothing"), [&](std::vector<PayloadPtr> items) {
    called = true;
    EXPECT_TRUE(items.empty());
  });
  sim_.Run();
  EXPECT_TRUE(called);
}

TEST_F(DhtApiTest, MultiplePutsAccumulate) {
  Build(32);
  NodeId key = HashKey("multi");
  for (int i = 0; i < 3; ++i) {
    nodes_[static_cast<size_t>(i)]->DhtPut(
        key, std::make_shared<TaggedPayload>(i));
    sim_.Run();
  }
  std::vector<PayloadPtr> got;
  nodes_[9]->DhtGet(key, [&](std::vector<PayloadPtr> items) {
    got = std::move(items);
  });
  sim_.Run();
  EXPECT_EQ(got.size(), 3u);
}

TEST_F(DhtApiTest, LocalGetCostsNoHops) {
  Build(16);
  NodeId key = HashKey("local");
  Node* owner = network_->OracleSuccessor(key);
  owner->DhtPut(key, std::make_shared<TaggedPayload>(1));
  sim_.Run();
  uint64_t before = network_->stats().total_hops();
  bool called = false;
  owner->DhtGet(key, [&](std::vector<PayloadPtr> items) {
    called = true;
    EXPECT_EQ(items.size(), 1u);
  });
  sim_.Run();
  EXPECT_TRUE(called);
  EXPECT_EQ(network_->stats().total_hops(), before);
}

TEST_F(DhtApiTest, ItemsFollowResponsibilityOnJoin) {
  // put() + protocol join: the Chord transfer rule moves stored items.
  sim::Simulator sim;
  Network network(&sim);
  Node* a = network.CreateAndJoin("a", nullptr);
  Node* b = network.CreateAndJoin("b", a);
  network.StabilizeUntilConsistent(100);
  NodeId key = HashKey("wanderer");
  a->DhtPut(key, std::make_shared<TaggedPayload>(7));
  sim.Run();
  // A third node whose range covers the key joins.
  Node* c = network.CreateAndJoin("c", a);
  network.StabilizeUntilConsistent(100);
  sim.Run();
  (void)b;
  Node* owner = network.OracleSuccessor(key);
  EXPECT_EQ(owner->store().size(), 1u) << "item did not follow ownership";
  (void)c;
}

TEST_F(DhtApiTest, GetCostIsLogarithmic) {
  Build(512);
  NodeId key = HashKey("cost");
  nodes_[0]->DhtPut(key, std::make_shared<TaggedPayload>(1));
  sim_.Run();
  uint64_t before = network_->stats().total_hops();
  int done = 0;
  const int kGets = 50;
  Rng rng(3);
  for (int i = 0; i < kGets; ++i) {
    nodes_[rng.NextBelow(nodes_.size())]->DhtGet(
        key, [&](std::vector<PayloadPtr>) { ++done; });
    sim_.Run();
  }
  EXPECT_EQ(done, kGets);
  double per_get =
      static_cast<double>(network_->stats().total_hops() - before) / kGets;
  EXPECT_LT(per_get, 2.0 + 9.0 * 2);  // route (~log2 512) + 1 response.
}

}  // namespace
}  // namespace contjoin::chord
