#!/usr/bin/env bash
# Loopback smoke test of the socket transport: boots a 5-process
# contjoin_noded ring, pushes a small SAI and DAI-V workload through
# contjoin_client, and diffs the delivered notification content keys
# against an identical in-process run (the oracle). Reliability is on, so
# the ack/retry/dedup path crosses process boundaries too.
#
# Usage: tcp_ring_smoke.sh <contjoin_noded> <contjoin_client>
set -u

NODED=$1
CLIENT=$2
DAEMONS=5
NODES=20
SEED=7
WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/script.txt" <<'EOF'
submit 0 SELECT R.A, S.D FROM R, S WHERE R.B = S.E
submit 7 SELECT Doc.Title, Auth.Name FROM Doc, Auth WHERE Doc.Id = Auth.Id
insert 1 R 10 5 100
insert 2 S 20 5 200
insert 3 R 11 5 101
insert 4 S 21 6 201
insert 8 R 12 6 102
insert 9 Doc 77 paper
insert 13 Auth alice 77
insert 11 S 22 6 202
insert 6 R 13 9 103
drain
EOF

run_ring() {
  local algo=$1 port_base=$2 attempt
  for attempt in 1 2 3; do
    local pids=()
    for i in $(seq 0 $((DAEMONS - 1))); do
      "$NODED" --index "$i" --daemons "$DAEMONS" --nodes "$NODES" \
        --port-base "$port_base" --algorithm "$algo" --reliability on \
        --seed "$SEED" &
      pids+=($!)
    done
    sleep 0.3
    if "$CLIENT" --daemons "$DAEMONS" --nodes "$NODES" \
        --port-base "$port_base" < "$WORKDIR/script.txt" \
        > "$WORKDIR/tcp_$algo.txt" 2> "$WORKDIR/tcp_$algo.err"; then
      wait "${pids[@]}" 2>/dev/null
      return 0
    fi
    # A daemon may have lost the port race; clean up and retry elsewhere.
    kill "${pids[@]}" 2>/dev/null
    wait "${pids[@]}" 2>/dev/null
    port_base=$((port_base + 100))
  done
  echo "FAIL($algo): client could not drive the ring" >&2
  cat "$WORKDIR/tcp_$algo.err" >&2
  return 1
}

status=0
port=$((20000 + RANDOM % 20000))
for algo in sai daiv; do
  if ! run_ring "$algo" "$port"; then
    status=1
    continue
  fi
  "$CLIENT" --oracle --daemons "$DAEMONS" --nodes "$NODES" \
    --algorithm "$algo" --reliability on --seed "$SEED" \
    < "$WORKDIR/script.txt" > "$WORKDIR/oracle_$algo.txt" 2>&1
  if ! diff -u "$WORKDIR/oracle_$algo.txt" "$WORKDIR/tcp_$algo.txt"; then
    echo "FAIL($algo): TCP ring and oracle notification sets differ" >&2
    status=1
  else
    echo "OK($algo): $(grep -c '|' "$WORKDIR/tcp_$algo.txt") notifications match the oracle"
  fi
  port=$((port + 10))
done
exit $status
