// Unit tests for the protocol role handlers exercised through a mock
// ProtocolContext — no simulator, no ring. Covers the §4.7 moved-identifier
// forwarding path of the rewriter, sliding-window expiry of the evaluator
// tables, and the dispatch registry's handling of unregistered types.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chord/node.h"
#include "chord/types.h"
#include "core/algorithm.h"
#include "core/context.h"
#include "core/dispatch.h"
#include "core/evaluator.h"
#include "core/messages.h"
#include "core/rewriter.h"
#include "core/state.h"
#include "relational/schema.h"

namespace contjoin::core {
namespace {

/// Minimal ProtocolContext: records every transport call and delivers
/// Transmit callbacks synchronously.
class MockContext : public ProtocolContext {
 public:
  explicit MockContext(Options options)
      : options_(std::move(options)), rng_(options_.seed) {}

  const Options& options() const override { return options_; }
  const AlgorithmStrategy& strategy() const override {
    return AlgorithmStrategy::For(options_.algorithm);
  }
  rel::Catalog& GetCatalog() override { return catalog_; }
  Rng& GetRng() override { return rng_; }
  rel::Timestamp now() const override { return now_time; }

  NodeState& StateOf(chord::Node& node) override {
    auto it = states_.find(&node);
    if (it == states_.end()) {
      it = states_
               .emplace(&node,
                        std::make_unique<NodeState>(options_.jfrt_capacity))
               .first;
    }
    return *it->second;
  }

  void Send(chord::Node&, chord::AppMessage msg) override {
    sent.push_back(std::move(msg));
  }
  void Multisend(chord::Node&, std::vector<chord::AppMessage> msgs,
                 sim::MsgClass) override {
    for (auto& m : msgs) sent.push_back(std::move(m));
  }
  void Transmit(chord::Node* from, chord::Node* to, sim::MsgClass cls,
                std::function<void()> deliver) override {
    transmits.push_back({from, to, cls});
    deliver();
  }
  void TransmitMessage(chord::Node& from, const chord::NodeId& to,
                       chord::AppMessage msg) override {
    transmitted.push_back({&from, to, std::move(msg)});
  }
  void CountHop(sim::MsgClass) override { ++hops; }
  void Redeliver(chord::Node& node, const chord::AppMessage& msg) override {
    redelivered.push_back({&node, msg});
  }
  chord::Node* NodeByKey(const std::string&) override { return nullptr; }
  chord::Node* NodeById(const chord::NodeId&) override { return nullptr; }
  void DepositNotification(chord::Node&, Notification n) override {
    inbox.push_back(std::move(n));
  }
  void AppendOtjResults(uint64_t, std::vector<Notification>) override {}
  uint64_t NextReliableId(chord::Node&) override {
    return ++next_reliable_id;
  }
  void ScheduleAfter(chord::Node&, sim::SimTime,
                     std::function<void()> fn) override {
    scheduled.push_back(std::move(fn));
  }

  struct TransmitRecord {
    chord::Node* from;
    chord::Node* to;
    sim::MsgClass cls;
  };
  struct TransmitMessageRecord {
    chord::Node* from;
    chord::NodeId to;
    chord::AppMessage msg;
  };

  rel::Timestamp now_time = 0;
  std::vector<chord::AppMessage> sent;
  std::vector<TransmitRecord> transmits;
  std::vector<TransmitMessageRecord> transmitted;
  std::vector<std::pair<chord::Node*, chord::AppMessage>> redelivered;
  std::vector<Notification> inbox;
  std::vector<std::function<void()>> scheduled;
  uint64_t hops = 0;
  uint64_t next_reliable_id = 0;

 private:
  Options options_;
  rel::Catalog catalog_;
  Rng rng_;
  std::unordered_map<chord::Node*, std::unique_ptr<NodeState>> states_;
};

chord::AppMessage AlTupleMessage(const std::string& level1) {
  auto p = std::make_shared<TupleIndexPayload>(/*value_level=*/false);
  p->tuple = std::make_shared<rel::Tuple>(
      "R", std::vector<rel::Value>{rel::Value::Int(1)}, /*pub_time=*/1,
      /*seq=*/1);
  p->level1 = level1;
  chord::AppMessage msg;
  msg.target = HashKey(level1);
  msg.cls = sim::MsgClass::kTupleIndex;
  msg.payload = std::move(p);
  return msg;
}

// --- Rewriter: §4.7 moved identifiers -----------------------------------------

TEST(RewriterForwardIfMoved, ForwardsToHolderAndRedelivers) {
  MockContext ctx{Options{}};
  chord::Node base(nullptr, "base", 0);
  chord::Node holder(nullptr, "holder", 0);
  holder.SetAliveDirect(true);

  const std::string mkey = rewriter::MKey("R+A", 0);
  rewriter::State& state = ctx.StateOf(base).rewriter;
  state.moved_attrs[mkey] = rewriter::State::MovedAttr{1, &holder};

  chord::AppMessage msg = AlTupleMessage("R+A");
  EXPECT_TRUE(rewriter::ForwardIfMoved(ctx, base, state, mkey, msg));

  // One typed point-to-point message base -> holder, addressed by the
  // holder's identifier (no raw pointer crosses the hop) and keeping the
  // original class and payload so it re-enters dispatch unchanged.
  ASSERT_EQ(ctx.transmitted.size(), 1u);
  EXPECT_EQ(ctx.transmitted[0].from, &base);
  EXPECT_EQ(ctx.transmitted[0].to, holder.id());
  EXPECT_EQ(ctx.transmitted[0].msg.cls, sim::MsgClass::kTupleIndex);
  EXPECT_EQ(ctx.transmitted[0].msg.payload, msg.payload);
}

TEST(RewriterForwardIfMoved, FallsBackToBaseWhenHolderIsDead) {
  MockContext ctx{Options{}};
  chord::Node base(nullptr, "base", 0);
  chord::Node holder(nullptr, "holder", 0);  // Never joined: not alive.

  const std::string mkey = rewriter::MKey("R+A", 0);
  rewriter::State& state = ctx.StateOf(base).rewriter;
  state.moved_attrs[mkey] = rewriter::State::MovedAttr{1, &holder};

  chord::AppMessage msg = AlTupleMessage("R+A");
  EXPECT_FALSE(rewriter::ForwardIfMoved(ctx, base, state, mkey, msg));
  // The stale pointer is dropped; the base node resumes the role.
  EXPECT_TRUE(state.moved_attrs.empty());
  EXPECT_TRUE(ctx.transmitted.empty());
}

TEST(RewriterForwardIfMoved, IgnoresUnmovedKeys) {
  MockContext ctx{Options{}};
  chord::Node base(nullptr, "base", 0);
  rewriter::State& state = ctx.StateOf(base).rewriter;

  chord::AppMessage msg = AlTupleMessage("R+A");
  EXPECT_FALSE(
      rewriter::ForwardIfMoved(ctx, base, state, rewriter::MKey("R+A", 0), msg));
  EXPECT_TRUE(ctx.transmitted.empty());
  EXPECT_TRUE(ctx.redelivered.empty());
}

// --- Evaluator: sliding-window expiry ------------------------------------------

TEST(EvaluatorExpiry, DropsOnlyTuplesOlderThanCutoff) {
  evaluator::State state;
  auto stored_at = [](rel::Timestamp pub, uint64_t seq) {
    StoredTuple s;
    s.tuple = std::make_shared<rel::Tuple>(
        "R", std::vector<rel::Value>{rel::Value::Int(7)}, pub, seq);
    return s;
  };
  state.vltt.Insert("R+A", "7", stored_at(5, 1));
  state.vltt.Insert("R+A", "7", stored_at(50, 2));
  state.daiv.Insert("7", "q1", 0, DaivStored{{}, /*pub_time=*/5, /*seq=*/3});
  state.daiv.Insert("7", "q1", 0, DaivStored{{}, /*pub_time=*/50, /*seq=*/4});

  EXPECT_EQ(evaluator::ExpireBefore(state, /*cutoff=*/20), 2u);
  EXPECT_EQ(state.vltt.size(), 1u);
  EXPECT_EQ(state.daiv.size(), 1u);

  // Survivors are the fresh ones.
  const auto* bucket = state.vltt.Find("R+A", "7");
  ASSERT_NE(bucket, nullptr);
  ASSERT_EQ(bucket->size(), 1u);
  EXPECT_EQ((*bucket)[0].tuple->pub_time(), 50u);

  // Expiring again at the same cutoff is a no-op.
  EXPECT_EQ(evaluator::ExpireBefore(state, /*cutoff=*/20), 0u);
}

// --- Dispatch registry ----------------------------------------------------------

int g_seam_handler_calls = 0;

void CountingHandler(ProtocolContext&, chord::Node&,
                     const chord::AppMessage&) {
  ++g_seam_handler_calls;
}

TEST(MessageDispatch, RejectsUnregisteredTypes) {
  MockContext ctx{Options{}};
  chord::Node node(nullptr, "n", 0);

  MessageDispatcher table;  // Nothing registered.
  chord::AppMessage msg = AlTupleMessage("R+A");
  EXPECT_FALSE(table.Dispatch(ctx, node, msg));

  const NodeMetrics& m = ctx.StateOf(node).metrics;
  EXPECT_EQ(m.msgs_unhandled, 1u);
  for (uint64_t count : m.received_by_type) EXPECT_EQ(count, 0u);
}

TEST(MessageDispatch, IgnoresNullPayloads) {
  MockContext ctx{Options{}};
  chord::Node node(nullptr, "n", 0);

  chord::AppMessage msg;  // No payload at all.
  EXPECT_FALSE(MessageDispatcher::Default().Dispatch(ctx, node, msg));
  EXPECT_EQ(ctx.StateOf(node).metrics.msgs_unhandled, 0u);
}

/// One default-constructed message of every CqMsgType, in enum order.
std::vector<chord::AppMessage> OneMessagePerType() {
  std::vector<std::shared_ptr<CqPayload>> payloads = {
      std::make_shared<QueryIndexPayload>(),
      std::make_shared<TupleIndexPayload>(/*value_level=*/false),
      std::make_shared<TupleIndexPayload>(/*value_level=*/true),
      std::make_shared<JoinPayload>(),
      std::make_shared<DaivJoinPayload>(),
      std::make_shared<NotificationPayload>(),
      std::make_shared<UnsubscribePayload>(),
      std::make_shared<IpUpdatePayload>(),
      std::make_shared<JfrtAckPayload>(),
      std::make_shared<MigrateCmdPayload>(),
      std::make_shared<MwQueryIndexPayload>(),
      std::make_shared<MwJoinPayload>(),
      std::make_shared<OtjScanPayload>(),
      std::make_shared<OtjRehashPayload>(),
      std::make_shared<DeliveryAckPayload>(),
      std::make_shared<NotificationDigestPayload>(),
      std::make_shared<AdaptReplicatePayload>(),
      std::make_shared<AdaptSplitPayload>(),
  };
  std::vector<chord::AppMessage> msgs;
  for (auto& p : payloads) {
    chord::AppMessage msg;
    msg.payload = std::move(p);
    msgs.push_back(std::move(msg));
  }
  return msgs;
}

TEST(MessageDispatch, DuplicateRegistrationIsRejected) {
  MessageDispatcher table;
  EXPECT_TRUE(table.Register(CqMsgType::kTupleAl, CountingHandler));
  // Second registration for the same type is refused and the original
  // handler keeps routing.
  EXPECT_FALSE(table.Register(CqMsgType::kTupleAl, nullptr));
  EXPECT_FALSE(table.Register(CqMsgType::kTupleAl, CountingHandler));

  MockContext ctx{Options{}};
  chord::Node node(nullptr, "n", 0);
  g_seam_handler_calls = 0;
  chord::AppMessage msg = AlTupleMessage("R+A");
  EXPECT_TRUE(table.Dispatch(ctx, node, msg));
  EXPECT_EQ(g_seam_handler_calls, 1);
}

TEST(MessageDispatch, DefaultTableCoversEveryEnumerator) {
  for (size_t i = 0; i < kCqMsgTypeCount; ++i) {
    EXPECT_TRUE(
        MessageDispatcher::Default().HasHandler(static_cast<CqMsgType>(i)))
        << "no default handler for CqMsgType " << i;
  }
}

TEST(MessageDispatch, CountsReceivedByTypeForEveryEnumerator) {
  MockContext ctx{Options{}};
  chord::Node node(nullptr, "n", 0);

  MessageDispatcher table;
  for (size_t i = 0; i < kCqMsgTypeCount; ++i) {
    EXPECT_TRUE(table.Register(static_cast<CqMsgType>(i), CountingHandler));
  }

  g_seam_handler_calls = 0;
  std::vector<chord::AppMessage> msgs = OneMessagePerType();
  ASSERT_EQ(msgs.size(), kCqMsgTypeCount);
  for (const chord::AppMessage& msg : msgs) {
    EXPECT_TRUE(table.Dispatch(ctx, node, msg));
  }
  EXPECT_EQ(g_seam_handler_calls, static_cast<int>(kCqMsgTypeCount));

  const NodeMetrics& m = ctx.StateOf(node).metrics;
  for (size_t i = 0; i < kCqMsgTypeCount; ++i) {
    EXPECT_EQ(m.received_by_type[i], 1u) << "type " << i;
  }
  EXPECT_EQ(m.msgs_unhandled, 0u);
}

TEST(MessageDispatch, CountsUnhandledForEveryEnumerator) {
  MockContext ctx{Options{}};
  chord::Node node(nullptr, "n", 0);

  MessageDispatcher empty;
  std::vector<chord::AppMessage> msgs = OneMessagePerType();
  for (const chord::AppMessage& msg : msgs) {
    EXPECT_FALSE(empty.Dispatch(ctx, node, msg));
  }

  const NodeMetrics& m = ctx.StateOf(node).metrics;
  EXPECT_EQ(m.msgs_unhandled, kCqMsgTypeCount);
  for (uint64_t count : m.received_by_type) EXPECT_EQ(count, 0u);
}

TEST(MessageDispatch, RoutesAndCountsRegisteredTypes) {
  MockContext ctx{Options{}};
  chord::Node node(nullptr, "n", 0);

  MessageDispatcher table;
  table.Register(CqMsgType::kTupleAl, CountingHandler);

  g_seam_handler_calls = 0;
  chord::AppMessage msg = AlTupleMessage("R+A");
  EXPECT_TRUE(table.Dispatch(ctx, node, msg));
  EXPECT_TRUE(table.Dispatch(ctx, node, msg));
  EXPECT_EQ(g_seam_handler_calls, 2);

  const NodeMetrics& m = ctx.StateOf(node).metrics;
  EXPECT_EQ(
      m.received_by_type[static_cast<size_t>(CqMsgType::kTupleAl)], 2u);
  EXPECT_EQ(m.msgs_unhandled, 0u);
}

}  // namespace
}  // namespace contjoin::core
