// Semantic edge cases and system-level properties: null handling (SQL
// semantics), cross-type value matching (the DHT's canonical-string
// convention), determinism, traffic bounds, and behaviour under nonzero
// hop latency.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/engine.h"
#include "query/parser.h"
#include "reference/reference_engine.h"
#include "workload/workload.h"

namespace contjoin::core {
namespace {

using rel::Value;

void RegisterRS(ContinuousQueryNetwork* net) {
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema(
                   "R", {{"A", rel::ValueType::kInt},
                         {"B", rel::ValueType::kInt}}))
               .ok());
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema(
                   "S", {{"D", rel::ValueType::kInt},
                         {"E", rel::ValueType::kInt}}))
               .ok());
}

class NullSemanticsTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(NullSemanticsTest, NullJoinValuesNeverMatch) {
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = GetParam();
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  ASSERT_TRUE(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                  .ok());
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Null()}).ok());
  // NULL = NULL is unknown, not true (SQL semantics).
  EXPECT_TRUE(net.TakeNotifications(0).empty());

  // Non-null values still join.
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(2), Value::Int(7)}).ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(6), Value::Int(7)}).ok());
  EXPECT_EQ(net.TakeNotifications(0).size(), 1u);
}

TEST_P(NullSemanticsTest, NullFailsPredicates) {
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = GetParam();
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  ASSERT_TRUE(net.SubmitQuery(
                     0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND "
                        "R.A >= 0")
                  .ok());
  // R.A is null: the predicate is unknown, the tuple cannot trigger.
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Null(), Value::Int(7)}).ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_TRUE(net.TakeNotifications(0).empty());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, NullSemanticsTest,
                         ::testing::Values(Algorithm::kSai, Algorithm::kDaiQ,
                                           Algorithm::kDaiT,
                                           Algorithm::kDaiV));

TEST(CrossTypeTest, NumericStringEquivalenceAtValueLevel) {
  // The DHT hashes canonical value strings (paper §4.2), so Int(2),
  // Double(2.0) and Str("2") are the same value-level key. The library
  // keeps local matching consistent with routing by using the same
  // convention everywhere.
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = Algorithm::kSai;
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(net.catalog()
               ->Register(rel::RelationSchema(
                   "R", {{"A", rel::ValueType::kInt},
                         {"B", rel::ValueType::kDouble}}))
               .ok());
  CJ_CHECK(net.catalog()
               ->Register(rel::RelationSchema(
                   "S", {{"D", rel::ValueType::kInt},
                         {"E", rel::ValueType::kInt}}))
               .ok());
  ASSERT_TRUE(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                  .ok());
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(1), Value::Double(7.0)})
                  .ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_EQ(net.TakeNotifications(0).size(), 1u);

  // A fractional double cannot equal any integer.
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(2), Value::Double(7.5)})
                  .ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(6), Value::Int(7)}).ok());
  auto notifications = net.TakeNotifications(0);
  // Only the (R.A=1, S.D=6) pair from the second S tuple.
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].row[0], Value::Int(1));
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  auto run = []() {
    workload::WorkloadOptions wopts;
    wopts.seed = 77;
    wopts.domain = 50;
    workload::WorkloadGenerator gen(wopts);
    Options opts;
    opts.num_nodes = 32;
    opts.algorithm = Algorithm::kDaiT;
    opts.seed = 77;
    auto net = std::make_unique<ContinuousQueryNetwork>(opts);
    CJ_CHECK(gen.RegisterSchemas(net->catalog()).ok());
    Rng placement(5);
    for (int i = 0; i < 15; ++i) {
      CJ_CHECK(net->SubmitQuery(placement.NextBelow(net->num_nodes()),
                                gen.NextQuerySql())
                   .ok());
    }
    for (int i = 0; i < 100; ++i) {
      auto [relation, values] = gen.NextTuple();
      CJ_CHECK(net->InsertTuple(placement.NextBelow(net->num_nodes()),
                                relation, std::move(values))
                   .ok());
    }
    std::multiset<std::string> contents;
    for (size_t i = 0; i < net->num_nodes(); ++i) {
      for (const auto& n : net->TakeNotifications(i)) {
        contents.insert(n.ContentKey());
      }
    }
    return std::make_pair(net->stats().total_hops(), contents);
  };
  auto [hops1, contents1] = run();
  auto [hops2, contents2] = run();
  EXPECT_EQ(hops1, hops2);
  EXPECT_EQ(contents1, contents2);
}

TEST(TrafficBoundTest, TupleIndexingCostIsLogarithmic) {
  // Paper §4.2: indexing a tuple of arity h costs 2h O(log N) hops; the
  // shared multisend path should keep it well under the naive bound.
  Options opts;
  opts.num_nodes = 256;
  opts.algorithm = Algorithm::kSai;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  const int kInserts = 100;
  uint64_t before = net.stats().hops(sim::MsgClass::kTupleIndex);
  Rng rng(9);
  for (int i = 0; i < kInserts; ++i) {
    ASSERT_TRUE(net.InsertTuple(rng.NextBelow(net.num_nodes()), "R",
                                {Value::Int(i),
                                 Value::Int(static_cast<int64_t>(
                                     rng.NextBelow(1000)))})
                    .ok());
  }
  double per_insert =
      static_cast<double>(net.stats().hops(sim::MsgClass::kTupleIndex) -
                          before) /
      kInserts;
  double naive_bound = 2.0 * 2.0 * std::log2(256.0);  // 2h * log2(N), h=2.
  EXPECT_LT(per_insert, naive_bound);
  EXPECT_GT(per_insert, 1.0);
}

TEST(LatencyTest, NonzeroHopLatencyPreservesAnswers) {
  // With per-hop latency the cascade spreads over virtual time; the facade
  // still drains every insertion's consequences, so answers are unchanged.
  workload::WorkloadOptions wopts;
  wopts.seed = 31;
  wopts.domain = 40;
  workload::WorkloadGenerator gen(wopts);
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = Algorithm::kDaiQ;
  opts.chord.hop_latency = 3;
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());
  ref::ReferenceEngine oracle;
  Rng placement(4);
  uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) {
    std::string sql = gen.NextQuerySql();
    auto key = net.SubmitQuery(placement.NextBelow(net.num_nodes()), sql);
    ASSERT_TRUE(key.ok());
    auto parsed = query::ParseQuery(sql, *net.catalog());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }
  for (int i = 0; i < 80; ++i) {
    auto [relation, values] = gen.NextTuple();
    auto copy = values;
    ASSERT_TRUE(net.InsertTuple(placement.NextBelow(net.num_nodes()),
                                relation, std::move(values))
                    .ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), seq++));
  }
  std::vector<Notification> delivered;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (Notification& n : net.TakeNotifications(i)) {
      delivered.push_back(std::move(n));
    }
  }
  EXPECT_EQ(ref::ReferenceEngine::ContentSet(delivered), oracle.ContentSet());
  EXPECT_FALSE(oracle.ContentSet().empty());
}

}  // namespace
}  // namespace contjoin::core
