// Fan-out digest batching must be invisible in content and visible in
// traffic: for every algorithm, a serving run with fanout_batching on
// delivers exactly the same notification multiset as the unbatched run,
// with strictly fewer notification-class hops and wire bytes. The same
// must hold when 5% of notification frames drop and reliable delivery
// recovers them.

#include <algorithm>
#include <string>
#include <vector>

#include "core/options.h"
#include "gtest/gtest.h"
#include "serving/driver.h"
#include "sim/net_stats.h"

namespace contjoin::serving {
namespace {

ServingConfig BaseConfig(core::Algorithm algo) {
  ServingConfig config;
  config.engine.num_nodes = 24;
  config.engine.seed = 42;
  config.engine.algorithm = algo;
  config.engine.count_wire_bytes = true;
  config.engine.chord.hop_latency = 1;  // Distinct epochs between hops.
  config.workload.seed = 9;
  config.workload.domain = 40;  // Dense joins: plenty of notifications.
  config.workload.zipf_theta = 0.8;
  config.arrivals.kind = ArrivalKind::kPoisson;
  config.arrivals.rate = 0.5;
  config.num_queries = 6;
  config.fanout = 4;           // Four subscribers per query result...
  config.subscriber_nodes = 3; // ...packed onto three nodes: collisions.
  config.duration = 192;
  config.warmup = 0;
  config.sample_every = 64;
  return config;
}

std::vector<std::string> SortedContent(const ServingReport& report) {
  // Everything but the trailing |delivered_at timestamp, which batching
  // legitimately shifts (a digest lands as one frame).
  std::vector<std::string> keys;
  keys.reserve(report.delivered.size());
  for (const std::string& line : report.delivered) {
    keys.push_back(line.substr(0, line.rfind('|')));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectBatchingLossless(ServingConfig config) {
  ServingReport plain = ServingDriver(config).Run();
  ASSERT_GT(plain.notifications, 20u)
      << "workload too sparse to exercise batching";

  config.engine.serving.fanout_batching = true;
  ServingReport batched = ServingDriver(config).Run();

  EXPECT_EQ(SortedContent(batched), SortedContent(plain));
  // Equal content, strictly cheaper delivery: coalesced digests ride
  // fewer notification-class frames and fewer encoded bytes.
  EXPECT_LT(batched.traffic.hops(sim::MsgClass::kNotification),
            plain.traffic.hops(sim::MsgClass::kNotification));
  EXPECT_LT(batched.traffic.bytes(sim::MsgClass::kNotification),
            plain.traffic.bytes(sim::MsgClass::kNotification));
}

class FanoutEquivalenceTest
    : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(FanoutEquivalenceTest, BatchingIsContentLossless) {
  ExpectBatchingLossless(BaseConfig(GetParam()));
}

TEST_P(FanoutEquivalenceTest, BatchingIsContentLosslessUnderDrops) {
  ServingConfig config = BaseConfig(GetParam());
  config.engine.faults.profile(sim::MsgClass::kNotification).drop_prob = 0.05;
  config.engine.reliability.enabled = true;
  ExpectBatchingLossless(config);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FanoutEquivalenceTest,
                         ::testing::Values(core::Algorithm::kSai,
                                           core::Algorithm::kDaiQ,
                                           core::Algorithm::kDaiT,
                                           core::Algorithm::kDaiV),
                         [](const auto& info) {
                           std::string name = core::AlgorithmName(info.param);
                           name.erase(std::remove(name.begin(), name.end(), '-'),
                                      name.end());
                           return name;
                         });

}  // namespace
}  // namespace contjoin::serving
