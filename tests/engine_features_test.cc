// Integration tests for the optimizations and §4.6 delivery machinery:
// JFRT traffic reduction, attribute-level replication, off-line subscriber
// delivery with reconnection, IP updates, and SAI index-attribute
// strategies.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "reference/reference_engine.h"
#include "workload/workload.h"

namespace contjoin::core {
namespace {

using rel::Value;

void RegisterRS(ContinuousQueryNetwork* net) {
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema("R", {{"A", rel::ValueType::kInt},
                                                    {"B", rel::ValueType::kInt}}))
               .ok());
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema("S", {{"D", rel::ValueType::kInt},
                                                    {"E", rel::ValueType::kInt}}))
               .ok());
}

// --- JFRT -----------------------------------------------------------------------

uint64_t JoinTrafficWithJfrt(bool use_jfrt) {
  Options opts;
  opts.num_nodes = 128;
  opts.algorithm = Algorithm::kSai;
  opts.use_jfrt = use_jfrt;
  opts.seed = 7;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  CJ_CHECK(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
               .ok());
  // Repeatedly insert R tuples with the same join value: the rewritten
  // query always goes to the same evaluator, the JFRT's best case.
  uint64_t before = net.stats().hops(sim::MsgClass::kRewrittenQuery);
  for (int i = 0; i < 50; ++i) {
    CJ_CHECK(net.InsertTuple(1, "R", {Value::Int(i), Value::Int(7)}).ok());
  }
  return net.stats().hops(sim::MsgClass::kRewrittenQuery) - before;
}

TEST(JfrtIntegrationTest, CutsReindexingTraffic) {
  uint64_t without = JoinTrafficWithJfrt(false);
  uint64_t with = JoinTrafficWithJfrt(true);
  // With the JFRT every reindex after the first costs exactly 1 hop.
  EXPECT_LT(with, without);
  EXPECT_LE(with, 49u + without / 10);
}

TEST(JfrtIntegrationTest, DeadCachedEvaluatorFallsBackToRouting) {
  Options opts;
  opts.num_nodes = 32;
  opts.algorithm = Algorithm::kSai;
  opts.use_jfrt = true;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);

  // Find the evaluator responsible for S+E+7 and pick distinct nodes for
  // the subscriber/inserters so departures only affect the evaluator role.
  chord::NodeId vindex = ValueIndexId("S", "E", "7");
  chord::Node* evaluator = net.network()->OracleSuccessor(vindex);
  size_t ev_index = 0;
  std::vector<size_t> others;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i) == evaluator) {
      ev_index = i;
    } else if (others.size() < 3) {
      others.push_back(i);
    }
  }
  // The rewriter for R+B must survive too for this scenario to make sense.
  ASSERT_NE(net.network()->OracleSuccessor(AttrIndexId("R", "B", 0)),
            evaluator);

  ASSERT_TRUE(net.SubmitQuery(others[0],
                              "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                  .ok());
  // Warm the cache.
  ASSERT_TRUE(
      net.InsertTuple(others[1], "R", {Value::Int(1), Value::Int(7)}).ok());
  // The evaluator departs: the cached entry is now dead.
  net.DisconnectNode(ev_index);
  // Further inserts detect the dead entry and fall back to routing; the
  // answer for the post-departure pair still flows.
  ASSERT_TRUE(
      net.InsertTuple(others[1], "R", {Value::Int(2), Value::Int(7)}).ok());
  ASSERT_TRUE(
      net.InsertTuple(others[2], "S", {Value::Int(5), Value::Int(7)}).ok());
  auto notifications = net.TakeNotifications(others[0]);
  ASSERT_GE(notifications.size(), 1u);
  // The pair (R.A=2, S.D=5) survived; the pre-departure rewritten query
  // (R.A=1) was lost with the evaluator — best-effort, as the paper leaves
  // failure handling to the DHT.
  bool found = false;
  for (const auto& n : notifications) {
    if (n.row[0] == Value::Int(2) && n.row[1] == Value::Int(5)) found = true;
  }
  EXPECT_TRUE(found);
}

// --- Attribute-level replication (§4.7) -----------------------------------------

TEST(ReplicationTest, SpreadsAttributeLevelFilteringLoad) {
  auto run = [](int replication) {
    Options opts;
    opts.num_nodes = 64;
    opts.algorithm = Algorithm::kDaiT;
    opts.attribute_replication = replication;
    opts.seed = 5;
    ContinuousQueryNetwork net(opts);
    RegisterRS(&net);
    CJ_CHECK(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                 .ok());
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      CJ_CHECK(net.InsertTuple(1, "R",
                               {Value::Int(i),
                                Value::Int(static_cast<int64_t>(
                                    rng.NextBelow(50)))})
                   .ok());
    }
    return net.AttrFilteringLoadDistribution();
  };
  LoadDistribution base = run(1);
  LoadDistribution replicated = run(4);
  // Replication lowers the hottest rewriter's load...
  EXPECT_LT(replicated.max(), base.max());
  // ...by spreading it over more nodes.
  EXPECT_LT(replicated.TopShare(0.02), base.TopShare(0.02));
}

TEST(ReplicationTest, MultipliesQueryStorage) {
  Options opts;
  opts.num_nodes = 64;
  opts.algorithm = Algorithm::kDaiQ;
  opts.attribute_replication = 3;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  ASSERT_TRUE(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                  .ok());
  // DAI double-indexes; with k=3 replicas the query is stored 2*3 times.
  EXPECT_EQ(net.TotalStorage().alqt_queries, 6u);
}

// --- Off-line subscribers (§4.6) --------------------------------------------------

TEST(OfflineDeliveryTest, NotificationsStoredAndHandedBackOnReconnect) {
  Options opts;
  opts.num_nodes = 32;
  opts.algorithm = Algorithm::kDaiT;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  auto key = net.SubmitQuery(3, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());

  net.DisconnectNode(3);
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  // The notification is parked at Successor(Id(n)).
  EXPECT_EQ(net.PendingNotifications(3), 0u);
  EXPECT_GE(net.TotalStorage().stored_notifications, 1u);

  net.ReconnectNode(3, /*new_ip=*/false);
  auto notifications = net.TakeNotifications(3);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].query_key, key.value());
  EXPECT_EQ(net.TotalStorage().stored_notifications, 0u);
}

TEST(OfflineDeliveryTest, ReconnectWithNewIpStillReceives) {
  Options opts;
  opts.num_nodes = 32;
  opts.algorithm = Algorithm::kSai;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  auto key = net.SubmitQuery(5, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());

  net.DisconnectNode(5);
  net.ReconnectNode(5, /*new_ip=*/true);  // Back, but the stored IP is stale.

  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  // Delivery falls back to routing by Key(n); the subscriber still gets it.
  auto first = net.TakeNotifications(5);
  ASSERT_EQ(first.size(), 1u);

  // The IP-update control message taught the evaluator the new address, so
  // the next delivery is direct again.
  uint64_t notif_hops_before = net.stats().hops(sim::MsgClass::kNotification);
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(6), Value::Int(7)}).ok());
  uint64_t notif_hops = net.stats().hops(sim::MsgClass::kNotification) -
                        notif_hops_before;
  EXPECT_EQ(notif_hops, 1u);
  EXPECT_EQ(net.TakeNotifications(5).size(), 1u);
}

// --- SAI index-attribute strategies (§4.3.6) ----------------------------------------

TEST(SaiStrategyTest, LowerRateStrategyCutsTraffic) {
  auto run = [](SaiStrategy strategy) {
    Options opts;
    opts.num_nodes = 64;
    opts.algorithm = Algorithm::kSai;
    opts.sai_strategy = strategy;
    opts.seed = 11;
    ContinuousQueryNetwork net(opts);
    RegisterRS(&net);
    Rng rng(17);
    // Warm-up: R arrives 9x as often as S, so rewriters learn the rates.
    auto insert_some = [&](int n) {
      for (int i = 0; i < n; ++i) {
        bool is_r = rng.NextBelow(10) < 9;
        int64_t v = static_cast<int64_t>(rng.NextBelow(30));
        CJ_CHECK(net.InsertTuple(1, is_r ? "R" : "S",
                                 {Value::Int(i), Value::Int(v)})
                     .ok());
      }
    };
    insert_some(120);
    for (int i = 0; i < 20; ++i) {
      CJ_CHECK(net.SubmitQuery(i % net.num_nodes(),
                               "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                   .ok());
    }
    uint64_t before = net.stats().hops(sim::MsgClass::kRewrittenQuery);
    insert_some(300);
    return net.stats().hops(sim::MsgClass::kRewrittenQuery) - before;
  };
  // Indexing by the slower relation (S) means only ~10% of tuples trigger
  // rewrites; random indexing triggers ~55%.
  uint64_t random_traffic = run(SaiStrategy::kRandom);
  uint64_t rate_traffic = run(SaiStrategy::kLowerRate);
  EXPECT_LT(rate_traffic, random_traffic / 2);
}

TEST(SaiStrategyTest, StrategiesStayCorrect) {
  for (SaiStrategy strategy :
       {SaiStrategy::kLowerRate, SaiStrategy::kLowerSkew,
        SaiStrategy::kSmallerDomain}) {
    Options opts;
    opts.num_nodes = 24;
    opts.algorithm = Algorithm::kSai;
    opts.sai_strategy = strategy;
    ContinuousQueryNetwork net(opts);
    RegisterRS(&net);
    auto key =
        net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
    ASSERT_TRUE(key.ok());
    ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
    ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
    EXPECT_EQ(net.TakeNotifications(0).size(), 1u)
        << SaiStrategyName(strategy);
  }
}

// --- Windows --------------------------------------------------------------------------

TEST(WindowTest, PruneExpiredShrinksStorage) {
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = Algorithm::kDaiQ;
  opts.window = 10;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  ASSERT_TRUE(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(i), Value::Int(i)}).ok());
  }
  uint64_t before = net.TotalStorage().vltt_tuples;
  EXPECT_EQ(before, 40u);  // 2 value-level copies per tuple (2 attributes).
  size_t dropped = net.PruneExpired();
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(net.TotalStorage().vltt_tuples, before);
}

TEST(WindowTest, ExpiredPairsDoNotNotify) {
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = Algorithm::kDaiQ;
  opts.window = 3;
  ContinuousQueryNetwork net(opts);
  RegisterRS(&net);
  ASSERT_TRUE(net.SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                  .ok());
  ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  // Burn virtual time with unrelated inserts.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.InsertTuple(1, "R", {Value::Int(i), Value::Int(99)}).ok());
  }
  ASSERT_TRUE(net.InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_TRUE(net.TakeNotifications(0).empty());
}

// --- DAI-V key-prefixed variant (§4.5) ---------------------------------------------------

TEST(DaivPrefixTest, PrefixVariantCreatesMuchMoreTraffic) {
  auto run = [](bool prefix) {
    Options opts;
    opts.num_nodes = 64;
    opts.algorithm = Algorithm::kDaiV;
    opts.daiv_prefix_query_key = prefix;
    opts.seed = 13;
    ContinuousQueryNetwork net(opts);
    RegisterRS(&net);
    // Many queries with the same join condition: the plain variant groups
    // them into one message per value; the prefixed one cannot group.
    for (int i = 0; i < 60; ++i) {
      CJ_CHECK(net.SubmitQuery(static_cast<size_t>(i) % net.num_nodes(),
                               "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                   .ok());
    }
    uint64_t before = net.stats().hops(sim::MsgClass::kRewrittenQuery);
    for (int i = 0; i < 20; ++i) {
      CJ_CHECK(net.InsertTuple(1, "R", {Value::Int(i), Value::Int(7)}).ok());
    }
    return net.stats().hops(sim::MsgClass::kRewrittenQuery) - before;
  };
  uint64_t grouped = run(false);
  uint64_t prefixed = run(true);
  // The paper reports a blow-up factor around 250x at 1e5 queries; at this
  // scale we just require a large multiple.
  EXPECT_GT(prefixed, grouped * 10);
}

}  // namespace
}  // namespace contjoin::core
