#include "common/histogram.h"

#include <gtest/gtest.h>

namespace contjoin {
namespace {

TEST(LoadDistributionTest, EmptyIsZero) {
  LoadDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.total(), 0.0);
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.max(), 0.0);
  EXPECT_EQ(d.Gini(), 0.0);
  EXPECT_EQ(d.Percentile(50), 0.0);
}

TEST(LoadDistributionTest, BasicStats) {
  LoadDistribution d({1, 2, 3, 4});
  EXPECT_EQ(d.count(), 4u);
  EXPECT_EQ(d.total(), 10.0);
  EXPECT_EQ(d.mean(), 2.5);
  EXPECT_EQ(d.max(), 4.0);
  EXPECT_EQ(d.min(), 1.0);
}

TEST(LoadDistributionTest, PercentileInterpolates) {
  LoadDistribution d({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(d.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(d.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(d.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(d.Percentile(12.5), 15.0);
}

// High-percentile regression cases for the serving SLO sweep: p99/p999 on
// small samples must linearly interpolate between order statistics, never
// snap to the nearest rank. A nearest-rank implementation would return the
// maximum for every case below — exactly the failure mode that makes a
// latency SLO look violated by one outlier.
TEST(LoadDistributionTest, TailPercentilesInterpolateNotNearestRank) {
  LoadDistribution d({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  // rank = (p/100) * (n-1); n=10 so p99 -> 8.91, p999 -> 8.991.
  EXPECT_NEAR(d.Percentile(99), 99.1, 1e-9);
  EXPECT_NEAR(d.Percentile(99.9), 99.91, 1e-9);
  EXPECT_LT(d.Percentile(99.9), d.max());  // Nearest-rank would equal max.
  EXPECT_LT(d.Percentile(99), d.Percentile(99.9));
}

TEST(LoadDistributionTest, TailPercentilesWithOutlier) {
  // 99 unit samples and one 1000x outlier: with n=100 the tail ranks land
  // between the last unit sample (index 98) and the outlier (index 99), so
  // p99 barely feels the outlier while p999 is 90% of the way up to it.
  std::vector<double> v(99, 1.0);
  v.push_back(1000.0);
  LoadDistribution d(v);
  EXPECT_DOUBLE_EQ(d.Percentile(50), 1.0);
  // rank = 0.99 * 99 = 98.01 -> 1 + 0.01 * (1000 - 1).
  EXPECT_NEAR(d.Percentile(99), 10.99, 1e-9);
  // rank = 0.999 * 99 = 98.901 -> 1 + 0.901 * 999.
  EXPECT_NEAR(d.Percentile(99.9), 901.099, 1e-9);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 1000.0);
}

TEST(LoadDistributionTest, TwoSampleTailInterpolation) {
  LoadDistribution d({0, 1});
  EXPECT_DOUBLE_EQ(d.Percentile(99), 0.99);
  EXPECT_DOUBLE_EQ(d.Percentile(99.9), 0.999);
}

TEST(LoadDistributionTest, GiniOfEqualLoadsIsZero) {
  LoadDistribution d({5, 5, 5, 5, 5});
  EXPECT_NEAR(d.Gini(), 0.0, 1e-12);
}

TEST(LoadDistributionTest, GiniOfSingleHotspotIsNearOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  LoadDistribution d(v);
  EXPECT_NEAR(d.Gini(), 0.99, 1e-9);
}

TEST(LoadDistributionTest, GiniOrdering) {
  LoadDistribution flat({4, 5, 5, 6});
  LoadDistribution skewed({1, 1, 1, 17});
  EXPECT_LT(flat.Gini(), skewed.Gini());
}

TEST(LoadDistributionTest, TopShare) {
  std::vector<double> v(100, 1.0);
  v[0] = 101.0;  // Total 200; top 1% (1 node) holds 101/200.
  LoadDistribution d(v);
  EXPECT_NEAR(d.TopShare(0.01), 101.0 / 200.0, 1e-12);
  EXPECT_NEAR(d.TopShare(1.0), 1.0, 1e-12);
}

TEST(LoadDistributionTest, TopShareEdgeCases) {
  // Empty population and all-zero loads both report zero share.
  LoadDistribution empty;
  EXPECT_DOUBLE_EQ(empty.TopShare(0.5), 0.0);
  LoadDistribution zeros({0, 0, 0});
  EXPECT_DOUBLE_EQ(zeros.TopShare(0.5), 0.0);

  // Fraction 0 selects no node; ceil rounds any positive fraction up to
  // at least one node, so a sub-1/n fraction still reports the maximum.
  LoadDistribution d({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.TopShare(0.0), 0.0);
  EXPECT_NEAR(d.TopShare(0.001), 4.0 / 10.0, 1e-12);

  // A single-node population holds everything at any positive fraction.
  LoadDistribution one({7});
  EXPECT_NEAR(one.TopShare(0.01), 1.0, 1e-12);
  EXPECT_NEAR(one.TopShare(1.0), 1.0, 1e-12);

  // Ties across the cut boundary: the share counts k nodes, whichever of
  // the tied members the sort put on top.
  LoadDistribution ties({5, 5, 5, 5});
  EXPECT_NEAR(ties.TopShare(0.5), 0.5, 1e-12);

  // Monotone in the fraction.
  LoadDistribution skew({1, 1, 1, 1, 16});
  EXPECT_LE(skew.TopShare(0.2), skew.TopShare(0.4));
  EXPECT_NEAR(skew.TopShare(0.2), 16.0 / 20.0, 1e-12);
}

TEST(LoadDistributionTest, TopKMean) {
  LoadDistribution d({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(d.TopKMean(1), 10.0);
  EXPECT_DOUBLE_EQ(d.TopKMean(2), 6.5);
  EXPECT_DOUBLE_EQ(d.TopKMean(100), 4.0);  // Clamped to population.
}

TEST(LoadDistributionTest, SortedDescending) {
  LoadDistribution d({3, 1, 2});
  auto v = d.SortedDescending();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 1.0);
}

TEST(LoadDistributionTest, AddInvalidatesCache) {
  LoadDistribution d({1, 2, 3});
  EXPECT_DOUBLE_EQ(d.Percentile(100), 3.0);
  d.Add(99);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 99.0);
}

TEST(LoadDistributionTest, SummaryMentionsCount) {
  LoadDistribution d({1, 2});
  EXPECT_NE(d.Summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace contjoin
