#include "common/histogram.h"

#include <gtest/gtest.h>

namespace contjoin {
namespace {

TEST(LoadDistributionTest, EmptyIsZero) {
  LoadDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.total(), 0.0);
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.max(), 0.0);
  EXPECT_EQ(d.Gini(), 0.0);
  EXPECT_EQ(d.Percentile(50), 0.0);
}

TEST(LoadDistributionTest, BasicStats) {
  LoadDistribution d({1, 2, 3, 4});
  EXPECT_EQ(d.count(), 4u);
  EXPECT_EQ(d.total(), 10.0);
  EXPECT_EQ(d.mean(), 2.5);
  EXPECT_EQ(d.max(), 4.0);
  EXPECT_EQ(d.min(), 1.0);
}

TEST(LoadDistributionTest, PercentileInterpolates) {
  LoadDistribution d({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(d.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(d.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(d.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(d.Percentile(12.5), 15.0);
}

TEST(LoadDistributionTest, GiniOfEqualLoadsIsZero) {
  LoadDistribution d({5, 5, 5, 5, 5});
  EXPECT_NEAR(d.Gini(), 0.0, 1e-12);
}

TEST(LoadDistributionTest, GiniOfSingleHotspotIsNearOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  LoadDistribution d(v);
  EXPECT_NEAR(d.Gini(), 0.99, 1e-9);
}

TEST(LoadDistributionTest, GiniOrdering) {
  LoadDistribution flat({4, 5, 5, 6});
  LoadDistribution skewed({1, 1, 1, 17});
  EXPECT_LT(flat.Gini(), skewed.Gini());
}

TEST(LoadDistributionTest, TopShare) {
  std::vector<double> v(100, 1.0);
  v[0] = 101.0;  // Total 200; top 1% (1 node) holds 101/200.
  LoadDistribution d(v);
  EXPECT_NEAR(d.TopShare(0.01), 101.0 / 200.0, 1e-12);
  EXPECT_NEAR(d.TopShare(1.0), 1.0, 1e-12);
}

TEST(LoadDistributionTest, TopKMean) {
  LoadDistribution d({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(d.TopKMean(1), 10.0);
  EXPECT_DOUBLE_EQ(d.TopKMean(2), 6.5);
  EXPECT_DOUBLE_EQ(d.TopKMean(100), 4.0);  // Clamped to population.
}

TEST(LoadDistributionTest, SortedDescending) {
  LoadDistribution d({3, 1, 2});
  auto v = d.SortedDescending();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 1.0);
}

TEST(LoadDistributionTest, AddInvalidatesCache) {
  LoadDistribution d({1, 2, 3});
  EXPECT_DOUBLE_EQ(d.Percentile(100), 3.0);
  d.Add(99);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 99.0);
}

TEST(LoadDistributionTest, SummaryMentionsCount) {
  LoadDistribution d({1, 2});
  EXPECT_NE(d.Summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace contjoin
