// Edge-case coverage for the engine: degenerate rings, wide schemas,
// duplicate content, grouped queries with diverging predicates, and
// notification metadata.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace contjoin::core {
namespace {

using rel::Value;

class EngineEdgeTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  std::unique_ptr<ContinuousQueryNetwork> MakeNet(size_t nodes) {
    Options opts;
    opts.num_nodes = nodes;
    opts.algorithm = GetParam();
    auto net = std::make_unique<ContinuousQueryNetwork>(opts);
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt},
                           {"B", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt},
                           {"E", rel::ValueType::kInt}}))
                 .ok());
    return net;
  }
};

TEST_P(EngineEdgeTest, SingletonNetworkEvaluatesLocally) {
  auto net = MakeNet(1);
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(net->InsertTuple(0, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(0, "S", {Value::Int(5), Value::Int(7)}).ok());
  auto notifications = net->TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  // Everything happened on one node: zero overlay traffic.
  EXPECT_EQ(net->stats().total_hops(), 0u);
}

TEST_P(EngineEdgeTest, TwoNodeNetwork) {
  auto net = MakeNet(2);
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_EQ(net->TakeNotifications(0).size(), 1u);
}

TEST_P(EngineEdgeTest, IdenticalTuplesYieldIdenticalContent) {
  auto net = MakeNet(24);
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  // The same R tuple twice, then one S match.
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  auto notifications = net->TakeNotifications(0);
  ASSERT_GE(notifications.size(), 1u);
  std::set<std::string> contents;
  for (const auto& n : notifications) contents.insert(n.ContentKey());
  // All algorithms agree on content; SAI/DAI-T may deliver it once (grouped
  // rewrites), DAI-Q/DAI-V once per pair.
  EXPECT_EQ(contents.size(), 1u);
  EXPECT_LE(notifications.size(), 2u);
}

TEST_P(EngineEdgeTest, SameSignatureDifferentPredicates) {
  auto net = MakeNet(24);
  // Two queries grouped under the same join-condition signature but with
  // different predicates: each must be answered per its own predicate.
  auto k1 = net->SubmitQuery(
      1, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND R.A > 10");
  auto k2 = net->SubmitQuery(
      2, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND R.A <= 10");
  ASSERT_TRUE(k1.ok() && k2.ok());
  ASSERT_TRUE(net->InsertTuple(3, "R", {Value::Int(50), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(4, "R", {Value::Int(5), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(5, "S", {Value::Int(9), Value::Int(7)}).ok());
  auto n1 = net->TakeNotifications(1);
  auto n2 = net->TakeNotifications(2);
  ASSERT_EQ(n1.size(), 1u);
  ASSERT_EQ(n2.size(), 1u);
  EXPECT_EQ(n1[0].row[0], Value::Int(50));
  EXPECT_EQ(n2[0].row[0], Value::Int(5));
}

TEST_P(EngineEdgeTest, NotificationTimesReflectTuplePublication) {
  auto net = MakeNet(24);
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  rel::Timestamp r_time = net->now();
  ASSERT_TRUE(net->InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  rel::Timestamp s_time = net->now();
  auto notifications = net->TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].earlier_pub, r_time);
  EXPECT_EQ(notifications[0].later_pub, s_time);
  EXPECT_GE(notifications[0].created_at, s_time);
}

TEST_P(EngineEdgeTest, QueryKeysAreUniquePerSubscriber) {
  auto net = MakeNet(8);
  auto k1 = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  auto k2 = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  auto k3 = net->SubmitQuery(1, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(k1.ok() && k2.ok() && k3.ok());
  EXPECT_NE(k1.value(), k2.value());
  EXPECT_NE(k1.value(), k3.value());
  EXPECT_NE(k2.value(), k3.value());
}

TEST_P(EngineEdgeTest, WideSchemaAllAttributesIndexed) {
  Options opts;
  opts.num_nodes = 32;
  opts.algorithm = GetParam();
  ContinuousQueryNetwork net(opts);
  std::vector<rel::Attribute> attrs;
  for (int i = 0; i < 12; ++i) {
    attrs.push_back({"c" + std::to_string(i), rel::ValueType::kInt});
  }
  CJ_CHECK(net.catalog()->Register(rel::RelationSchema("Wide", attrs)).ok());
  CJ_CHECK(net.catalog()
               ->Register(rel::RelationSchema(
                   "Tiny", {{"x", rel::ValueType::kInt}}))
               .ok());
  ASSERT_TRUE(
      net.SubmitQuery(0,
                      "SELECT Wide.c0, Tiny.x FROM Wide, Tiny "
                      "WHERE Wide.c11 = Tiny.x")
          .ok());
  std::vector<Value> wide;
  for (int i = 0; i < 12; ++i) wide.push_back(Value::Int(i));
  ASSERT_TRUE(net.InsertTuple(1, "Wide", wide).ok());
  ASSERT_TRUE(net.InsertTuple(2, "Tiny", {Value::Int(11)}).ok());
  auto notifications = net.TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].row[0], Value::Int(0));
}

TEST_P(EngineEdgeTest, SelectListRepeatsAttribute) {
  auto net = MakeNet(16);
  auto key = net->SubmitQuery(
      0, "SELECT R.A, R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(9), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  auto notifications = net->TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  ASSERT_EQ(notifications[0].row.size(), 3u);
  EXPECT_EQ(notifications[0].row[0], Value::Int(9));
  EXPECT_EQ(notifications[0].row[1], Value::Int(9));
}

TEST_P(EngineEdgeTest, NegativeValuesRouteAndMatch) {
  auto net = MakeNet(24);
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  ASSERT_TRUE(
      net->InsertTuple(1, "R", {Value::Int(-3), Value::Int(-42)}).ok());
  ASSERT_TRUE(
      net->InsertTuple(2, "S", {Value::Int(6), Value::Int(-42)}).ok());
  auto notifications = net->TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].row[0], Value::Int(-3));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EngineEdgeTest,
                         ::testing::Values(Algorithm::kSai, Algorithm::kDaiQ,
                                           Algorithm::kDaiT,
                                           Algorithm::kDaiV));

}  // namespace
}  // namespace contjoin::core
