#include "chord/local_store.h"

#include <gtest/gtest.h>

namespace contjoin::chord {
namespace {

struct TestItem : Payload {
  explicit TestItem(int v) : value(v) {}
  int value;
};

PayloadPtr Item(int v) { return std::make_shared<TestItem>(v); }

int ValueOf(const PayloadPtr& p) {
  return static_cast<const TestItem*>(p.get())->value;
}

TEST(LocalStoreTest, PutAndTake) {
  LocalStore store;
  NodeId k = HashKey("subscriber");
  store.Put(k, Item(1));
  store.Put(k, Item(2));
  EXPECT_EQ(store.size(), 2u);
  auto items = store.Take(k);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(ValueOf(items[0]), 1);
  EXPECT_EQ(ValueOf(items[1]), 2);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Take(k).empty());
}

TEST(LocalStoreTest, TakeMissingKeyIsEmpty) {
  LocalStore store;
  EXPECT_TRUE(store.Take(HashKey("nothing")).empty());
}

TEST(LocalStoreTest, ExtractRangeTakesOnlyInterval) {
  LocalStore store;
  auto u = [](uint64_t v) { return Uint160::FromUint64(v); };
  store.Put(u(5), Item(5));
  store.Put(u(10), Item(10));
  store.Put(u(15), Item(15));
  // (5, 10]: only key 10.
  auto out = store.ExtractRange(u(5), u(10));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, u(10));
  EXPECT_EQ(store.size(), 2u);
}

TEST(LocalStoreTest, ExtractRangeWrapsRing) {
  LocalStore store;
  auto u = [](uint64_t v) { return Uint160::FromUint64(v); };
  Uint160 high = Uint160::Max() - u(1);
  store.Put(high, Item(1));
  store.Put(u(3), Item(3));
  store.Put(u(50), Item(50));
  // (Max-5, 10]: wraps past zero; catches high and 3 but not 50.
  auto out = store.ExtractRange(Uint160::Max() - u(5), u(10));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(LocalStoreTest, ExtractAll) {
  LocalStore store;
  store.Put(HashKey("a"), Item(1));
  store.Put(HashKey("b"), Item(2));
  store.Put(HashKey("b"), Item(3));
  auto out = store.ExtractAll();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(store.empty());
  size_t total = 0;
  for (auto& [k, items] : out) total += items.size();
  EXPECT_EQ(total, 3u);
}

TEST(LocalStoreTest, DegenerateRangeTakesEverything) {
  LocalStore store;
  NodeId a = HashKey("a");
  store.Put(HashKey("x"), Item(1));
  store.Put(HashKey("y"), Item(2));
  auto out = store.ExtractRange(a, a);  // (a, a] = full ring.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(store.empty());
}

}  // namespace
}  // namespace contjoin::chord
