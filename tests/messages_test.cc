// Exhaustiveness of the CqMsgType enum ↔ payload-struct mapping: every
// enumerator has a payload struct whose constructor tags it, and the
// count constant tracks the enum. tools/check/contjoin_check enforces the
// same invariant textually; this test enforces it at the type level, so a
// new message type cannot land without both a payload and (via
// protocol_seam_test) a dispatch handler.

#include "core/messages.h"

#include <bitset>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/wire.h"
#include "core/codec.h"
#include "query/mw_query.h"
#include "query/parser.h"
#include "relational/schema.h"

namespace contjoin::core {
namespace {

static_assert(kCqMsgTypeCount == 18,
              "CqMsgType changed: update the payload coverage below, the "
              "dispatch registry, and this count");

static_assert(static_cast<size_t>(CqMsgType::kAdaptSplit) + 1 ==
                  kCqMsgTypeCount,
              "kCqMsgTypeCount must be derived from the last enumerator");

// Payload structs default to their own tag and stay cheap to slice-copy
// through the dispatch layer.
static_assert(std::is_base_of_v<chord::Payload, CqPayload>);

TEST(MessagesTest, EveryEnumeratorHasExactlyOnePayloadTag) {
  std::bitset<kCqMsgTypeCount> tagged;
  auto tag = [&tagged](CqMsgType t) {
    size_t index = static_cast<size_t>(t);
    ASSERT_LT(index, kCqMsgTypeCount);
    EXPECT_FALSE(tagged.test(index))
        << "two payload structs tag enumerator " << index;
    tagged.set(index);
  };

  tag(QueryIndexPayload().type);
  tag(TupleIndexPayload(/*value_level=*/false).type);  // kTupleAl
  tag(TupleIndexPayload(/*value_level=*/true).type);   // kTupleVl
  tag(JoinPayload().type);
  tag(DaivJoinPayload().type);
  tag(NotificationPayload().type);
  tag(UnsubscribePayload().type);
  tag(IpUpdatePayload().type);
  tag(JfrtAckPayload().type);
  tag(MigrateCmdPayload().type);
  tag(MwQueryIndexPayload().type);
  tag(MwJoinPayload().type);
  tag(OtjScanPayload().type);
  tag(OtjRehashPayload().type);
  tag(DeliveryAckPayload().type);
  tag(NotificationDigestPayload().type);
  tag(AdaptReplicatePayload().type);
  tag(AdaptSplitPayload().type);

  EXPECT_TRUE(tagged.all()) << "untagged enumerators: " << tagged.to_string();
}

TEST(MessagesTest, PayloadTagsMatchTheIntendedEnumerator) {
  EXPECT_EQ(QueryIndexPayload().type, CqMsgType::kQueryIndex);
  EXPECT_EQ(TupleIndexPayload(false).type, CqMsgType::kTupleAl);
  EXPECT_EQ(TupleIndexPayload(true).type, CqMsgType::kTupleVl);
  EXPECT_EQ(JoinPayload().type, CqMsgType::kJoin);
  EXPECT_EQ(DaivJoinPayload().type, CqMsgType::kDaivJoin);
  EXPECT_EQ(NotificationPayload().type, CqMsgType::kNotification);
  EXPECT_EQ(UnsubscribePayload().type, CqMsgType::kUnsubscribe);
  EXPECT_EQ(IpUpdatePayload().type, CqMsgType::kIpUpdate);
  EXPECT_EQ(JfrtAckPayload().type, CqMsgType::kJfrtAck);
  EXPECT_EQ(MigrateCmdPayload().type, CqMsgType::kMigrateCmd);
  EXPECT_EQ(MwQueryIndexPayload().type, CqMsgType::kMwQueryIndex);
  EXPECT_EQ(MwJoinPayload().type, CqMsgType::kMwJoin);
  EXPECT_EQ(OtjScanPayload().type, CqMsgType::kOtjScan);
  EXPECT_EQ(OtjRehashPayload().type, CqMsgType::kOtjRehash);
  EXPECT_EQ(DeliveryAckPayload().type, CqMsgType::kDeliveryAck);
  EXPECT_EQ(NotificationDigestPayload().type,
            CqMsgType::kNotificationDigest);
  EXPECT_EQ(AdaptReplicatePayload().type, CqMsgType::kAdaptReplicate);
  EXPECT_EQ(AdaptSplitPayload().type, CqMsgType::kAdaptSplit);
}

// --- Wire-codec round trips ---------------------------------------------------
//
// Property: every payload that can travel survives Encode → Decode → Encode
// with a byte-identical second encoding. The fields are drawn from a seeded
// Rng (several seeds per type) and the edge cases that have bitten binary
// formats before are pinned explicitly: empty strings, null values, the
// zero and maximum 160-bit identifiers, and extreme integers/doubles.

class CodecRoundTripTest : public ::testing::Test {
 protected:
  CodecRoundTripTest() {
    for (const char* name : {"R", "S", "T"}) {
      CJ_CHECK(catalog_
                   .Register(rel::RelationSchema(
                       name, {{"a", rel::ValueType::kInt},
                              {"b", rel::ValueType::kInt},
                              {"c", rel::ValueType::kInt}}))
                   .ok());
    }
    CJ_CHECK(catalog_
                 .Register(rel::RelationSchema(
                     "Doc", {{"id", rel::ValueType::kInt},
                             {"title", rel::ValueType::kString}}))
                 .ok());
    CJ_CHECK(catalog_
                 .Register(rel::RelationSchema(
                     "Auth", {{"name", rel::ValueType::kString},
                              {"id", rel::ValueType::kInt}}))
                 .ok());
  }

  // -- Random field generators -------------------------------------------------

  static std::string RandomString(Rng& rng) {
    size_t len = rng.NextBelow(12);  // 0 is reachable: empty strings count.
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(26)));
    }
    return s;
  }

  static rel::Value RandomValue(Rng& rng) {
    switch (rng.NextBelow(6)) {
      case 0:
        return rel::Value::Null();
      case 1:
        return rel::Value::Int(static_cast<int64_t>(rng.Next()));
      case 2:
        return rel::Value::Int(std::numeric_limits<int64_t>::min());
      case 3:
        return rel::Value::Double(rng.NextDouble() * 2e9 - 1e9);
      case 4:
        return rel::Value::Str("");
      default:
        return rel::Value::Str(RandomString(rng));
    }
  }

  static Uint160 RandomId(Rng& rng) {
    switch (rng.NextBelow(4)) {
      case 0:
        return Uint160();  // Zero (the "no node" sentinel).
      case 1:
        return Uint160::Max();
      default: {
        Sha1Digest d;
        for (uint8_t& b : d) b = static_cast<uint8_t>(rng.Next());
        return Uint160::FromDigest(d);
      }
    }
  }

  static RowTemplate RandomRow(Rng& rng) {
    RowTemplate row(1 + rng.NextBelow(4));
    for (auto& slot : row) {
      if (rng.NextBelow(3) == 0) continue;  // Leave unbound.
      slot = RandomValue(rng);
    }
    return row;
  }

  static rel::TuplePtr RandomTuple(Rng& rng) {
    if (rng.NextBelow(2) == 0) {
      return std::make_shared<const rel::Tuple>(
          "R",
          std::vector<rel::Value>{
              rel::Value::Int(static_cast<int64_t>(rng.Next())),
              rel::Value::Int(rng.NextInRange(-5, 5)),
              rel::Value::Int(std::numeric_limits<int64_t>::max())},
          rng.Next(), rng.Next());
    }
    return std::make_shared<const rel::Tuple>(
        "Doc",
        std::vector<rel::Value>{
            rel::Value::Int(static_cast<int64_t>(rng.Next())),
            rel::Value::Str(RandomString(rng))},
        rng.Next(), rng.Next());
  }

  query::QueryPtr MakeQuery(Rng& rng, const std::string& sql) {
    StatusOr<query::ContinuousQuery> parsed = query::ParseQuery(sql, catalog_);
    CJ_CHECK(parsed.ok());
    query::ContinuousQuery q = std::move(parsed).value();
    q.set_key(RandomString(rng));
    q.set_subscriber_key(RandomString(rng));
    q.set_subscriber_ip(rng.Next());
    q.set_insertion_time(rng.Next());
    return std::make_shared<const query::ContinuousQuery>(std::move(q));
  }

  query::QueryPtr RandomQuery(Rng& rng) {
    return MakeQuery(rng, rng.NextBelow(2) == 0
                              ? "SELECT R.a, S.b FROM R, S WHERE R.b = S.a"
                              : "SELECT Doc.id, Auth.id FROM Doc, Auth "
                                "WHERE Doc.title = Auth.name");
  }

  query::MwQueryPtr RandomMwQuery(Rng& rng) {
    StatusOr<query::MwQuery> parsed = query::ParseMwQuery(
        "SELECT R.a, S.b, T.c FROM R, S, T WHERE R.a = S.a AND S.b = T.b",
        catalog_);
    CJ_CHECK(parsed.ok());
    query::MwQuery q = std::move(parsed).value();
    q.set_key(RandomString(rng));
    q.set_subscriber_key(RandomString(rng));
    q.set_subscriber_ip(rng.Next());
    q.set_insertion_time(rng.Next());
    return std::make_shared<const query::MwQuery>(std::move(q));
  }

  // -- The property ------------------------------------------------------------

  void ExpectRoundTrip(const CqPayload& payload) {
    const PayloadCodec& codec = PayloadCodec::Default();
    wire::Writer first;
    ASSERT_TRUE(codec.Encode(payload, first))
        << "type " << static_cast<int>(payload.type) << " did not encode";
    wire::Reader r(first.bytes());
    std::shared_ptr<const CqPayload> decoded = codec.Decode(r, catalog_);
    ASSERT_NE(decoded, nullptr)
        << "type " << static_cast<int>(payload.type) << " did not decode";
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(decoded->type, payload.type);
    wire::Writer second;
    ASSERT_TRUE(codec.Encode(*decoded, second));
    EXPECT_EQ(first.bytes(), second.bytes())
        << "type " << static_cast<int>(payload.type)
        << " re-encoded differently";
  }

  rel::Catalog catalog_;
};

TEST_F(CodecRoundTripTest, EveryMsgTypeHasARegisteredCodec) {
  for (size_t i = 0; i < kCqMsgTypeCount; ++i) {
    EXPECT_TRUE(PayloadCodec::Default().HasCodec(static_cast<CqMsgType>(i)))
        << "no codec registered for enumerator " << i;
  }
}

TEST_F(CodecRoundTripTest, AllPayloadTypesSurviveSeededRoundTrips) {
  for (uint64_t seed : {1u, 7u, 424242u}) {
    Rng rng(seed);

    {
      QueryIndexPayload p;
      p.query = RandomQuery(rng);
      p.index_side = static_cast<int>(rng.NextBelow(2));
      p.level1 = RandomString(rng);
      p.replica = static_cast<int>(rng.NextBelow(4));
      ExpectRoundTrip(p);
    }
    {
      TupleIndexPayload p(/*value_level=*/false);
      p.tuple = RandomTuple(rng);
      p.attr_index = rng.NextBelow(3);
      p.level1 = RandomString(rng);
      p.replica = static_cast<int>(rng.NextBelow(4));
      ExpectRoundTrip(p);
    }
    {
      TupleIndexPayload p(/*value_level=*/true);
      p.tuple = RandomTuple(rng);
      p.attr_index = rng.NextBelow(3);
      p.level1 = RandomString(rng);
      p.value_key = RandomString(rng);
      ExpectRoundTrip(p);
    }
    {
      JoinPayload p;
      p.level1 = RandomString(rng);
      p.value_key = RandomString(rng);
      for (size_t i = 0, n = 1 + rng.NextBelow(3); i < n; ++i) {
        RewrittenEntry e;
        e.query = RandomQuery(rng);
        e.remaining_side = static_cast<int>(rng.NextBelow(2));
        e.rewritten_key = RandomString(rng);
        e.required_value = RandomValue(rng);
        e.row = RandomRow(rng);
        e.trigger_pub = rng.Next();
        e.trigger_seq = rng.Next();
        p.entries.push_back(std::move(e));
      }
      p.rewriter = RandomId(rng);
      p.vindex = RandomId(rng);
      p.want_ack = rng.NextBelow(2) == 0;
      p.known_split = 1 << rng.NextBelow(4);
      p.split_version = rng.NextBelow(1000);
      ExpectRoundTrip(p);
    }
    {
      DaivJoinPayload p;
      p.value_key = RandomString(rng);
      for (size_t i = 0, n = 1 + rng.NextBelow(3); i < n; ++i) {
        DaivEntry e;
        e.query = RandomQuery(rng);
        e.trigger_side = static_cast<int>(rng.NextBelow(2));
        e.row = RandomRow(rng);
        e.trigger_pub = rng.Next();
        e.trigger_seq = rng.Next();
        p.entries.push_back(std::move(e));
      }
      p.rewriter = RandomId(rng);
      p.vindex = RandomId(rng);
      p.want_ack = rng.NextBelow(2) == 0;
      p.known_split = 1 << rng.NextBelow(4);
      p.split_version = rng.NextBelow(1000);
      ExpectRoundTrip(p);
    }
    {
      NotificationPayload p;
      p.notification.query_key = RandomString(rng);
      for (size_t i = 0, n = rng.NextBelow(4); i < n; ++i) {
        p.notification.row.push_back(RandomValue(rng));
      }
      p.notification.earlier_pub = rng.Next();
      p.notification.later_pub = rng.Next();
      p.notification.created_at = rng.Next();
      p.subscriber_key = RandomString(rng);
      p.evaluator = RandomId(rng);
      ExpectRoundTrip(p);
    }
    {
      UnsubscribePayload p;
      p.query_key = RandomString(rng);
      p.at_evaluator = rng.NextBelow(2) == 0;
      p.level1 = RandomString(rng);
      p.replica = static_cast<int>(rng.NextBelow(4));
      ExpectRoundTrip(p);
    }
    {
      IpUpdatePayload p;
      p.subscriber_key = RandomString(rng);
      p.node = RandomId(rng);
      p.ip = rng.Next();
      ExpectRoundTrip(p);
    }
    {
      JfrtAckPayload p;
      p.vindex = RandomId(rng);
      p.evaluator = RandomId(rng);
      ExpectRoundTrip(p);
    }
    {
      MigrateCmdPayload p;
      p.level1 = RandomString(rng);
      p.replica = static_cast<int>(rng.NextBelow(4));
      p.base = RandomId(rng);
      ExpectRoundTrip(p);
    }
    {
      MwQueryIndexPayload p;
      p.query = RandomMwQuery(rng);
      p.level1 = RandomString(rng);
      ExpectRoundTrip(p);
    }
    {
      MwJoinPayload p;
      p.level1 = RandomString(rng);
      p.value_key = RandomString(rng);
      for (size_t i = 0, n = 1 + rng.NextBelow(2); i < n; ++i) {
        MwPartial e;
        e.query = RandomMwQuery(rng);
        e.bound_mask = static_cast<uint32_t>(rng.Next());
        e.row = RandomRow(rng);
        e.pending[static_cast<int>(rng.NextBelow(3))] = RandomValue(rng);
        e.pending[-1] = rel::Value::Str("");
        e.target_condition = static_cast<int>(rng.NextBelow(3)) - 1;
        e.min_pub = rng.Next();
        e.max_pub = rng.Next();
        e.last_seq = rng.Next();
        e.partial_key = RandomString(rng);
        p.entries.push_back(std::move(e));
      }
      ExpectRoundTrip(p);
    }
    {
      OtjScanPayload p;
      p.query = RandomQuery(rng);
      p.otj_id = rng.Next();
      p.issuer = RandomId(rng);
      ExpectRoundTrip(p);
    }
    {
      OtjRehashPayload p;
      p.query = RandomQuery(rng);
      p.otj_id = rng.Next();
      p.issuer = RandomId(rng);
      p.value_key = RandomString(rng);
      for (size_t i = 0, n = rng.NextBelow(3); i < n; ++i) {
        OtjTuple t;
        t.side = static_cast<int>(rng.NextBelow(2));
        t.row = RandomRow(rng);
        t.pub_time = rng.Next();
        t.seq = rng.Next();
        p.entries.push_back(std::move(t));
      }
      ExpectRoundTrip(p);
    }
    {
      DeliveryAckPayload p;
      p.msg_id = rng.Next();
      ExpectRoundTrip(p);
    }
    {
      NotificationDigestPayload p;
      p.subscriber_key = RandomString(rng);
      p.evaluator = RandomId(rng);
      for (size_t i = 0, n = 1 + rng.NextBelow(3); i < n; ++i) {
        Notification note;
        note.query_key = RandomString(rng);
        for (size_t j = 0, m = rng.NextBelow(4); j < m; ++j) {
          note.row.push_back(RandomValue(rng));
        }
        note.earlier_pub = rng.Next();
        note.later_pub = rng.Next();
        note.created_at = rng.Next();
        p.notifications.push_back(std::move(note));
      }
      ExpectRoundTrip(p);
    }
    {
      AdaptReplicatePayload p;
      p.level1 = RandomString(rng);
      p.replicas = 1 + static_cast<int>(rng.NextBelow(4));
      p.version = rng.Next();
      ExpectRoundTrip(p);
    }
    {
      AdaptSplitPayload p;
      p.level1 = RandomString(rng);
      p.value = RandomString(rng);
      p.split = 1 << rng.NextBelow(4);
      p.version = rng.Next();
      ExpectRoundTrip(p);
    }
  }
}

TEST_F(CodecRoundTripTest, EmptyStringsAndSentinelIdsSurvive) {
  Rng rng(99);
  JoinPayload p;
  p.level1 = "";
  p.value_key = "";
  RewrittenEntry e;
  e.query = RandomQuery(rng);
  e.remaining_side = 1;
  e.rewritten_key = "";
  e.required_value = rel::Value::Str("");
  e.row = {std::nullopt, rel::Value::Str(""), rel::Value::Null()};
  p.entries.push_back(std::move(e));
  p.rewriter = Uint160();       // "no rewriter" sentinel.
  p.vindex = Uint160::Max();    // Largest representable identifier.
  ExpectRoundTrip(p);

  NotificationPayload n;
  n.notification.query_key = "";
  n.subscriber_key = "";
  n.evaluator = Uint160();
  ExpectRoundTrip(n);
}

TEST_F(CodecRoundTripTest, AppMessageEnvelopeRoundTrips) {
  Rng rng(5);
  chord::AppMessage msg;
  msg.target = RandomId(rng);
  msg.cls = sim::MsgClass::kNotification;
  auto ack = std::make_shared<DeliveryAckPayload>();
  ack->msg_id = 0xdeadbeefcafe1234ull;
  msg.payload = ack;
  msg.reliable_id = rng.Next() | 1;
  msg.reliable_origin = RandomId(rng);

  wire::Writer first;
  ASSERT_TRUE(EncodeAppMessage(msg, first));
  wire::Reader r(first.bytes());
  chord::AppMessage out;
  ASSERT_TRUE(DecodeAppMessage(r, catalog_, &out));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(out.target, msg.target);
  EXPECT_EQ(out.cls, msg.cls);
  EXPECT_EQ(out.kind, msg.kind);
  EXPECT_EQ(out.reliable_id, msg.reliable_id);
  EXPECT_EQ(out.reliable_origin, msg.reliable_origin);
  wire::Writer second;
  ASSERT_TRUE(EncodeAppMessage(out, second));
  EXPECT_EQ(first.bytes(), second.bytes());
}

TEST_F(CodecRoundTripTest, DhtStoreOfACqPayloadRoundTrips) {
  Rng rng(13);
  auto store = std::make_shared<chord::DhtStorePayload>();
  store->key = RandomId(rng);
  auto item = std::make_shared<TupleIndexPayload>(/*value_level=*/true);
  item->tuple = RandomTuple(rng);
  item->level1 = "R+a";
  item->value_key = "7";
  store->item = item;

  chord::AppMessage msg;
  msg.target = store->key;
  msg.kind = chord::MsgKind::kDhtStore;
  msg.payload = store;

  wire::Writer first;
  ASSERT_TRUE(EncodeAppMessage(msg, first));
  wire::Reader r(first.bytes());
  chord::AppMessage out;
  ASSERT_TRUE(DecodeAppMessage(r, catalog_, &out));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(out.kind, chord::MsgKind::kDhtStore);
  wire::Writer second;
  ASSERT_TRUE(EncodeAppMessage(out, second));
  EXPECT_EQ(first.bytes(), second.bytes());
}

TEST_F(CodecRoundTripTest, DhtFetchIsUnencodableByDesign) {
  auto fetch = std::make_shared<chord::DhtFetchPayload>();
  chord::AppMessage msg;
  msg.kind = chord::MsgKind::kDhtFetch;
  msg.payload = fetch;

  wire::Writer w;
  EXPECT_FALSE(EncodeAppMessage(msg, w));
  EXPECT_EQ(w.size(), 0u) << "failed encode must leave the buffer untouched";

  chord::HopFrame frame;
  frame.kind = chord::HopFrame::Kind::kDeliver;
  frame.msgs.push_back(msg);
  EXPECT_TRUE(EncodeHopFrame(frame).empty());
  EXPECT_EQ(EncodedFrameSize(frame), 0u);
}

TEST_F(CodecRoundTripTest, HopFramesOfEveryKindRoundTrip) {
  Rng rng(21);
  auto make_msg = [&](sim::MsgClass cls) {
    chord::AppMessage m;
    m.target = RandomId(rng);
    m.cls = cls;
    auto p = std::make_shared<IpUpdatePayload>();
    p->subscriber_key = RandomString(rng);
    p->node = RandomId(rng);
    p->ip = rng.Next();
    m.payload = p;
    return m;
  };

  auto round_trip = [&](const chord::HopFrame& frame) {
    std::vector<uint8_t> first = EncodeHopFrame(frame);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(EncodedFrameSize(frame), first.size());
    chord::HopFrame out;
    ASSERT_TRUE(DecodeHopFrame(first.data(), first.size(), catalog_, &out));
    EXPECT_EQ(out.kind, frame.kind);
    EXPECT_EQ(out.cls, frame.cls);
    EXPECT_EQ(out.ttl, frame.ttl);
    EXPECT_EQ(out.msgs.size(), frame.msgs.size());
    std::vector<uint8_t> second = EncodeHopFrame(out);
    EXPECT_EQ(first, second);
  };

  chord::HopFrame route;
  route.kind = chord::HopFrame::Kind::kRoute;
  route.cls = sim::MsgClass::kControl;
  route.ttl = 17;
  route.msgs.push_back(make_msg(sim::MsgClass::kControl));
  round_trip(route);

  chord::HopFrame deliver;
  deliver.kind = chord::HopFrame::Kind::kDeliver;
  deliver.cls = sim::MsgClass::kNotification;
  deliver.msgs.push_back(make_msg(sim::MsgClass::kNotification));
  round_trip(deliver);

  chord::HopFrame batch;
  batch.kind = chord::HopFrame::Kind::kBatch;
  batch.cls = sim::MsgClass::kRewrittenQuery;
  batch.ttl = 160;
  for (int i = 0; i < 3; ++i) {
    batch.msgs.push_back(make_msg(sim::MsgClass::kRewrittenQuery));
  }
  round_trip(batch);

  chord::HopFrame broadcast;
  broadcast.kind = chord::HopFrame::Kind::kBroadcast;
  broadcast.cls = sim::MsgClass::kOneTime;
  broadcast.ttl = 160;
  auto scan = std::make_shared<OtjScanPayload>();
  scan->query = RandomQuery(rng);
  scan->otj_id = 7;
  scan->issuer = RandomId(rng);
  broadcast.broadcast_payload = scan;
  broadcast.broadcast_limit = RandomId(rng);
  round_trip(broadcast);
}

TEST_F(CodecRoundTripTest, MalformedHopFramesAreRejected) {
  Rng rng(34);
  chord::HopFrame frame;
  frame.kind = chord::HopFrame::Kind::kDeliver;
  chord::AppMessage m;
  m.target = RandomId(rng);
  auto p = std::make_shared<DeliveryAckPayload>();
  p->msg_id = 42;
  m.payload = p;
  frame.msgs.push_back(m);

  std::vector<uint8_t> buf = EncodeHopFrame(frame);
  ASSERT_FALSE(buf.empty());

  chord::HopFrame out;
  // Truncation anywhere must fail, not read out of bounds.
  for (size_t cut : {buf.size() - 1, buf.size() / 2, size_t{1}, size_t{0}}) {
    EXPECT_FALSE(DecodeHopFrame(buf.data(), cut, catalog_, &out))
        << "accepted a frame truncated to " << cut << " bytes";
  }
  // Trailing garbage is rejected (a frame must consume its whole buffer).
  std::vector<uint8_t> padded = buf;
  padded.push_back(0);
  EXPECT_FALSE(DecodeHopFrame(padded.data(), padded.size(), catalog_, &out));
  // Unknown wire-format version is rejected.
  std::vector<uint8_t> wrong_version = buf;
  wrong_version[0] = 0xee;
  EXPECT_FALSE(
      DecodeHopFrame(wrong_version.data(), wrong_version.size(), catalog_,
                     &out));
}

}  // namespace
}  // namespace contjoin::core
