// Exhaustiveness of the CqMsgType enum ↔ payload-struct mapping: every
// enumerator has a payload struct whose constructor tags it, and the
// count constant tracks the enum. tools/check/contjoin_check enforces the
// same invariant textually; this test enforces it at the type level, so a
// new message type cannot land without both a payload and (via
// protocol_seam_test) a dispatch handler.

#include "core/messages.h"

#include <bitset>
#include <type_traits>

#include "gtest/gtest.h"

namespace contjoin::core {
namespace {

static_assert(kCqMsgTypeCount == 15,
              "CqMsgType changed: update the payload coverage below, the "
              "dispatch registry, and this count");

static_assert(static_cast<size_t>(CqMsgType::kDeliveryAck) + 1 ==
                  kCqMsgTypeCount,
              "kCqMsgTypeCount must be derived from the last enumerator");

// Payload structs default to their own tag and stay cheap to slice-copy
// through the dispatch layer.
static_assert(std::is_base_of_v<chord::Payload, CqPayload>);

TEST(MessagesTest, EveryEnumeratorHasExactlyOnePayloadTag) {
  std::bitset<kCqMsgTypeCount> tagged;
  auto tag = [&tagged](CqMsgType t) {
    size_t index = static_cast<size_t>(t);
    ASSERT_LT(index, kCqMsgTypeCount);
    EXPECT_FALSE(tagged.test(index))
        << "two payload structs tag enumerator " << index;
    tagged.set(index);
  };

  tag(QueryIndexPayload().type);
  tag(TupleIndexPayload(/*value_level=*/false).type);  // kTupleAl
  tag(TupleIndexPayload(/*value_level=*/true).type);   // kTupleVl
  tag(JoinPayload().type);
  tag(DaivJoinPayload().type);
  tag(NotificationPayload().type);
  tag(UnsubscribePayload().type);
  tag(IpUpdatePayload().type);
  tag(JfrtAckPayload().type);
  tag(MigrateCmdPayload().type);
  tag(MwQueryIndexPayload().type);
  tag(MwJoinPayload().type);
  tag(OtjScanPayload().type);
  tag(OtjRehashPayload().type);
  tag(DeliveryAckPayload().type);

  EXPECT_TRUE(tagged.all()) << "untagged enumerators: " << tagged.to_string();
}

TEST(MessagesTest, PayloadTagsMatchTheIntendedEnumerator) {
  EXPECT_EQ(QueryIndexPayload().type, CqMsgType::kQueryIndex);
  EXPECT_EQ(TupleIndexPayload(false).type, CqMsgType::kTupleAl);
  EXPECT_EQ(TupleIndexPayload(true).type, CqMsgType::kTupleVl);
  EXPECT_EQ(JoinPayload().type, CqMsgType::kJoin);
  EXPECT_EQ(DaivJoinPayload().type, CqMsgType::kDaivJoin);
  EXPECT_EQ(NotificationPayload().type, CqMsgType::kNotification);
  EXPECT_EQ(UnsubscribePayload().type, CqMsgType::kUnsubscribe);
  EXPECT_EQ(IpUpdatePayload().type, CqMsgType::kIpUpdate);
  EXPECT_EQ(JfrtAckPayload().type, CqMsgType::kJfrtAck);
  EXPECT_EQ(MigrateCmdPayload().type, CqMsgType::kMigrateCmd);
  EXPECT_EQ(MwQueryIndexPayload().type, CqMsgType::kMwQueryIndex);
  EXPECT_EQ(MwJoinPayload().type, CqMsgType::kMwJoin);
  EXPECT_EQ(OtjScanPayload().type, CqMsgType::kOtjScan);
  EXPECT_EQ(OtjRehashPayload().type, CqMsgType::kOtjRehash);
  EXPECT_EQ(DeliveryAckPayload().type, CqMsgType::kDeliveryAck);
}

}  // namespace
}  // namespace contjoin::core
