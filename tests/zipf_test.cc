#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace contjoin {
namespace {

std::vector<double> EmpiricalFrequencies(ZipfSampler* sampler, Rng* rng,
                                         int draws) {
  std::vector<double> freq(sampler->n(), 0.0);
  for (int i = 0; i < draws; ++i) freq[sampler->Sample(rng)] += 1.0;
  for (double& f : freq) f /= draws;
  return freq;
}

TEST(ZipfTest, SamplesStayInDomain) {
  Rng rng(1);
  ZipfSampler zipf(100, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 100u);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(2);
  ZipfSampler zipf(20, 0.0);
  auto freq = EmpiricalFrequencies(&zipf, &rng, 200000);
  for (double f : freq) EXPECT_NEAR(f, 0.05, 0.01);
}

TEST(ZipfTest, FrequenciesMatchTheory) {
  Rng rng(3);
  const double theta = 0.9;
  const uint64_t n = 50;
  ZipfSampler zipf(n, theta);
  auto freq = EmpiricalFrequencies(&zipf, &rng, 400000);
  double norm = 0;
  for (uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(k, theta);
  for (uint64_t k = 1; k <= 10; ++k) {
    double expected = (1.0 / std::pow(k, theta)) / norm;
    EXPECT_NEAR(freq[k - 1], expected, expected * 0.1 + 0.002)
        << "rank " << k;
  }
}

TEST(ZipfTest, RanksAreMonotonicallyLessFrequent) {
  Rng rng(4);
  ZipfSampler zipf(10, 1.2);
  auto freq = EmpiricalFrequencies(&zipf, &rng, 300000);
  for (size_t k = 1; k < 5; ++k) EXPECT_GT(freq[k - 1], freq[k]);
}

TEST(ZipfTest, HighThetaConcentrates) {
  Rng rng(5);
  ZipfSampler zipf(1000, 1.5);
  int head = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(&rng) < 10) ++head;
  }
  // Theory: top-10 mass = (sum_{k<=10} k^-1.5) / (sum_{k<=1000} k^-1.5),
  // approximately 0.783.
  EXPECT_NEAR(static_cast<double>(head) / kDraws, 0.783, 0.02);
}

TEST(ZipfTest, LargeDomainWorks) {
  Rng rng(6);
  ZipfSampler zipf(10'000'000, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 10'000'000u);
}

TEST(ZipfTest, SingletonDomain) {
  Rng rng(7);
  ZipfSampler zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace contjoin
