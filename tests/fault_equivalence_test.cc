// Headline property of the fault-tolerance subsystem: with the reliable
// delivery layer and soft-state repair enabled, every distributed algorithm
// delivers exactly the reference engine's notification content set even when
// the transport drops / duplicates / delays protocol messages and the ring
// churns mid-workload. With reliability disabled, the same lossy runs
// demonstrably lose answers (the paper's §3.2 best-effort semantics).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "faults/churn.h"
#include "query/parser.h"
#include "reference/reference_engine.h"
#include "workload/workload.h"

namespace contjoin::core {
namespace {

struct FaultScenario {
  Algorithm algorithm;
  double drop_prob;  // Applied to the protocol message classes.
  bool churn;
  uint64_t seed;

  std::string Name() const {
    std::string out = AlgorithmName(algorithm);
    out += "_p" + std::to_string(static_cast<int>(drop_prob * 100));
    if (churn) out += "_churn";
    out += "_s" + std::to_string(seed);
    for (char& c : out) {
      if (c == '-') c = '_';
    }
    return out;
  }
};

constexpr size_t kNumNodes = 20;
constexpr size_t kNumQueries = 20;
constexpr size_t kNumTuples = 100;

/// The classes carrying the continuous-query protocol; ring maintenance is
/// left reliable so the churn experiments isolate protocol-level loss.
const std::vector<sim::MsgClass> kProtocolClasses = {
    sim::MsgClass::kQueryIndex, sim::MsgClass::kTupleIndex,
    sim::MsgClass::kRewrittenQuery, sim::MsgClass::kNotification};

faults::FaultOptions LossyTransport(double drop_prob, uint64_t seed) {
  faults::FaultOptions fopts;
  fopts.seed = seed * 13 + 1;
  faults::FaultProfile p;
  p.drop_prob = drop_prob;
  p.duplicate_prob = drop_prob / 2;
  p.delay_prob = drop_prob / 2;
  p.max_extra_delay = 3;
  fopts.SetProfiles(kProtocolClasses, p);
  return fopts;
}

struct RunResult {
  std::set<std::string> actual;
  std::set<std::string> expected;
  uint64_t total_hops = 0;
  NodeMetrics totals;
};

/// Runs the standard random workload against `opts` (fault plan and churn
/// already configured by the caller) and the loss-free oracle, reconnecting
/// crashed nodes at the end so ring-stored notifications are handed back.
RunResult RunWorkload(Options opts, const FaultScenario& sc) {
  workload::WorkloadOptions wopts;
  wopts.seed = sc.seed;
  wopts.attrs_per_relation = 3;
  wopts.domain = 40;
  wopts.zipf_theta = 0.6;
  workload::WorkloadGenerator gen(wopts);

  ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());

  ref::ReferenceEngine oracle;
  Rng placement(sc.seed * 7 + 1);
  uint64_t ref_seq = 0;

  // Picks the workload-designated node, probing forward past crashed ones
  // (a real client submits through a node that is up).
  auto alive_node = [&]() {
    size_t node = placement.NextBelow(kNumNodes);
    while (!net.node(node)->alive()) node = (node + 1) % net.num_nodes();
    return node;
  };
  auto insert_one = [&]() {
    auto [relation, values] = gen.NextTuple();
    std::vector<rel::Value> copy = values;
    CJ_CHECK(net.InsertTuple(alive_node(), relation, std::move(values)).ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), ref_seq++));
  };

  for (size_t i = 0; i < kNumQueries; ++i) {
    std::string sql = gen.NextQuerySql();
    auto key = net.SubmitQuery(alive_node(), sql);
    CJ_CHECK(key.ok()) << sql << ": " << key.status().ToString();
    auto parsed = query::ParseQuery(sql, *net.catalog());
    CJ_CHECK(parsed.ok());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }

  // Virtual time per operation depends on retry-timer horizons, so the
  // churn schedule is pinned relative to a measured per-insert duration:
  // three crashes and two joins spread over the tuple phase.
  rel::Timestamp before_first = net.now();
  insert_one();
  sim::SimTime dt = std::max<rel::Timestamp>(1, net.now() - before_first);
  if (sc.churn) {
    net.InstallChurnScript(faults::ChurnScript::Alternating(
        net.now() + 15 * dt, 15 * dt, /*crashes=*/3, /*joins=*/2));
  }
  for (size_t i = 1; i < kNumTuples; ++i) insert_one();
  // Late-scheduled events still due: keep the workload running until the
  // whole script has been applied (bounded; dt tracks real per-op time).
  for (int i = 0; i < 200 && net.PendingChurnEvents() > 0; ++i) insert_one();
  CJ_CHECK(net.PendingChurnEvents() == 0) << "churn script never completed";

  // Crashed subscribers come back (§4.6): the Chord key transfer hands
  // their ring-stored notifications back into the inbox.
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    if (!net.node(i)->alive()) net.ReconnectNode(i, /*new_ip=*/false);
  }

  RunResult out;
  std::vector<Notification> delivered;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (Notification& n : net.TakeNotifications(i)) {
      delivered.push_back(std::move(n));
    }
  }
  out.actual = ref::ReferenceEngine::ContentSet(delivered);
  out.expected = oracle.ContentSet();
  out.total_hops = net.stats().total_hops();
  out.totals = net.TotalMetrics();
  return out;
}

Options ScenarioOptions(const FaultScenario& sc, bool reliability) {
  Options opts;
  opts.num_nodes = kNumNodes;
  opts.algorithm = sc.algorithm;
  opts.seed = sc.seed;
  if (sc.drop_prob > 0) {
    opts.faults = LossyTransport(sc.drop_prob, sc.seed);
  }
  opts.reliability.enabled = reliability;
  return opts;
}

class FaultEquivalenceTest : public ::testing::TestWithParam<FaultScenario> {};

TEST_P(FaultEquivalenceTest, ReliableDeliveryMatchesReference) {
  const FaultScenario& sc = GetParam();
  RunResult r = RunWorkload(ScenarioOptions(sc, /*reliability=*/true), sc);

  std::vector<std::string> missing, extra;
  std::set_difference(r.expected.begin(), r.expected.end(), r.actual.begin(),
                      r.actual.end(), std::back_inserter(missing));
  std::set_difference(r.actual.begin(), r.actual.end(), r.expected.begin(),
                      r.expected.end(), std::back_inserter(extra));
  EXPECT_TRUE(missing.empty())
      << missing.size() << " notifications missing, first: " << missing[0];
  EXPECT_TRUE(extra.empty())
      << extra.size() << " spurious notifications, first: " << extra[0];
  EXPECT_FALSE(r.expected.empty()) << "vacuous scenario: no joins fired";

  // The reliability layer must actually have been exercised.
  EXPECT_GT(r.totals.reliable_sent, 0u);
  if (sc.drop_prob > 0) {
    EXPECT_GT(r.totals.reliable_retries, 0u)
        << "lossy transport but no retries fired";
  }
}

std::vector<FaultScenario> AllFaultScenarios() {
  std::vector<FaultScenario> out;
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    for (double p : {0.0, 0.01, 0.05}) {
      FaultScenario sc{};
      sc.algorithm = alg;
      sc.drop_prob = p;
      sc.churn = true;
      sc.seed = 3;
      out.push_back(sc);
    }
  }
  // Loss without churn (pure transport faults, ring stays intact).
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    FaultScenario sc{};
    sc.algorithm = alg;
    sc.drop_prob = 0.05;
    sc.churn = false;
    sc.seed = 5;
    out.push_back(sc);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultEquivalenceTest,
                         ::testing::ValuesIn(AllFaultScenarios()),
                         [](const auto& info) { return info.param.Name(); });

// With reliability off, the identical lossy run loses answers: this is the
// §3.2 best-effort behaviour the subsystem exists to fix, and it guards
// against the property test passing vacuously (e.g. a fault plan that never
// actually drops anything).
TEST(BestEffortBaseline, LossyTransportLosesNotifications) {
  FaultScenario sc{};
  sc.algorithm = Algorithm::kDaiT;
  sc.drop_prob = 0.05;
  sc.churn = false;
  sc.seed = 5;
  RunResult r = RunWorkload(ScenarioOptions(sc, /*reliability=*/false), sc);

  std::vector<std::string> missing, extra;
  std::set_difference(r.expected.begin(), r.expected.end(), r.actual.begin(),
                      r.actual.end(), std::back_inserter(missing));
  std::set_difference(r.actual.begin(), r.actual.end(), r.expected.begin(),
                      r.expected.end(), std::back_inserter(extra));
  EXPECT_FALSE(missing.empty())
      << "5% message loss without the reliability layer should lose answers";
  // Best effort never fabricates content: drops and duplicates can only
  // remove answers or repeat them, and repeats collapse in the set.
  EXPECT_TRUE(extra.empty())
      << extra.size() << " spurious notifications, first: " << extra[0];
  EXPECT_EQ(r.totals.reliable_sent, 0u);
  EXPECT_EQ(r.totals.reliable_retries, 0u);
}

// Same seed + same plan => bit-identical run, faults and repairs included.
TEST(FaultDeterminism, SameConfigurationIsBitIdentical) {
  FaultScenario sc{};
  sc.algorithm = Algorithm::kSai;
  sc.drop_prob = 0.05;
  sc.churn = true;
  sc.seed = 7;
  RunResult a = RunWorkload(ScenarioOptions(sc, /*reliability=*/true), sc);
  RunResult b = RunWorkload(ScenarioOptions(sc, /*reliability=*/true), sc);
  EXPECT_EQ(a.actual, b.actual);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.totals.reliable_sent, b.totals.reliable_sent);
  EXPECT_EQ(a.totals.reliable_retries, b.totals.reliable_retries);
  EXPECT_EQ(a.totals.reliable_acks_sent, b.totals.reliable_acks_sent);
  EXPECT_EQ(a.totals.reliable_dups_suppressed,
            b.totals.reliable_dups_suppressed);
}

}  // namespace
}  // namespace contjoin::core
