// Unit tests of the adaptive load manager's building blocks: decayed
// per-epoch load tracking, the hysteresis escalation policy, the virtual
// sub-key naming scheme, and the versioned directive directory with its
// equal-version tie-break (the rule that makes transiently duelling
// deciders converge).

#include <gtest/gtest.h>

#include <string>

#include "adapt/planner.h"
#include "adapt/policy.h"
#include "adapt/tracker.h"

namespace contjoin::adapt {
namespace {

// --- LoadTracker ---------------------------------------------------------------

TEST(LoadTracker, AccumulatesWithinEpoch) {
  LoadTracker t;
  EXPECT_EQ(t.Record("k", 10, 3), 3u);
  EXPECT_EQ(t.Record("k", 10, 4), 7u);
  EXPECT_EQ(t.RateOf("k", 10), 7u);
}

TEST(LoadTracker, HalvesOncePerElapsedEpoch) {
  LoadTracker t;
  t.Record("k", 10, 64);
  EXPECT_EQ(t.RateOf("k", 11), 32u);
  EXPECT_EQ(t.RateOf("k", 13), 8u);
  // Recording in a later epoch decays first, then adds.
  EXPECT_EQ(t.Record("k", 12, 1), 17u);
}

TEST(LoadTracker, UntrackedKeyIsZero) {
  LoadTracker t;
  EXPECT_EQ(t.RateOf("never-seen", 5), 0u);
}

TEST(LoadTracker, DeepDecayReachesZero) {
  LoadTracker t;
  t.Record("k", 0, 1000);
  EXPECT_EQ(t.RateOf("k", 100), 0u);
}

// --- Policy --------------------------------------------------------------------

Params TestParams() {
  Params p;
  p.enabled = true;
  p.hot_threshold = 100;
  p.cool_threshold = 25;
  p.max_split = 8;
  p.max_replicas = 4;
  return p;
}

TEST(Policy, SplitDoublesWhenHotAndClamps) {
  Params p = TestParams();
  EXPECT_EQ(ProposeSplit(p, 101, 1), 2);
  EXPECT_EQ(ProposeSplit(p, 101, 4), 8);
  EXPECT_EQ(ProposeSplit(p, 101, 8), 8);  // At the cap: stays.
  EXPECT_EQ(ProposeSplit(p, 100, 1), 1);  // Strictly-above threshold.
}

TEST(Policy, SplitHalvesWhenCoolNeverBelowOne) {
  Params p = TestParams();
  EXPECT_EQ(ProposeSplit(p, 24, 8), 4);
  EXPECT_EQ(ProposeSplit(p, 24, 1), 1);
  EXPECT_EQ(ProposeSplit(p, 25, 4), 4);  // Strictly-below threshold.
  EXPECT_EQ(ProposeSplit(p, 60, 4), 4);  // Hysteresis band: unchanged.
}

TEST(Policy, ReplicasStepByOneWithinFloorAndCap) {
  Params p = TestParams();
  EXPECT_EQ(ProposeReplicas(p, 101, 1, 1), 2);
  EXPECT_EQ(ProposeReplicas(p, 101, 4, 1), 4);  // At the cap: stays.
  EXPECT_EQ(ProposeReplicas(p, 24, 3, 1), 2);
  EXPECT_EQ(ProposeReplicas(p, 24, 2, 2), 2);  // Never below the floor.
  EXPECT_EQ(ProposeReplicas(p, 101, 0, 2), 3);  // Current below floor: lifted.
}

// --- Sub-key naming ------------------------------------------------------------

TEST(ShardKeys, UnsplitKeyIsUnchanged) {
  EXPECT_EQ(ShardValueKey("v42", 0, 1), "v42");
  EXPECT_EQ(ShardValueKey("v42", 0, 0), "v42");
}

TEST(ShardKeys, SplitKeysRoundTrip) {
  for (int split : {2, 4, 8}) {
    for (int j = 0; j < split; ++j) {
      std::string sub = ShardValueKey("v42", j, split);
      EXPECT_NE(sub, "v42");
      std::string base;
      int shard = -1;
      ASSERT_TRUE(ParseShardSuffix(sub, &base, &shard)) << sub;
      EXPECT_EQ(base, "v42");
      EXPECT_EQ(shard, j);
    }
  }
}

TEST(ShardKeys, PlainValuesDoNotParse) {
  std::string base;
  int shard = -1;
  EXPECT_FALSE(ParseShardSuffix("v42", &base, &shard));
  EXPECT_FALSE(ParseShardSuffix("", &base, &shard));
  // A value that merely ends with the marker but no digits.
  EXPECT_FALSE(ParseShardSuffix(ShardValueKey("v", 0, 2).substr(
                                    0, ShardValueKey("v", 0, 2).size() - 1),
                                &base, &shard));
}

TEST(ShardKeys, ShardOfSeqPartitionsDeterministically) {
  EXPECT_EQ(ShardOfSeq(17, 1), 0);
  EXPECT_EQ(ShardOfSeq(17, 4), static_cast<int>(17 % 4));
  for (uint64_t seq = 0; seq < 32; ++seq) {
    int j = ShardOfSeq(seq, 8);
    EXPECT_GE(j, 0);
    EXPECT_LT(j, 8);
    EXPECT_EQ(j, ShardOfSeq(seq, 8));
  }
}

// --- Directive directory -------------------------------------------------------

TEST(Directory, SplitDirectiveIsVersionMonotone) {
  Directory d;
  EXPECT_EQ(d.SplitOf("R+a", "v"), 1);
  EXPECT_TRUE(d.ApplySplit("R+a", "v", 2, /*version=*/1, /*epoch=*/5));
  EXPECT_EQ(d.SplitOf("R+a", "v"), 2);
  // An older version never regresses the directive.
  EXPECT_FALSE(d.ApplySplit("R+a", "v", 8, /*version=*/0, /*epoch=*/9));
  EXPECT_EQ(d.SplitOf("R+a", "v"), 2);
  EXPECT_TRUE(d.ApplySplit("R+a", "v", 4, /*version=*/2, /*epoch=*/9));
  EXPECT_EQ(d.SplitOf("R+a", "v"), 4);
  const Directive* stored = d.FindSplit("R+a", "v");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->version, 2u);
  EXPECT_EQ(stored->changed_epoch, 9u);
}

TEST(Directory, EqualVersionTieBreaksTowardLargerLevel) {
  // Two deciders transiently owning one key can issue conflicting
  // directives under the same version; the symmetric larger-level-wins
  // rule makes every copy converge to one of them.
  Directory d;
  EXPECT_TRUE(d.ApplySplit("R+a", "v", 2, /*version=*/3, /*epoch=*/1));
  EXPECT_FALSE(d.ApplySplit("R+a", "v", 2, /*version=*/3, /*epoch=*/2));
  EXPECT_TRUE(d.ApplySplit("R+a", "v", 4, /*version=*/3, /*epoch=*/2));
  EXPECT_EQ(d.SplitOf("R+a", "v"), 4);
  EXPECT_FALSE(d.ApplySplit("R+a", "v", 2, /*version=*/3, /*epoch=*/3));
  EXPECT_EQ(d.SplitOf("R+a", "v"), 4);
}

TEST(Directory, ReplicasRespectTheStaticFloor) {
  Directory d;
  EXPECT_EQ(d.ReplicasOf("R+a", 2), 2);
  EXPECT_TRUE(d.ApplyReplicas("R+a", 3, /*version=*/1, /*epoch=*/0));
  EXPECT_EQ(d.ReplicasOf("R+a", 2), 3);
  // A cooled directive below the configured floor reads as the floor.
  EXPECT_TRUE(d.ApplyReplicas("R+a", 1, /*version=*/2, /*epoch=*/4));
  EXPECT_EQ(d.ReplicasOf("R+a", 2), 2);
  EXPECT_EQ(d.ReplicasOf("R+a", 1), 1);
}

TEST(Directory, MergeTakesNewerAndTieBreaks) {
  Directory a;
  Directory b;
  a.ApplySplit("R+a", "v", 2, /*version=*/1, /*epoch=*/1);
  a.ApplyReplicas("R+x", 3, /*version=*/5, /*epoch=*/1);
  b.ApplySplit("R+a", "v", 4, /*version=*/2, /*epoch=*/2);
  b.ApplySplit("R+b", "w", 2, /*version=*/1, /*epoch=*/2);
  b.ApplyReplicas("R+x", 2, /*version=*/4, /*epoch=*/2);

  EXPECT_EQ(a.MergeFrom(b), 2u);  // Newer split + unseen family.
  EXPECT_EQ(a.SplitOf("R+a", "v"), 4);
  EXPECT_EQ(a.SplitOf("R+b", "w"), 2);
  EXPECT_EQ(a.ReplicasOf("R+x", 1), 3);  // Older replica directive ignored.

  // Same-version conflict: the larger level wins symmetrically.
  Directory c;
  Directory e;
  c.ApplySplit("R+c", "v", 2, /*version=*/7, /*epoch=*/1);
  e.ApplySplit("R+c", "v", 8, /*version=*/7, /*epoch=*/1);
  EXPECT_EQ(c.MergeFrom(e), 1u);
  EXPECT_EQ(e.MergeFrom(c), 0u);
  EXPECT_EQ(c.SplitOf("R+c", "v"), 8);
  EXPECT_EQ(e.SplitOf("R+c", "v"), 8);
}

TEST(Directory, EmptyReflectsContents) {
  Directory d;
  EXPECT_TRUE(d.empty());
  d.ApplySplit("", "v", 2, /*version=*/1, /*epoch=*/0);
  EXPECT_FALSE(d.empty());
}

}  // namespace
}  // namespace contjoin::adapt
