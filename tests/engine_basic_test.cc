// End-to-end behaviour of the four algorithms on small, hand-checked
// scenarios, including the paper's §3.2 e-learning example and its §4.5
// DAI-V expression-join example.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace contjoin::core {
namespace {

using rel::Value;

class EngineBasicTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  std::unique_ptr<ContinuousQueryNetwork> MakeNet(
      size_t nodes = 32, std::function<void(Options*)> tweak = nullptr) {
    Options opts;
    opts.num_nodes = nodes;
    opts.algorithm = GetParam();
    if (tweak) tweak(&opts);
    auto net = std::make_unique<ContinuousQueryNetwork>(std::move(opts));
    RegisterPaperSchemas(net.get());
    return net;
  }

  static void RegisterPaperSchemas(ContinuousQueryNetwork* net) {
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "Document", {{"Id", rel::ValueType::kInt},
                                  {"Title", rel::ValueType::kString},
                                  {"Conference", rel::ValueType::kString},
                                  {"AuthorId", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "Authors", {{"Id", rel::ValueType::kInt},
                                 {"Name", rel::ValueType::kString},
                                 {"Surname", rel::ValueType::kString}}))
                 .ok());
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt},
                           {"B", rel::ValueType::kInt},
                           {"C", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt},
                           {"E", rel::ValueType::kInt},
                           {"F", rel::ValueType::kInt}}))
                 .ok());
  }
};

TEST_P(EngineBasicTest, PaperElearningExample) {
  auto net = MakeNet();
  auto key = net->SubmitQuery(
      3,
      "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
      "WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'");
  ASSERT_TRUE(key.ok()) << key.status().ToString();

  // Smith is author 42; a paper by author 42 must notify node 3.
  ASSERT_TRUE(net->InsertTuple(10, "Authors",
                               {Value::Int(42), Value::Str("John"),
                                Value::Str("Smith")})
                  .ok());
  ASSERT_TRUE(net->InsertTuple(11, "Document",
                               {Value::Int(1), Value::Str("P2P Joins"),
                                Value::Str("ICDE"), Value::Int(42)})
                  .ok());
  auto notifications = net->TakeNotifications(3);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].query_key, key.value());
  ASSERT_EQ(notifications[0].row.size(), 2u);
  EXPECT_EQ(notifications[0].row[0], Value::Str("P2P Joins"));
  EXPECT_EQ(notifications[0].row[1], Value::Str("ICDE"));

  // A paper by someone else does not notify.
  ASSERT_TRUE(net->InsertTuple(12, "Document",
                               {Value::Int(2), Value::Str("Other"),
                                Value::Str("VLDB"), Value::Int(99)})
                  .ok());
  EXPECT_TRUE(net->TakeNotifications(3).empty());

  // Another Smith paper notifies again.
  ASSERT_TRUE(net->InsertTuple(13, "Document",
                               {Value::Int(3), Value::Str("More Joins"),
                                Value::Str("SIGMOD"), Value::Int(42)})
                  .ok());
  EXPECT_EQ(net->TakeNotifications(3).size(), 1u);
}

TEST_P(EngineBasicTest, BothInsertionOrdersProduceTheAnswer) {
  auto net = MakeNet();
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  // R first, then S.
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(0)})
                  .ok());
  ASSERT_TRUE(net->InsertTuple(2, "S",
                               {Value::Int(5), Value::Int(7), Value::Int(0)})
                  .ok());
  auto first = net->TakeNotifications(0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].row[0], Value::Int(1));
  EXPECT_EQ(first[0].row[1], Value::Int(5));

  // S first, then R (different values).
  ASSERT_TRUE(net->InsertTuple(3, "S",
                               {Value::Int(6), Value::Int(8), Value::Int(0)})
                  .ok());
  ASSERT_TRUE(net->InsertTuple(4, "R",
                               {Value::Int(2), Value::Int(8), Value::Int(0)})
                  .ok());
  auto second = net->TakeNotifications(0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].row[0], Value::Int(2));
  EXPECT_EQ(second[0].row[1], Value::Int(6));
}

TEST_P(EngineBasicTest, TuplesBeforeQueryDoNotTrigger) {
  auto net = MakeNet();
  // Tuple inserted before the query exists.
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(0)})
                  .ok());
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(net->InsertTuple(2, "S",
                               {Value::Int(5), Value::Int(7), Value::Int(0)})
                  .ok());
  // pubT(R-tuple) < insT(q): no notification (paper §3.2 time semantics).
  EXPECT_TRUE(net->TakeNotifications(0).empty());
}

TEST_P(EngineBasicTest, LinearJoinConditionWithSkippedFractionalSolutions) {
  auto net = MakeNet();
  auto key =
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE 2*R.B = S.E");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  // R.B = 3 -> S.E must be 6.
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(3), Value::Int(0)})
                  .ok());
  // S.E = 7 is odd: matches no R.B (inversion 3.5 not representable).
  ASSERT_TRUE(net->InsertTuple(2, "S",
                               {Value::Int(9), Value::Int(7), Value::Int(0)})
                  .ok());
  EXPECT_TRUE(net->TakeNotifications(0).empty());
  ASSERT_TRUE(net->InsertTuple(3, "S",
                               {Value::Int(8), Value::Int(6), Value::Int(0)})
                  .ok());
  auto notifications = net->TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].row[1], Value::Int(8));
}

TEST_P(EngineBasicTest, MultipleSubscribersEachNotified) {
  auto net = MakeNet();
  auto k1 = net->SubmitQuery(1, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  auto k2 = net->SubmitQuery(2, "SELECT R.C, S.F FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(k1.ok() && k2.ok());
  ASSERT_TRUE(net->InsertTuple(3, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(2)})
                  .ok());
  ASSERT_TRUE(net->InsertTuple(4, "S",
                               {Value::Int(5), Value::Int(7), Value::Int(6)})
                  .ok());
  auto n1 = net->TakeNotifications(1);
  auto n2 = net->TakeNotifications(2);
  ASSERT_EQ(n1.size(), 1u);
  ASSERT_EQ(n2.size(), 1u);
  EXPECT_EQ(n1[0].row[0], Value::Int(1));
  EXPECT_EQ(n2[0].row[0], Value::Int(2));
  EXPECT_EQ(n2[0].row[1], Value::Int(6));
}

TEST_P(EngineBasicTest, NoDuplicateNotificationsPerPair) {
  auto net = MakeNet();
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  // Distinct-content tuples so every pair is distinguishable.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net->InsertTuple(1, "R",
                                 {Value::Int(100 + i), Value::Int(7),
                                  Value::Int(0)})
                    .ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(net->InsertTuple(2, "S",
                                 {Value::Int(200 + i), Value::Int(7),
                                  Value::Int(0)})
                    .ok());
  }
  auto notifications = net->TakeNotifications(0);
  // 3 x 2 distinct pairs, each exactly once.
  EXPECT_EQ(notifications.size(), 6u);
  std::set<std::string> contents;
  for (const auto& n : notifications) contents.insert(n.ContentKey());
  EXPECT_EQ(contents.size(), 6u);
}

TEST_P(EngineBasicTest, TrafficIsAccounted) {
  auto net = MakeNet();
  uint64_t before = net->stats().total_hops();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  uint64_t after_query = net->stats().total_hops();
  EXPECT_GT(after_query, before);
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(0)})
                  .ok());
  EXPECT_GT(net->stats().total_hops(), after_query);
  EXPECT_GT(net->stats().hops(sim::MsgClass::kTupleIndex), 0u);
}

TEST_P(EngineBasicTest, FilteringLoadIsRecorded) {
  auto net = MakeNet();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(0)})
                  .ok());
  NodeMetrics total = net->TotalMetrics();
  EXPECT_GT(total.filter_ops_attr, 0u);
  EXPECT_GT(total.tuples_received_attr, 0u);
  EXPECT_EQ(total.queries_received,
            GetParam() == Algorithm::kSai ? 1u : 2u);
}

TEST_P(EngineBasicTest, StorageAccounting) {
  auto net = MakeNet();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  NodeStorage s0 = net->TotalStorage();
  EXPECT_EQ(s0.alqt_queries, GetParam() == Algorithm::kSai ? 1u : 2u);

  // One tuple per relation, with non-matching join values.
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(0)})
                  .ok());
  ASSERT_TRUE(net->InsertTuple(2, "S",
                               {Value::Int(5), Value::Int(8), Value::Int(0)})
                  .ok());
  NodeStorage s1 = net->TotalStorage();
  switch (GetParam()) {
    case Algorithm::kSai:
      // Whichever side SAI indexed produced one rewritten query; both
      // tuples were stored at their 3 value-level nodes.
      EXPECT_EQ(s1.vlqt_rewritten, 1u);
      EXPECT_EQ(s1.vltt_tuples, 6u);
      break;
    case Algorithm::kDaiQ:
      EXPECT_EQ(s1.vlqt_rewritten, 0u);  // Evaluators don't store queries.
      EXPECT_EQ(s1.vltt_tuples, 6u);
      break;
    case Algorithm::kDaiT:
      EXPECT_EQ(s1.vlqt_rewritten, 2u);  // Both rewriters reindexed once.
      EXPECT_EQ(s1.vltt_tuples, 0u);     // Evaluators don't store tuples.
      break;
    case Algorithm::kDaiV:
      EXPECT_EQ(s1.vlqt_rewritten, 0u);
      EXPECT_EQ(s1.vltt_tuples, 0u);
      EXPECT_EQ(s1.daiv_entries, 2u);  // One projection per trigger side.
      break;
  }
}

TEST_P(EngineBasicTest, UnsubscribeStopsNotifications) {
  auto net = MakeNet(32, [](Options* o) { o->track_evaluators = true; });
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(net->InsertTuple(1, "R",
                               {Value::Int(1), Value::Int(7), Value::Int(0)})
                  .ok());
  ASSERT_TRUE(net->Unsubscribe(0, key.value()).ok());
  ASSERT_TRUE(net->InsertTuple(2, "S",
                               {Value::Int(5), Value::Int(7), Value::Int(0)})
                  .ok());
  EXPECT_TRUE(net->TakeNotifications(0).empty());
  // Value-level state was garbage-collected too.
  EXPECT_EQ(net->TotalStorage().vlqt_rewritten, 0u);
  EXPECT_EQ(net->TotalStorage().daiv_entries, 0u);
  EXPECT_EQ(net->TotalStorage().alqt_queries, 0u);
}

TEST_P(EngineBasicTest, ErrorsAreReported) {
  auto net = MakeNet();
  EXPECT_TRUE(net->SubmitQuery(999, "x").status().IsInvalidArgument());
  EXPECT_TRUE(net->SubmitQuery(0, "SELECT nonsense").status().IsParseError());
  EXPECT_TRUE(net->InsertTuple(0, "Nope", {}).IsNotFound());
  EXPECT_TRUE(
      net->InsertTuple(0, "R", {Value::Int(1)}).IsInvalidArgument());
  EXPECT_TRUE(net->Unsubscribe(0, "missing").IsNotFound());
}

TEST_P(EngineBasicTest, T2QueriesOnlyOnDaiV) {
  auto net = MakeNet();
  auto result = net->SubmitQuery(
      0, "SELECT R.A, S.D FROM R, S WHERE R.A + R.B = S.E + S.F");
  if (GetParam() == Algorithm::kDaiV) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The paper's §4.5 example flow: R with sum 25, then S with sum 25.
    ASSERT_TRUE(net->InsertTuple(1, "R",
                                 {Value::Int(10), Value::Int(15),
                                  Value::Int(0)})
                    .ok());
    ASSERT_TRUE(net->InsertTuple(2, "S",
                                 {Value::Int(3), Value::Int(20),
                                  Value::Int(5)})
                    .ok());
    auto notifications = net->TakeNotifications(0);
    ASSERT_EQ(notifications.size(), 1u);
    EXPECT_EQ(notifications[0].row[0], Value::Int(10));
    EXPECT_EQ(notifications[0].row[1], Value::Int(3));
  } else {
    EXPECT_TRUE(result.status().IsUnsupported());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EngineBasicTest,
                         ::testing::Values(Algorithm::kSai, Algorithm::kDaiQ,
                                           Algorithm::kDaiT,
                                           Algorithm::kDaiV),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param))
                                      .substr(0, 3) +
                                  (info.param == Algorithm::kSai ? ""
                                   : info.param == Algorithm::kDaiQ ? "Q"
                                   : info.param == Algorithm::kDaiT ? "T"
                                                                    : "V");
                         });

}  // namespace
}  // namespace contjoin::core
