// Randomized churn property test: arbitrary interleavings of joins,
// graceful departures and crashes, with stabilization in between, must
// keep the ring consistent and lookups correct.

#include <gtest/gtest.h>

#include "chord_test_util.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace contjoin::chord {
namespace {

class ChurnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnPropertyTest, RingSurvivesRandomChurn) {
  sim::Simulator sim;
  NetworkOptions options;
  options.successor_list_size = 6;  // Tolerate bursts of failures.
  Network network(&sim, options);
  Rng rng(GetParam());

  Node* seed = network.CreateAndJoin("seed", nullptr);
  std::vector<Node*> members{seed};
  for (int i = 0; i < 24; ++i) {
    members.push_back(network.CreateAndJoin("m" + std::to_string(i), seed));
    network.RunMaintenanceRound(4);
  }
  network.StabilizeUntilConsistent(300);
  ASSERT_TRUE(network.RingIsFullyConsistent());

  int created = 0;
  for (int step = 0; step < 40; ++step) {
    double dice = rng.NextDouble();
    auto alive = network.AliveNodes();
    if (dice < 0.4 || alive.size() < 8) {
      // Join through a random alive bootstrap.
      Node* bootstrap = alive[rng.NextBelow(alive.size())];
      members.push_back(network.CreateAndJoin(
          "j" + std::to_string(created++), bootstrap));
    } else if (dice < 0.7) {
      Node* victim = alive[rng.NextBelow(alive.size())];
      victim->LeaveGracefully();
    } else {
      // Crash up to two nodes at once (within the successor-list budget).
      for (int k = 0; k < 2 && network.alive_count() > 8; ++k) {
        auto still = network.AliveNodes();
        still[rng.NextBelow(still.size())]->Fail();
      }
    }
    network.RunMaintenanceRound(6);
    network.RunMaintenanceRound(6);
  }

  int rounds = network.StabilizeUntilConsistent(500);
  EXPECT_LT(rounds, 500) << "ring never reconverged";
  EXPECT_TRUE(network.RingIsFullyConsistent());

  // Lookups agree with the oracle from every alive node.
  auto alive = network.AliveNodes();
  for (int probe = 0; probe < 100; ++probe) {
    NodeId target = HashKey("probe-" + std::to_string(probe));
    Node* origin = alive[rng.NextBelow(alive.size())];
    EXPECT_EQ(origin->FindSuccessor(target, sim::MsgClass::kLookup),
              network.OracleSuccessor(target));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace contjoin::chord
