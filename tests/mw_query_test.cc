// Parser and representation tests for multi-way queries.

#include "query/mw_query.h"

#include <gtest/gtest.h>

namespace contjoin::query {
namespace {

class MwQueryTest : public ::testing::Test {
 protected:
  MwQueryTest() {
    for (const char* name : {"R", "S", "T", "U"}) {
      CJ_CHECK(catalog_
                   .Register(rel::RelationSchema(
                       name, {{"a", rel::ValueType::kInt},
                              {"b", rel::ValueType::kInt},
                              {"c", rel::ValueType::kInt}}))
                   .ok());
    }
  }

  rel::Catalog catalog_;
};

TEST_F(MwQueryTest, ParsesThreeWayChain) {
  auto q = ParseMwQuery(
      "SELECT R.a, S.b, T.c FROM R, S, T WHERE R.a = S.a AND S.b = T.b",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 3u);
  ASSERT_EQ(q->conditions().size(), 2u);
  EXPECT_EQ(q->conditions()[0].rel_a, 0);
  EXPECT_EQ(q->conditions()[0].rel_b, 1);
  EXPECT_EQ(q->conditions()[1].rel_a, 1);
  EXPECT_EQ(q->conditions()[1].rel_b, 2);
  EXPECT_EQ(q->select().size(), 3u);
}

TEST_F(MwQueryTest, ParsesFourWayStar) {
  auto q = ParseMwQuery(
      "SELECT R.a, U.c FROM R, S, T, U "
      "WHERE R.a = S.a AND R.b = T.b AND R.c = U.c",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 4u);
  EXPECT_EQ(q->conditions().size(), 3u);
}

TEST_F(MwQueryTest, PredicatesAttachToRelations) {
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE R.a = S.a AND S.b = T.b AND T.c > 5 "
      "AND R.b != 2",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->relations()[0].predicates.size(), 1u);
  EXPECT_EQ(q->relations()[1].predicates.size(), 0u);
  EXPECT_EQ(q->relations()[2].predicates.size(), 1u);
}

TEST_F(MwQueryTest, TwoWayQueriesAreAccepted) {
  auto q = ParseMwQuery("SELECT R.a, S.b FROM R, S WHERE R.a = S.a",
                        catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 2u);
}

TEST_F(MwQueryTest, NextConditionWalksTheTree) {
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE S.b = T.b AND R.a = S.a", catalog_);
  ASSERT_TRUE(q.ok());
  // With only R bound, condition 1 (R.a = S.a) is the sole frontier edge.
  EXPECT_EQ(q->NextCondition(0b001), 1);
  // With R and S bound, condition 0 (S.b = T.b) opens.
  EXPECT_EQ(q->NextCondition(0b011), 0);
  EXPECT_EQ(q->NextCondition(0b111), -1);
}

TEST_F(MwQueryTest, ToStringRoundTrips) {
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE R.a = S.a AND S.b = T.b AND T.c >= 1",
      catalog_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(),
            "SELECT R.a FROM R, S, T WHERE R.a = S.a AND S.b = T.b AND "
            "T.c >= 1");
}

TEST_F(MwQueryTest, RejectsDisconnectedGraph) {
  // Three relations, two conditions, but T unconnected: R-S twice... a
  // second R-S condition is a cycle over {R,S} and leaves T unreachable.
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE R.a = S.a AND R.b = S.b", catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(MwQueryTest, RejectsWrongConditionCount) {
  auto q = ParseMwQuery("SELECT R.a FROM R, S, T WHERE R.a = S.a", catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(MwQueryTest, RejectsExpressionJoinSides) {
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE R.a + 1 = S.a AND S.b = T.b", catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(MwQueryTest, RejectsNonEqualityJoin) {
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE R.a < S.a AND S.b = T.b", catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(MwQueryTest, RejectsSelfJoin) {
  auto q = ParseMwQuery(
      "SELECT X.a FROM R AS X, R AS Y, T WHERE X.a = Y.a AND Y.b = T.b",
      catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(MwQueryTest, RejectsUnknownRelationOrAttribute) {
  EXPECT_TRUE(ParseMwQuery("SELECT Z.a FROM Z, S WHERE Z.a = S.a", catalog_)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParseMwQuery("SELECT R.z FROM R, S WHERE R.a = S.a", catalog_)
                  .status()
                  .IsNotFound());
}

TEST_F(MwQueryTest, SideOfRelation) {
  auto q = ParseMwQuery(
      "SELECT R.a FROM R, S, T WHERE R.a = S.a AND S.b = T.b", catalog_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->SideOfRelation("R"), 0);
  EXPECT_EQ(q->SideOfRelation("T"), 2);
  EXPECT_EQ(q->SideOfRelation("X"), -1);
}

}  // namespace
}  // namespace contjoin::query
