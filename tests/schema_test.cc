#include "relational/schema.h"

#include <gtest/gtest.h>

#include "relational/tuple.h"

namespace contjoin::rel {
namespace {

RelationSchema DocSchema() {
  return RelationSchema("Document", {{"Id", ValueType::kInt},
                                     {"Title", ValueType::kString},
                                     {"Conference", ValueType::kString},
                                     {"AuthorId", ValueType::kInt}});
}

TEST(SchemaTest, BasicAccessors) {
  RelationSchema s = DocSchema();
  EXPECT_EQ(s.name(), "Document");
  EXPECT_EQ(s.arity(), 4u);
  EXPECT_EQ(s.attribute(1).name, "Title");
  EXPECT_EQ(s.AttributeIndex("AuthorId"), 3u);
  EXPECT_FALSE(s.AttributeIndex("Nope").has_value());
}

TEST(SchemaTest, ToStringListsAttributes) {
  EXPECT_EQ(DocSchema().ToString(),
            "Document(Id int, Title string, Conference string, AuthorId int)");
}

TEST(CatalogTest, RegisterAndFind) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(DocSchema()).ok());
  ASSERT_NE(catalog.Find("Document"), nullptr);
  EXPECT_EQ(catalog.Find("Document")->arity(), 4u);
  EXPECT_EQ(catalog.Find("Missing"), nullptr);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, RejectsDuplicates) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(DocSchema()).ok());
  EXPECT_TRUE(catalog.Register(DocSchema()).IsAlreadyExists());
}

TEST(CatalogTest, RejectsEmptyAndMalformed) {
  Catalog catalog;
  EXPECT_TRUE(catalog.Register(RelationSchema("", {{"A", ValueType::kInt}}))
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.Register(RelationSchema("R", {})).IsInvalidArgument());
  EXPECT_TRUE(catalog
                  .Register(RelationSchema(
                      "R", {{"A", ValueType::kInt}, {"A", ValueType::kInt}}))
                  .IsInvalidArgument());
}

TEST(TupleTest, AccessorsAndTimes) {
  Tuple t("Document", {Value::Int(1), Value::Str("DHTs"), Value::Str("ICDE"),
                       Value::Int(9)},
          /*pub_time=*/17, /*seq=*/3);
  EXPECT_EQ(t.relation(), "Document");
  EXPECT_EQ(t.arity(), 4u);
  EXPECT_EQ(t.at(1).as_string(), "DHTs");
  EXPECT_EQ(t.pub_time(), 17u);
  EXPECT_EQ(t.seq(), 3u);
  EXPECT_TRUE(t.Before(18, 0));
  EXPECT_TRUE(t.Before(17, 4));
  EXPECT_FALSE(t.Before(17, 3));
  EXPECT_FALSE(t.Before(16, 9));
}

TEST(TupleTest, CheckAgainstSchema) {
  RelationSchema schema = DocSchema();
  Tuple good("Document",
             {Value::Int(1), Value::Str("t"), Value::Str("c"), Value::Int(2)},
             0, 0);
  EXPECT_TRUE(good.CheckAgainst(schema).ok());

  Tuple wrong_arity("Document", {Value::Int(1)}, 0, 0);
  EXPECT_TRUE(wrong_arity.CheckAgainst(schema).IsInvalidArgument());

  Tuple wrong_type("Document",
                   {Value::Str("x"), Value::Str("t"), Value::Str("c"),
                    Value::Int(2)},
                   0, 0);
  EXPECT_TRUE(wrong_type.CheckAgainst(schema).IsInvalidArgument());

  Tuple wrong_rel("Authors",
                  {Value::Int(1), Value::Str("t"), Value::Str("c"),
                   Value::Int(2)},
                  0, 0);
  EXPECT_TRUE(wrong_rel.CheckAgainst(schema).IsInvalidArgument());
}

TEST(TupleTest, IntAcceptedForDoubleAttribute) {
  RelationSchema schema("M", {{"X", ValueType::kDouble}});
  Tuple t("M", {Value::Int(3)}, 0, 0);
  EXPECT_TRUE(t.CheckAgainst(schema).ok());
}

TEST(TupleTest, NullAcceptedAnywhere) {
  RelationSchema schema("M", {{"X", ValueType::kInt}});
  Tuple t("M", {Value::Null()}, 0, 0);
  EXPECT_TRUE(t.CheckAgainst(schema).ok());
}

TEST(TupleTest, ToStringRendersValues) {
  Tuple t("R", {Value::Int(1), Value::Str("x")}, 0, 0);
  EXPECT_EQ(t.ToString(), "R(1, 'x')");
}

}  // namespace
}  // namespace contjoin::rel
