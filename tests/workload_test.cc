#include "workload/workload.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace contjoin::workload {
namespace {

TEST(WorkloadTest, RegisterSchemas) {
  WorkloadOptions opts;
  WorkloadGenerator gen(opts);
  rel::Catalog catalog;
  ASSERT_TRUE(gen.RegisterSchemas(&catalog).ok());
  ASSERT_NE(catalog.Find("R"), nullptr);
  ASSERT_NE(catalog.Find("S"), nullptr);
  EXPECT_EQ(catalog.Find("R")->arity(), opts.attrs_per_relation);
  EXPECT_EQ(catalog.Find("R")->attribute(0).name, "a0");
  EXPECT_EQ(catalog.Find("S")->attribute(0).name, "b0");
}

TEST(WorkloadTest, GeneratedQueriesParse) {
  WorkloadOptions opts;
  opts.t2_fraction = 0.3;
  opts.linear_fraction = 0.3;
  opts.predicate_fraction = 0.3;
  WorkloadGenerator gen(opts);
  rel::Catalog catalog;
  ASSERT_TRUE(gen.RegisterSchemas(&catalog).ok());
  for (int i = 0; i < 200; ++i) {
    std::string sql = gen.NextQuerySql();
    auto q = query::ParseQuery(sql, catalog);
    ASSERT_TRUE(q.ok()) << sql << " -> " << q.status().ToString();
  }
}

TEST(WorkloadTest, T2FractionZeroYieldsOnlyT1) {
  WorkloadOptions opts;
  opts.t2_fraction = 0.0;
  WorkloadGenerator gen(opts);
  rel::Catalog catalog;
  ASSERT_TRUE(gen.RegisterSchemas(&catalog).ok());
  for (int i = 0; i < 100; ++i) {
    auto q = query::ParseQuery(gen.NextQuerySql(), catalog);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->type(), query::QueryType::kT1);
  }
}

TEST(WorkloadTest, T2FractionOneYieldsOnlyT2) {
  WorkloadOptions opts;
  opts.t2_fraction = 1.0;
  WorkloadGenerator gen(opts);
  rel::Catalog catalog;
  ASSERT_TRUE(gen.RegisterSchemas(&catalog).ok());
  for (int i = 0; i < 50; ++i) {
    auto q = query::ParseQuery(gen.NextQuerySql(), catalog);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->type(), query::QueryType::kT2);
  }
}

TEST(WorkloadTest, TuplesMatchSchema) {
  WorkloadOptions opts;
  WorkloadGenerator gen(opts);
  rel::Catalog catalog;
  ASSERT_TRUE(gen.RegisterSchemas(&catalog).ok());
  for (int i = 0; i < 100; ++i) {
    auto [relation, values] = gen.NextTuple();
    const rel::RelationSchema* schema = catalog.Find(relation);
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(values.size(), schema->arity());
    for (const rel::Value& v : values) {
      EXPECT_EQ(v.type(), rel::ValueType::kInt);
      EXPECT_GE(v.as_int(), 0);
      EXPECT_LT(v.as_int(), opts.domain);
    }
  }
}

TEST(WorkloadTest, BosRatioControlsRelationMix) {
  WorkloadOptions opts;
  opts.bos_ratio = 4.0;  // R : S arrivals at 4 : 1.
  WorkloadGenerator gen(opts);
  int r_count = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.NextTuple().first == "R") ++r_count;
  }
  EXPECT_NEAR(static_cast<double>(r_count) / kDraws, 0.8, 0.02);
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadOptions opts;
  opts.seed = 99;
  WorkloadGenerator a(opts), b(opts);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextQuerySql(), b.NextQuerySql());
    EXPECT_EQ(a.NextTuple(), b.NextTuple());
  }
}

TEST(WorkloadTest, ZipfSkewShowsInValues) {
  WorkloadOptions opts;
  opts.zipf_theta = 1.2;
  opts.domain = 1000;
  WorkloadGenerator gen(opts);
  int zeros = 0;
  for (int i = 0; i < 5000; ++i) {
    if (gen.SampleValue() == 0) ++zeros;
  }
  // Rank 0 should dominate under strong skew.
  EXPECT_GT(zeros, 500);
}

}  // namespace
}  // namespace contjoin::workload
