#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace contjoin {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All seven values show up.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);
}

TEST(RngTest, UniformityChiSquaredish) {
  Rng rng(31);
  int buckets[10] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.NextBelow(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 10 * 0.1);
  }
}

}  // namespace
}  // namespace contjoin
