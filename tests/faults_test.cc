// Unit tests for the fault-injection layer: deterministic FaultPlan
// decisions, per-class targeting, scripted churn schedules, per-class drop
// accounting in NetStats, and the Transmit integration (drop / duplicate /
// extra-delay behaviour of a planned hop).

#include <string>
#include <vector>

#include "chord/network.h"
#include "chord/node.h"
#include "chord/types.h"
#include "chord_test_util.h"
#include "faults/churn.h"
#include "faults/fault_plan.h"
#include "gtest/gtest.h"
#include "sim/net_stats.h"
#include "sim/simulator.h"

namespace contjoin {
namespace {

using chord::Network;
using chord::NetworkOptions;
using chord::Node;
using faults::ChurnEvent;
using faults::ChurnScript;
using faults::FaultDecision;
using faults::FaultOptions;
using faults::FaultPlan;
using faults::FaultProfile;
using sim::MsgClass;

FaultOptions LossyOptions(double drop, uint64_t seed) {
  FaultOptions opts;
  opts.seed = seed;
  FaultProfile p;
  p.drop_prob = drop;
  p.duplicate_prob = drop / 2;
  p.delay_prob = drop / 2;
  p.max_extra_delay = 5;
  opts.SetProfiles(
      std::vector<MsgClass>{MsgClass::kQueryIndex, MsgClass::kTupleIndex,
                            MsgClass::kRewrittenQuery, MsgClass::kNotification},
      p);
  return opts;
}

TEST(FaultPlan, InactiveByDefault) {
  FaultOptions opts;
  EXPECT_FALSE(opts.active());
  EXPECT_FALSE(opts.profile(MsgClass::kNotification).active());

  // A plan over all-zero profiles never touches a transmission.
  FaultPlan plan(opts);
  for (int i = 0; i < 100; ++i) {
    FaultDecision d = plan.Decide(MsgClass::kNotification);
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.duplicates, 0);
    EXPECT_EQ(d.extra_delay, 0u);
  }
  EXPECT_EQ(plan.injected_drops(), 0u);
  EXPECT_EQ(plan.injected_duplicates(), 0u);
  EXPECT_EQ(plan.injected_delays(), 0u);
}

TEST(FaultPlan, SameSeedSameDecisionSequence) {
  FaultPlan a(LossyOptions(0.3, 42));
  FaultPlan b(LossyOptions(0.3, 42));
  for (int i = 0; i < 500; ++i) {
    MsgClass c = (i % 2 == 0) ? MsgClass::kTupleIndex : MsgClass::kNotification;
    FaultDecision da = a.Decide(c);
    FaultDecision db = b.Decide(c);
    EXPECT_EQ(da.drop, db.drop) << "decision " << i;
    EXPECT_EQ(da.duplicates, db.duplicates) << "decision " << i;
    EXPECT_EQ(da.extra_delay, db.extra_delay) << "decision " << i;
  }
  EXPECT_EQ(a.injected_drops(), b.injected_drops());
  EXPECT_EQ(a.injected_duplicates(), b.injected_duplicates());
  EXPECT_EQ(a.injected_delays(), b.injected_delays());
  EXPECT_GT(a.injected_drops(), 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(LossyOptions(0.3, 1));
  FaultPlan b(LossyOptions(0.3, 2));
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    FaultDecision da = a.Decide(MsgClass::kNotification);
    FaultDecision db = b.Decide(MsgClass::kNotification);
    if (da.drop != db.drop || da.duplicates != db.duplicates ||
        da.extra_delay != db.extra_delay) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, TargetsOnlyConfiguredClasses) {
  FaultOptions opts;
  opts.profile(MsgClass::kNotification).drop_prob = 1.0;
  FaultPlan plan(opts);

  // Maintenance and lookups are untouched; every notification is lost.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(plan.Decide(MsgClass::kMaintenance).drop);
    EXPECT_FALSE(plan.Decide(MsgClass::kLookup).drop);
    EXPECT_TRUE(plan.Decide(MsgClass::kNotification).drop);
  }
  EXPECT_EQ(plan.injected_drops(), 50u);
}

TEST(FaultPlan, CertainDuplicateAndDelayBounds) {
  FaultOptions opts;
  FaultProfile& p = opts.profile(MsgClass::kControl);
  p.duplicate_prob = 1.0;
  p.delay_prob = 1.0;
  p.max_extra_delay = 7;
  FaultPlan plan(opts);
  for (int i = 0; i < 200; ++i) {
    FaultDecision d = plan.Decide(MsgClass::kControl);
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.duplicates, 1);
    EXPECT_GE(d.extra_delay, 1u);
    EXPECT_LE(d.extra_delay, 7u);
  }
  EXPECT_EQ(plan.injected_duplicates(), 200u);
  EXPECT_EQ(plan.injected_delays(), 200u);
}

TEST(ChurnScript, IsSortedAcceptsNonDecreasingTimes) {
  ChurnScript script;
  EXPECT_TRUE(script.IsSorted());  // Empty is trivially sorted.
  script.events = {{10, ChurnEvent::Kind::kCrash, 0},
                   {10, ChurnEvent::Kind::kJoin, 0},
                   {25, ChurnEvent::Kind::kCrash, 3}};
  EXPECT_TRUE(script.IsSorted());
  script.events.push_back({5, ChurnEvent::Kind::kJoin, 0});
  EXPECT_FALSE(script.IsSorted());
}

TEST(ChurnScript, AlternatingBuilderIsSortedAndSpread) {
  ChurnScript script = ChurnScript::Alternating(/*start=*/100, /*period=*/50,
                                                /*crashes=*/3, /*joins=*/2);
  ASSERT_EQ(script.events.size(), 5u);
  EXPECT_TRUE(script.IsSorted());
  EXPECT_EQ(script.events.front().at, 100u);
  size_t crashes = 0;
  size_t joins = 0;
  for (const ChurnEvent& ev : script.events) {
    (ev.kind == ChurnEvent::Kind::kCrash ? crashes : joins)++;
  }
  EXPECT_EQ(crashes, 3u);
  EXPECT_EQ(joins, 2u);
  // Crash ordinals differ so the victims are spread over the ring.
  EXPECT_NE(script.events[0].ordinal, script.events[2].ordinal);
}

TEST(NetStats, PerClassDropAccounting) {
  sim::NetStats stats;
  stats.AddDrop(MsgClass::kNotification);
  stats.AddDrop(MsgClass::kNotification);
  stats.AddDrop(MsgClass::kTupleIndex);
  EXPECT_EQ(stats.dropped(), 3u);
  EXPECT_EQ(stats.dropped(MsgClass::kNotification), 2u);
  EXPECT_EQ(stats.dropped(MsgClass::kTupleIndex), 1u);
  EXPECT_EQ(stats.dropped(MsgClass::kControl), 0u);

  std::string report = stats.Report();
  EXPECT_NE(report.find("(dropped: 3)"), std::string::npos);
  EXPECT_NE(report.find("(dropped: 2)"), std::string::npos);

  sim::NetStats later = stats;
  later.AddDrop(MsgClass::kNotification);
  sim::NetStats delta = later.Since(stats);
  EXPECT_EQ(delta.dropped(), 1u);
  EXPECT_EQ(delta.dropped(MsgClass::kNotification), 1u);
}

TEST(AppMessage, ReliableFieldsDefaultToUnarmed) {
  chord::AppMessage msg;
  EXPECT_EQ(msg.reliable_id, 0u);
  EXPECT_EQ(msg.reliable_origin, chord::NodeId{});
}

// --- Transmit integration ---------------------------------------------------

struct PlannedRing {
  sim::Simulator simulator;
  Network network{&simulator};
  std::vector<Node*> nodes;
  chord::CaptureApp app;

  explicit PlannedRing(size_t n) {
    nodes = network.BuildIdealRing(n);
    for (Node* node : nodes) node->set_app(&app);
  }
};

TEST(TransmitWithPlan, CertainDropLosesActionAndCounts) {
  PlannedRing ring(4);
  FaultOptions opts;
  opts.profile(MsgClass::kNotification).drop_prob = 1.0;
  FaultPlan plan(opts);
  ring.network.set_fault_plan(&plan);

  int delivered = 0;
  ring.network.Transmit(ring.nodes[0], ring.nodes[1], MsgClass::kNotification,
                        [&delivered]() { ++delivered; });
  ring.simulator.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ring.network.stats().dropped(MsgClass::kNotification), 1u);
  EXPECT_EQ(plan.injected_drops(), 1u);
  // The hop is still paid for: the message left the sender before it died.
  EXPECT_EQ(ring.network.stats().hops(MsgClass::kNotification), 1u);
}

TEST(TransmitWithPlan, CertainDuplicateDeliversTwice) {
  PlannedRing ring(4);
  FaultOptions opts;
  opts.profile(MsgClass::kControl).duplicate_prob = 1.0;
  FaultPlan plan(opts);
  ring.network.set_fault_plan(&plan);

  int delivered = 0;
  ring.network.Transmit(ring.nodes[0], ring.nodes[1], MsgClass::kControl,
                        [&delivered]() { ++delivered; });
  ring.simulator.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(plan.injected_duplicates(), 1u);
  EXPECT_EQ(ring.network.stats().dropped(), 0u);
}

TEST(TransmitWithPlan, ExtraDelayPostponesDelivery) {
  sim::Simulator simulator;
  Network network(&simulator, NetworkOptions{4, /*hop_latency=*/2, 512});
  std::vector<Node*> nodes = network.BuildIdealRing(4);

  FaultOptions opts;
  FaultProfile& p = opts.profile(MsgClass::kControl);
  p.delay_prob = 1.0;
  p.max_extra_delay = 3;
  FaultPlan plan(opts);
  network.set_fault_plan(&plan);

  sim::SimTime delivered_at = 0;
  network.Transmit(nodes[0], nodes[1], MsgClass::kControl,
                   [&]() { delivered_at = simulator.Now(); });
  simulator.Run();
  EXPECT_GE(delivered_at, 3u);  // hop_latency + at least 1 extra.
  EXPECT_LE(delivered_at, 5u);  // hop_latency + at most max_extra_delay.
  EXPECT_EQ(plan.injected_delays(), 1u);
}

TEST(TransmitWithPlan, NoPlanIsLossFree) {
  PlannedRing ring(4);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    ring.network.Transmit(ring.nodes[0], ring.nodes[1], MsgClass::kNotification,
                          [&delivered]() { ++delivered; });
  }
  ring.simulator.Run();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(ring.network.stats().dropped(), 0u);
}

}  // namespace
}  // namespace contjoin
