// System-level robustness: identifier migration in the middle of a live
// workload must not change answers; node departures during a workload are
// best-effort (never spurious answers, never crashes).

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "query/parser.h"
#include "reference/reference_engine.h"
#include "workload/workload.h"

namespace contjoin::core {
namespace {

class MidWorkloadMigrationTest : public ::testing::TestWithParam<Algorithm> {
};

TEST_P(MidWorkloadMigrationTest, AnswersUnchangedByMigrations) {
  workload::WorkloadOptions wopts;
  wopts.seed = 13;
  wopts.domain = 40;
  wopts.num_relation_pairs = 1;
  workload::WorkloadGenerator gen(wopts);

  Options opts;
  opts.num_nodes = 32;
  opts.algorithm = GetParam();
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());
  ref::ReferenceEngine oracle;
  Rng placement(3);
  uint64_t seq = 0;

  for (int i = 0; i < 15; ++i) {
    std::string sql = gen.NextQuerySql();
    auto key = net.SubmitQuery(placement.NextBelow(net.num_nodes()), sql);
    ASSERT_TRUE(key.ok());
    auto parsed = query::ParseQuery(sql, *net.catalog());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }

  for (int i = 0; i < 150; ++i) {
    // Every 30 tuples, move a random attribute-level identifier.
    if (i % 30 == 15) {
      bool is_r = placement.NextBernoulli(0.5);
      std::string attr =
          (is_r ? "a" : "b") + std::to_string(placement.NextBelow(4));
      ASSERT_TRUE(net.MigrateAttribute(0, is_r ? "R" : "S", attr).ok());
    }
    auto [relation, values] = gen.NextTuple();
    auto copy = values;
    ASSERT_TRUE(net.InsertTuple(placement.NextBelow(net.num_nodes()),
                                relation, std::move(values))
                    .ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), seq++));
  }

  std::vector<Notification> delivered;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (Notification& n : net.TakeNotifications(i)) {
      delivered.push_back(std::move(n));
    }
  }
  EXPECT_EQ(ref::ReferenceEngine::ContentSet(delivered), oracle.ContentSet());
  EXPECT_FALSE(oracle.ContentSet().empty());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MidWorkloadMigrationTest,
                         ::testing::Values(Algorithm::kSai, Algorithm::kDaiQ,
                                           Algorithm::kDaiT,
                                           Algorithm::kDaiV));

class BestEffortChurnTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BestEffortChurnTest, DeparturesNeverCauseSpuriousAnswers) {
  // Nodes leave mid-workload. Their engine state is lost (the paper's
  // best-effort contract), so some answers may be missed — but everything
  // delivered must be a true answer, and nothing may crash.
  workload::WorkloadOptions wopts;
  wopts.seed = 23;
  wopts.domain = 30;
  workload::WorkloadGenerator gen(wopts);

  Options opts;
  opts.num_nodes = 48;
  opts.algorithm = GetParam();
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());
  ref::ReferenceEngine oracle;
  Rng placement(4);
  uint64_t seq = 0;

  // Subscribers live on the first 8 nodes, which never churn.
  for (int i = 0; i < 12; ++i) {
    std::string sql = gen.NextQuerySql();
    auto key = net.SubmitQuery(placement.NextBelow(8), sql);
    ASSERT_TRUE(key.ok());
    auto parsed = query::ParseQuery(sql, *net.catalog());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }

  size_t departures = 0;
  for (int i = 0; i < 200; ++i) {
    if (i % 40 == 20 && net.network()->alive_count() > 24) {
      // A non-subscriber node departs gracefully.
      size_t victim = 8 + placement.NextBelow(net.num_nodes() - 8);
      if (net.node(victim)->alive()) {
        net.DisconnectNode(victim);
        ++departures;
      }
    }
    auto [relation, values] = gen.NextTuple();
    auto copy = values;
    size_t origin;
    do {
      origin = placement.NextBelow(net.num_nodes());
    } while (!net.node(origin)->alive());
    ASSERT_TRUE(net.InsertTuple(origin, relation, std::move(values)).ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), seq++));
  }
  EXPECT_GT(departures, 0u);

  std::set<std::string> actual;
  for (size_t i = 0; i < 8; ++i) {
    for (const Notification& n : net.TakeNotifications(i)) {
      actual.insert(n.ContentKey());
    }
  }
  std::set<std::string> expected = oracle.ContentSet();
  // Best-effort: delivered ⊆ expected (no spurious answers).
  std::vector<std::string> spurious;
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(spurious));
  EXPECT_TRUE(spurious.empty())
      << spurious.size() << " spurious answers, first: " << spurious[0];
  // And churn of this magnitude should not wipe out the workload entirely.
  EXPECT_GT(actual.size(), expected.size() / 4);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BestEffortChurnTest,
                         ::testing::Values(Algorithm::kSai, Algorithm::kDaiQ,
                                           Algorithm::kDaiT,
                                           Algorithm::kDaiV));

}  // namespace
}  // namespace contjoin::core
