#include "relational/value.h"

#include <gtest/gtest.h>

namespace contjoin::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).as_int(), 5);
  EXPECT_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("x").as_string(), "x");
}

TEST(ValueTest, AsNumeric) {
  EXPECT_EQ(Value::Int(7).AsNumeric(), 7.0);
  EXPECT_EQ(Value::Double(1.5).AsNumeric(), 1.5);
  EXPECT_FALSE(Value::Str("7").AsNumeric().has_value());
  EXPECT_FALSE(Value::Null().AsNumeric().has_value());
}

TEST(ValueTest, KeyStringMatchesPaperConvention) {
  // Paper §4.2: numeric values are treated as strings when hashed.
  EXPECT_EQ(Value::Int(42).ToKeyString(), "42");
  EXPECT_EQ(Value::Int(-3).ToKeyString(), "-3");
  EXPECT_EQ(Value::Double(2.0).ToKeyString(), "2");
  EXPECT_EQ(Value::Double(2.5).ToKeyString(), "2.5");
  EXPECT_EQ(Value::Str("Smith").ToKeyString(), "Smith");
}

TEST(ValueTest, EqualityIsKeyStringEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_EQ(Value::Int(2), Value::Str("2"));  // DHT-level behaviour.
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  // "10" < "9" lexicographically but 10 > 9 numerically.
  EXPECT_GT(Value::Int(10).Compare(Value::Int(9)), 0);
}

TEST(ValueTest, CompareStringsLexicographic) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
  // Mixed string/number falls back to key strings.
  EXPECT_LT(Value::Str("10").Compare(Value::Int(9)), 0);
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Int(4).ToString(), "4");
}

TEST(ValueTest, HashAgreesWithEquality) {
  EXPECT_EQ(Value::Int(2).HashValue(), Value::Double(2.0).HashValue());
  EXPECT_NE(Value::Int(2).HashValue(), Value::Int(3).HashValue());
}

}  // namespace
}  // namespace contjoin::rel
