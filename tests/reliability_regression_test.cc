// Regression tests for the two long-run reliability bugs: the receiver-side
// dedup set growing without bound over streamed runs, and the ack path
// dereferencing a send-time origin pointer that churn may have invalidated.
// Unit tests drive reliability:: through a mock ProtocolContext with a real
// node table; the integration test streams a long run through the engine
// and checks the dedup footprint stays bounded while churn crashes origins.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chord/node.h"
#include "chord/types.h"
#include "common/rng.h"
#include "core/algorithm.h"
#include "core/context.h"
#include "core/engine.h"
#include "core/messages.h"
#include "core/reliability.h"
#include "core/state.h"
#include "faults/churn.h"
#include "workload/driver.h"

namespace contjoin::core {
namespace {

/// ProtocolContext with a real id->node table, synchronous Transmit and a
/// controllable clock — the seams reliability:: needs, nothing more.
class ReliabilityMockContext : public ProtocolContext {
 public:
  explicit ReliabilityMockContext(Options options)
      : options_(std::move(options)), rng_(options_.seed) {}

  const Options& options() const override { return options_; }
  const AlgorithmStrategy& strategy() const override {
    return AlgorithmStrategy::For(options_.algorithm);
  }
  rel::Catalog& GetCatalog() override { return catalog_; }
  Rng& GetRng() override { return rng_; }
  rel::Timestamp now() const override { return now_time; }

  NodeState& StateOf(chord::Node& node) override {
    auto it = states_.find(&node);
    if (it == states_.end()) {
      it = states_
               .emplace(&node,
                        std::make_unique<NodeState>(options_.jfrt_capacity))
               .first;
    }
    return *it->second;
  }

  void Send(chord::Node&, chord::AppMessage msg) override {
    sent.push_back(std::move(msg));
  }
  void Multisend(chord::Node&, std::vector<chord::AppMessage> msgs,
                 sim::MsgClass) override {
    for (auto& m : msgs) sent.push_back(std::move(m));
  }
  void Transmit(chord::Node* from, chord::Node* to, sim::MsgClass cls,
                std::function<void()> deliver) override {
    transmits.push_back({from, to, cls});
    deliver();
  }
  void TransmitMessage(chord::Node& from, const chord::NodeId& to,
                       chord::AppMessage msg) override {
    transmitted.push_back({&from, to, std::move(msg)});
  }
  void CountHop(sim::MsgClass) override {}
  void Redeliver(chord::Node& node, const chord::AppMessage& msg) override {
    redelivered.push_back({&node, msg});
  }
  chord::Node* NodeByKey(const std::string&) override { return nullptr; }
  chord::Node* NodeById(const chord::NodeId& id) override {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
  }
  void DepositNotification(chord::Node&, Notification) override {}
  void AppendOtjResults(uint64_t, std::vector<Notification>) override {}
  uint64_t NextReliableId(chord::Node&) override {
    return ++next_reliable_id;
  }
  void ScheduleAfter(chord::Node&, sim::SimTime,
                     std::function<void()> fn) override {
    scheduled.push_back(std::move(fn));
  }

  void AddNode(chord::Node* node) { by_id_[node->id()] = node; }
  void RemoveNode(chord::Node* node) { by_id_.erase(node->id()); }

  struct TransmitRecord {
    chord::Node* from;
    chord::Node* to;
    sim::MsgClass cls;
  };
  struct TransmitMessageRecord {
    chord::Node* from;
    chord::NodeId to;
    chord::AppMessage msg;
  };

  rel::Timestamp now_time = 0;
  std::vector<chord::AppMessage> sent;
  std::vector<TransmitRecord> transmits;
  std::vector<TransmitMessageRecord> transmitted;
  std::vector<std::pair<chord::Node*, chord::AppMessage>> redelivered;
  std::vector<std::function<void()>> scheduled;
  uint64_t next_reliable_id = 0;

 private:
  Options options_;
  rel::Catalog catalog_;
  Rng rng_;
  std::unordered_map<chord::Node*, std::unique_ptr<NodeState>> states_;
  std::map<chord::NodeId, chord::Node*> by_id_;
};

Options ReliableOptions() {
  Options opts;
  opts.reliability.enabled = true;
  opts.reliability.base_timeout = 2;
  opts.reliability.max_retries = 1;
  return opts;
}

chord::AppMessage CriticalMessage() {
  chord::AppMessage msg;
  msg.cls = sim::MsgClass::kQueryIndex;
  msg.payload = std::make_shared<QueryIndexPayload>();
  return msg;
}

// --- Dangling-origin hazard ----------------------------------------------------

TEST(ReliabilityOrigin, AckIsRoutedThroughTheNodeTable) {
  ReliabilityMockContext ctx{ReliableOptions()};
  chord::Node origin(nullptr, "origin", 0, /*serial=*/1);
  chord::Node receiver(nullptr, "receiver", 0, /*serial=*/2);
  origin.SetAliveDirect(true);
  receiver.SetAliveDirect(true);
  ctx.AddNode(&origin);
  ctx.AddNode(&receiver);

  chord::AppMessage msg = CriticalMessage();
  reliability::Arm(ctx, origin, msg);
  ASSERT_NE(msg.reliable_id, 0u);
  EXPECT_EQ(msg.reliable_origin, origin.id());

  EXPECT_FALSE(reliability::ObserveDelivery(ctx, receiver, msg));
  ASSERT_EQ(ctx.transmitted.size(), 1u);
  EXPECT_EQ(ctx.transmitted[0].from, &receiver);
  EXPECT_EQ(ctx.transmitted[0].to, origin.id());
  EXPECT_EQ(ctx.transmitted[0].msg.cls, sim::MsgClass::kControl);
  const auto& ack = static_cast<const DeliveryAckPayload&>(
      *ctx.transmitted[0].msg.payload);
  EXPECT_EQ(ack.msg_id, msg.reliable_id);

  // A retransmission of the same id is suppressed but still acked.
  EXPECT_TRUE(reliability::ObserveDelivery(ctx, receiver, msg));
  EXPECT_EQ(ctx.transmitted.size(), 2u);
}

TEST(ReliabilityOrigin, CrashedOriginGetsNoAckAndNoDereference) {
  ReliabilityMockContext ctx{ReliableOptions()};
  chord::Node origin(nullptr, "origin", 0, /*serial=*/1);
  chord::Node receiver(nullptr, "receiver", 0, /*serial=*/2);
  origin.SetAliveDirect(true);
  receiver.SetAliveDirect(true);
  ctx.AddNode(&origin);
  ctx.AddNode(&receiver);

  chord::AppMessage msg = CriticalMessage();
  reliability::Arm(ctx, origin, msg);
  // The origin crashes between send and delivery.
  origin.SetAliveDirect(false);

  EXPECT_FALSE(reliability::ObserveDelivery(ctx, receiver, msg));
  EXPECT_TRUE(ctx.transmitted.empty());  // No ack to a dead node.
  // The message itself was still processed (dedup records it).
  EXPECT_TRUE(reliability::ObserveDelivery(ctx, receiver, msg));
}

TEST(ReliabilityOrigin, DepartedOriginGetsNoAckAndNoDereference) {
  ReliabilityMockContext ctx{ReliableOptions()};
  chord::Node origin(nullptr, "origin", 0, /*serial=*/1);
  chord::Node receiver(nullptr, "receiver", 0, /*serial=*/2);
  origin.SetAliveDirect(true);
  receiver.SetAliveDirect(true);
  ctx.AddNode(&origin);
  ctx.AddNode(&receiver);

  chord::AppMessage msg = CriticalMessage();
  reliability::Arm(ctx, origin, msg);
  // The origin leaves the overlay entirely: the id no longer resolves —
  // exactly the case where a send-time pointer would now dangle.
  ctx.RemoveNode(&origin);

  EXPECT_FALSE(reliability::ObserveDelivery(ctx, receiver, msg));
  EXPECT_TRUE(ctx.transmitted.empty());
}

TEST(ReliabilityOrigin, SelfDeliveryConfirmsInPlaceWithoutAckTraffic) {
  ReliabilityMockContext ctx{ReliableOptions()};
  chord::Node origin(nullptr, "origin", 0, /*serial=*/1);
  origin.SetAliveDirect(true);
  ctx.AddNode(&origin);

  chord::AppMessage msg = CriticalMessage();
  reliability::Arm(ctx, origin, msg);
  EXPECT_EQ(ctx.StateOf(origin).reliability.pending.size(), 1u);

  EXPECT_FALSE(reliability::ObserveDelivery(ctx, origin, msg));
  EXPECT_TRUE(ctx.transmitted.empty());
  EXPECT_TRUE(ctx.StateOf(origin).reliability.pending.empty());
}

// --- Bounded dedup set ---------------------------------------------------------

TEST(ReliabilitySeen, DedupSetRetiresLapsedIdsAndStaysBounded) {
  ReliabilityMockContext ctx{ReliableOptions()};
  chord::Node origin(nullptr, "origin", 0, /*serial=*/1);
  chord::Node receiver(nullptr, "receiver", 0, /*serial=*/2);
  origin.SetAliveDirect(true);
  receiver.SetAliveDirect(true);
  ctx.AddNode(&origin);
  ctx.AddNode(&receiver);

  // base_timeout=2, max_retries=1, hop scale 1: the retire horizon is
  // base*(slack + 2^0 + 2^1) = 2*4 = 8 ticks. One fresh id per tick for
  // 1000 ticks must keep the set near the horizon, not near 1000.
  size_t max_seen = 0;
  for (rel::Timestamp t = 0; t < 1000; ++t) {
    ctx.now_time = t;
    chord::AppMessage msg = CriticalMessage();
    reliability::Arm(ctx, origin, msg);
    EXPECT_FALSE(reliability::ObserveDelivery(ctx, receiver, msg));
    const auto& rel_state = ctx.StateOf(receiver).reliability;
    EXPECT_EQ(rel_state.seen.size(), rel_state.seen_by_time.size());
    max_seen = std::max(max_seen, rel_state.seen.size());
  }
  EXPECT_LE(max_seen, 32u);
  EXPECT_GE(max_seen, 1u);
}

TEST(ReliabilitySeen, DedupStillSuppressesWithinTheHorizon) {
  ReliabilityMockContext ctx{ReliableOptions()};
  chord::Node origin(nullptr, "origin", 0, /*serial=*/1);
  chord::Node receiver(nullptr, "receiver", 0, /*serial=*/2);
  origin.SetAliveDirect(true);
  receiver.SetAliveDirect(true);
  ctx.AddNode(&origin);
  ctx.AddNode(&receiver);

  chord::AppMessage msg = CriticalMessage();
  reliability::Arm(ctx, origin, msg);
  ctx.now_time = 0;
  EXPECT_FALSE(reliability::ObserveDelivery(ctx, receiver, msg));
  ctx.now_time = 3;  // Within the 8-tick horizon.
  EXPECT_TRUE(reliability::ObserveDelivery(ctx, receiver, msg));
  EXPECT_EQ(ctx.StateOf(receiver).metrics.reliable_dups_suppressed, 1u);
}

// --- Engine-level long run -----------------------------------------------------

TEST(ReliabilityLongRun, SeenFootprintStaysBoundedUnderChurnedStream) {
  workload::DriverConfig cfg;
  cfg.engine.num_nodes = 24;
  cfg.engine.seed = 11;
  cfg.engine.reliability.enabled = true;
  cfg.engine.reliability.base_timeout = 4;
  cfg.engine.reliability.max_retries = 2;
  cfg.workload.seed = 11;
  cfg.workload.num_relation_pairs = 3;
  cfg.workload.attrs_per_relation = 3;
  cfg.workload.domain = 100;
  workload::ExperimentDriver driver(cfg);
  core::ContinuousQueryNetwork& net = driver.net();

  driver.InstallQueries(20);
  // Crash/join churn while streaming: origins of armed messages die
  // between bursts, exercising the id-based ack path at engine level.
  net.InstallChurnScript(faults::ChurnScript::Alternating(
      net.now() + 50, /*period=*/40, /*crashes=*/4, /*joins=*/3));
  Rng placement(77);
  auto insert_alive = [&]() {
    auto [relation, values] = driver.gen().NextTuple();
    size_t node = placement.NextBelow(net.num_nodes());
    while (!net.node(node)->alive()) node = (node + 1) % net.num_nodes();
    CJ_CHECK(net.InsertTuple(node, relation, std::move(values)).ok());
  };
  for (int burst = 0; burst < 30; ++burst) {
    for (int i = 0; i < 50; ++i) insert_alive();
    size_t total_seen = 0;
    uint64_t critical_delivered = 0;
    for (size_t i = 0; i < net.num_nodes(); ++i) {
      const core::NodeState* state = net.state(i);
      if (state == nullptr) continue;
      EXPECT_EQ(state->reliability.seen.size(),
                state->reliability.seen_by_time.size());
      total_seen += state->reliability.seen.size();
    }
    critical_delivered = net.TotalMetrics().reliable_sent;
    // The dedup footprint must track the retire horizon, not the whole
    // history: allow generous slack over the per-burst message volume but
    // fail the pre-fix behaviour (footprint ~= every id ever delivered).
    if (burst >= 5) {
      EXPECT_LT(total_seen, critical_delivered / 2)
          << "burst " << burst << ": dedup set tracking full history";
    }
  }
  EXPECT_GT(net.TotalMetrics().reliable_sent, 0u);
  EXPECT_GT(driver.DrainNotifications(), 0u);
}

}  // namespace
}  // namespace contjoin::core
