#include "reference/reference_engine.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace contjoin::ref {
namespace {

using rel::Value;

class ReferenceEngineTest : public ::testing::Test {
 protected:
  ReferenceEngineTest() {
    CJ_CHECK(catalog_
                 .Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt},
                           {"B", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(catalog_
                 .Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt},
                           {"E", rel::ValueType::kInt}}))
                 .ok());
  }

  query::QueryPtr MakeQuery(const std::string& sql, const std::string& key,
                            rel::Timestamp ins_time) {
    auto parsed = query::ParseQuery(sql, catalog_);
    CJ_CHECK(parsed.ok()) << parsed.status().ToString();
    parsed.value().set_key(key);
    parsed.value().set_insertion_time(ins_time);
    return std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value());
  }

  rel::TuplePtr R(int64_t a, int64_t b, rel::Timestamp t) {
    return std::make_shared<const rel::Tuple>(
        "R", std::vector<Value>{Value::Int(a), Value::Int(b)}, t, seq_++);
  }
  rel::TuplePtr S(int64_t d, int64_t e, rel::Timestamp t) {
    return std::make_shared<const rel::Tuple>(
        "S", std::vector<Value>{Value::Int(d), Value::Int(e)}, t, seq_++);
  }

  rel::Catalog catalog_;
  uint64_t seq_ = 0;
};

TEST_F(ReferenceEngineTest, BasicPairMatch) {
  ReferenceEngine engine;
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0", 0));
  EXPECT_TRUE(engine.InsertTuple(R(1, 7, 1)).empty());
  auto produced = engine.InsertTuple(S(9, 7, 2));
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_EQ(produced[0].query_key, "q0");
  ASSERT_EQ(produced[0].row.size(), 2u);
  EXPECT_EQ(produced[0].row[0], Value::Int(1));
  EXPECT_EQ(produced[0].row[1], Value::Int(9));
  EXPECT_EQ(produced[0].earlier_pub, 1u);
  EXPECT_EQ(produced[0].later_pub, 2u);
}

TEST_F(ReferenceEngineTest, NonMatchingValuesProduceNothing) {
  ReferenceEngine engine;
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0", 0));
  engine.InsertTuple(R(1, 7, 1));
  EXPECT_TRUE(engine.InsertTuple(S(9, 8, 2)).empty());
}

TEST_F(ReferenceEngineTest, TimeSemanticsTuplesBeforeQueryIgnored) {
  ReferenceEngine engine;
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0",
                /*ins_time=*/10));
  engine.InsertTuple(R(1, 7, 5));   // Before insT(q).
  EXPECT_TRUE(engine.InsertTuple(S(9, 7, 20)).empty());
  engine.InsertTuple(R(2, 7, 21));  // After: pairs with S(9,7).
  auto all = engine.notifications();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].row[0], Value::Int(2));
}

TEST_F(ReferenceEngineTest, PredicatesFilter) {
  ReferenceEngine engine;
  engine.AddQuery(MakeQuery(
      "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND R.A > 5", "q0", 0));
  engine.InsertTuple(R(1, 7, 1));  // Fails R.A > 5.
  engine.InsertTuple(R(9, 7, 2));
  auto produced = engine.InsertTuple(S(3, 7, 3));
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_EQ(produced[0].row[0], Value::Int(9));
}

TEST_F(ReferenceEngineTest, WindowExpiry) {
  ReferenceEngine engine(/*window=*/5);
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0", 0));
  engine.InsertTuple(R(1, 7, 1));
  EXPECT_EQ(engine.InsertTuple(S(2, 7, 4)).size(), 1u);   // Gap 3 <= 5.
  EXPECT_EQ(engine.InsertTuple(S(3, 7, 20)).size(), 0u);  // Gap 19 > 5.
}

TEST_F(ReferenceEngineTest, ExpressionJoin) {
  ReferenceEngine engine;
  engine.AddQuery(MakeQuery(
      "SELECT R.A, S.D FROM R, S WHERE R.A + R.B = S.D + S.E", "q0", 0));
  engine.InsertTuple(R(10, 15, 1));          // Sum 25.
  auto produced = engine.InsertTuple(S(20, 5, 2));  // Sum 25.
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_TRUE(engine.InsertTuple(S(20, 6, 3)).empty());
}

TEST_F(ReferenceEngineTest, MultipleQueriesEachNotified) {
  ReferenceEngine engine;
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0", 0));
  engine.AddQuery(
      MakeQuery("SELECT R.B, S.E FROM R, S WHERE R.A = S.D", "q1", 0));
  engine.InsertTuple(R(9, 7, 1));
  auto produced = engine.InsertTuple(S(9, 7, 2));  // Matches both queries.
  EXPECT_EQ(produced.size(), 2u);
}

TEST_F(ReferenceEngineTest, RemoveQueryStopsNotifications) {
  ReferenceEngine engine;
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0", 0));
  engine.InsertTuple(R(1, 7, 1));
  engine.RemoveQuery("q0");
  EXPECT_TRUE(engine.InsertTuple(S(2, 7, 2)).empty());
}

TEST_F(ReferenceEngineTest, ContentSetDeduplicates) {
  ReferenceEngine engine;
  engine.AddQuery(
      MakeQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", "q0", 0));
  engine.InsertTuple(R(1, 7, 1));
  engine.InsertTuple(R(1, 7, 2));  // Identical content, distinct tuple.
  engine.InsertTuple(S(9, 7, 3));  // Two pairs, same row content.
  EXPECT_EQ(engine.notifications().size(), 2u);
  EXPECT_EQ(engine.ContentSet().size(), 1u);
}

}  // namespace
}  // namespace contjoin::ref
