// Property tests: every distributed algorithm must produce exactly the
// notification content set of the centralized reference engine, on random
// workloads swept over algorithm x seed x workload shape (skew, predicates,
// linear join conditions, interleaving, windows, replication, JFRT).

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "query/parser.h"
#include "reference/reference_engine.h"
#include "workload/workload.h"

namespace contjoin::core {
namespace {

struct Scenario {
  Algorithm algorithm;
  uint64_t seed;
  double zipf_theta;
  double linear_fraction;
  double predicate_fraction;
  double t2_fraction;       // Only meaningful for DAI-V.
  rel::Timestamp window;
  bool use_jfrt;
  int replication;
  size_t num_queries;
  size_t num_tuples;
  size_t interleave_every;  // Submit one extra query every N tuples.
  sim::SimTime hop_latency = 0;

  std::string Name() const {
    std::string out = AlgorithmName(algorithm);
    out += "_s" + std::to_string(seed);
    out += "_z" + std::to_string(static_cast<int>(zipf_theta * 10));
    if (linear_fraction > 0) out += "_lin";
    if (predicate_fraction > 0) out += "_pred";
    if (t2_fraction > 0) {
      out += "_t2x" + std::to_string(static_cast<int>(t2_fraction * 10));
    }
    if (window > 0) out += "_w" + std::to_string(window);
    if (use_jfrt) out += "_jfrt";
    if (replication > 1) out += "_rep" + std::to_string(replication);
    if (hop_latency > 0) out += "_lat" + std::to_string(hop_latency);
    for (char& c : out) {
      if (c == '-') c = '_';
    }
    return out;
  }
};

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(EquivalenceTest, MatchesReferenceEngine) {
  const Scenario& sc = GetParam();

  workload::WorkloadOptions wopts;
  wopts.seed = sc.seed;
  wopts.attrs_per_relation = 3;
  wopts.domain = 40;  // Small domain so joins actually fire.
  wopts.zipf_theta = sc.zipf_theta;
  wopts.linear_fraction = sc.linear_fraction;
  wopts.predicate_fraction = sc.predicate_fraction;
  wopts.t2_fraction = sc.t2_fraction;
  workload::WorkloadGenerator gen(wopts);

  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = sc.algorithm;
  opts.seed = sc.seed;
  opts.window = sc.window;
  opts.use_jfrt = sc.use_jfrt;
  opts.attribute_replication = sc.replication;
  opts.chord.hop_latency = sc.hop_latency;
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());

  ref::ReferenceEngine oracle(sc.window);
  Rng placement(sc.seed * 7 + 1);
  uint64_t ref_seq = 0;

  auto submit_one = [&]() {
    std::string sql = gen.NextQuerySql();
    size_t node = placement.NextBelow(net.num_nodes());
    auto key = net.SubmitQuery(node, sql);
    ASSERT_TRUE(key.ok()) << sql << ": " << key.status().ToString();
    // Mirror into the oracle with the engine-assigned key and time.
    auto parsed = query::ParseQuery(sql, *net.catalog());
    ASSERT_TRUE(parsed.ok());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  };

  for (size_t i = 0; i < sc.num_queries; ++i) submit_one();

  for (size_t i = 0; i < sc.num_tuples; ++i) {
    if (sc.interleave_every != 0 && i % sc.interleave_every == 0 && i > 0) {
      submit_one();
    }
    auto [relation, values] = gen.NextTuple();
    size_t node = placement.NextBelow(net.num_nodes());
    std::vector<rel::Value> copy = values;
    ASSERT_TRUE(net.InsertTuple(node, relation, std::move(values)).ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), ref_seq++));
  }

  // Collect the distributed notifications from every subscriber node.
  std::vector<Notification> delivered;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (Notification& n : net.TakeNotifications(i)) {
      delivered.push_back(std::move(n));
    }
  }
  std::set<std::string> actual = ref::ReferenceEngine::ContentSet(delivered);
  std::set<std::string> expected = oracle.ContentSet();

  // Diagnose asymmetries precisely.
  std::vector<std::string> missing, extra;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  EXPECT_TRUE(missing.empty())
      << missing.size() << " notifications missing, first: " << missing[0];
  EXPECT_TRUE(extra.empty())
      << extra.size() << " spurious notifications, first: " << extra[0];
  // Sanity: the scenario should actually produce answers.
  EXPECT_FALSE(expected.empty()) << "vacuous scenario: no joins fired";
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> out;
  // Base sweep: every algorithm on plain, skewed and uniform workloads
  // with query/tuple interleaving.
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      for (double theta : {0.0, 0.9}) {
        Scenario sc{};
        sc.algorithm = alg;
        sc.seed = seed;
        sc.zipf_theta = theta;
        sc.replication = 1;
        sc.num_queries = 25;
        sc.num_tuples = 120;
        sc.interleave_every = 10;
        out.push_back(sc);
      }
    }
  }
  // Linear join conditions + selection predicates.
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    Scenario sc{};
    sc.algorithm = alg;
    sc.seed = 11;
    sc.zipf_theta = 0.5;
    sc.linear_fraction = 0.5;
    sc.predicate_fraction = 0.4;
    sc.replication = 1;
    sc.num_queries = 30;
    sc.num_tuples = 150;
    sc.interleave_every = 13;
    out.push_back(sc);
  }
  // Sliding windows.
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    for (rel::Timestamp window : {5ull, 40ull}) {
      Scenario sc{};
      sc.algorithm = alg;
      sc.seed = 21;
      sc.zipf_theta = 0.9;
      sc.window = window;
      sc.replication = 1;
      sc.num_queries = 20;
      sc.num_tuples = 150;
      sc.interleave_every = 15;
      out.push_back(sc);
    }
  }
  // JFRT must not change results, only traffic.
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    Scenario sc{};
    sc.algorithm = alg;
    sc.seed = 31;
    sc.zipf_theta = 0.9;
    sc.use_jfrt = true;
    sc.replication = 1;
    sc.num_queries = 20;
    sc.num_tuples = 120;
    sc.interleave_every = 11;
    out.push_back(sc);
  }
  // Attribute-level replication must not change results.
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    Scenario sc{};
    sc.algorithm = alg;
    sc.seed = 41;
    sc.zipf_theta = 0.9;
    sc.replication = 4;
    sc.num_queries = 20;
    sc.num_tuples = 120;
    sc.interleave_every = 9;
    out.push_back(sc);
  }
  // Nonzero per-hop latency: messages no longer cascade instantaneously,
  // so deliveries interleave across virtual time. Content equivalence must
  // hold regardless (each operation still drains before the next arrives).
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    for (sim::SimTime latency : {sim::SimTime{1}, sim::SimTime{3}}) {
      Scenario sc{};
      sc.algorithm = alg;
      sc.seed = 61;
      sc.zipf_theta = 0.6;
      sc.replication = 1;
      sc.num_queries = 20;
      sc.num_tuples = 120;
      sc.interleave_every = 10;
      sc.hop_latency = latency;
      out.push_back(sc);
    }
  }
  // DAI-V with T2 queries (its distinguishing capability), plus the
  // key-prefixed variant exercised separately below.
  for (double t2 : {0.5, 1.0}) {
    Scenario sc{};
    sc.algorithm = Algorithm::kDaiV;
    sc.seed = 51;
    sc.zipf_theta = 0.7;
    sc.t2_fraction = t2;
    sc.replication = 1;
    sc.num_queries = 25;
    sc.num_tuples = 150;
    sc.interleave_every = 12;
    out.push_back(sc);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceTest,
                         ::testing::ValuesIn(AllScenarios()),
                         [](const auto& info) { return info.param.Name(); });

// The DAI-V key-prefixed variant (§4.5) must also be answer-equivalent.
TEST(DaivPrefixVariantTest, MatchesReference) {
  workload::WorkloadOptions wopts;
  wopts.seed = 61;
  wopts.domain = 30;
  wopts.t2_fraction = 0.5;
  workload::WorkloadGenerator gen(wopts);

  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = Algorithm::kDaiV;
  opts.daiv_prefix_query_key = true;
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());
  ref::ReferenceEngine oracle;
  Rng placement(99);
  uint64_t seq = 0;
  for (int i = 0; i < 20; ++i) {
    std::string sql = gen.NextQuerySql();
    auto key = net.SubmitQuery(placement.NextBelow(net.num_nodes()), sql);
    ASSERT_TRUE(key.ok());
    auto parsed = query::ParseQuery(sql, *net.catalog());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }
  for (int i = 0; i < 120; ++i) {
    auto [relation, values] = gen.NextTuple();
    auto copy = values;
    ASSERT_TRUE(net.InsertTuple(placement.NextBelow(net.num_nodes()),
                                relation, std::move(values))
                    .ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), seq++));
  }
  std::vector<Notification> delivered;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (Notification& n : net.TakeNotifications(i)) {
      delivered.push_back(std::move(n));
    }
  }
  EXPECT_EQ(ref::ReferenceEngine::ContentSet(delivered), oracle.ContentSet());
}

}  // namespace
}  // namespace contjoin::core
