#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/net_stats.h"

namespace contjoin::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, CascadesAtZeroLatencyDrainBeforeLaterEvents) {
  Simulator sim;
  std::vector<std::string> order;
  sim.Schedule(1, [&] {
    order.push_back("a");
    sim.Schedule(0, [&] {
      order.push_back("a.child");
      sim.Schedule(0, [&] { order.push_back("a.grandchild"); });
    });
  });
  sim.Schedule(2, [&] { order.push_back("b"); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "a.child", "a.grandchild",
                                             "b"}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(5, [&] { ++ran; });
  sim.Schedule(10, [&] { ++ran; });
  sim.Schedule(11, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(10), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 10u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(100);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, AdvanceTo) {
  Simulator sim;
  sim.AdvanceTo(42);
  EXPECT_EQ(sim.Now(), 42u);
}

TEST(SimulatorTest, ScheduledDuringRunExecutes) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] {
    ++count;
    sim.Schedule(5, [&] { ++count; });
  });
  sim.Run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 6u);
  EXPECT_EQ(sim.total_events_run(), 2u);
}

TEST(SimulatorTest, RunUntilRunsEventExactlyAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(10, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(10), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 10u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunUntilRunsMidEpochChildrenUpToBoundary) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(5, [&] {
    order.push_back(1);
    // Same-epoch child, a child landing exactly on the boundary, and one
    // past it: the first two must run, the last must stay queued.
    sim.Schedule(0, [&] { order.push_back(2); });
    sim.Schedule(5, [&] { order.push_back(3); });
    sim.Schedule(6, [&] { order.push_back(4); });
  });
  EXPECT_EQ(sim.RunUntil(10), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 10u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

// --- Parallel execution ------------------------------------------------------

namespace cascade {

/// A deterministic multi-shard cascade: every event appends its value to a
/// per-shard log, then fans out to other shards. Per-shard logs plus the
/// final clock form a complete execution digest: by the determinism
/// contract they must be bit-identical at every worker count.
struct Result {
  std::vector<std::vector<uint64_t>> logs;
  uint64_t events = 0;
  uint64_t parallel_batches = 0;
  SimTime end = 0;
};

Result Run(int workers) {
  constexpr uint64_t kShards = 8;
  Simulator sim;
  sim.SetWorkers(workers);
  Result r;
  r.logs.resize(kShards);
  std::function<void(uint64_t, uint64_t, int)> step = [&](uint64_t shard,
                                                          uint64_t value,
                                                          int depth) {
    // Only the worker owning `shard` appends here; cross-shard effects go
    // through ScheduleSharded, as the engine's Transmit does.
    r.logs[shard].push_back(value);
    if (depth == 0) return;
    uint64_t next_shard = (shard + value) % kShards;
    uint64_t next_value = value * 31 + shard;
    sim.ScheduleSharded(1, next_shard, [&step, next_shard, next_value,
                                        depth] {
      step(next_shard, next_value, depth - 1);
    });
    if (value % 3 == 0) {
      // A same-timestamp child exercises the micro-epoch path.
      uint64_t sib = (shard + 1) % kShards;
      sim.ScheduleSharded(0, sib,
                          [&step, sib, value] { step(sib, value + 7, 0); });
    }
  };
  for (uint64_t s = 0; s < kShards; ++s) {
    sim.ScheduleSharded(1, s, [&step, s] { step(s, s + 1, 6); });
  }
  r.events = sim.Run();
  r.parallel_batches = sim.parallel_batches_run();
  r.end = sim.Now();
  return r;
}

}  // namespace cascade

TEST(SimulatorTest, ParallelCascadeIsBitIdenticalToSerial) {
  cascade::Result serial = cascade::Run(1);
  cascade::Result parallel = cascade::Run(4);
  EXPECT_EQ(serial.parallel_batches, 0u);
  EXPECT_GT(parallel.parallel_batches, 0u);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.end, parallel.end);
  ASSERT_EQ(serial.logs.size(), parallel.logs.size());
  for (size_t s = 0; s < serial.logs.size(); ++s) {
    EXPECT_EQ(serial.logs[s], parallel.logs[s]) << "shard " << s;
  }
}

TEST(SimulatorTest, UnshardedEventsForceSerialExecution) {
  Simulator sim;
  sim.SetWorkers(4);
  int ran = 0;
  // Plain Schedule carries no shard, so the batch must not be handed to
  // the pool even though it is wide enough.
  for (int i = 0; i < 16; ++i) sim.Schedule(1, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 16);
  EXPECT_EQ(sim.parallel_batches_run(), 0u);
}

TEST(SimulatorTest, SetWorkersClampsToAtLeastOne) {
  Simulator sim;
  sim.SetWorkers(0);
  EXPECT_EQ(sim.workers(), 1);
  sim.SetWorkers(3);
  EXPECT_EQ(sim.workers(), 3);
}

TEST(NetStatsTest, HopAccounting) {
  NetStats stats;
  stats.AddHop(MsgClass::kLookup);
  stats.AddHops(MsgClass::kTupleIndex, 5);
  EXPECT_EQ(stats.total_hops(), 6u);
  EXPECT_EQ(stats.hops(MsgClass::kLookup), 1u);
  EXPECT_EQ(stats.hops(MsgClass::kTupleIndex), 5u);
  EXPECT_EQ(stats.hops(MsgClass::kNotification), 0u);
}

TEST(NetStatsTest, SinceComputesDelta) {
  NetStats stats;
  stats.AddHops(MsgClass::kRewrittenQuery, 3);
  NetStats snapshot = stats;
  stats.AddHops(MsgClass::kRewrittenQuery, 4);
  stats.AddHop(MsgClass::kNotification);
  NetStats delta = stats.Since(snapshot);
  EXPECT_EQ(delta.hops(MsgClass::kRewrittenQuery), 4u);
  EXPECT_EQ(delta.hops(MsgClass::kNotification), 1u);
  EXPECT_EQ(delta.total_hops(), 5u);
}

TEST(NetStatsTest, ResetClears) {
  NetStats stats;
  stats.AddHop(MsgClass::kControl);
  stats.AddDrop(MsgClass::kControl);
  stats.Reset();
  EXPECT_EQ(stats.total_hops(), 0u);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.dropped(MsgClass::kControl), 0u);
}

TEST(NetStatsTest, ReportListsNonZeroClasses) {
  NetStats stats;
  stats.AddHop(MsgClass::kNotification);
  std::string report = stats.Report();
  EXPECT_NE(report.find("notification"), std::string::npos);
  EXPECT_EQ(report.find("maintenance"), std::string::npos);
}

}  // namespace
}  // namespace contjoin::sim
