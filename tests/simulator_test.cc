#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/net_stats.h"

namespace contjoin::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, CascadesAtZeroLatencyDrainBeforeLaterEvents) {
  Simulator sim;
  std::vector<std::string> order;
  sim.Schedule(1, [&] {
    order.push_back("a");
    sim.Schedule(0, [&] {
      order.push_back("a.child");
      sim.Schedule(0, [&] { order.push_back("a.grandchild"); });
    });
  });
  sim.Schedule(2, [&] { order.push_back("b"); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "a.child", "a.grandchild",
                                             "b"}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(5, [&] { ++ran; });
  sim.Schedule(10, [&] { ++ran; });
  sim.Schedule(11, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(10), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 10u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(100);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, AdvanceTo) {
  Simulator sim;
  sim.AdvanceTo(42);
  EXPECT_EQ(sim.Now(), 42u);
}

TEST(SimulatorTest, ScheduledDuringRunExecutes) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] {
    ++count;
    sim.Schedule(5, [&] { ++count; });
  });
  sim.Run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 6u);
  EXPECT_EQ(sim.total_events_run(), 2u);
}

TEST(NetStatsTest, HopAccounting) {
  NetStats stats;
  stats.AddHop(MsgClass::kLookup);
  stats.AddHops(MsgClass::kTupleIndex, 5);
  EXPECT_EQ(stats.total_hops(), 6u);
  EXPECT_EQ(stats.hops(MsgClass::kLookup), 1u);
  EXPECT_EQ(stats.hops(MsgClass::kTupleIndex), 5u);
  EXPECT_EQ(stats.hops(MsgClass::kNotification), 0u);
}

TEST(NetStatsTest, SinceComputesDelta) {
  NetStats stats;
  stats.AddHops(MsgClass::kRewrittenQuery, 3);
  NetStats snapshot = stats;
  stats.AddHops(MsgClass::kRewrittenQuery, 4);
  stats.AddHop(MsgClass::kNotification);
  NetStats delta = stats.Since(snapshot);
  EXPECT_EQ(delta.hops(MsgClass::kRewrittenQuery), 4u);
  EXPECT_EQ(delta.hops(MsgClass::kNotification), 1u);
  EXPECT_EQ(delta.total_hops(), 5u);
}

TEST(NetStatsTest, ResetClears) {
  NetStats stats;
  stats.AddHop(MsgClass::kControl);
  stats.AddDrop(MsgClass::kControl);
  stats.Reset();
  EXPECT_EQ(stats.total_hops(), 0u);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.dropped(MsgClass::kControl), 0u);
}

TEST(NetStatsTest, ReportListsNonZeroClasses) {
  NetStats stats;
  stats.AddHop(MsgClass::kNotification);
  std::string report = stats.Report();
  EXPECT_NE(report.find("notification"), std::string::npos);
  EXPECT_EQ(report.find("maintenance"), std::string::npos);
}

}  // namespace
}  // namespace contjoin::sim
