#include "core/jfrt.h"

#include <gtest/gtest.h>

#include "common/uint160.h"

namespace contjoin::core {
namespace {

chord::Node* FakeNode(uintptr_t v) {
  return reinterpret_cast<chord::Node*>(v);  // Only identity is used.
}

TEST(JfrtTest, MissThenHit) {
  Jfrt cache(4);
  chord::NodeId k = HashKey("v1");
  EXPECT_EQ(cache.Lookup(k), nullptr);
  cache.Insert(k, FakeNode(1));
  EXPECT_EQ(cache.Lookup(k), FakeNode(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(JfrtTest, UpdateOverwrites) {
  Jfrt cache(4);
  chord::NodeId k = HashKey("v1");
  cache.Insert(k, FakeNode(1));
  cache.Insert(k, FakeNode(2));
  EXPECT_EQ(cache.Lookup(k), FakeNode(2));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(JfrtTest, EvictsLeastRecentlyUsed) {
  Jfrt cache(2);
  chord::NodeId a = HashKey("a"), b = HashKey("b"), c = HashKey("c");
  cache.Insert(a, FakeNode(1));
  cache.Insert(b, FakeNode(2));
  EXPECT_NE(cache.Lookup(a), nullptr);  // a is now most recent.
  cache.Insert(c, FakeNode(3));          // Evicts b.
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(JfrtTest, EraseRemoves) {
  Jfrt cache(4);
  chord::NodeId k = HashKey("x");
  cache.Insert(k, FakeNode(1));
  cache.Erase(k);
  EXPECT_EQ(cache.Lookup(k), nullptr);
  cache.Erase(k);  // Idempotent.
}

TEST(JfrtTest, ZeroCapacityStoresNothing) {
  Jfrt cache(0);
  chord::NodeId k = HashKey("x");
  cache.Insert(k, FakeNode(1));
  EXPECT_EQ(cache.Lookup(k), nullptr);
}

TEST(JfrtTest, CapacityBound) {
  Jfrt cache(8);
  for (int i = 0; i < 100; ++i) {
    cache.Insert(HashKey("k" + std::to_string(i)), FakeNode(1));
  }
  EXPECT_EQ(cache.size(), 8u);
}

}  // namespace
}  // namespace contjoin::core
