// Ideal-ring construction, oracle, responsibility and routed send().

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chord_test_util.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace contjoin::chord {
namespace {

class IdealRingTest : public ::testing::Test {
 protected:
  void Build(size_t n) {
    network_ = std::make_unique<Network>(&sim_);
    nodes_ = network_->BuildIdealRing(n);
    app_ = std::make_unique<CaptureApp>();
    for (Node* node : nodes_) node->set_app(app_.get());
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
  std::vector<Node*> nodes_;
  std::unique_ptr<CaptureApp> app_;
};

TEST_F(IdealRingTest, SingletonRing) {
  Build(1);
  Node* n = nodes_[0];
  EXPECT_EQ(n->successor(), n);
  EXPECT_EQ(n->predecessor(), n);
  EXPECT_TRUE(n->IsResponsibleFor(HashKey("anything")));
  EXPECT_TRUE(network_->RingIsFullyConsistent());
}

TEST_F(IdealRingTest, IdealRingIsFullyConsistent) {
  Build(64);
  EXPECT_TRUE(network_->RingIsConsistent());
  EXPECT_TRUE(network_->RingIsFullyConsistent());
  EXPECT_EQ(network_->alive_count(), 64u);
}

TEST_F(IdealRingTest, ExactlyOneNodeResponsiblePerKey) {
  Build(50);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    NodeId key = HashKey("key-" + std::to_string(rng.Next()));
    int responsible = 0;
    for (Node* node : nodes_) {
      if (node->IsResponsibleFor(key)) ++responsible;
    }
    EXPECT_EQ(responsible, 1) << "key " << key.ToShortString();
  }
}

TEST_F(IdealRingTest, OracleMatchesResponsibility) {
  Build(40);
  for (int i = 0; i < 100; ++i) {
    NodeId key = HashKey("probe-" + std::to_string(i));
    Node* oracle = network_->OracleSuccessor(key);
    ASSERT_NE(oracle, nullptr);
    EXPECT_TRUE(oracle->IsResponsibleFor(key));
  }
}

TEST_F(IdealRingTest, SendReachesResponsibleNode) {
  Build(128);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    NodeId target = HashKey("send-" + std::to_string(i));
    Node* origin = nodes_[rng.NextBelow(nodes_.size())];
    origin->Send(MakeMsg(target, i));
    sim_.Run();
    ASSERT_EQ(app_->deliveries.size(), static_cast<size_t>(i + 1));
    EXPECT_EQ(app_->deliveries.back().node,
              network_->OracleSuccessor(target));
    EXPECT_EQ(app_->deliveries.back().tag, i);
  }
}

TEST_F(IdealRingTest, SendToOwnRangeCostsNoHops) {
  Build(32);
  Node* origin = nodes_[0];
  uint64_t before = network_->stats().total_hops();
  origin->Send(MakeMsg(origin->id(), 0));
  sim_.Run();
  EXPECT_EQ(network_->stats().total_hops(), before);
  ASSERT_EQ(app_->deliveries.size(), 1u);
  EXPECT_EQ(app_->deliveries[0].node, origin);
}

TEST_F(IdealRingTest, SendCostIsLogarithmic) {
  Build(512);
  Rng rng(3);
  const int kSends = 300;
  uint64_t before = network_->stats().total_hops();
  for (int i = 0; i < kSends; ++i) {
    NodeId target = HashKey("cost-" + std::to_string(i));
    nodes_[rng.NextBelow(nodes_.size())]->Send(MakeMsg(target, i));
    sim_.Run();
  }
  double avg_hops =
      static_cast<double>(network_->stats().total_hops() - before) / kSends;
  // Chord expects ~0.5 * log2(N) = 4.5 hops for N=512; allow generous slack.
  EXPECT_GT(avg_hops, 1.0);
  EXPECT_LT(avg_hops, 2.0 * std::log2(512.0));
}

TEST_F(IdealRingTest, FindSuccessorAgreesWithOracle) {
  Build(256);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    NodeId target = HashKey("fs-" + std::to_string(i));
    Node* origin = nodes_[rng.NextBelow(nodes_.size())];
    EXPECT_EQ(origin->FindSuccessor(target, sim::MsgClass::kLookup),
              network_->OracleSuccessor(target));
  }
}

TEST_F(IdealRingTest, RewireIdealAfterFailuresRestoresConsistency) {
  Build(64);
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    nodes_[rng.NextBelow(nodes_.size())]->Fail();
  }
  network_->RewireIdeal();
  EXPECT_TRUE(network_->RingIsFullyConsistent());
  // Routing still works.
  Node* origin = nullptr;
  for (Node* n : nodes_) {
    if (n->alive()) {
      origin = n;
      break;
    }
  }
  ASSERT_NE(origin, nullptr);
  NodeId target = HashKey("after-churn");
  origin->Send(MakeMsg(target, 42));
  sim_.Run();
  ASSERT_FALSE(app_->deliveries.empty());
  EXPECT_EQ(app_->deliveries.back().node, network_->OracleSuccessor(target));
}

TEST_F(IdealRingTest, HopLatencyDelaysDelivery) {
  sim::Simulator sim;
  NetworkOptions opts;
  opts.hop_latency = 10;
  Network network(&sim, opts);
  auto nodes = network.BuildIdealRing(64);
  CaptureApp app;
  for (Node* n : nodes) n->set_app(&app);
  NodeId target = HashKey("latent");
  Node* origin = nodes[0];
  if (origin->IsResponsibleFor(target)) origin = nodes[1];
  origin->Send(MakeMsg(target, 1));
  EXPECT_TRUE(app.deliveries.empty());
  sim.Run();
  ASSERT_EQ(app.deliveries.size(), 1u);
  EXPECT_GE(sim.Now(), 10u);
}

}  // namespace
}  // namespace contjoin::chord
