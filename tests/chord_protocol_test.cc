// Protocol-faithful join/leave/fail/stabilize behaviour and key transfer.

#include <gtest/gtest.h>

#include <memory>

#include "chord_test_util.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace contjoin::chord {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : network_(&sim_) {}

  sim::Simulator sim_;
  Network network_;
};

TEST_F(ProtocolTest, CreateRingBootstrapsSingleton) {
  Node* n = network_.CreateAndJoin("first", nullptr);
  EXPECT_TRUE(n->alive());
  EXPECT_EQ(n->successor(), n);
  EXPECT_EQ(n->predecessor(), n);
  EXPECT_TRUE(network_.RingIsConsistent());
}

TEST_F(ProtocolTest, TwoNodeJoinConverges) {
  Node* a = network_.CreateAndJoin("a", nullptr);
  Node* b = network_.CreateAndJoin("b", a);
  network_.StabilizeUntilConsistent(50);
  EXPECT_TRUE(network_.RingIsFullyConsistent());
  EXPECT_EQ(a->successor(), b);
  EXPECT_EQ(b->successor(), a);
  EXPECT_EQ(a->predecessor(), b);
  EXPECT_EQ(b->predecessor(), a);
}

TEST_F(ProtocolTest, SequentialJoinsConverge) {
  Node* first = network_.CreateAndJoin("seed", nullptr);
  Rng rng(1);
  for (int i = 0; i < 31; ++i) {
    network_.CreateAndJoin("joiner-" + std::to_string(i), first);
    network_.RunMaintenanceRound(4);
  }
  int rounds = network_.StabilizeUntilConsistent(200);
  EXPECT_LT(rounds, 200);
  EXPECT_TRUE(network_.RingIsFullyConsistent());
  EXPECT_EQ(network_.alive_count(), 32u);
}

TEST_F(ProtocolTest, RoutingWorksOnProtocolBuiltRing) {
  Node* seed = network_.CreateAndJoin("seed", nullptr);
  for (int i = 0; i < 23; ++i) {
    network_.CreateAndJoin("n-" + std::to_string(i), seed);
    network_.RunMaintenanceRound(4);
  }
  network_.StabilizeUntilConsistent(200);
  CaptureApp app;
  for (Node* n : network_.AliveNodes()) n->set_app(&app);
  for (int i = 0; i < 50; ++i) {
    NodeId target = HashKey("route-" + std::to_string(i));
    seed->Send(MakeMsg(target, i));
    sim_.Run();
    ASSERT_EQ(app.deliveries.size(), static_cast<size_t>(i + 1));
    EXPECT_EQ(app.deliveries.back().node, network_.OracleSuccessor(target));
  }
}

TEST_F(ProtocolTest, GracefulLeaveKeepsRingConsistent) {
  Node* seed = network_.CreateAndJoin("seed", nullptr);
  std::vector<Node*> joined;
  for (int i = 0; i < 15; ++i) {
    joined.push_back(network_.CreateAndJoin("n-" + std::to_string(i), seed));
    network_.RunMaintenanceRound(4);
  }
  network_.StabilizeUntilConsistent(200);
  joined[3]->LeaveGracefully();
  joined[7]->LeaveGracefully();
  network_.StabilizeUntilConsistent(200);
  EXPECT_TRUE(network_.RingIsFullyConsistent());
  EXPECT_EQ(network_.alive_count(), 14u);
}

TEST_F(ProtocolTest, FailuresAreHealedByStabilization) {
  Node* seed = network_.CreateAndJoin("seed", nullptr);
  std::vector<Node*> joined{seed};
  for (int i = 0; i < 19; ++i) {
    joined.push_back(network_.CreateAndJoin("n-" + std::to_string(i), seed));
    network_.RunMaintenanceRound(4);
  }
  network_.StabilizeUntilConsistent(300);
  ASSERT_TRUE(network_.RingIsFullyConsistent());
  // Crash three nodes without warning.
  joined[2]->Fail();
  joined[9]->Fail();
  joined[14]->Fail();
  int rounds = network_.StabilizeUntilConsistent(300);
  EXPECT_LT(rounds, 300);
  EXPECT_TRUE(network_.RingIsFullyConsistent());
  EXPECT_EQ(network_.alive_count(), 17u);
}

TEST_F(ProtocolTest, GracefulLeaveTransfersStoredKeys) {
  Node* a = network_.CreateAndJoin("a", nullptr);
  Node* b = network_.CreateAndJoin("b", a);
  network_.StabilizeUntilConsistent(50);
  NodeId key = HashKey("stored-key");
  Node* owner = network_.OracleSuccessor(key);
  Node* other = owner == a ? b : a;
  owner->store().Put(key, std::make_shared<TaggedPayload>(5));
  owner->LeaveGracefully();
  EXPECT_EQ(owner->store().size(), 0u);
  EXPECT_EQ(other->store().size(), 1u);
}

TEST_F(ProtocolTest, JoinTransfersKeysToNewOwner) {
  // Build a converged ring, store keys, then add a node whose range splits
  // an existing node's range: the stored keys must follow responsibility.
  Node* seed = network_.CreateAndJoin("seed", nullptr);
  for (int i = 0; i < 7; ++i) {
    network_.CreateAndJoin("n-" + std::to_string(i), seed);
    network_.RunMaintenanceRound(4);
  }
  network_.StabilizeUntilConsistent(200);
  // Store 50 keys at their responsible nodes.
  std::vector<NodeId> keys;
  for (int i = 0; i < 50; ++i) {
    NodeId key = HashKey("item-" + std::to_string(i));
    keys.push_back(key);
    network_.OracleSuccessor(key)->store().Put(
        key, std::make_shared<TaggedPayload>(i));
  }
  // New node joins; stabilization transfers the keys it now owns.
  network_.CreateAndJoin("late-joiner", seed);
  network_.StabilizeUntilConsistent(200);
  ASSERT_TRUE(network_.RingIsFullyConsistent());
  for (const NodeId& key : keys) {
    Node* owner = network_.OracleSuccessor(key);
    EXPECT_EQ(owner->store().Take(key).size(), 1u)
        << "key " << key.ToShortString() << " not at its owner";
  }
}

TEST_F(ProtocolTest, ReconnectGetsStoredItemsBack) {
  Node* a = network_.CreateAndJoin("a", nullptr);
  Node* b = network_.CreateAndJoin("b", a);
  Node* c = network_.CreateAndJoin("c", a);
  network_.StabilizeUntilConsistent(100);
  CaptureApp app;
  for (Node* n : {a, b, c}) n->set_app(&app);

  uint64_t old_ip = b->ip();
  b->LeaveGracefully();
  network_.StabilizeUntilConsistent(100);
  // Someone stores an item under b's identifier (an off-line notification).
  Node* holder = network_.OracleSuccessor(b->id());
  ASSERT_NE(holder, b);
  holder->store().Put(b->id(), std::make_shared<TaggedPayload>(77));

  b->Reconnect(a, /*new_ip=*/true);
  network_.StabilizeUntilConsistent(100);
  EXPECT_NE(b->ip(), old_ip);
  // The item was handed to b (CaptureApp re-stores it in b's local store).
  EXPECT_EQ(b->store().Take(b->id()).size(), 1u);
}

TEST_F(ProtocolTest, MaintenanceTrafficIsAccounted) {
  Node* a = network_.CreateAndJoin("a", nullptr);
  network_.CreateAndJoin("b", a);
  uint64_t before = network_.stats().hops(sim::MsgClass::kMaintenance);
  network_.RunMaintenanceRound(2);
  EXPECT_GT(network_.stats().hops(sim::MsgClass::kMaintenance), before);
}

TEST_F(ProtocolTest, IdentifierCollisionIsImpossibleForDistinctKeys) {
  Node* a = network_.CreateNode("key-1");
  Node* b = network_.CreateNode("key-2");
  EXPECT_NE(a->id(), b->id());
}

}  // namespace
}  // namespace contjoin::chord
