#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace contjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad query");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyingSharesRepresentation) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
}

Status FailsInner() { return Status::OutOfRange("inner"); }

Status UsesReturnIfError() {
  CJ_RETURN_IF_ERROR(FailsInner());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsOutOfRange());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

StatusOr<int> MaybeInt(bool ok) {
  if (ok) return 5;
  return Status::Internal("boom");
}

StatusOr<int> UsesAssignOrReturn(bool ok) {
  CJ_ASSIGN_OR_RETURN(int v, MaybeInt(ok));
  return v + 1;
}

TEST(StatusOrTest, AssignOrReturn) {
  EXPECT_EQ(UsesAssignOrReturn(true).value(), 6);
  EXPECT_TRUE(UsesAssignOrReturn(false).status().IsInternal());
}

}  // namespace
}  // namespace contjoin
