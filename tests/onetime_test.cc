// The PIER-style one-time join baseline: broadcast scan + symmetric hash
// join over the snapshot of stored tuples, validated against the oracle
// and contrasted with continuous-query time semantics.

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "query/parser.h"
#include "reference/reference_engine.h"
#include "workload/workload.h"

namespace contjoin::core {
namespace {

using rel::Value;

class OneTimeJoinTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  std::unique_ptr<ContinuousQueryNetwork> MakeNet(size_t nodes = 32) {
    Options opts;
    opts.num_nodes = nodes;
    opts.algorithm = GetParam();
    auto net = std::make_unique<ContinuousQueryNetwork>(opts);
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt},
                           {"B", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt},
                           {"E", rel::ValueType::kInt}}))
                 .ok());
    return net;
  }
};

TEST_P(OneTimeJoinTest, JoinsTheStoredSnapshot) {
  auto net = MakeNet();
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(2), Value::Int(8)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(4, "S", {Value::Int(6), Value::Int(7)}).ok());
  auto rows =
      net->OneTimeJoin(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> contents;
  for (const auto& n : rows.value()) contents.insert(n.ContentKey());
  EXPECT_EQ(contents.size(), 2u);  // (1,5) and (1,6); R.B=8 matches nothing.
  EXPECT_EQ(rows->size(), 2u);     // Each pair exactly once.
}

TEST_P(OneTimeJoinTest, SeesTuplesOlderThanAnyQuery) {
  // The defining contrast with continuous semantics: a one-time join is a
  // snapshot, so tuples inserted before the query participate.
  auto net = MakeNet();
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  // A continuous query sees nothing (both tuples predate it)...
  auto ckey = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(ckey.ok());
  EXPECT_TRUE(net->TakeNotifications(0).empty());
  // ...the one-time join returns the pair.
  auto rows =
      net->OneTimeJoin(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_P(OneTimeJoinTest, PredicatesApply) {
  auto net = MakeNet();
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(9), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  auto rows = net->OneTimeJoin(
      0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND R.A > 5");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows.value()[0].row[0], Value::Int(9));
}

TEST_P(OneTimeJoinTest, ExpressionJoinConditions) {
  auto net = MakeNet();
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(10), Value::Int(15)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "S", {Value::Int(20), Value::Int(5)}).ok());
  // T2 shape works: one-time rehash is by evaluated side values.
  auto rows = net->OneTimeJoin(
      0, "SELECT R.A, S.D FROM R, S WHERE R.A + R.B = S.D + S.E");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
}

TEST_P(OneTimeJoinTest, EmptySnapshotYieldsNoRows) {
  auto net = MakeNet();
  auto rows =
      net->OneTimeJoin(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_P(OneTimeJoinTest, RepeatedExecutionsAreIndependent) {
  auto net = MakeNet();
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "S", {Value::Int(5), Value::Int(7)}).ok());
  for (int i = 0; i < 3; ++i) {
    auto rows =
        net->OneTimeJoin(i, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 1u) << "execution " << i;
  }
}

TEST_P(OneTimeJoinTest, MatchesOracleOnRandomSnapshots) {
  workload::WorkloadOptions wopts;
  wopts.seed = 5;
  wopts.domain = 30;
  wopts.predicate_fraction = 0.3;
  workload::WorkloadGenerator gen(wopts);
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = GetParam();
  ContinuousQueryNetwork net2(opts);
  CJ_CHECK(gen.RegisterSchemas(net2.catalog()).ok());
  Rng placement(9);
  std::vector<rel::TuplePtr> all;
  uint64_t seq = 0;
  for (int i = 0; i < 150; ++i) {
    auto [relation, values] = gen.NextTuple();
    auto copy = values;
    ASSERT_TRUE(net2.InsertTuple(placement.NextBelow(net2.num_nodes()),
                                 relation, std::move(values))
                    .ok());
    all.push_back(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net2.now(), seq++));
  }
  for (int i = 0; i < 10; ++i) {
    std::string sql = gen.NextQuerySql();
    auto rows = net2.OneTimeJoin(placement.NextBelow(net2.num_nodes()), sql);
    ASSERT_TRUE(rows.ok()) << sql;
    // Oracle: a reference engine with insertion time 0 over the snapshot.
    ref::ReferenceEngine oracle;
    auto parsed = query::ParseQuery(sql, *net2.catalog());
    ASSERT_TRUE(parsed.ok());
    parsed.value().set_key(rows->empty() ? "otj" : rows.value()[0].query_key);
    parsed.value().set_insertion_time(0);
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
    for (const auto& t : all) oracle.InsertTuple(t);
    std::set<std::string> expected;
    for (const auto& n : oracle.notifications()) {
      expected.insert(n.ContentKey());
    }
    std::set<std::string> actual;
    for (const auto& n : rows.value()) {
      // Rekey the oracle contents to match (oracle knows the otj key only
      // when rows exist).
      actual.insert(n.ContentKey());
    }
    if (rows->empty()) {
      EXPECT_TRUE(expected.empty()) << sql;
    } else {
      EXPECT_EQ(actual, expected) << sql;
    }
  }
}

TEST_P(OneTimeJoinTest, ErrorsAreReported) {
  auto net = MakeNet();
  EXPECT_TRUE(net->OneTimeJoin(999, "x").status().IsInvalidArgument());
  EXPECT_TRUE(net->OneTimeJoin(0, "garbage").status().IsParseError());
}

INSTANTIATE_TEST_SUITE_P(TupleStoringAlgorithms, OneTimeJoinTest,
                         ::testing::Values(Algorithm::kSai,
                                           Algorithm::kDaiQ));

TEST(OneTimeJoinGateTest, RejectedOnNonStoringAlgorithms) {
  for (Algorithm alg : {Algorithm::kDaiT, Algorithm::kDaiV}) {
    Options opts;
    opts.num_nodes = 8;
    opts.algorithm = alg;
    ContinuousQueryNetwork net(opts);
    CJ_CHECK(net.catalog()
                 ->Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(net.catalog()
                 ->Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt}}))
                 .ok());
    EXPECT_TRUE(net.OneTimeJoin(0, "SELECT R.A FROM R, S WHERE R.A = S.D")
                    .status()
                    .IsUnsupported());
  }
}

}  // namespace
}  // namespace contjoin::core
