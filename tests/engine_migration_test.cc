// §4.7 "moving an identifier": an overloaded rewriter hands its
// attribute-level role (stored queries + arrival statistics) to the
// successor of a fresh identifier; the base node keeps a one-hop
// forwarding pointer.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace contjoin::core {
namespace {

using rel::Value;

class MigrationTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  std::unique_ptr<ContinuousQueryNetwork> MakeNet(
      std::function<void(Options*)> tweak = nullptr) {
    Options opts;
    opts.num_nodes = 48;
    opts.algorithm = GetParam();
    if (tweak) tweak(&opts);
    auto net = std::make_unique<ContinuousQueryNetwork>(opts);
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt},
                           {"B", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(net->catalog()
                 ->Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt},
                           {"E", rel::ValueType::kInt}}))
                 .ok());
    return net;
  }

  size_t IndexOf(ContinuousQueryNetwork* net, chord::Node* node) {
    for (size_t i = 0; i < net->num_nodes(); ++i) {
      if (net->node(i) == node) return i;
    }
    CJ_CHECK(false);
    return 0;
  }
};

TEST_P(MigrationTest, AnswersSurviveMigrationInBothDirections) {
  auto net = MakeNet();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  // Move both possible rewriter keys.
  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B").ok());
  ASSERT_TRUE(net->MigrateAttribute(1, "S", "E").ok());
  // Queries submitted before and tuples after the move still join.
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  auto n = net->TakeNotifications(0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0].row[0], Value::Int(1));

  // Queries submitted AFTER the move are forwarded to the holder too.
  ASSERT_TRUE(
      net->SubmitQuery(4, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(2), Value::Int(9)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(6), Value::Int(9)}).ok());
  EXPECT_EQ(net->TakeNotifications(4).size(), 1u);
  EXPECT_EQ(net->TakeNotifications(0).size(), 1u);
}

TEST_P(MigrationTest, BucketActuallyMoves) {
  auto net = MakeNet();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  chord::Node* base =
      net->network()->OracleSuccessor(AttrIndexId("R", "B", 0));
  size_t base_index = IndexOf(net.get(), base);
  uint64_t base_alqt_before = net->storage(base_index).alqt_queries;

  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B").ok());
  const NodeState* base_state = net->state(base_index);
  // SAI may have indexed the query by the S side; the pointer is set either
  // way once the key moves.
  auto moved = base_state->rewriter.moved_attrs.find("R+B#0");
  ASSERT_NE(moved, base_state->rewriter.moved_attrs.end());
  chord::Node* holder = moved->second.holder;
  ASSERT_NE(holder, nullptr);
  ASSERT_NE(holder, base);
  // Whatever R+B queries the base held now live at the holder.
  if (base_alqt_before > 0) {
    EXPECT_LT(net->storage(base_index).alqt_queries, base_alqt_before);
  }
  const NodeState* holder_state = net->state(IndexOf(net.get(), holder));
  EXPECT_EQ(holder_state->rewriter.held_generation.at("R+B#0"), 1);
}

TEST_P(MigrationTest, RepeatedMigrationRepointsBaseDirectly) {
  auto net = MakeNet();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B").ok());
  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B").ok());
  chord::Node* base =
      net->network()->OracleSuccessor(AttrIndexId("R", "B", 0));
  const NodeState* base_state = net->state(IndexOf(net.get(), base));
  auto moved = base_state->rewriter.moved_attrs.find("R+B#0");
  ASSERT_NE(moved, base_state->rewriter.moved_attrs.end());
  EXPECT_EQ(moved->second.generation, 2);
  // Answers still flow after two moves.
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_EQ(net->TakeNotifications(0).size(), 1u);
}

TEST_P(MigrationTest, MigrationSpreadsAttributeLevelLoadOffTheBase) {
  auto net = MakeNet();
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  // Warm: identify the hot base node.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        net->InsertTuple(1, "R", {Value::Int(i), Value::Int(100 + i)}).ok());
  }
  chord::Node* base =
      net->network()->OracleSuccessor(AttrIndexId("R", "B", 0));
  size_t base_index = IndexOf(net.get(), base);
  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B").ok());
  uint64_t base_filter_before = net->metrics(base_index).filter_ops_attr;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        net->InsertTuple(1, "R", {Value::Int(i), Value::Int(200 + i)}).ok());
  }
  // The base only forwarded: its attribute-level filtering did not grow.
  EXPECT_EQ(net->metrics(base_index).filter_ops_attr, base_filter_before);
}

TEST_P(MigrationTest, WorksWithReplication) {
  auto net = MakeNet([](Options* o) { o->attribute_replication = 3; });
  ASSERT_TRUE(
      net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E").ok());
  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B", /*replica=*/1).ok());
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_EQ(net->TakeNotifications(0).size(), 1u);
  EXPECT_TRUE(
      net->MigrateAttribute(1, "R", "B", /*replica=*/7).IsInvalidArgument());
}

TEST_P(MigrationTest, UnsubscribeFollowsTheMove) {
  auto net = MakeNet([](Options* o) { o->track_evaluators = true; });
  auto key = net->SubmitQuery(0, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(net->MigrateAttribute(1, "R", "B").ok());
  ASSERT_TRUE(net->MigrateAttribute(1, "S", "E").ok());
  ASSERT_TRUE(net->Unsubscribe(0, key.value()).ok());
  ASSERT_TRUE(net->InsertTuple(2, "R", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "S", {Value::Int(5), Value::Int(7)}).ok());
  EXPECT_TRUE(net->TakeNotifications(0).empty());
  EXPECT_EQ(net->TotalStorage().alqt_queries, 0u);
}

TEST_P(MigrationTest, ErrorsAreReported) {
  auto net = MakeNet();
  EXPECT_TRUE(net->MigrateAttribute(0, "Nope", "B").IsNotFound());
  EXPECT_TRUE(net->MigrateAttribute(0, "R", "Zz").IsNotFound());
  EXPECT_TRUE(net->MigrateAttribute(999, "R", "B").IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MigrationTest,
                         ::testing::Values(Algorithm::kSai, Algorithm::kDaiQ,
                                           Algorithm::kDaiT,
                                           Algorithm::kDaiV));

}  // namespace
}  // namespace contjoin::core
