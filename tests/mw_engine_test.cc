// Multi-way continuous joins (recursive-SAI extension): hand-checked
// scenarios in every arrival order plus randomized equivalence sweeps
// against the centralized multi-way oracle.

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "reference/mw_reference.h"

namespace contjoin::core {
namespace {

using rel::Value;

class MwEngineTest : public ::testing::Test {
 protected:
  std::unique_ptr<ContinuousQueryNetwork> MakeNet(
      size_t nodes = 32, rel::Timestamp window = 0) {
    Options opts;
    opts.num_nodes = nodes;
    opts.algorithm = Algorithm::kSai;
    opts.window = window;
    auto net = std::make_unique<ContinuousQueryNetwork>(opts);
    for (const char* name : {"R", "S", "T", "U"}) {
      CJ_CHECK(net->catalog()
                   ->Register(rel::RelationSchema(
                       name, {{"a", rel::ValueType::kInt},
                              {"b", rel::ValueType::kInt}}))
                   .ok());
    }
    return net;
  }
};

TEST_F(MwEngineTest, ThreeWayChainAllArrivalOrders) {
  // R.a = S.a AND S.b = T.b; the matching triple is
  // R(1,_=10), S(10 joins R.a=10? ...) — concretely:
  //   R(10, 99), S(10, 20), T(77, 20): R.a=S.a=10, S.b=T.b=20.
  const std::vector<std::pair<std::string, std::vector<Value>>> tuples = {
      {"R", {Value::Int(10), Value::Int(99)}},
      {"S", {Value::Int(10), Value::Int(20)}},
      {"T", {Value::Int(77), Value::Int(20)}},
  };
  int permutation[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (auto& order : permutation) {
    auto net = MakeNet();
    auto key = net->SubmitMultiwayQuery(
        0, "SELECT R.b, S.a, T.a FROM R, S, T "
           "WHERE R.a = S.a AND S.b = T.b");
    ASSERT_TRUE(key.ok()) << key.status().ToString();
    for (int i : order) {
      auto& [relation, values] = tuples[static_cast<size_t>(i)];
      ASSERT_TRUE(net->InsertTuple(1, relation, values).ok());
    }
    auto notifications = net->TakeNotifications(0);
    ASSERT_EQ(notifications.size(), 1u)
        << "order " << order[0] << order[1] << order[2];
    EXPECT_EQ(notifications[0].row[0], Value::Int(99));
    EXPECT_EQ(notifications[0].row[1], Value::Int(10));
    EXPECT_EQ(notifications[0].row[2], Value::Int(77));
  }
}

TEST_F(MwEngineTest, NonMatchingTriplesProduceNothing) {
  auto net = MakeNet();
  ASSERT_TRUE(net->SubmitMultiwayQuery(
                     0, "SELECT R.b, T.a FROM R, S, T "
                        "WHERE R.a = S.a AND S.b = T.b")
                  .ok());
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(10), Value::Int(1)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(10), Value::Int(20)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "T", {Value::Int(5), Value::Int(21)}).ok());
  EXPECT_TRUE(net->TakeNotifications(0).empty());
}

TEST_F(MwEngineTest, FourWayStar) {
  auto net = MakeNet();
  auto key = net->SubmitMultiwayQuery(
      0, "SELECT R.b, S.b, T.b, U.b FROM R, S, T, U "
         "WHERE R.a = S.a AND R.a = T.a AND R.b = U.b");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(5), Value::Int(1)}).ok());
  ASSERT_TRUE(net->InsertTuple(2, "U", {Value::Int(0), Value::Int(9)}).ok());
  ASSERT_TRUE(net->InsertTuple(3, "R", {Value::Int(5), Value::Int(9)}).ok());
  ASSERT_TRUE(net->InsertTuple(4, "T", {Value::Int(5), Value::Int(3)}).ok());
  auto notifications = net->TakeNotifications(0);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].row[0], Value::Int(9));  // R.b
  EXPECT_EQ(notifications[0].row[1], Value::Int(1));  // S.b
  EXPECT_EQ(notifications[0].row[2], Value::Int(3));  // T.b
  EXPECT_EQ(notifications[0].row[3], Value::Int(9));  // U.b
}

TEST_F(MwEngineTest, MultiplicityCountsCombinations) {
  auto net = MakeNet();
  ASSERT_TRUE(net->SubmitMultiwayQuery(
                     0, "SELECT R.b, S.b, T.a FROM R, S, T "
                        "WHERE R.a = S.a AND S.b = T.b")
                  .ok());
  // Two distinct R's, one S, two distinct T's: 4 combinations.
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(100)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(101)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "T", {Value::Int(200), Value::Int(2)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "T", {Value::Int(201), Value::Int(2)}).ok());
  auto notifications = net->TakeNotifications(0);
  std::set<std::string> contents;
  for (const auto& n : notifications) contents.insert(n.ContentKey());
  EXPECT_EQ(contents.size(), 4u);
}

TEST_F(MwEngineTest, PredicatesFilterPerRelation) {
  auto net = MakeNet();
  ASSERT_TRUE(net->SubmitMultiwayQuery(
                     0, "SELECT R.b, T.a FROM R, S, T "
                        "WHERE R.a = S.a AND S.b = T.b AND T.a > 50")
                  .ok());
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(9)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "T", {Value::Int(10), Value::Int(2)}).ok());
  EXPECT_TRUE(net->TakeNotifications(0).empty());  // T.a = 10 fails.
  ASSERT_TRUE(net->InsertTuple(1, "T", {Value::Int(60), Value::Int(2)}).ok());
  EXPECT_EQ(net->TakeNotifications(0).size(), 1u);
}

TEST_F(MwEngineTest, TimeSemanticsRespectQueryInsertion) {
  auto net = MakeNet();
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(9)}).ok());
  ASSERT_TRUE(net->SubmitMultiwayQuery(
                     0, "SELECT R.b, T.a FROM R, S, T "
                        "WHERE R.a = S.a AND S.b = T.b")
                  .ok());
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(net->InsertTuple(1, "T", {Value::Int(3), Value::Int(2)}).ok());
  // The R tuple predates the query: no complete combination may use it.
  EXPECT_TRUE(net->TakeNotifications(0).empty());
}

TEST_F(MwEngineTest, RequiresSaiAndNoReplication) {
  Options opts;
  opts.num_nodes = 8;
  opts.algorithm = Algorithm::kDaiT;
  ContinuousQueryNetwork net(opts);
  CJ_CHECK(net.catalog()
               ->Register(rel::RelationSchema(
                   "R", {{"a", rel::ValueType::kInt}}))
               .ok());
  EXPECT_TRUE(net.SubmitMultiwayQuery(0, "SELECT R.a FROM R WHERE R.a = 1")
                  .status()
                  .IsUnsupported());

  Options opts2;
  opts2.num_nodes = 8;
  opts2.algorithm = Algorithm::kSai;
  opts2.attribute_replication = 2;
  ContinuousQueryNetwork net2(opts2);
  EXPECT_TRUE(net2.SubmitMultiwayQuery(0, "SELECT R.a FROM R WHERE R.a = 1")
                  .status()
                  .IsUnsupported());
}

TEST_F(MwEngineTest, StorageAccountsPartials) {
  auto net = MakeNet();
  ASSERT_TRUE(net->SubmitMultiwayQuery(
                     0, "SELECT R.b, T.a FROM R, S, T "
                        "WHERE R.a = S.a AND S.b = T.b")
                  .ok());
  EXPECT_EQ(net->TotalStorage().mw_queries, 1u);
  ASSERT_TRUE(net->InsertTuple(1, "R", {Value::Int(1), Value::Int(9)}).ok());
  // One {R}-partial parked at the S-side evaluator.
  EXPECT_EQ(net->TotalStorage().mw_partials, 1u);
  ASSERT_TRUE(net->InsertTuple(1, "S", {Value::Int(1), Value::Int(2)}).ok());
  // Plus the {R,S}-partial parked at the T-side evaluator.
  EXPECT_EQ(net->TotalStorage().mw_partials, 2u);
}

// --- Randomized equivalence against the multi-way oracle ----------------------

struct MwScenario {
  int m;  // Number of relations.
  uint64_t seed;
  rel::Timestamp window;
  bool star;  // Star topology instead of a chain.
  size_t num_queries;
  size_t num_tuples;

  std::string Name() const {
    std::string out = "m" + std::to_string(m) + "_s" + std::to_string(seed);
    if (star) out += "_star";
    if (window > 0) out += "_w" + std::to_string(window);
    return out;
  }
};

class MwEquivalenceTest : public ::testing::TestWithParam<MwScenario> {};

TEST_P(MwEquivalenceTest, MatchesMwReference) {
  const MwScenario& sc = GetParam();
  Options opts;
  opts.num_nodes = 24;
  opts.algorithm = Algorithm::kSai;
  opts.window = sc.window;
  opts.seed = sc.seed;
  ContinuousQueryNetwork net(opts);
  const int kAttrs = 3;
  std::vector<std::string> rels;
  for (int i = 0; i < sc.m; ++i) {
    rels.push_back("T" + std::to_string(i));
    std::vector<rel::Attribute> attrs;
    for (int a = 0; a < kAttrs; ++a) {
      attrs.push_back({"a" + std::to_string(a), rel::ValueType::kInt});
    }
    CJ_CHECK(net.catalog()
                 ->Register(rel::RelationSchema(rels.back(), attrs))
                 .ok());
  }

  Rng rng(sc.seed);
  ref::MwReferenceEngine oracle(sc.window);
  uint64_t seq = 0;
  const int64_t kDomain = 6;  // Small domain so chains actually complete.

  auto gen_query = [&]() {
    std::ostringstream sql;
    sql << "SELECT ";
    for (int i = 0; i < sc.m; ++i) {
      if (i > 0) sql << ", ";
      sql << rels[static_cast<size_t>(i)] << ".a" << rng.NextBelow(kAttrs);
    }
    sql << " FROM ";
    for (int i = 0; i < sc.m; ++i) {
      if (i > 0) sql << ", ";
      sql << rels[static_cast<size_t>(i)];
    }
    sql << " WHERE ";
    for (int i = 1; i < sc.m; ++i) {
      if (i > 1) sql << " AND ";
      int anchor = sc.star ? 0 : i - 1;
      sql << rels[static_cast<size_t>(anchor)] << ".a"
          << rng.NextBelow(kAttrs) << " = " << rels[static_cast<size_t>(i)]
          << ".a" << rng.NextBelow(kAttrs);
    }
    if (rng.NextBernoulli(0.3)) {
      sql << " AND " << rels[rng.NextBelow(rels.size())] << ".a"
          << rng.NextBelow(kAttrs) << " >= " << rng.NextInRange(0, 2);
    }
    return sql.str();
  };

  for (size_t i = 0; i < sc.num_queries; ++i) {
    std::string sql = gen_query();
    auto key = net.SubmitMultiwayQuery(rng.NextBelow(net.num_nodes()), sql);
    ASSERT_TRUE(key.ok()) << sql << ": " << key.status().ToString();
    auto parsed = query::ParseMwQuery(sql, *net.catalog());
    ASSERT_TRUE(parsed.ok());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(
        std::make_shared<const query::MwQuery>(std::move(parsed).value()));
  }

  for (size_t i = 0; i < sc.num_tuples; ++i) {
    std::string relation = rels[rng.NextBelow(rels.size())];
    std::vector<Value> values;
    for (int a = 0; a < kAttrs; ++a) {
      values.push_back(
          Value::Int(static_cast<int64_t>(rng.NextBelow(kDomain))));
    }
    auto copy = values;
    ASSERT_TRUE(net.InsertTuple(rng.NextBelow(net.num_nodes()), relation,
                                std::move(values))
                    .ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), seq++));
  }

  std::set<std::string> actual;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (const Notification& n : net.TakeNotifications(i)) {
      actual.insert(n.ContentKey());
    }
  }
  std::set<std::string> expected = oracle.ContentSet();
  std::vector<std::string> missing, extra;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  EXPECT_TRUE(missing.empty())
      << missing.size() << " missing, first: " << missing[0];
  EXPECT_TRUE(extra.empty())
      << extra.size() << " spurious, first: " << extra[0];
  EXPECT_FALSE(expected.empty()) << "vacuous scenario";
}

std::vector<MwScenario> MwScenarios() {
  std::vector<MwScenario> out;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    out.push_back({2, seed, 0, false, 12, 120});
    out.push_back({3, seed, 0, false, 10, 100});
    out.push_back({4, seed, 0, false, 8, 90});
    out.push_back({4, seed, 0, true, 8, 90});
    out.push_back({5, seed, 0, false, 6, 80});
  }
  out.push_back({3, 7, 30, false, 8, 120});
  out.push_back({4, 7, 40, true, 6, 100});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MwEquivalenceTest,
                         ::testing::ValuesIn(MwScenarios()),
                         [](const auto& info) { return info.param.Name(); });

}  // namespace
}  // namespace contjoin::core
