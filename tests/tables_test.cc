#include "core/tables.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace contjoin::core {
namespace {

class TablesTest : public ::testing::Test {
 protected:
  TablesTest() {
    CJ_CHECK(catalog_
                 .Register(rel::RelationSchema(
                     "R", {{"A", rel::ValueType::kInt},
                           {"B", rel::ValueType::kInt}}))
                 .ok());
    CJ_CHECK(catalog_
                 .Register(rel::RelationSchema(
                     "S", {{"D", rel::ValueType::kInt},
                           {"E", rel::ValueType::kInt}}))
                 .ok());
  }

  query::QueryPtr MakeQuery(const std::string& key) {
    auto parsed = query::ParseQuery(
        "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", catalog_);
    CJ_CHECK(parsed.ok());
    parsed.value().set_key(key);
    return std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value());
  }

  RewrittenEntry MakeEntry(query::QueryPtr q, const std::string& rk,
                           rel::Timestamp pub, uint64_t seq) {
    RewrittenEntry e;
    e.query = std::move(q);
    e.remaining_side = 1;
    e.rewritten_key = rk;
    e.required_value = rel::Value::Int(7);
    e.row = {rel::Value::Int(1), std::nullopt};
    e.trigger_pub = pub;
    e.trigger_seq = seq;
    return e;
  }

  rel::Catalog catalog_;
};

TEST_F(TablesTest, AlqtInsertFindRemove) {
  AttrLevelQueryTable alqt;
  auto q1 = MakeQuery("n1#0");
  auto q2 = MakeQuery("n2#0");
  alqt.Insert("R+B", q1->signature(), AlqtEntry{q1, 0});
  alqt.Insert("R+B", q2->signature(), AlqtEntry{q2, 0});
  alqt.Insert("S+E", q1->signature(), AlqtEntry{q1, 1});
  EXPECT_EQ(alqt.size(), 3u);

  const auto* groups = alqt.Find("R+B");
  ASSERT_NE(groups, nullptr);
  ASSERT_EQ(groups->size(), 1u);  // Same signature: one group.
  EXPECT_EQ(groups->begin()->second.size(), 2u);
  EXPECT_EQ(alqt.Find("R+A"), nullptr);

  EXPECT_EQ(alqt.RemoveQuery("n1#0"), 2u);
  EXPECT_EQ(alqt.size(), 1u);
  EXPECT_EQ(alqt.Find("S+E"), nullptr);  // Emptied level-1 pruned.
  EXPECT_NE(alqt.Find("R+B"), nullptr);
}

TEST_F(TablesTest, VlqtDedupByRewrittenKey) {
  ValueLevelQueryTable vlqt;
  auto q = MakeQuery("n1#0");
  EXPECT_TRUE(vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q, "rk1", 10, 1)));
  EXPECT_FALSE(vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q, "rk1", 20, 2)));
  EXPECT_TRUE(vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q, "rk2", 15, 3)));
  EXPECT_EQ(vlqt.size(), 2u);

  const auto* bucket = vlqt.Find("S+E", "7");
  ASSERT_NE(bucket, nullptr);
  // The duplicate only advanced the trigger time (§4.3.3).
  EXPECT_EQ(bucket->at("rk1").latest_trigger_pub, 20u);
  EXPECT_EQ(bucket->at("rk2").latest_trigger_pub, 15u);
}

TEST_F(TablesTest, VlqtRefreshNeverRewindsTime) {
  ValueLevelQueryTable vlqt;
  auto q = MakeQuery("n1#0");
  vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q, "rk1", 20, 5));
  vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q, "rk1", 10, 1));
  EXPECT_EQ(vlqt.Find("S+E", "7")->at("rk1").latest_trigger_pub, 20u);
}

TEST_F(TablesTest, VlqtRemoveQuery) {
  ValueLevelQueryTable vlqt;
  auto q1 = MakeQuery("n1#0");
  auto q2 = MakeQuery("n2#0");
  vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q1, "a", 1, 1));
  vlqt.InsertOrRefresh("S+E", "8", MakeEntry(q1, "b", 2, 2));
  vlqt.InsertOrRefresh("S+E", "7", MakeEntry(q2, "c", 3, 3));
  EXPECT_EQ(vlqt.RemoveQuery("n1#0"), 2u);
  EXPECT_EQ(vlqt.size(), 1u);
  EXPECT_EQ(vlqt.Find("S+E", "8"), nullptr);
}

TEST_F(TablesTest, VlttInsertFindExpire) {
  ValueLevelTupleTable vltt;
  auto t1 = std::make_shared<const rel::Tuple>(
      "S", std::vector<rel::Value>{rel::Value::Int(1), rel::Value::Int(7)},
      10, 1);
  auto t2 = std::make_shared<const rel::Tuple>(
      "S", std::vector<rel::Value>{rel::Value::Int(2), rel::Value::Int(7)},
      30, 2);
  vltt.Insert("S+E", "7", StoredTuple{t1, 1});
  vltt.Insert("S+E", "7", StoredTuple{t2, 1});
  EXPECT_EQ(vltt.size(), 2u);
  ASSERT_NE(vltt.Find("S+E", "7"), nullptr);
  EXPECT_EQ(vltt.Find("S+E", "7")->size(), 2u);
  EXPECT_EQ(vltt.Find("S+E", "9"), nullptr);

  EXPECT_EQ(vltt.ExpireBefore(20), 1u);
  EXPECT_EQ(vltt.size(), 1u);
  EXPECT_EQ(vltt.Find("S+E", "7")->front().tuple->pub_time(), 30u);
  EXPECT_EQ(vltt.ExpireBefore(100), 1u);
  EXPECT_EQ(vltt.Find("S+E", "7"), nullptr);
}

TEST_F(TablesTest, DaivStoreSidesAreSeparate) {
  DaivStore store;
  store.Insert("25", "q1", 0, DaivStored{{rel::Value::Int(1)}, 10, 1});
  store.Insert("25", "q1", 1, DaivStored{{rel::Value::Int(2)}, 11, 2});
  store.Insert("25", "q2", 0, DaivStored{{rel::Value::Int(3)}, 12, 3});
  EXPECT_EQ(store.size(), 3u);
  ASSERT_NE(store.Find("25", "q1", 0), nullptr);
  EXPECT_EQ(store.Find("25", "q1", 0)->size(), 1u);
  EXPECT_EQ(store.Find("25", "q1", 1)->size(), 1u);
  EXPECT_EQ(store.Find("26", "q1", 0), nullptr);
  EXPECT_EQ(store.Find("25", "q3", 0), nullptr);
}

TEST_F(TablesTest, DaivStoreExpireAndRemove) {
  DaivStore store;
  store.Insert("25", "q1", 0, DaivStored{{}, 10, 1});
  store.Insert("25", "q1", 0, DaivStored{{}, 30, 2});
  store.Insert("30", "q1", 1, DaivStored{{}, 40, 3});
  EXPECT_EQ(store.ExpireBefore(20), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.RemoveQuery("q1"), 2u);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace contjoin::core
