#include "common/string_util.h"

#include <gtest/gtest.h>

namespace contjoin {
namespace {

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"a"}, ","), "a");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, SplitString) {
  auto v = SplitString("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "");
  EXPECT_EQ(v[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper("where"), "WHERE");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("node-17", "node-"));
  EXPECT_FALSE(StartsWith("no", "node-"));
}

TEST(StringUtilTest, CanonicalDoubleIntegralPrintsAsInteger) {
  EXPECT_EQ(CanonicalDouble(2.0), "2");
  EXPECT_EQ(CanonicalDouble(-7.0), "-7");
  EXPECT_EQ(CanonicalDouble(0.0), "0");
  EXPECT_EQ(CanonicalDouble(1e6), "1000000");
}

TEST(StringUtilTest, CanonicalDoubleFractional) {
  EXPECT_EQ(CanonicalDouble(2.5), "2.5");
  EXPECT_EQ(CanonicalDouble(-0.125), "-0.125");
}

TEST(StringUtilTest, CanonicalDoubleRoundTrips) {
  for (double v : {3.14159, 1.0 / 3.0, 123456.789, -9.99e-5}) {
    EXPECT_EQ(std::stod(CanonicalDouble(v)), v);
  }
}

TEST(StringUtilTest, CanonicalDoubleSpecials) {
  EXPECT_EQ(CanonicalDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(CanonicalDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(CanonicalDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace contjoin
