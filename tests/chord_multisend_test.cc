// The extended API of paper §2.3: recursive multisend vs the iterative
// baseline — correctness (exact recipient sets) and relative cost.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chord_test_util.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace contjoin::chord {
namespace {

class MultisendTest : public ::testing::Test {
 protected:
  void Build(size_t n) {
    network_ = std::make_unique<Network>(&sim_);
    nodes_ = network_->BuildIdealRing(n);
    app_ = std::make_unique<CaptureApp>();
    for (Node* node : nodes_) node->set_app(app_.get());
  }

  std::vector<AppMessage> MakeBatch(int k, int seed) {
    std::vector<AppMessage> batch;
    Rng rng(static_cast<uint64_t>(seed));
    for (int i = 0; i < k; ++i) {
      batch.push_back(
          MakeMsg(HashKey("t-" + std::to_string(seed) + "-" +
                          std::to_string(i)),
                  i));
    }
    return batch;
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
  std::vector<Node*> nodes_;
  std::unique_ptr<CaptureApp> app_;
};

TEST_F(MultisendTest, RecursiveDeliversToExactRecipients) {
  Build(128);
  auto batch = MakeBatch(20, 1);
  std::map<std::string, Node*> expected;
  for (const auto& msg : batch) {
    expected[msg.target.ToHex()] = network_->OracleSuccessor(msg.target);
  }
  nodes_[0]->Multisend(batch, sim::MsgClass::kTupleIndex);
  sim_.Run();
  ASSERT_EQ(app_->deliveries.size(), batch.size());
  for (const auto& d : app_->deliveries) {
    EXPECT_EQ(d.node, expected[d.target.ToHex()]);
  }
}

TEST_F(MultisendTest, RecursiveDeliversEveryTagExactlyOnce) {
  Build(64);
  auto batch = MakeBatch(40, 2);
  nodes_[5]->Multisend(batch, sim::MsgClass::kTupleIndex);
  sim_.Run();
  std::multiset<int> tags;
  for (const auto& d : app_->deliveries) tags.insert(d.tag);
  EXPECT_EQ(tags.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(tags.count(i), 1u) << "tag " << i;
}

TEST_F(MultisendTest, IterativeDeliversToExactRecipients) {
  Build(128);
  auto batch = MakeBatch(20, 3);
  std::map<std::string, Node*> expected;
  for (const auto& msg : batch) {
    expected[msg.target.ToHex()] = network_->OracleSuccessor(msg.target);
  }
  nodes_[0]->MultisendIterative(batch);
  sim_.Run();
  ASSERT_EQ(app_->deliveries.size(), batch.size());
  for (const auto& d : app_->deliveries) {
    EXPECT_EQ(d.node, expected[d.target.ToHex()]);
  }
}

TEST_F(MultisendTest, RecursiveCheaperThanIterativeInPractice) {
  // The paper's claim for Figure "recursive vs iterative": same O(k log N)
  // bound, but the recursive design shares the clockwise path and wins.
  Build(512);
  const int kTrials = 20;
  uint64_t recursive_hops = 0, iterative_hops = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto batch = MakeBatch(32, 100 + t);
    auto before = network_->stats().total_hops();
    nodes_[t % nodes_.size()]->Multisend(batch, sim::MsgClass::kTupleIndex);
    sim_.Run();
    recursive_hops += network_->stats().total_hops() - before;

    before = network_->stats().total_hops();
    nodes_[t % nodes_.size()]->MultisendIterative(MakeBatch(32, 100 + t));
    sim_.Run();
    iterative_hops += network_->stats().total_hops() - before;
  }
  EXPECT_LT(recursive_hops, iterative_hops);
}

TEST_F(MultisendTest, EmptyBatchIsNoOp) {
  Build(16);
  uint64_t before = network_->stats().total_hops();
  nodes_[0]->Multisend({}, sim::MsgClass::kTupleIndex);
  sim_.Run();
  EXPECT_EQ(network_->stats().total_hops(), before);
  EXPECT_TRUE(app_->deliveries.empty());
}

TEST_F(MultisendTest, DuplicateTargetsEachDelivered) {
  Build(32);
  NodeId target = HashKey("dup");
  std::vector<AppMessage> batch{MakeMsg(target, 1), MakeMsg(target, 2)};
  nodes_[0]->Multisend(batch, sim::MsgClass::kTupleIndex);
  sim_.Run();
  EXPECT_EQ(app_->deliveries.size(), 2u);
}

TEST_F(MultisendTest, BatchToOwnRangeDeliversLocallyFree) {
  Build(32);
  Node* origin = nodes_[0];
  std::vector<AppMessage> batch{MakeMsg(origin->id(), 9)};
  uint64_t before = network_->stats().total_hops();
  origin->Multisend(batch, sim::MsgClass::kTupleIndex);
  sim_.Run();
  EXPECT_EQ(network_->stats().total_hops(), before);
  ASSERT_EQ(app_->deliveries.size(), 1u);
  EXPECT_EQ(app_->deliveries[0].node, origin);
}

TEST_F(MultisendTest, LargeBatchOnSmallRingTouchesAllNodes) {
  Build(8);
  auto batch = MakeBatch(200, 4);
  nodes_[0]->Multisend(batch, sim::MsgClass::kTupleIndex);
  sim_.Run();
  EXPECT_EQ(app_->deliveries.size(), 200u);
  std::set<Node*> receivers;
  for (const auto& d : app_->deliveries) receivers.insert(d.node);
  EXPECT_EQ(receivers.size(), 8u);  // 200 random keys over 8 nodes.
}

TEST_F(MultisendTest, MultisendCostScalesWithBatchNotNaively) {
  // Batch of k messages should cost less than k separate sends.
  Build(256);
  auto batch = MakeBatch(64, 5);
  uint64_t before = network_->stats().total_hops();
  nodes_[0]->Multisend(batch, sim::MsgClass::kTupleIndex);
  sim_.Run();
  uint64_t batched = network_->stats().total_hops() - before;

  before = network_->stats().total_hops();
  for (auto& msg : MakeBatch(64, 5)) {
    nodes_[0]->Send(std::move(msg));
    sim_.Run();
  }
  uint64_t separate = network_->stats().total_hops() - before;
  EXPECT_LT(batched, separate);
}

}  // namespace
}  // namespace contjoin::chord
