// Headline property of the adaptive load manager: with runtime hot-key
// detection, attribute-level auto-replication, value splitting, and
// cooldown all firing mid-workload, every distributed algorithm still
// delivers exactly the reference engine's notification content set — the
// adaptation moves state and traffic around, never answers. Also pinned
// here: the manager keeps working over a lossy transport with the
// reliability layer on, and runs bit-identically at any worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "query/parser.h"
#include "reference/reference_engine.h"

namespace contjoin::core {
namespace {

using rel::Value;

constexpr size_t kNumNodes = 24;
constexpr size_t kHotOps = 64;
constexpr size_t kSparseOps = 80;

struct AdaptScenario {
  Algorithm algorithm;
  double drop_prob;

  std::string Name() const {
    std::string out = AlgorithmName(algorithm);
    out += "_p" + std::to_string(static_cast<int>(drop_prob * 100));
    for (char& c : out) {
      if (c == '-') c = '_';
    }
    return out;
  }
};

/// Aggressive control-loop knobs so a ~150-operation workload exercises
/// escalation, re-escalation, and cooldown; production defaults react far
/// more slowly. `epoch_len` is filled in by Calibrate().
void AggressiveAdapt(Options* opts) {
  opts->adapt.enabled = true;
  opts->adapt.hot_threshold = 6;
  opts->adapt.cool_threshold = 3;
  opts->adapt.dwell_epochs = 1;
  opts->adapt.max_split = 4;
  opts->adapt.max_replicas = 3;
}

const std::vector<std::string> kQueries = {
    "SELECT R.B, S.E FROM R, S WHERE R.A = S.D",
    "SELECT R.C, S.F FROM R, S WHERE R.A = S.D AND R.B = 1",
    "SELECT R.A, S.E FROM R, S WHERE R.A = S.D AND S.E = 2",
    "SELECT R.B, S.F FROM R, S WHERE R.B = S.E",
    "SELECT R.C, S.E FROM R, S WHERE R.A = S.D AND S.F = 3",
    "SELECT S.D, R.B FROM R, S WHERE R.A = S.D",
};

struct RunResult {
  std::set<std::string> actual;
  std::set<std::string> expected;
  uint64_t total_hops = 0;
  uint64_t adapt_directives = 0;
  uint64_t adapt_redirects = 0;
  uint64_t adapt_reshipped = 0;
  NodeMetrics totals;
};

void RegisterSchemas(ContinuousQueryNetwork* net);

/// Virtual time per operation depends on retry-timer horizons (the same
/// issue the fault test's churn schedule works around), so the epoch
/// length is pinned to a measured per-insert duration: one epoch spans
/// roughly eight operations of this workload.
void Calibrate(Options* opts) {
  Options probe = *opts;
  ContinuousQueryNetwork net(probe);
  RegisterSchemas(&net);
  CJ_CHECK(net.SubmitQuery(0, kQueries[0]).ok());
  rel::Timestamp before = net.now();
  CJ_CHECK(
      net.InsertTuple(1, "R", {Value::Int(7), Value::Int(0), Value::Int(0)})
          .ok());
  sim::SimTime dt = std::max<rel::Timestamp>(1, net.now() - before);
  sim::SimTime epoch = 8 * dt;
  bool lossy = false;
  for (size_t c = 0; c < static_cast<size_t>(sim::MsgClass::kClassCount);
       ++c) {
    lossy |= opts->faults.per_class[c].active();
  }
  if (lossy) {
    // A dropped critical message stalls its operation by the first-retry
    // horizon, a gap the single-insert probe (which rarely samples a drop)
    // never sees. Epochs must straddle such gaps, or the decay between two
    // hot-key arrivals on either side of one wipes the accumulated rate.
    const sim::SimTime horizon =
        opts->reliability.base_timeout *
        std::max<uint64_t>(1, opts->chord.hop_latency);
    epoch = std::max(epoch, 2 * horizon);
  }
  opts->adapt.epoch_len = epoch;
}

void RegisterSchemas(ContinuousQueryNetwork* net) {
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema(
                   "R", {{"A", rel::ValueType::kInt},
                         {"B", rel::ValueType::kInt},
                         {"C", rel::ValueType::kInt}}))
               .ok());
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema(
                   "S", {{"D", rel::ValueType::kInt},
                         {"E", rel::ValueType::kInt},
                         {"F", rel::ValueType::kInt}}))
               .ok());
}

/// Two-phase deterministic workload: a dense phase hammering join value 7
/// (both relations, most operations) to heat the "R+A"/"S+D" attribute
/// keys and the value-7 families, then a sparse tail where value 7 only
/// trickles in — its decayed rate collapses, so the trickle's decider
/// arrivals walk the directives back down (cooldown).
RunResult RunAdaptWorkload(Options opts, int workers) {
  ContinuousQueryNetwork net(std::move(opts));
  RegisterSchemas(&net);
  net.simulator()->SetWorkers(workers);

  ref::ReferenceEngine oracle;
  uint64_t ref_seq = 0;

  for (size_t i = 0; i < kQueries.size(); ++i) {
    const std::string& sql = kQueries[i];
    auto key = net.SubmitQuery((i * 5 + 2) % kNumNodes, sql);
    CJ_CHECK(key.ok()) << sql << ": " << key.status().ToString();
    auto parsed = query::ParseQuery(sql, *net.catalog());
    CJ_CHECK(parsed.ok());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }

  auto insert = [&](const std::string& relation,
                    std::vector<rel::Value> values, size_t origin) {
    std::vector<rel::Value> copy = values;
    CJ_CHECK(net.InsertTuple(origin % kNumNodes, relation, std::move(values))
                 .ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), ref_seq++));
  };

  for (size_t i = 0; i < kHotOps; ++i) {
    const bool hot = i % 4 != 3;
    const int join_val = hot ? 7 : static_cast<int>(i % 5);
    const int v2 = static_cast<int>(i % 3);
    const int v3 = static_cast<int>(i % 7);
    if (i % 2 == 0) {
      insert("R", {Value::Int(join_val), Value::Int(v2), Value::Int(v3)},
             i * 7 + 3);
    } else {
      insert("S", {Value::Int(join_val), Value::Int(v2), Value::Int(v3)},
             i * 7 + 3);
    }
  }
  for (size_t i = kHotOps; i < kHotOps + kSparseOps; ++i) {
    const bool hot = i % 16 == 0;
    const int join_val = hot ? 7 : static_cast<int>(i % 6) + 10;
    const int v2 = static_cast<int>(i % 3);
    const int v3 = static_cast<int>(i % 7);
    if (i % 2 == 0) {
      insert("R", {Value::Int(join_val), Value::Int(v2), Value::Int(v3)},
             i * 7 + 3);
    } else {
      insert("S", {Value::Int(join_val), Value::Int(v2), Value::Int(v3)},
             i * 7 + 3);
    }
  }

  RunResult out;
  std::vector<Notification> delivered;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (Notification& n : net.TakeNotifications(i)) {
      delivered.push_back(std::move(n));
    }
  }
  out.actual = ref::ReferenceEngine::ContentSet(delivered);
  out.expected = oracle.ContentSet();
  out.total_hops = net.stats().total_hops();
  out.adapt_directives = net.stats().adapt_directives();
  out.adapt_redirects = net.stats().adapt_redirects();
  out.adapt_reshipped = net.stats().adapt_reshipped();
  out.totals = net.TotalMetrics();
  return out;
}

Options ScenarioOptions(const AdaptScenario& sc) {
  Options opts;
  opts.num_nodes = kNumNodes;
  opts.algorithm = sc.algorithm;
  opts.seed = 11;
  opts.reliability.enabled = true;
  AggressiveAdapt(&opts);
  if (sc.drop_prob > 0) {
    faults::FaultOptions fopts;
    fopts.seed = 29;
    faults::FaultProfile p;
    p.drop_prob = sc.drop_prob;
    p.duplicate_prob = sc.drop_prob / 2;
    p.delay_prob = sc.drop_prob / 2;
    p.max_extra_delay = 3;
    const std::vector<sim::MsgClass> classes = {
        sim::MsgClass::kQueryIndex, sim::MsgClass::kTupleIndex,
        sim::MsgClass::kRewrittenQuery, sim::MsgClass::kNotification};
    fopts.SetProfiles(classes, p);
    opts.faults = fopts;
  }
  Calibrate(&opts);
  return opts;
}

class AdaptEquivalenceTest : public ::testing::TestWithParam<AdaptScenario> {};

TEST_P(AdaptEquivalenceTest, AdaptationIsContentLossless) {
  const AdaptScenario& sc = GetParam();
  RunResult r = RunAdaptWorkload(ScenarioOptions(sc), /*workers=*/1);

  std::vector<std::string> missing, extra;
  std::set_difference(r.expected.begin(), r.expected.end(), r.actual.begin(),
                      r.actual.end(), std::back_inserter(missing));
  std::set_difference(r.actual.begin(), r.actual.end(), r.expected.begin(),
                      r.expected.end(), std::back_inserter(extra));
  EXPECT_TRUE(missing.empty())
      << missing.size() << " notifications missing, first: " << missing[0];
  EXPECT_TRUE(extra.empty())
      << extra.size() << " spurious notifications, first: " << extra[0];
  EXPECT_FALSE(r.expected.empty()) << "vacuous scenario: no joins fired";

  // The manager must actually have acted, or this test proves nothing.
  EXPECT_GT(r.adapt_directives, 0u) << "no directive ever fired";
  EXPECT_GT(r.totals.adapt_directives, 0u);
  if (sc.drop_prob > 0) {
    EXPECT_GT(r.totals.reliable_retries, 0u)
        << "lossy transport but no retries fired";
  }
}

std::vector<AdaptScenario> AllAdaptScenarios() {
  std::vector<AdaptScenario> out;
  for (Algorithm alg : {Algorithm::kSai, Algorithm::kDaiQ, Algorithm::kDaiT,
                        Algorithm::kDaiV}) {
    for (double p : {0.0, 0.05}) {
      out.push_back(AdaptScenario{alg, p});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdaptEquivalenceTest,
                         ::testing::ValuesIn(AllAdaptScenarios()),
                         [](const auto& info) { return info.param.Name(); });

// The full loop on one strategy: the hot value's family must have been
// escalated AND walked back (>= 2 directive versions, final level 1 at
// some directory copy), proving split and cooldown both fired rather
// than the workload merely brushing the threshold once.
TEST(AdaptCooldown, HotFamilySplitsThenCools) {
  AdaptScenario sc{Algorithm::kSai, 0.0};
  Options opts = ScenarioOptions(sc);
  ContinuousQueryNetwork net(opts);
  RegisterSchemas(&net);

  for (size_t i = 0; i < kQueries.size(); ++i) {
    CJ_CHECK(net.SubmitQuery((i * 5 + 2) % kNumNodes, kQueries[i]).ok());
  }
  auto insert = [&](const std::string& relation, int join_val, size_t i) {
    CJ_CHECK(net.InsertTuple((i * 7 + 3) % kNumNodes, relation,
                             {Value::Int(join_val),
                              Value::Int(static_cast<int>(i % 3)),
                              Value::Int(static_cast<int>(i % 7))})
                 .ok());
  };
  for (size_t i = 0; i < kHotOps; ++i) {
    insert(i % 2 == 0 ? "R" : "S", i % 4 != 3 ? 7 : static_cast<int>(i % 5),
           i);
  }
  const std::string level1 = AttrKey("R", "A");
  const std::string hot_value = Value::Int(7).ToKeyString();
  const ::contjoin::adapt::Directive* after_hot = nullptr;
  for (size_t i = 0; i < net.num_nodes() && after_hot == nullptr; ++i) {
    after_hot = net.state(i)->adapt.directory.FindSplit(level1, hot_value);
  }
  ASSERT_NE(after_hot, nullptr) << "hot phase never split the hot family";
  EXPECT_GT(after_hot->level, 1);

  for (size_t i = kHotOps; i < kHotOps + 2 * kSparseOps; ++i) {
    insert(i % 2 == 0 ? "R" : "S",
           i % 16 == 0 ? 7 : static_cast<int>(i % 6) + 10, i);
  }
  const ::contjoin::adapt::Directive* cooled = nullptr;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    const ::contjoin::adapt::Directive* d =
        net.state(i)->adapt.directory.FindSplit(level1, hot_value);
    if (d != nullptr && (cooled == nullptr || d->version > cooled->version)) {
      cooled = d;
    }
  }
  ASSERT_NE(cooled, nullptr);
  EXPECT_GE(cooled->version, 2u) << "directive never changed after the split";
  EXPECT_EQ(cooled->level, 1) << "sparse tail did not cool the family";
}

// Same configuration at different worker counts is bit-identical: content,
// hop totals, and every adaptation counter. The manager's decisions are
// functions of (virtual time, arrival order) only.
TEST(AdaptDeterminism, WorkerCountDoesNotChangeAnything) {
  AdaptScenario sc{Algorithm::kDaiT, 0.05};
  RunResult a = RunAdaptWorkload(ScenarioOptions(sc), /*workers=*/1);
  RunResult b = RunAdaptWorkload(ScenarioOptions(sc), /*workers=*/8);
  EXPECT_EQ(a.actual, b.actual);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.adapt_directives, b.adapt_directives);
  EXPECT_EQ(a.adapt_redirects, b.adapt_redirects);
  EXPECT_EQ(a.adapt_reshipped, b.adapt_reshipped);
  EXPECT_EQ(a.totals.reliable_retries, b.totals.reliable_retries);
}

}  // namespace
}  // namespace contjoin::core
