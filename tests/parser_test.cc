#include "query/parser.h"

#include <gtest/gtest.h>

namespace contjoin::query {
namespace {

using rel::Catalog;
using rel::RelationSchema;
using rel::ValueType;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    CJ_CHECK(catalog_
                 .Register(RelationSchema("Document",
                                          {{"Id", ValueType::kInt},
                                           {"Title", ValueType::kString},
                                           {"Conference", ValueType::kString},
                                           {"AuthorId", ValueType::kInt}}))
                 .ok());
    CJ_CHECK(catalog_
                 .Register(RelationSchema("Authors",
                                          {{"Id", ValueType::kInt},
                                           {"Name", ValueType::kString},
                                           {"Surname", ValueType::kString}}))
                 .ok());
    CJ_CHECK(catalog_
                 .Register(RelationSchema("R", {{"A", ValueType::kInt},
                                                {"B", ValueType::kInt},
                                                {"C", ValueType::kInt}}))
                 .ok());
    CJ_CHECK(catalog_
                 .Register(RelationSchema("S", {{"D", ValueType::kInt},
                                                {"E", ValueType::kInt},
                                                {"F", ValueType::kInt}}))
                 .ok());
  }

  Catalog catalog_;
};

TEST_F(ParserTest, PaperExampleQuery) {
  // The paper's §3.2 e-learning example.
  auto q = ParseQuery(
      "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
      "WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type(), QueryType::kT1);
  EXPECT_EQ(q->side(0).relation, "Document");
  EXPECT_EQ(q->side(1).relation, "Authors");
  EXPECT_EQ(q->side(0).index_attr_name(), "AuthorId");
  EXPECT_EQ(q->side(1).index_attr_name(), "Id");
  EXPECT_EQ(q->select().size(), 2u);
  ASSERT_EQ(q->side(1).predicates.size(), 1u);
  EXPECT_EQ(q->side(0).predicates.size(), 0u);
  EXPECT_EQ(q->signature(), "Document.AuthorId = Authors.Id");
}

TEST_F(ParserTest, SimpleJoinWithoutAliases) {
  auto q = ParseQuery("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type(), QueryType::kT1);
  EXPECT_EQ(q->side(0).alias, "R");
  ASSERT_TRUE(q->side(0).linear.has_value());
  EXPECT_TRUE(q->side(0).linear->bare);
}

TEST_F(ParserTest, JoinConditionOrderNormalizedToFromOrder) {
  // Written as S.E = R.B; side 0 must still be R's expression.
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE S.E = R.B", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->side(0).join_expr->ToString(), "R.B");
  EXPECT_EQ(q->side(1).join_expr->ToString(), "S.E");
}

TEST_F(ParserTest, LinearT1Form) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE 2*R.B + 1 = S.E - 3",
                      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type(), QueryType::kT1);
  ASSERT_TRUE(q->side(0).linear.has_value());
  EXPECT_EQ(q->side(0).linear->scale, 2.0);
  EXPECT_EQ(q->side(0).linear->offset, 1.0);
  ASSERT_TRUE(q->side(1).linear.has_value());
  EXPECT_EQ(q->side(1).linear->offset, -3.0);
}

TEST_F(ParserTest, T2MultiAttributeSides) {
  // The paper's §4.5 example shape.
  auto q = ParseQuery(
      "SELECT R.A, S.D FROM R, S WHERE 4*R.B + R.C + 8 = 5*S.E + S.D - S.F",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type(), QueryType::kT2);
  EXPECT_FALSE(q->side(0).linear.has_value());
  // Index attribute defaults to a referenced attribute of the side.
  EXPECT_TRUE(q->side(0).index_attr_name() == "B" ||
              q->side(0).index_attr_name() == "C");
}

TEST_F(ParserTest, ImplicitAliasForm) {
  auto q = ParseQuery(
      "SELECT D.Title FROM Document D, Authors A WHERE D.AuthorId = A.Id",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->side(0).alias, "D");
}

TEST_F(ParserTest, PredicatesAttachToTheirSide) {
  auto q = ParseQuery(
      "SELECT R.A FROM R, S WHERE R.B = S.E AND R.C > 5 AND S.F != 2 AND "
      "S.D <= 7",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->side(0).predicates.size(), 1u);
  EXPECT_EQ(q->side(1).predicates.size(), 2u);
}

TEST_F(ParserTest, PredicateEvaluation) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B = S.E AND R.C > 5",
                      catalog_);
  ASSERT_TRUE(q.ok());
  rel::Tuple pass("R", {rel::Value::Int(1), rel::Value::Int(2),
                        rel::Value::Int(9)},
                  0, 0);
  rel::Tuple fail("R", {rel::Value::Int(1), rel::Value::Int(2),
                        rel::Value::Int(3)},
                  0, 0);
  EXPECT_TRUE(q->side(0).SatisfiesPredicates(pass));
  EXPECT_FALSE(q->side(0).SatisfiesPredicates(fail));
}

TEST_F(ParserTest, ToStringIsStable) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B = S.E AND S.F = 1",
                      catalog_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(),
            "SELECT R.A FROM R, S WHERE R.B = S.E AND S.F = 1");
}

// --- Error cases -----------------------------------------------------------

TEST_F(ParserTest, RejectsUnknownRelation) {
  auto q = ParseQuery("SELECT X.A FROM X, S WHERE X.A = S.D", catalog_);
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST_F(ParserTest, RejectsUnknownAttribute) {
  auto q = ParseQuery("SELECT R.Z FROM R, S WHERE R.A = S.D", catalog_);
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST_F(ParserTest, RejectsSelfJoin) {
  auto q = ParseQuery("SELECT A1.A FROM R AS A1, R AS A2 WHERE A1.B = A2.C",
                      catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(ParserTest, RejectsMissingJoinCondition) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B = 5", catalog_);
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST_F(ParserTest, RejectsNonEqualityJoin) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B < S.E", catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(ParserTest, RejectsMultipleJoinConditions) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B = S.E AND R.C = S.F",
                      catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(ParserTest, RejectsMixedSidesWithinOneExpression) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B + S.E = S.F", catalog_);
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST_F(ParserTest, RejectsUnqualifiedAttribute) {
  auto q = ParseQuery("SELECT A FROM R, S WHERE R.B = S.E", catalog_);
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, RejectsArithmeticOnStringAttribute) {
  auto q = ParseQuery(
      "SELECT D.Title FROM Document AS D, Authors AS A "
      "WHERE D.AuthorId = A.Id AND A.Surname + 1 = 2",
      catalog_);
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST_F(ParserTest, RejectsConstantConjunct) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B = S.E AND 1 = 1",
                      catalog_);
  EXPECT_TRUE(q.status().IsParseError());
}

TEST_F(ParserTest, RejectsTrailingGarbage) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE R.B = S.E GROUP", catalog_);
  EXPECT_TRUE(q.status().IsParseError());
}

TEST_F(ParserTest, RejectsThreeRelations) {
  auto q = ParseQuery(
      "SELECT R.A FROM R, S, Document WHERE R.B = S.E", catalog_);
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, RejectsDuplicateAlias) {
  auto q = ParseQuery("SELECT X.A FROM R AS X, S AS X WHERE X.A = X.D",
                      catalog_);
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, ParenthesizedExpressions) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE (R.B + 1) * 2 = S.E",
                      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type(), QueryType::kT1);
  EXPECT_EQ(q->side(0).linear->scale, 2.0);
  EXPECT_EQ(q->side(0).linear->offset, 2.0);
}

TEST_F(ParserTest, UnaryMinusInJoinCondition) {
  auto q = ParseQuery("SELECT R.A FROM R, S WHERE -R.B = S.E", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->side(0).linear->scale, -1.0);
}

}  // namespace
}  // namespace contjoin::query
