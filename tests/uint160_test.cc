#include "common/uint160.h"

#include <gtest/gtest.h>

namespace contjoin {
namespace {

TEST(Uint160Test, DefaultIsZero) {
  Uint160 z;
  EXPECT_EQ(z.ToHex(), std::string(40, '0'));
  EXPECT_EQ(z.Low64(), 0u);
}

TEST(Uint160Test, FromUint64RoundTrips) {
  Uint160 v = Uint160::FromUint64(0x1234567890ABCDEFull);
  EXPECT_EQ(v.Low64(), 0x1234567890ABCDEFull);
  EXPECT_EQ(v.ToHex(), "0000000000000000000000001234567890abcdef");
}

TEST(Uint160Test, FromHexRoundTrips) {
  bool ok = false;
  Uint160 v = Uint160::FromHex("a9993e364706816aba3e25717850c26c9cd0d89d", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(v.ToHex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Uint160Test, FromHexShortIsValueExtended) {
  bool ok = false;
  Uint160 v = Uint160::FromHex("ff", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(v, Uint160::FromUint64(255));
}

TEST(Uint160Test, FromHexRejectsGarbage) {
  bool ok = true;
  (void)Uint160::FromHex("xyz", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  (void)Uint160::FromHex(std::string(41, 'a'), &ok);
  EXPECT_FALSE(ok);
}

TEST(Uint160Test, AdditionCarriesAcrossWords) {
  Uint160 a = Uint160::FromHex("00000000ffffffffffffffffffffffffffffffff");
  Uint160 one = Uint160::FromUint64(1);
  EXPECT_EQ((a + one).ToHex(), "0000000100000000000000000000000000000000");
}

TEST(Uint160Test, AdditionWrapsModulo2To160) {
  Uint160 max = Uint160::Max();
  Uint160 one = Uint160::FromUint64(1);
  EXPECT_EQ(max + one, Uint160());
  EXPECT_EQ(max + max, max - one);
}

TEST(Uint160Test, SubtractionBorrowsAndWraps) {
  Uint160 zero;
  Uint160 one = Uint160::FromUint64(1);
  EXPECT_EQ(zero - one, Uint160::Max());
  Uint160 a = Uint160::FromHex("0000000100000000000000000000000000000000");
  EXPECT_EQ((a - one).ToHex(), "00000000ffffffffffffffffffffffffffffffff");
}

TEST(Uint160Test, AdditionSubtractionInverse) {
  Uint160 a = HashKey("alpha");
  Uint160 b = HashKey("beta");
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a - b) + b, a);
}

TEST(Uint160Test, ComparisonIsLexicographicOnWords) {
  Uint160 small = Uint160::FromUint64(5);
  Uint160 big = Uint160::FromHex("8000000000000000000000000000000000000000");
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, Uint160::FromUint64(5));
}

TEST(Uint160Test, PowerOfTwo) {
  EXPECT_EQ(Uint160::PowerOfTwo(0), Uint160::FromUint64(1));
  EXPECT_EQ(Uint160::PowerOfTwo(63), Uint160::FromUint64(1ull << 63));
  EXPECT_EQ(Uint160::PowerOfTwo(159).ToHex(),
            "8000000000000000000000000000000000000000");
  // Sum of all powers of two is 2^160 - 1.
  Uint160 sum;
  for (int i = 0; i < 160; ++i) sum += Uint160::PowerOfTwo(i);
  EXPECT_EQ(sum, Uint160::Max());
}

TEST(Uint160Test, ClockwiseDistance) {
  Uint160 a = Uint160::FromUint64(10);
  Uint160 b = Uint160::FromUint64(3);
  EXPECT_EQ(a.ClockwiseDistanceFrom(b), Uint160::FromUint64(7));
  // Wrapping: from 10 back around to 3.
  EXPECT_EQ(b.ClockwiseDistanceFrom(a),
            Uint160::Max() - Uint160::FromUint64(6));
}

TEST(Uint160Test, InOpenClosedBasic) {
  auto u = [](uint64_t v) { return Uint160::FromUint64(v); };
  EXPECT_TRUE(u(5).InOpenClosed(u(3), u(8)));
  EXPECT_TRUE(u(8).InOpenClosed(u(3), u(8)));   // Closed at b.
  EXPECT_FALSE(u(3).InOpenClosed(u(3), u(8)));  // Open at a.
  EXPECT_FALSE(u(9).InOpenClosed(u(3), u(8)));
}

TEST(Uint160Test, InOpenClosedWrapsAroundZero) {
  auto u = [](uint64_t v) { return Uint160::FromUint64(v); };
  Uint160 high = Uint160::Max() - u(10);
  // Interval (Max-10, 5]: contains Max, 0, 3, 5 but not 6 or Max-10.
  EXPECT_TRUE(Uint160::Max().InOpenClosed(high, u(5)));
  EXPECT_TRUE(Uint160().InOpenClosed(high, u(5)));
  EXPECT_TRUE(u(5).InOpenClosed(high, u(5)));
  EXPECT_FALSE(u(6).InOpenClosed(high, u(5)));
  EXPECT_FALSE(high.InOpenClosed(high, u(5)));
}

TEST(Uint160Test, DegenerateIntervalIsFullRing) {
  auto a = HashKey("solo");
  EXPECT_TRUE(a.InOpenClosed(a, a));
  EXPECT_TRUE(HashKey("other").InOpenClosed(a, a));
  EXPECT_FALSE(a.InOpenOpen(a, a));
  EXPECT_TRUE(HashKey("other").InOpenOpen(a, a));
}

TEST(Uint160Test, InOpenOpenExcludesBothEnds) {
  auto u = [](uint64_t v) { return Uint160::FromUint64(v); };
  EXPECT_TRUE(u(5).InOpenOpen(u(3), u(8)));
  EXPECT_FALSE(u(8).InOpenOpen(u(3), u(8)));
  EXPECT_FALSE(u(3).InOpenOpen(u(3), u(8)));
}

TEST(Uint160Test, HashKeyMatchesSha1) {
  Uint160 id = HashKey("abc");
  EXPECT_EQ(id.ToHex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Uint160Test, HashValueSpreads) {
  EXPECT_NE(HashKey("a").HashValue(), HashKey("b").HashValue());
}

TEST(Uint160Test, ShortString) {
  EXPECT_EQ(HashKey("abc").ToShortString(), "a9993e3647");
}

}  // namespace
}  // namespace contjoin
