#include "query/lexer.h"

#include <gtest/gtest.h>

namespace contjoin::query {
namespace {

std::vector<Token> Lex(std::string_view s) {
  auto result = Tokenize(s);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = Lex("Select R _under x1");
  EXPECT_EQ(tokens[0].text, "Select");
  EXPECT_EQ(tokens[1].text, "R");
  EXPECT_EQ(tokens[2].text, "_under");
  EXPECT_EQ(tokens[3].text, "x1");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].type, TokenType::kIdentifier);
  }
}

TEST(LexerTest, IntegerAndDoubleLiterals) {
  auto tokens = Lex("42 3.5 0.25 1e3 2.5E-2");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDouble);
  EXPECT_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].double_value, 0.25);
  EXPECT_EQ(tokens[3].double_value, 1000.0);
  EXPECT_EQ(tokens[4].double_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto tokens = Lex("'Smith' 'O''Brien'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "Smith");
  EXPECT_EQ(tokens[1].text, "O'Brien");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex(", . ( ) + - * / = != <> < <= > >=");
  std::vector<TokenType> expected{
      TokenType::kComma, TokenType::kDot,   TokenType::kLParen,
      TokenType::kRParen, TokenType::kPlus, TokenType::kMinus,
      TokenType::kStar,  TokenType::kSlash, TokenType::kEq,
      TokenType::kNeq,   TokenType::kNeq,   TokenType::kLt,
      TokenType::kLe,    TokenType::kGt,    TokenType::kGe,
      TokenType::kEnd};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, QualifiedAttribute) {
  auto tokens = Lex("D.AuthorId");
  EXPECT_EQ(tokens[0].text, "D");
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].text, "AuthorId");
}

TEST(LexerTest, ErrorOnUnterminatedString) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, ErrorOnUnknownCharacter) {
  EXPECT_TRUE(Tokenize("R.A = $5").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ! b").status().IsParseError());
}

TEST(LexerTest, ErrorOnMalformedExponent) {
  EXPECT_TRUE(Tokenize("1e").status().IsParseError());
  EXPECT_TRUE(Tokenize("1e+").status().IsParseError());
}

TEST(LexerTest, IsKeywordCaseInsensitive) {
  auto tokens = Lex("select FROM Where");
  EXPECT_TRUE(IsKeyword(tokens[0], "SELECT"));
  EXPECT_TRUE(IsKeyword(tokens[1], "from"));
  EXPECT_TRUE(IsKeyword(tokens[2], "WHERE"));
  EXPECT_FALSE(IsKeyword(tokens[0], "FROM"));
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

}  // namespace
}  // namespace contjoin::query
