// Shared helpers for Chord-layer tests.

#ifndef CONTJOIN_TESTS_CHORD_TEST_UTIL_H_
#define CONTJOIN_TESTS_CHORD_TEST_UTIL_H_

#include <string>
#include <vector>

#include "chord/network.h"
#include "chord/node.h"
#include "chord/types.h"

namespace contjoin::chord {

/// Payload carrying a tag so tests can tell deliveries apart.
struct TaggedPayload : Payload {
  explicit TaggedPayload(int t) : tag(t) {}
  int tag;
};

/// Records every delivery (node, target, tag) and stored-item hand-off.
class CaptureApp : public Application {
 public:
  struct Delivery {
    Node* node;
    NodeId target;
    int tag;
  };

  void HandleMessage(Node& node, const AppMessage& msg) override {
    int tag = -1;
    if (const auto* p = dynamic_cast<const TaggedPayload*>(msg.payload.get())) {
      tag = p->tag;
    }
    deliveries.push_back(Delivery{&node, msg.target, tag});
  }

  void HandleStoredItems(Node& node, const NodeId& key,
                         std::vector<PayloadPtr> items) override {
    for (PayloadPtr& item : items) {
      stored_handoffs.push_back({&node, key, -1});
      node.store().Put(key, std::move(item));
    }
  }

  std::vector<Delivery> deliveries;
  std::vector<Delivery> stored_handoffs;
};

inline AppMessage MakeMsg(const NodeId& target, int tag,
                          sim::MsgClass cls = sim::MsgClass::kControl) {
  return AppMessage{target, cls, std::make_shared<TaggedPayload>(tag)};
}

}  // namespace contjoin::chord

#endif  // CONTJOIN_TESTS_CHORD_TEST_UTIL_H_
