// Serving harness tests: seeded determinism and interarrival moments of
// the three arrival processes, the latency recorder's interpolated
// percentiles against a hand-computed fixture, and the open-loop driver
// end to end (smoke, repeatability, backpressure shed/defer accounting).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serving/arrival.h"
#include "serving/driver.h"
#include "serving/latency.h"
#include "sim/net_stats.h"

namespace contjoin::serving {
namespace {

// ---------------------------------------------------------------------------
// Arrival processes.

ArrivalSpec SpecFor(ArrivalKind kind) {
  ArrivalSpec spec;
  spec.kind = kind;
  spec.rate = 1.0;
  spec.mean_on = 50.0;
  spec.mean_off = 200.0;
  spec.trough_fraction = 0.1;
  spec.period = 1000;
  return spec;
}

TEST(ArrivalTest, SameSeedSameSchedule) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBurstyOnOff,
                           ArrivalKind::kDiurnalRamp}) {
    SCOPED_TRACE(ArrivalKindName(kind));
    const ArrivalSpec spec = SpecFor(kind);
    std::vector<sim::SimTime> a = GenerateArrivals(spec, 7, 100, 50000);
    std::vector<sim::SimTime> b = GenerateArrivals(spec, 7, 100, 50000);
    EXPECT_EQ(a, b);
    ASSERT_FALSE(a.empty());
    // Different seed: genuinely different process, not a shifted copy.
    std::vector<sim::SimTime> c = GenerateArrivals(spec, 8, 100, 50000);
    EXPECT_NE(a, c);
  }
}

TEST(ArrivalTest, SortedAndInsideWindow) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBurstyOnOff,
                           ArrivalKind::kDiurnalRamp}) {
    SCOPED_TRACE(ArrivalKindName(kind));
    const sim::SimTime start = 1000;
    const sim::SimTime duration = 20000;
    std::vector<sim::SimTime> at =
        GenerateArrivals(SpecFor(kind), 3, start, duration);
    ASSERT_FALSE(at.empty());
    EXPECT_TRUE(std::is_sorted(at.begin(), at.end()));
    EXPECT_GE(at.front(), start);
    EXPECT_LT(at.back(), start + duration);
  }
}

TEST(ArrivalTest, PoissonMomentsMatchRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate = 0.5;
  const sim::SimTime duration = 200000;
  std::vector<sim::SimTime> at = GenerateArrivals(spec, 42, 0, duration);
  // Count ~ rate * duration = 100000; 5% tolerance is ~16 sigma.
  const double expected = spec.rate * static_cast<double>(duration);
  EXPECT_NEAR(static_cast<double>(at.size()), expected, 0.05 * expected);
  // Mean interarrival ~ 1/rate = 2 (tick flooring shifts it < 1 tick).
  double gap_sum = 0.0;
  for (size_t i = 1; i < at.size(); ++i) {
    gap_sum += static_cast<double>(at[i] - at[i - 1]);
  }
  const double mean_gap = gap_sum / static_cast<double>(at.size() - 1);
  EXPECT_NEAR(mean_gap, 1.0 / spec.rate, 0.15);
}

TEST(ArrivalTest, BurstyAlternatesBurstsAndSilences) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBurstyOnOff;
  spec.rate = 2.0;
  spec.mean_on = 50.0;
  spec.mean_off = 200.0;
  const sim::SimTime duration = 200000;
  std::vector<sim::SimTime> at = GenerateArrivals(spec, 42, 0, duration);
  // Effective rate = rate * on-fraction = 2 * 50/250 = 0.4/tick.
  const double expected =
      spec.rate * static_cast<double>(duration) * spec.mean_on /
      (spec.mean_on + spec.mean_off);
  EXPECT_NEAR(static_cast<double>(at.size()), expected, 0.20 * expected);
  // Silences: a Poisson process at rate 2 over 200k ticks would essentially
  // never show a 50-tick gap (p ~ e^-100 per gap); the off phases produce
  // many of them.
  size_t long_gaps = 0;
  for (size_t i = 1; i < at.size(); ++i) {
    if (at[i] - at[i - 1] >= 50) ++long_gaps;
  }
  EXPECT_GE(long_gaps, 100u);
}

TEST(ArrivalTest, DiurnalPeakBeatsTrough) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnalRamp;
  spec.rate = 1.0;
  spec.trough_fraction = 0.1;
  spec.period = 1000;
  const sim::SimTime duration = 200000;  // 200 cycles.
  std::vector<sim::SimTime> at = GenerateArrivals(spec, 42, 0, duration);
  // Triangular wave: mean factor = trough + (1 - trough)/2 = 0.55.
  const double expected = 0.55 * static_cast<double>(duration);
  EXPECT_NEAR(static_cast<double>(at.size()), expected, 0.05 * expected);
  // Fold all cycles into 10 phase buckets; the wave peaks mid-period
  // (factor 1.0) and troughs at the period edges (factor 0.1).
  uint64_t bucket[10] = {};
  for (sim::SimTime t : at) ++bucket[(t % spec.period) * 10 / spec.period];
  const uint64_t peak = std::max(bucket[4], bucket[5]);
  const uint64_t trough = std::max<uint64_t>(1, std::min(bucket[0], bucket[9]));
  EXPECT_GT(peak, 3 * trough);
}

// ---------------------------------------------------------------------------
// Latency recorder percentiles (hand-computed linear interpolation).

TEST(LatencyRecorderTest, InterpolatedPercentilesMatchHandComputation) {
  LatencyRecorder rec;
  for (int v = 10; v <= 100; v += 10) rec.Record(static_cast<double>(v));
  EXPECT_EQ(rec.count(), 10u);
  EXPECT_DOUBLE_EQ(rec.mean(), 55.0);
  EXPECT_DOUBLE_EQ(rec.max(), 100.0);
  // rank = (p/100) * (n-1): p50 -> 4.5 -> midway between 50 and 60.
  EXPECT_DOUBLE_EQ(rec.p50(), 55.0);
  // p99 -> rank 8.91 -> 90 + 0.91 * 10; nearest-rank would say 100.
  EXPECT_NEAR(rec.p99(), 99.1, 1e-9);
  // p999 -> rank 8.991 -> 90 + 0.991 * 10.
  EXPECT_NEAR(rec.p999(), 99.91, 1e-9);
  EXPECT_DOUBLE_EQ(rec.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(100.0), 100.0);
  const std::string summary = rec.Summary();
  EXPECT_NE(summary.find("count=10"), std::string::npos);
  EXPECT_NE(summary.find("p999="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Open-loop driver.

ServingConfig SmallConfig() {
  ServingConfig config;
  config.engine.num_nodes = 24;
  config.engine.seed = 42;
  config.workload.seed = 9;
  config.workload.domain = 60;  // Dense enough to join constantly.
  config.workload.zipf_theta = 0.8;
  config.arrivals.kind = ArrivalKind::kPoisson;
  config.arrivals.rate = 0.5;
  config.num_queries = 8;
  config.fanout = 2;
  config.subscriber_nodes = 4;
  config.duration = 256;
  config.warmup = 32;
  config.sample_every = 32;
  return config;
}

TEST(ServingDriverTest, SmokeProducesMeasuredLatencies) {
  ServingDriver driver(SmallConfig());
  ServingReport report = driver.Run();
  EXPECT_GT(report.arrivals_scheduled, 50u);
  EXPECT_GT(report.notifications, 0u);
  EXPECT_GT(report.measured, 0u);
  EXPECT_EQ(report.measured, report.latency.count());
  EXPECT_EQ(report.delivered.size(), report.notifications);
  EXPECT_GT(report.events_run, report.arrivals_scheduled);
  ASSERT_FALSE(report.samples.empty());
  for (size_t i = 1; i < report.samples.size(); ++i) {
    EXPECT_GT(report.samples[i].at, report.samples[i - 1].at);
  }
  // Virtual-time latencies are finite and ordered: p50 <= p99 <= p999 <= max.
  EXPECT_LE(report.latency.p50(), report.latency.p99());
  EXPECT_LE(report.latency.p99(), report.latency.p999());
  EXPECT_LE(report.latency.p999(), report.latency.max());
  EXPECT_GT(report.traffic.total_hops(), 0u);
}

TEST(ServingDriverTest, IdenticalConfigIsByteForByteRepeatable) {
  ServingReport a = ServingDriver(SmallConfig()).Run();
  ServingReport b = ServingDriver(SmallConfig()).Run();
  EXPECT_EQ(a.arrivals_scheduled, b.arrivals_scheduled);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.latency.Summary(), b.latency.Summary());
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].pending_events, b.samples[i].pending_events);
    EXPECT_EQ(a.samples[i].inflight_total, b.samples[i].inflight_total);
    EXPECT_EQ(a.samples[i].buffered_total, b.samples[i].buffered_total);
  }
}

TEST(ServingDriverTest, ArrivalSeedChangesSchedule) {
  ServingConfig config = SmallConfig();
  config.arrival_seed = 1234;
  ServingReport a = ServingDriver(SmallConfig()).Run();
  ServingReport b = ServingDriver(config).Run();
  EXPECT_NE(a.delivered, b.delivered);
}

// With the high-water mark at zero and shed mode on, every delivery is
// dropped at admission: nothing reaches an inbox and the shed counter
// carries the whole fan-out.
TEST(ServingDriverTest, ShedModeDropsAndCounts) {
  ServingConfig config = SmallConfig();
  config.engine.serving.backpressure = true;
  config.engine.serving.high_water = 0;
  config.engine.serving.shed = true;
  ServingReport report = ServingDriver(config).Run();
  EXPECT_EQ(report.notifications, 0u);
  EXPECT_GT(report.traffic.shed(), 0u);
  EXPECT_EQ(report.traffic.deferred(), 0u);
}

// Defer mode delays past-high-water deliveries instead of dropping them:
// the delivered content is exactly the unthrottled run's (later, not less).
TEST(ServingDriverTest, DeferModeIsContentLossless) {
  ServingReport base = ServingDriver(SmallConfig()).Run();
  ServingConfig config = SmallConfig();
  config.engine.serving.backpressure = true;
  config.engine.serving.high_water = 1;
  config.engine.serving.shed = false;
  config.engine.serving.defer_delay = 3;
  ServingReport throttled = ServingDriver(config).Run();
  EXPECT_GT(throttled.traffic.deferred(), 0u);
  EXPECT_EQ(throttled.traffic.shed(), 0u);
  EXPECT_EQ(throttled.notifications, base.notifications);
  // Compare content without the delivery timestamp (the final |field).
  auto content = [](const ServingReport& r) {
    std::vector<std::string> keys;
    keys.reserve(r.delivered.size());
    for (const std::string& line : r.delivered) {
      keys.push_back(line.substr(0, line.rfind('|')));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(content(throttled), content(base));
}

}  // namespace
}  // namespace contjoin::serving
