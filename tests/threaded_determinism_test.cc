// End-to-end determinism contract of the parallel simulator core: a full
// engine scenario (query installation, wave-streamed tuples, reliable
// delivery) must produce byte-for-byte identical notification streams,
// traffic statistics and metrics at every worker count. Also checks the
// sender-side coalescing mode against the uncoalesced run: same hop
// accounting and same notification *content* (per-destination order is
// preserved; cross-class interleaving may legally differ).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "serving/driver.h"
#include "workload/driver.h"

namespace contjoin {
namespace {

struct ScenarioResult {
  std::string digest;            // Order-sensitive serialization.
  std::vector<std::string> content;  // Sorted notification content keys.
  uint64_t parallel_batches = 0;
  uint64_t total_hops = 0;
  uint64_t dropped = 0;
  size_t notifications = 0;
};

workload::DriverConfig ScenarioConfig(bool coalesce) {
  workload::DriverConfig cfg;
  cfg.engine.num_nodes = 48;
  cfg.engine.seed = 42;
  cfg.engine.chord.coalesce = coalesce;
  cfg.engine.reliability.enabled = true;
  cfg.workload.seed = 9;
  cfg.workload.num_relation_pairs = 4;
  cfg.workload.attrs_per_relation = 3;
  cfg.workload.domain = 150;  // Small domain so joins actually match.
  cfg.workload.zipf_theta = 0.8;
  return cfg;
}

ScenarioResult RunScenario(int workers, bool coalesce) {
  workload::DriverConfig cfg = ScenarioConfig(coalesce);
  workload::ExperimentDriver driver(cfg);
  core::ContinuousQueryNetwork& net = driver.net();
  net.simulator()->SetWorkers(workers);

  driver.InstallQueries(30);
  Rng placement(123);
  for (int wave = 0; wave < 6; ++wave) {
    std::vector<std::pair<size_t, std::string>> origins;
    std::vector<std::vector<rel::Value>> rows;
    for (int i = 0; i < 32; ++i) {
      auto [relation, values] = driver.gen().NextTuple();
      origins.emplace_back(placement.NextBelow(cfg.engine.num_nodes),
                           relation);
      rows.push_back(std::move(values));
    }
    CJ_CHECK(net.InsertTupleWave(origins, std::move(rows)).ok());
  }

  ScenarioResult r;
  r.parallel_batches = net.simulator()->parallel_batches_run();
  r.total_hops = net.stats().total_hops();
  r.dropped = net.stats().dropped();
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (const core::Notification& n : net.TakeNotifications(i)) {
      std::string key = n.ContentKey();
      r.digest += std::to_string(i) + "|" + key + "|" +
                  std::to_string(n.earlier_pub) + "|" +
                  std::to_string(n.later_pub) + "|" +
                  std::to_string(n.created_at) + "\n";
      r.content.push_back(std::move(key));
      ++r.notifications;
    }
  }
  r.digest += net.stats().Report();
  const core::NodeMetrics totals = net.TotalMetrics();
  r.digest += "|sent=" + std::to_string(totals.reliable_sent) +
              "|retries=" + std::to_string(totals.reliable_retries) +
              "|acks=" + std::to_string(totals.reliable_acks_sent) +
              "|dups=" + std::to_string(totals.reliable_dups_suppressed);
  std::sort(r.content.begin(), r.content.end());
  return r;
}

TEST(ThreadedDeterminism, EightWorkersMatchSerialByteForByte) {
  ScenarioResult serial = RunScenario(1, /*coalesce=*/false);
  ScenarioResult threaded = RunScenario(8, /*coalesce=*/false);

  // The scenario must actually exercise the parallel path, and produce
  // answers worth comparing.
  EXPECT_EQ(serial.parallel_batches, 0u);
  EXPECT_GT(threaded.parallel_batches, 0u);
  EXPECT_GT(serial.notifications, 0u);

  EXPECT_EQ(serial.digest, threaded.digest);
  EXPECT_EQ(serial.total_hops, threaded.total_hops);
  EXPECT_EQ(serial.notifications, threaded.notifications);
}

TEST(ThreadedDeterminism, IntermediateWorkerCountsAgree) {
  ScenarioResult two = RunScenario(2, /*coalesce=*/false);
  ScenarioResult four = RunScenario(4, /*coalesce=*/false);
  EXPECT_EQ(two.digest, four.digest);
}

TEST(ThreadedDeterminism, CoalescingPreservesContentAndHopAccounting) {
  ScenarioResult plain = RunScenario(1, /*coalesce=*/false);
  ScenarioResult coalesced = RunScenario(1, /*coalesce=*/true);

  // Coalescing batches same-class transmissions into fewer simulator
  // events; every logical message still pays its hop and every answer is
  // still delivered. Cross-class per-node interleaving may differ, so the
  // comparison is on sorted content, hop totals and drop counts.
  EXPECT_EQ(plain.content, coalesced.content);
  EXPECT_EQ(plain.total_hops, coalesced.total_hops);
  EXPECT_EQ(plain.dropped, coalesced.dropped);
  EXPECT_EQ(plain.notifications, coalesced.notifications);
}

TEST(ThreadedDeterminism, CoalescingIsDeterministicAcrossWorkerCounts) {
  ScenarioResult serial = RunScenario(1, /*coalesce=*/true);
  ScenarioResult threaded = RunScenario(8, /*coalesce=*/true);
  EXPECT_EQ(serial.digest, threaded.digest);
}

// The open-loop serving path stacks every new mechanism at once — seeded
// arrivals, digest batching, backpressure deferral, reliable delivery
// under drops — and must still be byte-for-byte identical at every worker
// count, including the delivery timestamps and queue-depth samples.
std::string RunOpenLoopScenario(int workers, uint64_t* parallel_batches) {
  serving::ServingConfig config;
  config.engine.num_nodes = 32;
  config.engine.seed = 42;
  config.engine.reliability.enabled = true;
  config.engine.faults.profile(sim::MsgClass::kNotification).drop_prob = 0.05;
  config.engine.serving.fanout_batching = true;
  config.engine.serving.backpressure = true;
  config.engine.serving.high_water = 2;
  config.engine.serving.shed = false;  // Defer: retries stress the queue.
  config.engine.serving.defer_delay = 3;
  config.workload.seed = 9;
  config.workload.domain = 60;
  config.workload.zipf_theta = 0.8;
  config.arrivals.kind = serving::ArrivalKind::kBurstyOnOff;
  config.arrivals.rate = 1.0;
  config.arrivals.mean_on = 16;
  config.arrivals.mean_off = 16;
  config.num_queries = 8;
  config.fanout = 3;
  config.subscriber_nodes = 4;
  config.duration = 192;
  config.warmup = 16;
  config.sample_every = 32;

  serving::ServingDriver driver(config);
  driver.net().simulator()->SetWorkers(workers);
  serving::ServingReport report = driver.Run();
  *parallel_batches = driver.net().simulator()->parallel_batches_run();

  std::string digest;
  for (const std::string& line : report.delivered) digest += line + "\n";
  for (const serving::QueueSample& s : report.samples) {
    digest += "sample|" + std::to_string(s.at) + "|" +
              std::to_string(s.inflight_total) + "|" +
              std::to_string(s.buffered_total) + "\n";
  }
  digest += report.latency.Summary() + "\n";
  digest += report.traffic.Report();
  digest += "|arrivals=" + std::to_string(report.arrivals_scheduled) +
            "|events=" + std::to_string(report.events_run) +
            "|sent=" + std::to_string(report.reliable_sent) +
            "|retries=" + std::to_string(report.reliable_retries) +
            "|shed=" + std::to_string(report.traffic.shed()) +
            "|deferred=" + std::to_string(report.traffic.deferred());
  return digest;
}

TEST(ThreadedDeterminism, OpenLoopServingAgreesAcrossWorkerCounts) {
  uint64_t batches1 = 0;
  const std::string serial = RunOpenLoopScenario(1, &batches1);
  EXPECT_EQ(batches1, 0u);
  // The scenario must actually hit the high-water mark (nonzero deferrals;
  // the deferred counter is the digest's final field, so "=0" means idle).
  EXPECT_NE(serial.find("|deferred="), std::string::npos);
  EXPECT_EQ(serial.find("|deferred=0"), std::string::npos);
  for (int workers : {2, 4, 8}) {
    SCOPED_TRACE(workers);
    uint64_t batches = 0;
    EXPECT_EQ(serial, RunOpenLoopScenario(workers, &batches));
    EXPECT_GT(batches, 0u);
  }
}

}  // namespace
}  // namespace contjoin
