# Empty dependencies file for contjoin_common.
# This may be replaced when dependencies are built.
