file(REMOVE_RECURSE
  "CMakeFiles/contjoin_common.dir/histogram.cc.o"
  "CMakeFiles/contjoin_common.dir/histogram.cc.o.d"
  "CMakeFiles/contjoin_common.dir/rng.cc.o"
  "CMakeFiles/contjoin_common.dir/rng.cc.o.d"
  "CMakeFiles/contjoin_common.dir/sha1.cc.o"
  "CMakeFiles/contjoin_common.dir/sha1.cc.o.d"
  "CMakeFiles/contjoin_common.dir/status.cc.o"
  "CMakeFiles/contjoin_common.dir/status.cc.o.d"
  "CMakeFiles/contjoin_common.dir/string_util.cc.o"
  "CMakeFiles/contjoin_common.dir/string_util.cc.o.d"
  "CMakeFiles/contjoin_common.dir/uint160.cc.o"
  "CMakeFiles/contjoin_common.dir/uint160.cc.o.d"
  "CMakeFiles/contjoin_common.dir/zipf.cc.o"
  "CMakeFiles/contjoin_common.dir/zipf.cc.o.d"
  "libcontjoin_common.a"
  "libcontjoin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
