file(REMOVE_RECURSE
  "libcontjoin_common.a"
)
