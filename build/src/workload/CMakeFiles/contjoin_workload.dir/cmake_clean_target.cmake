file(REMOVE_RECURSE
  "libcontjoin_workload.a"
)
