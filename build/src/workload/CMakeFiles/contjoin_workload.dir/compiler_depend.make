# Empty compiler generated dependencies file for contjoin_workload.
# This may be replaced when dependencies are built.
