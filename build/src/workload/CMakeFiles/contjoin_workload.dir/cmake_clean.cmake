file(REMOVE_RECURSE
  "CMakeFiles/contjoin_workload.dir/driver.cc.o"
  "CMakeFiles/contjoin_workload.dir/driver.cc.o.d"
  "CMakeFiles/contjoin_workload.dir/workload.cc.o"
  "CMakeFiles/contjoin_workload.dir/workload.cc.o.d"
  "libcontjoin_workload.a"
  "libcontjoin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
