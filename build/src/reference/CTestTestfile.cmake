# CMake generated Testfile for 
# Source directory: /root/repo/src/reference
# Build directory: /root/repo/build/src/reference
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
