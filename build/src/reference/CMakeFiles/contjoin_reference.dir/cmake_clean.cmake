file(REMOVE_RECURSE
  "CMakeFiles/contjoin_reference.dir/mw_reference.cc.o"
  "CMakeFiles/contjoin_reference.dir/mw_reference.cc.o.d"
  "CMakeFiles/contjoin_reference.dir/reference_engine.cc.o"
  "CMakeFiles/contjoin_reference.dir/reference_engine.cc.o.d"
  "libcontjoin_reference.a"
  "libcontjoin_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
