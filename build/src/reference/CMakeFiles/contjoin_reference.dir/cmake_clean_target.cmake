file(REMOVE_RECURSE
  "libcontjoin_reference.a"
)
