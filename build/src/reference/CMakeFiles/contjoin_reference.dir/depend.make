# Empty dependencies file for contjoin_reference.
# This may be replaced when dependencies are built.
