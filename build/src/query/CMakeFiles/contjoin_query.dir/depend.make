# Empty dependencies file for contjoin_query.
# This may be replaced when dependencies are built.
