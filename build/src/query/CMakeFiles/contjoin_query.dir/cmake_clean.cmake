file(REMOVE_RECURSE
  "CMakeFiles/contjoin_query.dir/expr.cc.o"
  "CMakeFiles/contjoin_query.dir/expr.cc.o.d"
  "CMakeFiles/contjoin_query.dir/lexer.cc.o"
  "CMakeFiles/contjoin_query.dir/lexer.cc.o.d"
  "CMakeFiles/contjoin_query.dir/mw_query.cc.o"
  "CMakeFiles/contjoin_query.dir/mw_query.cc.o.d"
  "CMakeFiles/contjoin_query.dir/parser.cc.o"
  "CMakeFiles/contjoin_query.dir/parser.cc.o.d"
  "CMakeFiles/contjoin_query.dir/query.cc.o"
  "CMakeFiles/contjoin_query.dir/query.cc.o.d"
  "libcontjoin_query.a"
  "libcontjoin_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
