file(REMOVE_RECURSE
  "libcontjoin_query.a"
)
