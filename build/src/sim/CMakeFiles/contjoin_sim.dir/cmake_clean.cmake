file(REMOVE_RECURSE
  "CMakeFiles/contjoin_sim.dir/net_stats.cc.o"
  "CMakeFiles/contjoin_sim.dir/net_stats.cc.o.d"
  "CMakeFiles/contjoin_sim.dir/simulator.cc.o"
  "CMakeFiles/contjoin_sim.dir/simulator.cc.o.d"
  "libcontjoin_sim.a"
  "libcontjoin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
