file(REMOVE_RECURSE
  "libcontjoin_sim.a"
)
