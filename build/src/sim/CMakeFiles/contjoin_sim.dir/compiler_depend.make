# Empty compiler generated dependencies file for contjoin_sim.
# This may be replaced when dependencies are built.
