file(REMOVE_RECURSE
  "CMakeFiles/contjoin_chord.dir/local_store.cc.o"
  "CMakeFiles/contjoin_chord.dir/local_store.cc.o.d"
  "CMakeFiles/contjoin_chord.dir/network.cc.o"
  "CMakeFiles/contjoin_chord.dir/network.cc.o.d"
  "CMakeFiles/contjoin_chord.dir/node.cc.o"
  "CMakeFiles/contjoin_chord.dir/node.cc.o.d"
  "libcontjoin_chord.a"
  "libcontjoin_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
