# Empty dependencies file for contjoin_chord.
# This may be replaced when dependencies are built.
