file(REMOVE_RECURSE
  "libcontjoin_chord.a"
)
