
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chord/local_store.cc" "src/chord/CMakeFiles/contjoin_chord.dir/local_store.cc.o" "gcc" "src/chord/CMakeFiles/contjoin_chord.dir/local_store.cc.o.d"
  "/root/repo/src/chord/network.cc" "src/chord/CMakeFiles/contjoin_chord.dir/network.cc.o" "gcc" "src/chord/CMakeFiles/contjoin_chord.dir/network.cc.o.d"
  "/root/repo/src/chord/node.cc" "src/chord/CMakeFiles/contjoin_chord.dir/node.cc.o" "gcc" "src/chord/CMakeFiles/contjoin_chord.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/contjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/contjoin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
