file(REMOVE_RECURSE
  "libcontjoin_relational.a"
)
