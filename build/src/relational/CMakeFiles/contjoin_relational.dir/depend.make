# Empty dependencies file for contjoin_relational.
# This may be replaced when dependencies are built.
