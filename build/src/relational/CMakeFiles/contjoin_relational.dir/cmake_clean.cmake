file(REMOVE_RECURSE
  "CMakeFiles/contjoin_relational.dir/schema.cc.o"
  "CMakeFiles/contjoin_relational.dir/schema.cc.o.d"
  "CMakeFiles/contjoin_relational.dir/tuple.cc.o"
  "CMakeFiles/contjoin_relational.dir/tuple.cc.o.d"
  "CMakeFiles/contjoin_relational.dir/value.cc.o"
  "CMakeFiles/contjoin_relational.dir/value.cc.o.d"
  "libcontjoin_relational.a"
  "libcontjoin_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
