# Empty dependencies file for contjoin_core.
# This may be replaced when dependencies are built.
