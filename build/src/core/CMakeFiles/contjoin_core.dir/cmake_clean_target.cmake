file(REMOVE_RECURSE
  "libcontjoin_core.a"
)
