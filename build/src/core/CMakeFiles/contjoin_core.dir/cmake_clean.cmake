file(REMOVE_RECURSE
  "CMakeFiles/contjoin_core.dir/engine.cc.o"
  "CMakeFiles/contjoin_core.dir/engine.cc.o.d"
  "CMakeFiles/contjoin_core.dir/jfrt.cc.o"
  "CMakeFiles/contjoin_core.dir/jfrt.cc.o.d"
  "CMakeFiles/contjoin_core.dir/messages.cc.o"
  "CMakeFiles/contjoin_core.dir/messages.cc.o.d"
  "CMakeFiles/contjoin_core.dir/tables.cc.o"
  "CMakeFiles/contjoin_core.dir/tables.cc.o.d"
  "libcontjoin_core.a"
  "libcontjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
