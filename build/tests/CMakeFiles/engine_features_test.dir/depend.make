# Empty dependencies file for engine_features_test.
# This may be replaced when dependencies are built.
