file(REMOVE_RECURSE
  "CMakeFiles/engine_features_test.dir/engine_features_test.cc.o"
  "CMakeFiles/engine_features_test.dir/engine_features_test.cc.o.d"
  "engine_features_test"
  "engine_features_test.pdb"
  "engine_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
