file(REMOVE_RECURSE
  "CMakeFiles/engine_semantics_test.dir/engine_semantics_test.cc.o"
  "CMakeFiles/engine_semantics_test.dir/engine_semantics_test.cc.o.d"
  "engine_semantics_test"
  "engine_semantics_test.pdb"
  "engine_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
