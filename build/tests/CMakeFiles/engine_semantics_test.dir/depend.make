# Empty dependencies file for engine_semantics_test.
# This may be replaced when dependencies are built.
