# Empty compiler generated dependencies file for chord_protocol_test.
# This may be replaced when dependencies are built.
