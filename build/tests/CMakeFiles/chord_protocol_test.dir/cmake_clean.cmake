file(REMOVE_RECURSE
  "CMakeFiles/chord_protocol_test.dir/chord_protocol_test.cc.o"
  "CMakeFiles/chord_protocol_test.dir/chord_protocol_test.cc.o.d"
  "chord_protocol_test"
  "chord_protocol_test.pdb"
  "chord_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
