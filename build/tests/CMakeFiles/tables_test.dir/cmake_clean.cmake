file(REMOVE_RECURSE
  "CMakeFiles/tables_test.dir/tables_test.cc.o"
  "CMakeFiles/tables_test.dir/tables_test.cc.o.d"
  "tables_test"
  "tables_test.pdb"
  "tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
