# Empty compiler generated dependencies file for tables_test.
# This may be replaced when dependencies are built.
