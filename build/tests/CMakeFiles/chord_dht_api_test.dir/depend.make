# Empty dependencies file for chord_dht_api_test.
# This may be replaced when dependencies are built.
