file(REMOVE_RECURSE
  "CMakeFiles/chord_dht_api_test.dir/chord_dht_api_test.cc.o"
  "CMakeFiles/chord_dht_api_test.dir/chord_dht_api_test.cc.o.d"
  "chord_dht_api_test"
  "chord_dht_api_test.pdb"
  "chord_dht_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_dht_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
