# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for chord_dht_api_test.
