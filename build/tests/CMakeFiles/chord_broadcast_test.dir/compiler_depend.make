# Empty compiler generated dependencies file for chord_broadcast_test.
# This may be replaced when dependencies are built.
