file(REMOVE_RECURSE
  "CMakeFiles/chord_broadcast_test.dir/chord_broadcast_test.cc.o"
  "CMakeFiles/chord_broadcast_test.dir/chord_broadcast_test.cc.o.d"
  "chord_broadcast_test"
  "chord_broadcast_test.pdb"
  "chord_broadcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
