file(REMOVE_RECURSE
  "CMakeFiles/uint160_test.dir/uint160_test.cc.o"
  "CMakeFiles/uint160_test.dir/uint160_test.cc.o.d"
  "uint160_test"
  "uint160_test.pdb"
  "uint160_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uint160_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
