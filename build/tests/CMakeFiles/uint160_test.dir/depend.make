# Empty dependencies file for uint160_test.
# This may be replaced when dependencies are built.
