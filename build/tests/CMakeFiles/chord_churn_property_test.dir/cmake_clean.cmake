file(REMOVE_RECURSE
  "CMakeFiles/chord_churn_property_test.dir/chord_churn_property_test.cc.o"
  "CMakeFiles/chord_churn_property_test.dir/chord_churn_property_test.cc.o.d"
  "chord_churn_property_test"
  "chord_churn_property_test.pdb"
  "chord_churn_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_churn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
