# Empty compiler generated dependencies file for chord_churn_property_test.
# This may be replaced when dependencies are built.
