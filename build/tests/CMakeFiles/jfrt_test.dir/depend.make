# Empty dependencies file for jfrt_test.
# This may be replaced when dependencies are built.
