file(REMOVE_RECURSE
  "CMakeFiles/jfrt_test.dir/jfrt_test.cc.o"
  "CMakeFiles/jfrt_test.dir/jfrt_test.cc.o.d"
  "jfrt_test"
  "jfrt_test.pdb"
  "jfrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
