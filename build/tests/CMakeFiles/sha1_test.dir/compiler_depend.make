# Empty compiler generated dependencies file for sha1_test.
# This may be replaced when dependencies are built.
