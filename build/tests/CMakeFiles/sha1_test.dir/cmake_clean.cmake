file(REMOVE_RECURSE
  "CMakeFiles/sha1_test.dir/sha1_test.cc.o"
  "CMakeFiles/sha1_test.dir/sha1_test.cc.o.d"
  "sha1_test"
  "sha1_test.pdb"
  "sha1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sha1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
