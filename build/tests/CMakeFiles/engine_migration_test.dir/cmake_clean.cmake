file(REMOVE_RECURSE
  "CMakeFiles/engine_migration_test.dir/engine_migration_test.cc.o"
  "CMakeFiles/engine_migration_test.dir/engine_migration_test.cc.o.d"
  "engine_migration_test"
  "engine_migration_test.pdb"
  "engine_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
