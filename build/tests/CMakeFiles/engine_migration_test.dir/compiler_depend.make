# Empty compiler generated dependencies file for engine_migration_test.
# This may be replaced when dependencies are built.
