# Empty dependencies file for engine_basic_test.
# This may be replaced when dependencies are built.
