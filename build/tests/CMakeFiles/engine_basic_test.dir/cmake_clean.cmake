file(REMOVE_RECURSE
  "CMakeFiles/engine_basic_test.dir/engine_basic_test.cc.o"
  "CMakeFiles/engine_basic_test.dir/engine_basic_test.cc.o.d"
  "engine_basic_test"
  "engine_basic_test.pdb"
  "engine_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
