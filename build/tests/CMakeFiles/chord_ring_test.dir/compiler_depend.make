# Empty compiler generated dependencies file for chord_ring_test.
# This may be replaced when dependencies are built.
