file(REMOVE_RECURSE
  "CMakeFiles/chord_ring_test.dir/chord_ring_test.cc.o"
  "CMakeFiles/chord_ring_test.dir/chord_ring_test.cc.o.d"
  "chord_ring_test"
  "chord_ring_test.pdb"
  "chord_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
