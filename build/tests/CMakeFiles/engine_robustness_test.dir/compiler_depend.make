# Empty compiler generated dependencies file for engine_robustness_test.
# This may be replaced when dependencies are built.
