file(REMOVE_RECURSE
  "CMakeFiles/engine_robustness_test.dir/engine_robustness_test.cc.o"
  "CMakeFiles/engine_robustness_test.dir/engine_robustness_test.cc.o.d"
  "engine_robustness_test"
  "engine_robustness_test.pdb"
  "engine_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
